// A MicroCreator plugin (§3.3): exported as a shared library and loaded at
// run time with --plugin / MicroCreator::loadPlugin. It demonstrates the
// three plugin capabilities without recompiling the tool:
//
//   * adding a pass (DoubleUnroll: doubles every kernel's unroll bounds
//     before the Unrolling pass runs),
//   * gating an existing pass off (Peephole),
//   * replacing nothing — but the same API would allow it.

#include <algorithm>

#include "creator/pass_manager.hpp"

using microtools::creator::GenerationState;
using microtools::creator::LambdaPass;
using microtools::creator::PassManager;

extern "C" void pluginInit(PassManager& pm) {
  pm.addPassBefore(
      "Unrolling",
      std::make_unique<LambdaPass>("DoubleUnroll", [](GenerationState& state) {
        for (auto& kernel : state.kernels) {
          kernel.unrollMin = std::min(kernel.unrollMin * 2, 64);
          kernel.unrollMax = std::min(kernel.unrollMax * 2, 64);
          kernel.tag("x2");
        }
      }));
  pm.setGate("Peephole", [](const GenerationState&) { return false; });
}
