// §7 of the paper: "MicroCreator creates variations of a described program
// in order to evaluate variations in performance or power utilization."
// This study uses the simulator's energy model to compare the generated
// unroll variants on the energy axis — including the classic race-to-idle
// effect under DVFS.

#include <cstdio>

#include "asmparse/asmparse.hpp"
#include "creator/creator.hpp"
#include "sim/core.hpp"

using namespace microtools;

namespace {

sim::RunResult runVariant(const sim::MachineConfig& machine,
                          const creator::GeneratedProgram& program,
                          std::uint64_t arrayBytes) {
  sim::MemorySystem memsys(machine);
  memsys.touch(0, 0x100000000ull, arrayBytes + 64);
  sim::CoreSim core(machine, memsys, 0);
  asmparse::Program parsed = asmparse::parseAssembly(program.asmText);
  return core.run(parsed, static_cast<int>(arrayBytes / 4),
                  {0x100000000ull});
}

}  // namespace

int main() {
  const char* xml = R"(
<kernel>
  <instruction>
    <operation>movaps</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
  </instruction>
  <unrolling><min>1</min><max>8</max></unrolling>
  <induction><register><name>r1</name></register>
    <increment>16</increment><offset>16</offset></induction>
  <induction><register><name>r0</name></register><increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/></induction>
  <branch_information><label>L6</label><test>jge</test>
  </branch_information>
</kernel>)";

  creator::MicroCreator mc;
  auto programs = mc.generateFromText(xml);
  sim::MachineConfig machine = sim::nehalemX5650DualSocket();
  const std::uint64_t arrayBytes = 16 * 1024;  // L1-resident

  std::printf("energy per element vs unroll factor (%s, L1 stream)\n\n",
              machine.name.c_str());
  std::printf("%-8s %-12s %-12s %-10s\n", "unroll", "cycles/elem",
              "energy pJ/elem", "avg watts");
  for (const auto& program : programs) {
    sim::RunResult r = runVariant(machine, program, arrayBytes);
    double elements = static_cast<double>(arrayBytes / 16) * 4;
    std::printf("%-8d %-12.3f %-12.1f %-10.2f\n",
                program.kernel.unrollFactor,
                static_cast<double>(r.coreCycles) / elements,
                r.energyPj / elements, r.averageWatts(machine));
  }
  std::printf("\nunrolling saves energy twice over: fewer loop-overhead "
              "uops (dynamic) and a\nshorter runtime (static leakage).\n\n");

  // Race to idle: the same unroll-8 kernel across the DVFS range.
  std::printf("race-to-idle: unroll-8 energy per element vs core "
              "frequency\n\n");
  std::printf("%-10s %-12s %-14s\n", "core GHz", "tsc cyc/elem",
              "energy pJ/elem");
  const creator::GeneratedProgram& unroll8 = programs.back();
  for (double ghz : {1.60, 1.86, 2.13, 2.40, 2.67}) {
    sim::MachineConfig m = machine;
    m.coreGHz = ghz;
    sim::RunResult r = runVariant(m, unroll8, arrayBytes);
    double elements = static_cast<double>(arrayBytes / 16) * 4;
    std::printf("%-10.2f %-12.3f %-14.1f\n", ghz,
                r.tscCycles / elements, r.energyPj / elements);
  }
  std::printf("\nfor an L1-resident kernel the work is constant, so "
              "running faster spends the\nsame dynamic energy over fewer "
              "leaky cycles: the highest frequency is the most\n"
              "energy-efficient (race to idle).\n");
  return 0;
}
