// The §5.1 study end to end: generate the full 510-variant (Load|Store)+
// family from one description, execute every unroll-8 variant against two
// hierarchy levels, and report the best variant per group — exactly the
// "which code shape is optimal on this machine" question the MicroTools
// automate.

#include <cstdio>
#include <map>

#include "creator/creator.hpp"
#include "launcher/launcher.hpp"
#include "launcher/sim_backend.hpp"
#include "support/strings.hpp"

using namespace microtools;

int main() {
  const char* xml = R"(
<description>
  <benchmark_name>loadstore</benchmark_name>
  <kernel>
    <instruction>
      <operation>movaps</operation>
      <memory><register><name>r1</name></register><offset>0</offset></memory>
      <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
      <swap_after_unroll/>
    </instruction>
    <unrolling><min>1</min><max>8</max></unrolling>
    <induction><register><name>r1</name></register>
      <increment>16</increment><offset>16</offset></induction>
    <induction><register><name>r0</name></register><increment>-1</increment>
      <linked><register><name>r1</name></register></linked>
      <last_induction/></induction>
    <branch_information><label>L6</label><test>jge</test>
    </branch_information>
  </kernel>
</description>)";

  creator::MicroCreator mc;
  auto programs = mc.generateFromText(xml);
  std::printf("generated %zu variants (sum of 2^u for u in 1..8 = 510)\n\n",
              programs.size());

  launcher::MicroLauncher ml(
      std::make_unique<launcher::SimBackend>(sim::nehalemX5650DualSocket()));

  struct Best {
    std::string name;
    double cycles = 1e300;
  };
  // group key: (level, loads, stores) at unroll 8.
  std::map<std::string, Best> best;

  launcher::ProtocolOptions protocol;
  protocol.innerRepetitions = 1;
  protocol.outerRepetitions = 2;
  for (const auto& program : programs) {
    if (program.kernel.unrollFactor != 8) continue;  // 256 variants
    for (auto [levelName, bytes] :
         {std::pair{"L1", 16 * 1024}, std::pair{"L2", 64 * 1024}}) {
      auto kernel = ml.load(program);
      launcher::KernelRequest request;
      request.arrays.push_back(
          launcher::ArraySpec{static_cast<std::uint64_t>(bytes), 4096, 0});
      request.n = bytes / 4;
      ml.backend().reset();
      launcher::Measurement m = ml.measure(*kernel, request, protocol);
      std::string key = strings::format("%s %dL/%dS", levelName,
                                        program.kernel.loadCount(),
                                        program.kernel.storeCount());
      Best& slot = best[key];
      if (m.cyclesPerIteration.min < slot.cycles) {
        slot.cycles = m.cyclesPerIteration.min;
        slot.name = program.name;
      }
    }
  }

  std::printf("best unroll-8 variant per (level, load/store mix):\n");
  std::printf("%-12s %-34s %s\n", "group", "variant", "cycles/iter");
  for (const auto& [key, slot] : best) {
    std::printf("%-12s %-34s %8.2f\n", key.c_str(), slot.name.c_str(),
                slot.cycles);
  }
  return 0;
}
