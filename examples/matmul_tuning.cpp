// The Section-2 motivation walkthrough: tuning the naive matrix multiply.
//
//   1. Scan sizes to find where the working set leaves the caches (Fig. 3).
//   2. Check whether alignment matters at the chosen size (Fig. 4).
//   3. Try unroll factors on the inner kernel and compare the actual code
//      with the MicroCreator abstraction of it (Fig. 5).

#include <cstdio>

#include "asmparse/asmparse.hpp"
#include "creator/creator.hpp"
#include "kernels/matmul.hpp"
#include "launcher/launcher.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig machine = sim::nehalemX5650DualSocket();
  std::printf("tuning the naive matrix multiply on %s\n\n",
              machine.name.c_str());

  // -- step 1: size scan ----------------------------------------------------
  std::printf("step 1: cycles per inner iteration vs matrix size\n");
  double inCache = 0;
  for (int n : {100, 200, 400, 600}) {
    kernels::MatmulStudyOptions options;
    options.n = n;
    double cycles = kernels::runMatmulStudy(machine, options)
                        .cyclesPerKIteration;
    if (n == 200) inCache = cycles;
    std::printf("  n=%-4d %6.2f cycles/iter\n", n, cycles);
  }
  std::printf("  -> 200x200 stays near the cache floor; use it for the "
              "kernel study\n\n");

  // -- step 2: alignment check ---------------------------------------------
  std::printf("step 2: does matrix alignment matter at 200x200?\n");
  double lo = 1e300, hi = 0;
  for (std::uint64_t offset : {0ull, 1024ull, 2048ull, 3072ull}) {
    kernels::MatmulStudyOptions options;
    options.n = 200;
    options.bases = {0x100000000ull + offset, 0x140000000ull + 2 * offset,
                     0x180000000ull + 3 * offset};
    double cycles = kernels::runMatmulStudy(machine, options)
                        .cyclesPerKIteration;
    lo = std::min(lo, cycles);
    hi = std::max(hi, cycles);
  }
  std::printf("  variation %.1f%% -> alignment is NOT the lever here "
              "(paper: <3%%)\n\n", (hi - lo) / lo * 100);

  // -- step 3: unrolling, actual code vs MicroCreator prediction -----------
  std::printf("step 3: unroll factors (actual kernel vs MicroTools)\n");
  creator::MicroCreator mc;
  auto generated =
      mc.generateFromText(kernels::matmulInnerKernelXml(1, 7, 200 * 8));
  double bestActual = 1e300, baseActual = 0;
  int bestUnroll = 1;
  for (const auto& program : generated) {
    int unroll = program.kernel.unrollFactor;
    kernels::MatmulStudyOptions actual;
    actual.n = 200;
    actual.unroll = unroll;
    double actualCycles =
        kernels::runMatmulStudy(machine, actual).cyclesPerKIteration;

    asmparse::Program parsed = asmparse::parseAssembly(program.asmText);
    kernels::MatmulStudyOptions predicted = actual;
    predicted.programOverride = &parsed;
    double predictedCycles =
        kernels::runMatmulStudy(machine, predicted).cyclesPerKIteration;

    std::printf("  unroll %d: actual %5.2f, microtools %5.2f cycles/iter\n",
                unroll, actualCycles, predictedCycles);
    if (unroll == 1) baseActual = actualCycles;
    if (actualCycles < bestActual) {
      bestActual = actualCycles;
      bestUnroll = unroll;
    }
  }
  std::printf("\nconclusion: unroll by %d for a %.1f%% kernel speedup; the "
              "MicroTools\nprediction matched the actual code, so the "
              "rewrite is worth doing.\n",
              bestUnroll, (baseActual - bestActual) / baseActual * 100);
  (void)inCache;
  return 0;
}
