// §3.5 "Current Uses": modeling stencil codes. A 1D three-point stencil
// reads a[i-1], a[i], a[i+1] and writes b[i]; in MicroCreator terms that is
// three loads at offsets -4/0/4 from one induction pointer, two adds, and a
// store — with unrolling to study how many arithmetic instructions the
// memory latencies hide (another §3.5 use case).

#include <cstdio>

#include "creator/creator.hpp"
#include "launcher/launcher.hpp"
#include "launcher/sim_backend.hpp"

using namespace microtools;

int main() {
  const char* xml = R"(
<description>
  <benchmark_name>stencil3</benchmark_name>
  <kernel>
    <instruction>
      <operation>movss</operation>
      <memory><register><name>src</name></register><offset>0</offset></memory>
      <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
    </instruction>
    <instruction>
      <operation>addss</operation>
      <memory><register><name>src</name></register><offset>-4</offset></memory>
      <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
    </instruction>
    <instruction>
      <operation>addss</operation>
      <memory><register><name>src</name></register><offset>4</offset></memory>
      <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
    </instruction>
    <instruction>
      <operation>movss</operation>
      <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
      <memory><register><name>dst</name></register><offset>0</offset></memory>
    </instruction>
    <unrolling><min>1</min><max>8</max></unrolling>
    <induction>
      <register><name>src</name></register>
      <increment>4</increment><offset>4</offset>
    </induction>
    <induction>
      <register><name>dst</name></register>
      <increment>4</increment><offset>4</offset>
    </induction>
    <induction>
      <register><phyName>%eax</phyName></register>
      <increment>1</increment>
    </induction>
    <induction>
      <register><name>r0</name></register>
      <increment>-1</increment>
      <linked><register><name>src</name></register></linked>
      <last_induction/>
    </induction>
    <branch_information><label>L9</label><test>jge</test>
    </branch_information>
  </kernel>
</description>)";

  creator::MicroCreator mc;
  auto programs = mc.generateFromText(xml);
  std::printf("stencil kernel: 3 loads + 2 adds + 1 store per point; "
              "%zu unroll variants\n\n", programs.size());

  launcher::MicroLauncher ml(
      std::make_unique<launcher::SimBackend>(sim::nehalemX5650DualSocket()));
  launcher::ProtocolOptions protocol;
  protocol.innerRepetitions = 2;
  protocol.outerRepetitions = 3;

  std::printf("%-8s %-14s %s\n", "unroll", "L1-resident", "L3-resident");
  for (const auto& program : programs) {
    double perPoint[2];
    int column = 0;
    for (std::uint64_t bytes : {16ull * 1024, 768ull * 1024}) {
      auto kernel = ml.load(program);
      launcher::KernelRequest request;
      // src needs one element of slack on each side for the -4/+4 taps.
      request.arrays.push_back(launcher::ArraySpec{bytes + 64, 4096, 64});
      request.arrays.push_back(launcher::ArraySpec{bytes, 4096, 0});
      request.n = static_cast<int>(bytes / 4);
      ml.backend().reset();
      launcher::Measurement m = ml.measure(*kernel, request, protocol);
      // The kernel's %eax induction counts points (scaled by unroll), so
      // the measurement is already cycles per stencil point.
      perPoint[column++] = m.cyclesPerIteration.min;
    }
    std::printf("%-8d %-14.2f %.2f   cycles/point\n",
                program.kernel.unrollFactor, perPoint[0], perPoint[1]);
  }
  std::printf("\nthe stencil is load-port bound (~3 taps/point on a "
              "single-load-port Nehalem),\nso unrolling cannot help the way "
              "it helps pure streams - and the two addss per\npoint are "
              "completely hidden behind the loads (the paper's 'how many "
              "arithmetic\ninstructions are hidden by the latencies' "
              "study).\n");
  return 0;
}
