// Demonstrates MicroCreator's plugin system (§3.3): load the
// double_unroll_plugin shared library, show how the pass pipeline changed,
// and generate with the modified pipeline.
//
// The plugin path is baked in by CMake (MT_EXAMPLE_PLUGIN_PATH); the same
// library works with the CLI:
//   microcreator input.xml --plugin <path>/double_unroll_plugin.so

#include <cstdio>

#include "creator/creator.hpp"

using namespace microtools;

#ifndef MT_EXAMPLE_PLUGIN_PATH
#define MT_EXAMPLE_PLUGIN_PATH "examples/plugins/double_unroll_plugin.so"
#endif

int main() {
  const char* xml = R"(
<kernel>
  <instruction>
    <operation>movaps</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
  </instruction>
  <unrolling><min>2</min><max>2</max></unrolling>
  <induction><register><name>r1</name></register>
    <increment>16</increment><offset>16</offset></induction>
  <induction><register><name>r0</name></register><increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/></induction>
  <branch_information><label>L6</label><test>jge</test>
  </branch_information>
</kernel>)";

  creator::MicroCreator withoutPlugin;
  auto plainPrograms = withoutPlugin.generateFromText(xml);
  std::printf("without plugin: %zu program(s), unroll factor %d\n",
              plainPrograms.size(), plainPrograms[0].kernel.unrollFactor);

  creator::MicroCreator withPlugin;
  withPlugin.loadPlugin(MT_EXAMPLE_PLUGIN_PATH);
  std::printf("\npass pipeline after loading the plugin:\n");
  int index = 1;
  for (const std::string& name : withPlugin.passManager().passNames()) {
    std::printf("  %2d. %s%s\n", index++, name.c_str(),
                name == "DoubleUnroll" ? "   <- added by the plugin" : "");
  }

  auto programs = withPlugin.generateFromText(xml);
  std::printf("\nwith plugin: %zu program(s), unroll factor %d "
              "(doubled), name: %s\n",
              programs.size(), programs[0].kernel.unrollFactor,
              programs[0].name.c_str());
  return 0;
}
