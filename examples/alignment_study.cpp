// §5.2.2 in miniature: sweep the alignment of the arrays of a copy-style
// movss traversal and watch cycles/iteration spread — then locate the bad
// configurations (stores landing on the same 4 KiB page offset as loads).

#include <cstdio>

#include "creator/creator.hpp"
#include "launcher/launcher.hpp"
#include "launcher/sim_backend.hpp"

using namespace microtools;

int main() {
  const char* xml = R"(
<kernel>
  <instruction>
    <operation>movss</operation>
    <memory><register><name>src</name></register><offset>0</offset></memory>
    <register><phyName>%xmm0</phyName></register>
  </instruction>
  <instruction>
    <operation>movss</operation>
    <register><phyName>%xmm0</phyName></register>
    <memory><register><name>dst</name></register><offset>0</offset></memory>
  </instruction>
  <unrolling><min>4</min><max>4</max></unrolling>
  <induction><register><name>src</name></register>
    <increment>4</increment><offset>4</offset></induction>
  <induction><register><name>dst</name></register>
    <increment>4</increment><offset>4</offset></induction>
  <induction><register><name>r0</name></register><increment>-1</increment>
    <linked><register><name>src</name></register></linked>
    <last_induction/></induction>
  <branch_information><label>L2</label><test>jge</test>
  </branch_information>
</kernel>)";

  creator::MicroCreator mc;
  auto programs = mc.generateFromText(xml);
  launcher::MicroLauncher ml(
      std::make_unique<launcher::SimBackend>(sim::nehalemX5650DualSocket()));
  auto kernel = ml.load(programs.at(0));

  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{8 * 1024, 4096, 0});
  request.arrays.push_back(launcher::ArraySpec{8 * 1024, 4096, 0});
  request.n = 8 * 1024 / 4;

  launcher::AlignmentSweepSpec spec;
  spec.minOffset = 0;
  spec.maxOffset = 4096;
  spec.step = 512;
  spec.maxConfigs = 64;  // full 8x8 product

  launcher::ProtocolOptions protocol;
  protocol.innerRepetitions = 1;
  protocol.outerRepetitions = 2;
  auto samples = ml.alignmentSweep(*kernel, request, spec, protocol);

  std::printf("%-10s %-10s %s\n", "src_off", "dst_off", "cycles/iter");
  double lo = 1e300, hi = 0;
  for (const auto& s : samples) {
    double v = s.measurement.cyclesPerIteration.min;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    bool aliased = s.offsets[0] == s.offsets[1];
    std::printf("%-10llu %-10llu %8.2f%s\n",
                static_cast<unsigned long long>(s.offsets[0]),
                static_cast<unsigned long long>(s.offsets[1]), v,
                aliased ? "   <- same 4KiB page offset" : "");
  }
  std::printf("\nspread: %.2f .. %.2f cycles/iteration (%.0f%%)\n", lo, hi,
              (hi - lo) / lo * 100);
  std::printf("rule of thumb from this study: keep the destination's page "
              "offset away\nfrom the source's to avoid 4KiB-aliasing "
              "stalls.\n");
  return 0;
}
