// The faithful MicroLauncher path on THIS machine: generate a kernel,
// compile it to a shared object at run time, pin, and time it with rdtsc —
// then compare the host's behavior with the simulated Nehalem's.
//
// Absolute numbers depend on whatever CPU this runs on; the point of the
// example is that the identical description drives both backends ("the
// tools are entirely independent of the underlying architecture and can
// directly use the same creator input files", §7).

#include <cstdio>

#include "creator/creator.hpp"
#include "launcher/launcher.hpp"
#include "launcher/sim_backend.hpp"
#include "native/native_backend.hpp"

using namespace microtools;

int main() {
  const char* xml = R"(
<kernel>
  <instruction>
    <operation>movaps</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
  </instruction>
  <unrolling><min>1</min><max>8</max></unrolling>
  <induction><register><name>r1</name></register>
    <increment>16</increment><offset>16</offset></induction>
  <induction><register><name>r0</name></register><increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/></induction>
  <branch_information><label>L6</label><test>jge</test>
  </branch_information>
</kernel>)";

  creator::MicroCreator mc;
  auto programs = mc.generateFromText(xml);

  native::NativeBackend nativeBackend;
  launcher::SimBackend simBackend(sim::nehalemX5650DualSocket());

  launcher::ProtocolOptions protocol;
  protocol.innerRepetitions = 8;
  protocol.outerRepetitions = 5;

  std::printf("%-8s %-22s %-22s\n", "unroll", "this host (cyc/iter)",
              "simulated Nehalem");
  for (const auto& program : programs) {
    launcher::KernelRequest request;
    request.arrays.push_back(launcher::ArraySpec{16 * 1024, 4096, 0});
    request.n = 16 * 1024 / 4;

    auto nativeKernel = nativeBackend.load(program);
    launcher::Measurement host =
        launcher::measureKernel(nativeBackend, *nativeKernel, request,
                                protocol);

    auto simKernel = simBackend.load(program);
    simBackend.reset();
    launcher::Measurement simulated =
        launcher::measureKernel(simBackend, *simKernel, request, protocol);

    std::printf("%-8d %8.2f (min %6.2f)  %8.2f\n",
                program.kernel.unrollFactor, host.cyclesPerIteration.median,
                host.cyclesPerIteration.min,
                simulated.cyclesPerIteration.min);
  }
  std::printf("\nBoth columns come from the same generated programs; the "
              "host column is a\nreal rdtsc measurement (expect noise on a "
              "shared machine).\n");
  return 0;
}
