// §3.5 "Current Uses": detecting the effect of strides. The description
// lists candidate strides for the pointer induction; MicroCreator's
// StrideSelection pass fans out one program per stride, and the launcher
// exposes where the hardware prefetcher stops helping (unit stride streams;
// large strides touch a new cache line every iteration and defeat it).

#include <cstdio>

#include "creator/creator.hpp"
#include "launcher/launcher.hpp"
#include "launcher/sim_backend.hpp"

using namespace microtools;

int main() {
  const char* xml = R"(
<description>
  <benchmark_name>stride</benchmark_name>
  <kernel>
    <instruction>
      <operation>movss</operation>
      <memory><register><name>r1</name></register><offset>0</offset></memory>
      <register><phyName>%xmm0</phyName></register>
    </instruction>
    <unrolling><min>1</min><max>1</max></unrolling>
    <induction>
      <register><name>r1</name></register>
      <increment>4</increment><increment>16</increment>
      <increment>64</increment><increment>256</increment>
      <increment>1024</increment>
      <offset>0</offset>
    </induction>
    <induction>
      <register><name>r0</name></register>
      <increment>-1</increment>
      <last_induction/>
    </induction>
    <branch_information><label>L5</label><test>jge</test>
    </branch_information>
  </kernel>
</description>)";

  creator::MicroCreator mc;
  auto programs = mc.generateFromText(xml);
  std::printf("StrideSelection produced %zu variants\n\n", programs.size());

  launcher::MicroLauncher ml(
      std::make_unique<launcher::SimBackend>(sim::nehalemX5650DualSocket()));
  launcher::ProtocolOptions protocol;
  protocol.innerRepetitions = 1;
  protocol.outerRepetitions = 2;
  protocol.warmup = false;  // cold traversals expose the prefetcher

  std::printf("%-28s %-8s %s\n", "variant", "stride", "cycles/access (cold)");
  for (const auto& program : programs) {
    std::int64_t stride = program.kernel.inductions[0].effectiveIncrement();
    // Each variant touches 4096 elements over a stride-proportional span.
    int n = 4096;
    auto kernel = ml.load(program);
    launcher::KernelRequest request;
    request.arrays.push_back(launcher::ArraySpec{
        static_cast<std::uint64_t>(stride) * (n + 1), 4096, 0});
    request.n = n;
    ml.backend().reset();
    launcher::Measurement m = ml.measure(*kernel, request, protocol);
    std::printf("%-28s %-8lld %8.2f\n", program.name.c_str(),
                static_cast<long long>(stride), m.cyclesPerIteration.min);
  }
  std::printf("\nunit strides stream (the prefetcher hides DRAM); once the "
              "stride reaches a\ncache line (64B) every access is a fresh "
              "line and past 4KiB the stream\ndetector never arms.\n");
  return 0;
}
