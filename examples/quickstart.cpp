// Quickstart: the complete MicroTools loop in ~60 lines.
//
//   1. Describe a kernel template in XML (the paper's Figure 6).
//   2. MicroCreator fans it out into benchmark programs (510 of them).
//   3. MicroLauncher executes a few variants in a controlled environment
//      and reports cycles per iteration.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "creator/creator.hpp"
#include "launcher/launcher.hpp"
#include "launcher/sim_backend.hpp"

using namespace microtools;

static const char* kDescription = R"(
<description>
  <benchmark_name>loadstore</benchmark_name>
  <kernel>
    <instruction>
      <operation>movaps</operation>
      <memory><register><name>r1</name></register><offset>0</offset></memory>
      <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
      <swap_after_unroll/>
    </instruction>
    <unrolling><min>1</min><max>8</max></unrolling>
    <induction>
      <register><name>r1</name></register>
      <increment>16</increment><offset>16</offset>
    </induction>
    <induction>
      <register><name>r0</name></register>
      <increment>-1</increment>
      <linked><register><name>r1</name></register></linked>
      <last_induction/>
    </induction>
    <branch_information><label>L6</label><test>jge</test></branch_information>
  </kernel>
</description>)";

int main() {
  // -- MicroCreator: one XML file -> hundreds of benchmark programs --------
  creator::MicroCreator mc;
  auto programs = mc.generateFromText(kDescription);
  std::printf("MicroCreator generated %zu benchmark programs\n",
              programs.size());

  // -- MicroLauncher: measure a few of them --------------------------------
  launcher::MicroLauncher ml(
      std::make_unique<launcher::SimBackend>(sim::nehalemX5650DualSocket()));

  std::vector<std::pair<std::string, launcher::Measurement>> rows;
  for (const auto& program : programs) {
    // Keep the demo quick: only the all-load variants.
    if (program.kernel.storeCount() != 0) continue;
    auto kernel = ml.load(program);
    launcher::KernelRequest request;
    request.arrays.push_back(launcher::ArraySpec{16 * 1024, 4096, 0});
    request.n = 16 * 1024 / 4;  // L1-resident float elements
    ml.backend().reset();
    rows.emplace_back(program.name, ml.measure(*kernel, request));
  }

  launcher::MicroLauncher::toCsv(rows).write(std::cout);
  std::printf("\nTip: the same programs run on real hardware with the "
              "native backend\n     (see examples/native_measure.cpp and "
              "`microlauncher --backend native`).\n");
  return 0;
}
