file(REMOVE_RECURSE
  "CMakeFiles/mt_creator.dir/creator.cpp.o"
  "CMakeFiles/mt_creator.dir/creator.cpp.o.d"
  "CMakeFiles/mt_creator.dir/description.cpp.o"
  "CMakeFiles/mt_creator.dir/description.cpp.o.d"
  "CMakeFiles/mt_creator.dir/emit_asm.cpp.o"
  "CMakeFiles/mt_creator.dir/emit_asm.cpp.o.d"
  "CMakeFiles/mt_creator.dir/emit_c.cpp.o"
  "CMakeFiles/mt_creator.dir/emit_c.cpp.o.d"
  "CMakeFiles/mt_creator.dir/pass_manager.cpp.o"
  "CMakeFiles/mt_creator.dir/pass_manager.cpp.o.d"
  "CMakeFiles/mt_creator.dir/passes_lowering.cpp.o"
  "CMakeFiles/mt_creator.dir/passes_lowering.cpp.o.d"
  "CMakeFiles/mt_creator.dir/passes_selection.cpp.o"
  "CMakeFiles/mt_creator.dir/passes_selection.cpp.o.d"
  "CMakeFiles/mt_creator.dir/passes_unroll.cpp.o"
  "CMakeFiles/mt_creator.dir/passes_unroll.cpp.o.d"
  "CMakeFiles/mt_creator.dir/plugin.cpp.o"
  "CMakeFiles/mt_creator.dir/plugin.cpp.o.d"
  "libmt_creator.a"
  "libmt_creator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_creator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
