file(REMOVE_RECURSE
  "libmt_creator.a"
)
