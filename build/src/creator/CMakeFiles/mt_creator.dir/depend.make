# Empty dependencies file for mt_creator.
# This may be replaced when dependencies are built.
