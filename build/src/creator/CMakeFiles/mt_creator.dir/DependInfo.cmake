
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/creator/creator.cpp" "src/creator/CMakeFiles/mt_creator.dir/creator.cpp.o" "gcc" "src/creator/CMakeFiles/mt_creator.dir/creator.cpp.o.d"
  "/root/repo/src/creator/description.cpp" "src/creator/CMakeFiles/mt_creator.dir/description.cpp.o" "gcc" "src/creator/CMakeFiles/mt_creator.dir/description.cpp.o.d"
  "/root/repo/src/creator/emit_asm.cpp" "src/creator/CMakeFiles/mt_creator.dir/emit_asm.cpp.o" "gcc" "src/creator/CMakeFiles/mt_creator.dir/emit_asm.cpp.o.d"
  "/root/repo/src/creator/emit_c.cpp" "src/creator/CMakeFiles/mt_creator.dir/emit_c.cpp.o" "gcc" "src/creator/CMakeFiles/mt_creator.dir/emit_c.cpp.o.d"
  "/root/repo/src/creator/pass_manager.cpp" "src/creator/CMakeFiles/mt_creator.dir/pass_manager.cpp.o" "gcc" "src/creator/CMakeFiles/mt_creator.dir/pass_manager.cpp.o.d"
  "/root/repo/src/creator/passes_lowering.cpp" "src/creator/CMakeFiles/mt_creator.dir/passes_lowering.cpp.o" "gcc" "src/creator/CMakeFiles/mt_creator.dir/passes_lowering.cpp.o.d"
  "/root/repo/src/creator/passes_selection.cpp" "src/creator/CMakeFiles/mt_creator.dir/passes_selection.cpp.o" "gcc" "src/creator/CMakeFiles/mt_creator.dir/passes_selection.cpp.o.d"
  "/root/repo/src/creator/passes_unroll.cpp" "src/creator/CMakeFiles/mt_creator.dir/passes_unroll.cpp.o" "gcc" "src/creator/CMakeFiles/mt_creator.dir/passes_unroll.cpp.o.d"
  "/root/repo/src/creator/plugin.cpp" "src/creator/CMakeFiles/mt_creator.dir/plugin.cpp.o" "gcc" "src/creator/CMakeFiles/mt_creator.dir/plugin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mt_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
