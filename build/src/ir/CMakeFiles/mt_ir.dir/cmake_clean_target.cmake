file(REMOVE_RECURSE
  "libmt_ir.a"
)
