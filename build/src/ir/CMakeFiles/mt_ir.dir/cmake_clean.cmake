file(REMOVE_RECURSE
  "CMakeFiles/mt_ir.dir/instruction.cpp.o"
  "CMakeFiles/mt_ir.dir/instruction.cpp.o.d"
  "CMakeFiles/mt_ir.dir/kernel.cpp.o"
  "CMakeFiles/mt_ir.dir/kernel.cpp.o.d"
  "CMakeFiles/mt_ir.dir/operand.cpp.o"
  "CMakeFiles/mt_ir.dir/operand.cpp.o.d"
  "libmt_ir.a"
  "libmt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
