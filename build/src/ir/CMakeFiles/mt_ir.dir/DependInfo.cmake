
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/instruction.cpp" "src/ir/CMakeFiles/mt_ir.dir/instruction.cpp.o" "gcc" "src/ir/CMakeFiles/mt_ir.dir/instruction.cpp.o.d"
  "/root/repo/src/ir/kernel.cpp" "src/ir/CMakeFiles/mt_ir.dir/kernel.cpp.o" "gcc" "src/ir/CMakeFiles/mt_ir.dir/kernel.cpp.o.d"
  "/root/repo/src/ir/operand.cpp" "src/ir/CMakeFiles/mt_ir.dir/operand.cpp.o" "gcc" "src/ir/CMakeFiles/mt_ir.dir/operand.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/mt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
