# Empty dependencies file for mt_ir.
# This may be replaced when dependencies are built.
