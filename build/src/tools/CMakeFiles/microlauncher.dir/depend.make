# Empty dependencies file for microlauncher.
# This may be replaced when dependencies are built.
