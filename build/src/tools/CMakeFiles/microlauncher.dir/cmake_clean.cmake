file(REMOVE_RECURSE
  "CMakeFiles/microlauncher.dir/microlauncher_main.cpp.o"
  "CMakeFiles/microlauncher.dir/microlauncher_main.cpp.o.d"
  "microlauncher"
  "microlauncher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microlauncher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
