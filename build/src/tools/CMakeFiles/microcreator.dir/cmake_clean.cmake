file(REMOVE_RECURSE
  "CMakeFiles/microcreator.dir/microcreator_main.cpp.o"
  "CMakeFiles/microcreator.dir/microcreator_main.cpp.o.d"
  "microcreator"
  "microcreator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microcreator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
