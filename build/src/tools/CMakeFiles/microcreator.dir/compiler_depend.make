# Empty compiler generated dependencies file for microcreator.
# This may be replaced when dependencies are built.
