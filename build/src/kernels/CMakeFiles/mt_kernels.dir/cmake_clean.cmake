file(REMOVE_RECURSE
  "CMakeFiles/mt_kernels.dir/matmul.cpp.o"
  "CMakeFiles/mt_kernels.dir/matmul.cpp.o.d"
  "libmt_kernels.a"
  "libmt_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
