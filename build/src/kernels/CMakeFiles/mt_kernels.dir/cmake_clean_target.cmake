file(REMOVE_RECURSE
  "libmt_kernels.a"
)
