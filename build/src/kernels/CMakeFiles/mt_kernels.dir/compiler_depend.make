# Empty compiler generated dependencies file for mt_kernels.
# This may be replaced when dependencies are built.
