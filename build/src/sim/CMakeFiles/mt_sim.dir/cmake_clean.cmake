file(REMOVE_RECURSE
  "CMakeFiles/mt_sim.dir/arch.cpp.o"
  "CMakeFiles/mt_sim.dir/arch.cpp.o.d"
  "CMakeFiles/mt_sim.dir/cache.cpp.o"
  "CMakeFiles/mt_sim.dir/cache.cpp.o.d"
  "CMakeFiles/mt_sim.dir/core.cpp.o"
  "CMakeFiles/mt_sim.dir/core.cpp.o.d"
  "CMakeFiles/mt_sim.dir/machine.cpp.o"
  "CMakeFiles/mt_sim.dir/machine.cpp.o.d"
  "CMakeFiles/mt_sim.dir/memsys.cpp.o"
  "CMakeFiles/mt_sim.dir/memsys.cpp.o.d"
  "libmt_sim.a"
  "libmt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
