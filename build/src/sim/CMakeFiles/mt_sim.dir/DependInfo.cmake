
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/arch.cpp" "src/sim/CMakeFiles/mt_sim.dir/arch.cpp.o" "gcc" "src/sim/CMakeFiles/mt_sim.dir/arch.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/mt_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/mt_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/core.cpp" "src/sim/CMakeFiles/mt_sim.dir/core.cpp.o" "gcc" "src/sim/CMakeFiles/mt_sim.dir/core.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/mt_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/mt_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/memsys.cpp" "src/sim/CMakeFiles/mt_sim.dir/memsys.cpp.o" "gcc" "src/sim/CMakeFiles/mt_sim.dir/memsys.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asmparse/CMakeFiles/mt_asmparse.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
