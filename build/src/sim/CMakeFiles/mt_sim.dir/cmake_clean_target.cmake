file(REMOVE_RECURSE
  "libmt_sim.a"
)
