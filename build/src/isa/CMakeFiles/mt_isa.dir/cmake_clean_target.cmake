file(REMOVE_RECURSE
  "libmt_isa.a"
)
