file(REMOVE_RECURSE
  "CMakeFiles/mt_isa.dir/instructions.cpp.o"
  "CMakeFiles/mt_isa.dir/instructions.cpp.o.d"
  "CMakeFiles/mt_isa.dir/registers.cpp.o"
  "CMakeFiles/mt_isa.dir/registers.cpp.o.d"
  "libmt_isa.a"
  "libmt_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
