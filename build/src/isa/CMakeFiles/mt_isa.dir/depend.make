# Empty dependencies file for mt_isa.
# This may be replaced when dependencies are built.
