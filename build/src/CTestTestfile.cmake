# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("xml")
subdirs("isa")
subdirs("ir")
subdirs("creator")
subdirs("asmparse")
subdirs("sim")
subdirs("kernels")
subdirs("native")
subdirs("launcher")
subdirs("tools")
