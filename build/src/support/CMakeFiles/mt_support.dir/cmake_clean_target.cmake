file(REMOVE_RECURSE
  "libmt_support.a"
)
