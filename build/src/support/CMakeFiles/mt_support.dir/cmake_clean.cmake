file(REMOVE_RECURSE
  "CMakeFiles/mt_support.dir/cli.cpp.o"
  "CMakeFiles/mt_support.dir/cli.cpp.o.d"
  "CMakeFiles/mt_support.dir/csv.cpp.o"
  "CMakeFiles/mt_support.dir/csv.cpp.o.d"
  "CMakeFiles/mt_support.dir/log.cpp.o"
  "CMakeFiles/mt_support.dir/log.cpp.o.d"
  "CMakeFiles/mt_support.dir/rng.cpp.o"
  "CMakeFiles/mt_support.dir/rng.cpp.o.d"
  "CMakeFiles/mt_support.dir/stats.cpp.o"
  "CMakeFiles/mt_support.dir/stats.cpp.o.d"
  "CMakeFiles/mt_support.dir/strings.cpp.o"
  "CMakeFiles/mt_support.dir/strings.cpp.o.d"
  "libmt_support.a"
  "libmt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
