# Empty dependencies file for mt_support.
# This may be replaced when dependencies are built.
