# Empty compiler generated dependencies file for mt_native.
# This may be replaced when dependencies are built.
