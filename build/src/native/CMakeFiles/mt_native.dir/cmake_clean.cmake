file(REMOVE_RECURSE
  "CMakeFiles/mt_native.dir/affinity.cpp.o"
  "CMakeFiles/mt_native.dir/affinity.cpp.o.d"
  "CMakeFiles/mt_native.dir/compile.cpp.o"
  "CMakeFiles/mt_native.dir/compile.cpp.o.d"
  "CMakeFiles/mt_native.dir/native_backend.cpp.o"
  "CMakeFiles/mt_native.dir/native_backend.cpp.o.d"
  "CMakeFiles/mt_native.dir/timing.cpp.o"
  "CMakeFiles/mt_native.dir/timing.cpp.o.d"
  "libmt_native.a"
  "libmt_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
