file(REMOVE_RECURSE
  "libmt_native.a"
)
