# Empty dependencies file for mt_xml.
# This may be replaced when dependencies are built.
