file(REMOVE_RECURSE
  "libmt_xml.a"
)
