file(REMOVE_RECURSE
  "CMakeFiles/mt_xml.dir/xml.cpp.o"
  "CMakeFiles/mt_xml.dir/xml.cpp.o.d"
  "libmt_xml.a"
  "libmt_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
