# Empty compiler generated dependencies file for mt_asmparse.
# This may be replaced when dependencies are built.
