file(REMOVE_RECURSE
  "CMakeFiles/mt_asmparse.dir/asmparse.cpp.o"
  "CMakeFiles/mt_asmparse.dir/asmparse.cpp.o.d"
  "libmt_asmparse.a"
  "libmt_asmparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_asmparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
