file(REMOVE_RECURSE
  "libmt_asmparse.a"
)
