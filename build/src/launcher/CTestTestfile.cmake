# CMake generated Testfile for 
# Source directory: /root/repo/src/launcher
# Build directory: /root/repo/build/src/launcher
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
