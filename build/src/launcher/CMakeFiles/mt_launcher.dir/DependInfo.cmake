
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/launcher/arch_registry.cpp" "src/launcher/CMakeFiles/mt_launcher.dir/arch_registry.cpp.o" "gcc" "src/launcher/CMakeFiles/mt_launcher.dir/arch_registry.cpp.o.d"
  "/root/repo/src/launcher/launcher.cpp" "src/launcher/CMakeFiles/mt_launcher.dir/launcher.cpp.o" "gcc" "src/launcher/CMakeFiles/mt_launcher.dir/launcher.cpp.o.d"
  "/root/repo/src/launcher/options.cpp" "src/launcher/CMakeFiles/mt_launcher.dir/options.cpp.o" "gcc" "src/launcher/CMakeFiles/mt_launcher.dir/options.cpp.o.d"
  "/root/repo/src/launcher/protocol.cpp" "src/launcher/CMakeFiles/mt_launcher.dir/protocol.cpp.o" "gcc" "src/launcher/CMakeFiles/mt_launcher.dir/protocol.cpp.o.d"
  "/root/repo/src/launcher/sim_backend.cpp" "src/launcher/CMakeFiles/mt_launcher.dir/sim_backend.cpp.o" "gcc" "src/launcher/CMakeFiles/mt_launcher.dir/sim_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/creator/CMakeFiles/mt_creator.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asmparse/CMakeFiles/mt_asmparse.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mt_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mt_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
