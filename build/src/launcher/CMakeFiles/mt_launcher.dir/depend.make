# Empty dependencies file for mt_launcher.
# This may be replaced when dependencies are built.
