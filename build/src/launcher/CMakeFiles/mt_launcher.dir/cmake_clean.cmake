file(REMOVE_RECURSE
  "CMakeFiles/mt_launcher.dir/arch_registry.cpp.o"
  "CMakeFiles/mt_launcher.dir/arch_registry.cpp.o.d"
  "CMakeFiles/mt_launcher.dir/launcher.cpp.o"
  "CMakeFiles/mt_launcher.dir/launcher.cpp.o.d"
  "CMakeFiles/mt_launcher.dir/options.cpp.o"
  "CMakeFiles/mt_launcher.dir/options.cpp.o.d"
  "CMakeFiles/mt_launcher.dir/protocol.cpp.o"
  "CMakeFiles/mt_launcher.dir/protocol.cpp.o.d"
  "CMakeFiles/mt_launcher.dir/sim_backend.cpp.o"
  "CMakeFiles/mt_launcher.dir/sim_backend.cpp.o.d"
  "libmt_launcher.a"
  "libmt_launcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_launcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
