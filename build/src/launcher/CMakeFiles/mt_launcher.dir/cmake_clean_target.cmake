file(REMOVE_RECURSE
  "libmt_launcher.a"
)
