# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/description_test[1]_include.cmake")
include("/root/repo/build/tests/passes_test[1]_include.cmake")
include("/root/repo/build/tests/emit_test[1]_include.cmake")
include("/root/repo/build/tests/plugin_test[1]_include.cmake")
include("/root/repo/build/tests/asmparse_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/memsys_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/launcher_test[1]_include.cmake")
include("/root/repo/build/tests/native_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sim_extra_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
