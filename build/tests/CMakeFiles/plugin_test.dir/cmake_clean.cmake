file(REMOVE_RECURSE
  "CMakeFiles/plugin_test.dir/plugin_test.cpp.o"
  "CMakeFiles/plugin_test.dir/plugin_test.cpp.o.d"
  "plugin_test"
  "plugin_test.pdb"
  "plugin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plugin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
