file(REMOVE_RECURSE
  "CMakeFiles/launcher_test.dir/launcher_test.cpp.o"
  "CMakeFiles/launcher_test.dir/launcher_test.cpp.o.d"
  "launcher_test"
  "launcher_test.pdb"
  "launcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/launcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
