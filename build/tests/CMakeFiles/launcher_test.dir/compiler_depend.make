# Empty compiler generated dependencies file for launcher_test.
# This may be replaced when dependencies are built.
