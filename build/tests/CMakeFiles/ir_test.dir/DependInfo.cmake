
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/ir_test.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/launcher/CMakeFiles/mt_launcher.dir/DependInfo.cmake"
  "/root/repo/build/src/native/CMakeFiles/mt_native.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/mt_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/creator/CMakeFiles/mt_creator.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asmparse/CMakeFiles/mt_asmparse.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mt_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
