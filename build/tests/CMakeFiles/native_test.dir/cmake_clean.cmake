file(REMOVE_RECURSE
  "CMakeFiles/native_test.dir/native_test.cpp.o"
  "CMakeFiles/native_test.dir/native_test.cpp.o.d"
  "native_test"
  "native_test.pdb"
  "native_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
