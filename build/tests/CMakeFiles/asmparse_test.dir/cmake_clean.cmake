file(REMOVE_RECURSE
  "CMakeFiles/asmparse_test.dir/asmparse_test.cpp.o"
  "CMakeFiles/asmparse_test.dir/asmparse_test.cpp.o.d"
  "asmparse_test"
  "asmparse_test.pdb"
  "asmparse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asmparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
