# Empty dependencies file for mt_test_plugin.
# This may be replaced when dependencies are built.
