file(REMOVE_RECURSE
  "CMakeFiles/mt_test_plugin.dir/test_plugin.cpp.o"
  "CMakeFiles/mt_test_plugin.dir/test_plugin.cpp.o.d"
  "mt_test_plugin.pdb"
  "mt_test_plugin.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_test_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
