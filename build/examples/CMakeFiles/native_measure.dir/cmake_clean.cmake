file(REMOVE_RECURSE
  "CMakeFiles/native_measure.dir/native_measure.cpp.o"
  "CMakeFiles/native_measure.dir/native_measure.cpp.o.d"
  "native_measure"
  "native_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
