# Empty compiler generated dependencies file for native_measure.
# This may be replaced when dependencies are built.
