# Empty compiler generated dependencies file for double_unroll_plugin.
# This may be replaced when dependencies are built.
