file(REMOVE_RECURSE
  "CMakeFiles/double_unroll_plugin.dir/plugins/double_unroll_plugin.cpp.o"
  "CMakeFiles/double_unroll_plugin.dir/plugins/double_unroll_plugin.cpp.o.d"
  "double_unroll_plugin.pdb"
  "double_unroll_plugin.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/double_unroll_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
