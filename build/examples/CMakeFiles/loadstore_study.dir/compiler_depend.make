# Empty compiler generated dependencies file for loadstore_study.
# This may be replaced when dependencies are built.
