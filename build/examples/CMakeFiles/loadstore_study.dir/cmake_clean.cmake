file(REMOVE_RECURSE
  "CMakeFiles/loadstore_study.dir/loadstore_study.cpp.o"
  "CMakeFiles/loadstore_study.dir/loadstore_study.cpp.o.d"
  "loadstore_study"
  "loadstore_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadstore_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
