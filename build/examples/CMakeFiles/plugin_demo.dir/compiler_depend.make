# Empty compiler generated dependencies file for plugin_demo.
# This may be replaced when dependencies are built.
