file(REMOVE_RECURSE
  "CMakeFiles/plugin_demo.dir/plugin_demo.cpp.o"
  "CMakeFiles/plugin_demo.dir/plugin_demo.cpp.o.d"
  "plugin_demo"
  "plugin_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plugin_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
