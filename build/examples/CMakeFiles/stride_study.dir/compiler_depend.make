# Empty compiler generated dependencies file for stride_study.
# This may be replaced when dependencies are built.
