file(REMOVE_RECURSE
  "CMakeFiles/stride_study.dir/stride_study.cpp.o"
  "CMakeFiles/stride_study.dir/stride_study.cpp.o.d"
  "stride_study"
  "stride_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stride_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
