# Empty dependencies file for alignment_study.
# This may be replaced when dependencies are built.
