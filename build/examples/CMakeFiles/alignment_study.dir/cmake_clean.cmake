file(REMOVE_RECURSE
  "CMakeFiles/alignment_study.dir/alignment_study.cpp.o"
  "CMakeFiles/alignment_study.dir/alignment_study.cpp.o.d"
  "alignment_study"
  "alignment_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alignment_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
