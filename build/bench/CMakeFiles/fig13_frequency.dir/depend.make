# Empty dependencies file for fig13_frequency.
# This may be replaced when dependencies are built.
