file(REMOVE_RECURSE
  "CMakeFiles/fig13_frequency.dir/fig13_frequency.cpp.o"
  "CMakeFiles/fig13_frequency.dir/fig13_frequency.cpp.o.d"
  "fig13_frequency"
  "fig13_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
