file(REMOVE_RECURSE
  "CMakeFiles/fig05_matmul_unroll.dir/fig05_matmul_unroll.cpp.o"
  "CMakeFiles/fig05_matmul_unroll.dir/fig05_matmul_unroll.cpp.o.d"
  "fig05_matmul_unroll"
  "fig05_matmul_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_matmul_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
