file(REMOVE_RECURSE
  "CMakeFiles/fig17_openmp_128k.dir/fig17_openmp_128k.cpp.o"
  "CMakeFiles/fig17_openmp_128k.dir/fig17_openmp_128k.cpp.o.d"
  "fig17_openmp_128k"
  "fig17_openmp_128k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_openmp_128k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
