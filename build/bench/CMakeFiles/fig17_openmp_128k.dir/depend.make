# Empty dependencies file for fig17_openmp_128k.
# This may be replaced when dependencies are built.
