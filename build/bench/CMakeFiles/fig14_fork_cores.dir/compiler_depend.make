# Empty compiler generated dependencies file for fig14_fork_cores.
# This may be replaced when dependencies are built.
