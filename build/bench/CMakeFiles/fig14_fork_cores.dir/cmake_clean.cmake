file(REMOVE_RECURSE
  "CMakeFiles/fig14_fork_cores.dir/fig14_fork_cores.cpp.o"
  "CMakeFiles/fig14_fork_cores.dir/fig14_fork_cores.cpp.o.d"
  "fig14_fork_cores"
  "fig14_fork_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_fork_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
