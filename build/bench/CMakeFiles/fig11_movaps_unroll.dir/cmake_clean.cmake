file(REMOVE_RECURSE
  "CMakeFiles/fig11_movaps_unroll.dir/fig11_movaps_unroll.cpp.o"
  "CMakeFiles/fig11_movaps_unroll.dir/fig11_movaps_unroll.cpp.o.d"
  "fig11_movaps_unroll"
  "fig11_movaps_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_movaps_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
