# Empty compiler generated dependencies file for fig11_movaps_unroll.
# This may be replaced when dependencies are built.
