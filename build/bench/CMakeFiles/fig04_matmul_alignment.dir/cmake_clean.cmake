file(REMOVE_RECURSE
  "CMakeFiles/fig04_matmul_alignment.dir/fig04_matmul_alignment.cpp.o"
  "CMakeFiles/fig04_matmul_alignment.dir/fig04_matmul_alignment.cpp.o.d"
  "fig04_matmul_alignment"
  "fig04_matmul_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_matmul_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
