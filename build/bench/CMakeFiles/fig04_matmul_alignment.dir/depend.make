# Empty dependencies file for fig04_matmul_alignment.
# This may be replaced when dependencies are built.
