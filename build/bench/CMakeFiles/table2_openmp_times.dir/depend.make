# Empty dependencies file for table2_openmp_times.
# This may be replaced when dependencies are built.
