file(REMOVE_RECURSE
  "CMakeFiles/table2_openmp_times.dir/table2_openmp_times.cpp.o"
  "CMakeFiles/table2_openmp_times.dir/table2_openmp_times.cpp.o.d"
  "table2_openmp_times"
  "table2_openmp_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_openmp_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
