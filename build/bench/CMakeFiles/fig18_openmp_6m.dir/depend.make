# Empty dependencies file for fig18_openmp_6m.
# This may be replaced when dependencies are built.
