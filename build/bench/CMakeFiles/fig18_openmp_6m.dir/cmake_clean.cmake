file(REMOVE_RECURSE
  "CMakeFiles/fig18_openmp_6m.dir/fig18_openmp_6m.cpp.o"
  "CMakeFiles/fig18_openmp_6m.dir/fig18_openmp_6m.cpp.o.d"
  "fig18_openmp_6m"
  "fig18_openmp_6m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_openmp_6m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
