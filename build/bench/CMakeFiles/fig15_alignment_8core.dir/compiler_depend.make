# Empty compiler generated dependencies file for fig15_alignment_8core.
# This may be replaced when dependencies are built.
