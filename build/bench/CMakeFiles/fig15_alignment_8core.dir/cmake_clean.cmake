file(REMOVE_RECURSE
  "CMakeFiles/fig15_alignment_8core.dir/fig15_alignment_8core.cpp.o"
  "CMakeFiles/fig15_alignment_8core.dir/fig15_alignment_8core.cpp.o.d"
  "fig15_alignment_8core"
  "fig15_alignment_8core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_alignment_8core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
