file(REMOVE_RECURSE
  "CMakeFiles/fig03_matmul_size.dir/fig03_matmul_size.cpp.o"
  "CMakeFiles/fig03_matmul_size.dir/fig03_matmul_size.cpp.o.d"
  "fig03_matmul_size"
  "fig03_matmul_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_matmul_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
