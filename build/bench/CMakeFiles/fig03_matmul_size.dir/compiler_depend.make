# Empty compiler generated dependencies file for fig03_matmul_size.
# This may be replaced when dependencies are built.
