file(REMOVE_RECURSE
  "CMakeFiles/fig16_alignment_32core.dir/fig16_alignment_32core.cpp.o"
  "CMakeFiles/fig16_alignment_32core.dir/fig16_alignment_32core.cpp.o.d"
  "fig16_alignment_32core"
  "fig16_alignment_32core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_alignment_32core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
