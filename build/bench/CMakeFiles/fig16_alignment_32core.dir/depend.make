# Empty dependencies file for fig16_alignment_32core.
# This may be replaced when dependencies are built.
