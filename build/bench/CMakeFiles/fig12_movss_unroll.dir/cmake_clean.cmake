file(REMOVE_RECURSE
  "CMakeFiles/fig12_movss_unroll.dir/fig12_movss_unroll.cpp.o"
  "CMakeFiles/fig12_movss_unroll.dir/fig12_movss_unroll.cpp.o.d"
  "fig12_movss_unroll"
  "fig12_movss_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_movss_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
