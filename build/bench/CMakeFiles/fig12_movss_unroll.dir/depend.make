# Empty dependencies file for fig12_movss_unroll.
# This may be replaced when dependencies are built.
