#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "asmparse/asmparse.hpp"

namespace microtools::asmparse {

/// A decoded program plus the content id of the source it came from.
/// The id doubles as the program half of SimBackend's memoization keys and
/// of the campaign measurement-cache keys, so "same id" means "same decoded
/// kernel" everywhere.
struct CachedProgram {
  std::shared_ptr<const Program> program;
  std::uint64_t contentId = 0;
};

/// Process-wide, thread-safe cache of decoded programs, keyed by the FNV-1a
/// hash of (assembly text, function name) and verified against the full text
/// so hash collisions can never alias two kernels.
///
/// Campaign runners parse the same generated variant once per worker per
/// repetition without this; with it, parseAssembly runs once per distinct
/// kernel for the life of the process.
class ProgramCache {
 public:
  /// The shared instance used by the simulator backend.
  static ProgramCache& global();

  /// Returns the decoded program for `asmText` with `functionName` applied
  /// (when non-empty) as the entry point, parsing at most once per distinct
  /// (text, name) pair.
  CachedProgram get(const std::string& asmText,
                    const std::string& functionName);

  /// Number of distinct programs currently cached.
  std::size_t size() const;

  /// Drops every entry (outstanding shared_ptrs stay valid).
  void clear();

 private:
  struct Entry {
    std::string asmText;
    std::string functionName;
    std::shared_ptr<const Program> program;
  };

  // Generated kernels are small (a few KiB); the cap only guards pathological
  // campaigns. Reaching it drops the whole cache rather than tracking LRU.
  static constexpr std::size_t kMaxEntries = 4096;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
  std::size_t count_ = 0;
};

}  // namespace microtools::asmparse
