#include "asmparse/asmparse.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::asmparse {

namespace {
using strings::trim;
}

DecodedOperand DecodedOperand::makeReg(isa::PhysReg r) {
  DecodedOperand op;
  op.kind = Kind::Reg;
  op.reg = r;
  return op;
}

DecodedOperand DecodedOperand::makeMem(DecodedMem m) {
  DecodedOperand op;
  op.kind = Kind::Mem;
  op.mem = m;
  return op;
}

DecodedOperand DecodedOperand::makeImm(std::int64_t v) {
  DecodedOperand op;
  op.kind = Kind::Imm;
  op.imm = v;
  return op;
}

DecodedOperand DecodedOperand::makeLabel(std::string l) {
  DecodedOperand op;
  op.kind = Kind::Label;
  op.label = std::move(l);
  return op;
}

bool DecodedInsn::readsMemory() const {
  if (operands.size() < 2) return false;
  for (std::size_t i = 0; i + 1 < operands.size(); ++i) {
    if (operands[i].kind == DecodedOperand::Kind::Mem) return true;
  }
  return false;
}

bool DecodedInsn::writesMemory() const {
  if (desc->kind == isa::InstrKind::Compare) return false;
  return !operands.empty() &&
         operands.back().kind == DecodedOperand::Kind::Mem;
}

int DecodedInsn::accessBytes() const {
  if (desc->memBytes > 0) return desc->memBytes;
  // GPR instruction: width from the register operand or the size suffix.
  for (const DecodedOperand& op : operands) {
    if (op.kind == DecodedOperand::Kind::Reg &&
        op.reg.cls == isa::RegClass::Gpr) {
      return op.reg.widthBits / 8;
    }
  }
  if (!mnemonic.empty()) {
    switch (mnemonic.back()) {
      case 'b': return 1;
      case 'w': return 2;
      case 'l': return 4;
      case 'q': return 8;
      default: break;
    }
  }
  return 8;
}

std::size_t Program::labelTarget(const std::string& label) const {
  auto it = labels.find(label);
  if (it == labels.end()) {
    throw ParseError("unknown branch target label '" + label + "'");
  }
  return it->second;
}

namespace {

/// One comma-separated operand plus its 0-based offset in the operand list.
struct OperandPiece {
  std::string text;
  std::size_t offset = 0;
};

/// Splits an operand list on commas that are outside parentheses, keeping
/// the position of each piece so diagnostics can point at the operand.
std::vector<OperandPiece> splitOperands(std::string_view text) {
  std::vector<OperandPiece> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || (text[i] == ',' && depth == 0)) {
      auto piece = trim(text.substr(start, i - start));
      if (!piece.empty()) {
        out.push_back({std::string(piece),
                       start + static_cast<std::size_t>(
                                   piece.data() - text.substr(start).data())});
      }
      start = i + 1;
    } else if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      --depth;
    }
  }
  return out;
}

std::int64_t parseImmediateValue(std::string_view text, std::size_t line,
                                 std::size_t column) {
  auto v = strings::parseInt(text);
  if (!v) {
    throw ParseError("invalid immediate '" + std::string(text) + "'", line,
                     column);
  }
  return *v;
}

DecodedMem parseMemOperand(std::string_view text, std::size_t line,
                           std::size_t column) {
  DecodedMem mem;
  std::size_t open = text.find('(');
  if (open == std::string_view::npos) {
    // Absolute address.
    mem.disp = parseImmediateValue(text, line, column);
    return mem;
  }
  auto dispText = trim(text.substr(0, open));
  if (!dispText.empty()) {
    mem.disp = parseImmediateValue(dispText, line, column);
  }
  std::size_t close = text.rfind(')');
  if (close == std::string_view::npos || close < open) {
    throw ParseError("unbalanced parentheses in memory operand '" +
                         std::string(text) + "'",
                     line, column);
  }
  auto inner = text.substr(open + 1, close - open - 1);
  std::vector<std::string> parts = strings::split(inner, ',');
  if (parts.empty() || parts.size() > 3) {
    throw ParseError("malformed memory operand '" + std::string(text) + "'",
                     line, column);
  }
  auto baseText = trim(parts[0]);
  if (!baseText.empty()) {
    auto reg = isa::parseRegister(baseText);
    if (!reg) {
      throw ParseError("unknown base register '" + std::string(baseText) +
                           "'",
                       line, column);
    }
    mem.base = *reg;
  }
  if (parts.size() >= 2) {
    auto indexText = trim(parts[1]);
    if (!indexText.empty()) {
      auto reg = isa::parseRegister(indexText);
      if (!reg) {
        throw ParseError("unknown index register '" + std::string(indexText) +
                             "'",
                         line, column);
      }
      mem.index = *reg;
    }
  }
  if (parts.size() == 3) {
    auto scaleText = trim(parts[2]);
    auto scale = strings::parseInt(scaleText);
    if (!scale || (*scale != 1 && *scale != 2 && *scale != 4 && *scale != 8)) {
      throw ParseError("invalid scale '" + std::string(scaleText) + "'",
                       line, column);
    }
    mem.scale = static_cast<int>(*scale);
  }
  return mem;
}

DecodedOperand parseOperand(std::string_view text, bool branchContext,
                            std::size_t line, std::size_t column) {
  if (text.empty()) throw ParseError("empty operand", line, column);
  if (text.front() == '$') {
    return DecodedOperand::makeImm(
        parseImmediateValue(text.substr(1), line, column));
  }
  if (text.front() == '%') {
    auto reg = isa::parseRegister(text);
    if (!reg) {
      throw ParseError("unknown register '" + std::string(text) + "'", line,
                       column);
    }
    return DecodedOperand::makeReg(*reg);
  }
  if (branchContext) {
    // Branch target: strip the local-label leading dot.
    std::string label(text);
    if (!label.empty() && label.front() == '.') label.erase(0, 1);
    return DecodedOperand::makeLabel(std::move(label));
  }
  return DecodedOperand::makeMem(parseMemOperand(text, line, column));
}

}  // namespace

Program parseAssembly(std::string_view text) {
  Program program;
  std::vector<std::string> lines = strings::split(text, '\n');
  for (std::size_t lineNo = 1; lineNo <= lines.size(); ++lineNo) {
    std::string_view raw = lines[lineNo - 1];
    // Strip comments.
    if (auto hash = raw.find('#'); hash != std::string_view::npos) {
      raw = raw.substr(0, hash);
    }
    std::string_view lineText = trim(raw);
    if (lineText.empty()) continue;

    // Directives.
    if (lineText.front() == '.') {
      auto tokens = strings::splitWhitespace(lineText);
      if (tokens[0] == ".globl" || tokens[0] == ".global") {
        if (tokens.size() >= 2 && program.functionName.empty()) {
          program.functionName = tokens[1];
        }
      }
      // A local label like ".L6:" is not a directive.
      if (!strings::endsWith(lineText, ":")) continue;
    }

    // Labels (possibly several on one line are not supported; one per line).
    if (lineText.back() == ':') {
      std::string label(lineText.substr(0, lineText.size() - 1));
      if (!label.empty() && label.front() == '.') label.erase(0, 1);
      if (program.functionName.empty() && lineText.front() != '.') {
        program.functionName = label;
      }
      if (program.labels.count(label)) {
        std::size_t labelColumn = static_cast<std::size_t>(
                                      lineText.data() -
                                      lines[lineNo - 1].data()) +
                                  1;
        throw ParseError("duplicate label '" + label + "'", lineNo,
                         labelColumn);
      }
      program.labels[label] = program.instructions.size();
      continue;
    }

    // Instruction. `lineText` is a view into this line's buffer, so the
    // 1-based column of the mnemonic (and of each operand) falls out of
    // pointer arithmetic against the untrimmed line.
    std::size_t mnemonicColumn =
        static_cast<std::size_t>(lineText.data() - lines[lineNo - 1].data()) +
        1;
    auto firstSpace = lineText.find_first_of(" \t");
    std::string mnemonic(firstSpace == std::string_view::npos
                             ? lineText
                             : lineText.substr(0, firstSpace));
    const isa::InstrDesc* desc = isa::findInstruction(mnemonic);
    if (!desc) {
      throw ParseError("unknown instruction '" + mnemonic + "'", lineNo,
                       mnemonicColumn);
    }
    DecodedInsn insn;
    insn.desc = desc;
    insn.mnemonic = mnemonic;
    insn.line = lineNo;
    insn.column = mnemonicColumn;
    bool branchContext = isa::kindIsBranch(desc->kind);
    if (firstSpace != std::string_view::npos) {
      std::size_t operandsColumn = mnemonicColumn + firstSpace + 1;
      for (const OperandPiece& piece :
           splitOperands(lineText.substr(firstSpace + 1))) {
        insn.operands.push_back(parseOperand(piece.text, branchContext, lineNo,
                                             operandsColumn + piece.offset));
      }
    }
    program.instructions.push_back(std::move(insn));
  }
  if (program.instructions.empty()) {
    throw ParseError("assembly contains no instructions");
  }
  return program;
}

}  // namespace microtools::asmparse
