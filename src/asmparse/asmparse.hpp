#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "isa/instructions.hpp"
#include "isa/registers.hpp"

namespace microtools::asmparse {

/// Decoded memory operand: disp(base, index, scale).
struct DecodedMem {
  std::optional<isa::PhysReg> base;
  std::optional<isa::PhysReg> index;
  int scale = 1;
  std::int64_t disp = 0;

  bool operator==(const DecodedMem&) const = default;
};

/// One decoded operand of any kind.
struct DecodedOperand {
  enum class Kind { Reg, Mem, Imm, Label };

  Kind kind = Kind::Imm;
  isa::PhysReg reg;       // valid when kind == Reg
  DecodedMem mem;         // valid when kind == Mem
  std::int64_t imm = 0;   // valid when kind == Imm
  std::string label;      // valid when kind == Label

  bool operator==(const DecodedOperand&) const = default;

  static DecodedOperand makeReg(isa::PhysReg r);
  static DecodedOperand makeMem(DecodedMem m);
  static DecodedOperand makeImm(std::int64_t v);
  static DecodedOperand makeLabel(std::string l);
};

/// One decoded instruction with its static description.
struct DecodedInsn {
  const isa::InstrDesc* desc = nullptr;  // never null after parsing
  std::string mnemonic;                  // as written (with size suffix)
  std::vector<DecodedOperand> operands;  // AT&T order
  std::size_t line = 0;                  // 1-based source line
  std::size_t column = 0;                // 1-based column of the mnemonic

  /// Memory access classification (AT&T order: last operand is the
  /// destination).
  bool readsMemory() const;
  bool writesMemory() const;

  /// Bytes touched per memory access: the descriptor's memBytes, falling
  /// back to the register operand width for suffixable GPR instructions.
  int accessBytes() const;
};

/// A parsed assembly function: instruction list plus label table.
struct Program {
  std::string functionName;
  std::vector<DecodedInsn> instructions;
  /// Label name (without the leading '.') -> index of the instruction the
  /// label precedes (== instructions.size() for a trailing label).
  std::map<std::string, std::size_t> labels;

  /// Index for a label target; throws ParseError when unknown.
  std::size_t labelTarget(const std::string& label) const;
};

/// Parses an AT&T assembly translation unit of the subset MicroCreator
/// emits (and hand-written kernels in the same style). Directives are
/// skipped; the function name is taken from the .globl directive or the
/// first non-local label. Throws ParseError carrying the 1-based line and
/// column of the offending token on anything unrecognizable.
Program parseAssembly(std::string_view text);

}  // namespace microtools::asmparse
