#include "asmparse/program_cache.hpp"

#include "support/hash.hpp"

namespace microtools::asmparse {

ProgramCache& ProgramCache::global() {
  static ProgramCache cache;
  return cache;
}

CachedProgram ProgramCache::get(const std::string& asmText,
                                const std::string& functionName) {
  hash::Fnv1a h;
  h.str(asmText).str(functionName);
  std::uint64_t key = h.value();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buckets_.find(key);
    if (it != buckets_.end()) {
      for (const Entry& e : it->second) {
        if (e.asmText == asmText && e.functionName == functionName) {
          return {e.program, key};
        }
      }
    }
  }

  // Parse outside the lock; a racing duplicate parse is harmless and the
  // loser's entry simply joins the bucket.
  auto program = std::make_shared<Program>(parseAssembly(asmText));
  if (!functionName.empty()) program->functionName = functionName;
  std::shared_ptr<const Program> shared = std::move(program);

  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ >= kMaxEntries) {
    buckets_.clear();
    count_ = 0;
  }
  auto& bucket = buckets_[key];
  for (const Entry& e : bucket) {
    if (e.asmText == asmText && e.functionName == functionName) {
      return {e.program, key};  // another thread won the race
    }
  }
  bucket.push_back(Entry{asmText, functionName, shared});
  ++count_;
  return {shared, key};
}

std::size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_.clear();
  count_ = 0;
}

}  // namespace microtools::asmparse
