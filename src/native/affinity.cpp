#include "native/affinity.hpp"

#include <sched.h>
#include <unistd.h>

namespace microtools::native {

bool pinToCore(int core) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % CPU_SETSIZE, &set);
  return sched_setaffinity(0, sizeof set, &set) == 0;
}

int availableCores() {
  long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

}  // namespace microtools::native
