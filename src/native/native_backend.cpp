#include "native/native_backend.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "native/affinity.hpp"
#include "native/timing.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace microtools::native {

using launcher::ArraySpec;
using launcher::InvokeResult;
using launcher::KernelRequest;

namespace {

/// An allocation honoring an (alignment, offset) request.
struct AlignedBuffer {
  void* raw = nullptr;
  void* base = nullptr;

  AlignedBuffer() = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& o) noexcept : raw(o.raw), base(o.base) {
    o.raw = nullptr;
    o.base = nullptr;
  }
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    std::swap(raw, o.raw);
    std::swap(base, o.base);
    return *this;
  }
  ~AlignedBuffer() { std::free(raw); }

  static AlignedBuffer allocate(const ArraySpec& spec) {
    std::size_t alignment = 64;
    while (alignment < spec.alignment) alignment <<= 1;
    AlignedBuffer buf;
    std::size_t total = spec.bytes + spec.offset + launcher::kArraySlackBytes;
    if (posix_memalign(&buf.raw, alignment, total) != 0) {
      throw ExecutionError("cannot allocate kernel array");
    }
    std::memset(buf.raw, 0, total);
    buf.base = static_cast<char*>(buf.raw) + spec.offset;
    return buf;
  }
};

bool sameSpecs(const std::vector<ArraySpec>& a,
               const std::vector<ArraySpec>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].bytes != b[i].bytes || a[i].alignment != b[i].alignment ||
        a[i].offset != b[i].offset) {
      return false;
    }
  }
  return true;
}

int nativeScatterPin(int processIndex, int processes) {
  // Without a topology library, approximate scatter by spreading processes
  // evenly over the online CPUs (compact packs them consecutively).
  int cores = availableCores();
  if (processes <= 0) processes = 1;
  int stride = std::max(1, cores / processes);
  return (processIndex * stride) % cores;
}

}  // namespace

struct NativeBackend::NativeKernel final : public launcher::KernelHandle {
  explicit NativeKernel(CompiledKernel k) : kernel(std::move(k)) {}

  CompiledKernel kernel;
  std::vector<ArraySpec> cachedSpecs;
  std::vector<AlignedBuffer> buffers;
  std::vector<void*> pointers;

  void ensureBuffers(const KernelRequest& request) {
    if (sameSpecs(cachedSpecs, request.arrays)) return;
    buffers.clear();
    pointers.clear();
    for (const ArraySpec& spec : request.arrays) {
      buffers.push_back(AlignedBuffer::allocate(spec));
      pointers.push_back(buffers.back().base);
    }
    cachedSpecs = request.arrays;
  }

  int call(int n) {
    return kernel.call(n, pointers.data(),
                       static_cast<int>(pointers.size()));
  }
};

NativeBackend::NativeBackend() = default;

NativeBackend::NativeBackend(NativeBackendOptions options)
    : options_(std::move(options)) {}

NativeBackend::NativeKernel& NativeBackend::unwrap(
    launcher::KernelHandle& kernel) {
  return dynamic_cast<NativeKernel&>(kernel);
}

std::unique_ptr<launcher::KernelHandle> NativeBackend::load(
    const std::string& asmText, const std::string& functionName) {
  auto handle = std::make_unique<NativeKernel>(CompiledKernel(
      asmText, "asm", functionName, CompileOptions{options_.compileCacheDir}));
  handle->origin = this;
  return handle;
}

std::unique_ptr<launcher::KernelHandle> NativeBackend::loadCSource(
    const std::string& cText, const std::string& functionName) {
  auto handle = std::make_unique<NativeKernel>(CompiledKernel(
      cText, "c", functionName, CompileOptions{options_.compileCacheDir}));
  handle->origin = this;
  return handle;
}

std::unique_ptr<launcher::KernelHandle> NativeBackend::loadSharedObject(
    const std::string& path, const std::string& functionName) {
  auto handle = std::make_unique<NativeKernel>(
      CompiledKernel::fromSharedObject(path, functionName));
  handle->origin = this;
  return handle;
}

std::unique_ptr<launcher::KernelHandle> NativeBackend::loadSource(
    const std::string& kind, const std::string& text,
    const std::string& functionName) {
  if (kind == "asm") return load(text, functionName);
  if (kind == "c") return loadCSource(text, functionName);
  if (kind == "so") return loadSharedObject(text, functionName);
  throw ExecutionError("native backend cannot load '" + kind + "' kernels");
}

std::vector<std::unique_ptr<launcher::KernelHandle>> NativeBackend::loadBatch(
    const std::vector<launcher::SourceUnit>& units) {
  // Pre-built "so" units can't be batch-compiled; only asm/c batches where
  // every unit is compilable go through the single-invocation path.
  bool compilable = !units.empty();
  for (const launcher::SourceUnit& unit : units) {
    if (unit.kind != "asm" && unit.kind != "c") compilable = false;
  }
  if (compilable) {
    try {
      CompileBatch batch(CompileOptions{options_.compileCacheDir});
      auto kernels = batch.compile(units);
      std::vector<std::unique_ptr<launcher::KernelHandle>> handles;
      handles.reserve(kernels.size());
      bool allResolved = true;
      for (auto& kernel : kernels) {
        if (!kernel) {
          allResolved = false;
          break;
        }
        auto handle = std::make_unique<NativeKernel>(std::move(*kernel));
        handle->origin = this;
        handles.push_back(std::move(handle));
      }
      if (allResolved) return handles;
      // A unit's symbol didn't resolve — recompile individually below so the
      // bad unit gets its own diagnostic (null entry) without poisoning the
      // rest.
    } catch (const McError&) {
      // The batched invocation failed as a whole (one bad variant breaks the
      // single compiler run): isolate it by falling back to per-unit loads.
    }
  }
  return Backend::loadBatch(units);
}

std::vector<launcher::SourceUnit> NativeBackend::prepareBatch(
    std::vector<launcher::SourceUnit> units) {
  bool compilable = !units.empty();
  for (const launcher::SourceUnit& unit : units) {
    if (unit.kind != "asm" && unit.kind != "c") compilable = false;
  }
  if (!compilable) return units;

  CompileBatch batch(CompileOptions{options_.compileCacheDir});
  std::vector<std::optional<CompiledKernel>> kernels;
  bool batched = true;
  try {
    kernels = batch.compile(units);
  } catch (const McError&) {
    // Whole-batch compile failed; try each unit alone so only the broken
    // one stays unprepared (its loadSource in the measurement worker will
    // then produce the real diagnostic).
    batched = false;
    kernels.clear();
    for (const launcher::SourceUnit& unit : units) {
      try {
        kernels.emplace_back(batch.compileOne(unit));
      } catch (const McError&) {
        kernels.emplace_back(std::nullopt);
      }
    }
  }

  for (std::size_t i = 0; i < units.size(); ++i) {
    if (!kernels[i]) continue;
    std::string path = kernels[i]->sharedObjectPath();
    std::string fn = batched
                         ? CompileBatch::uniquifiedName(units[i].functionName, i)
                         : units[i].functionName;
    if (options_.compileCacheDir.empty()) {
      // No cache dir: the .so is a temporary owned by the SharedObject.
      // Retain it so the file outlives this call and the returned path
      // stays dlopen-able for the measurement workers.
      std::lock_guard<std::mutex> lock(retainedMutex_);
      retainedObjects_.push_back(kernels[i]->sharedObject());
    }
    units[i] = launcher::SourceUnit{"so", std::move(path), std::move(fn)};
  }
  return units;
}

perf::CounterGroup* NativeBackend::threadCounters() {
  if (!options_.perfCounters) return nullptr;
  std::thread::id self = std::this_thread::get_id();
  if (!counterGroup_ || counterThread_ != self) {
    // pid=0 binds the group to the calling thread; the backend may have been
    // constructed elsewhere, so (re)create on the thread that measures.
    counterGroup_ = std::make_unique<perf::CounterGroup>(
        perf::CounterGroup::defaultHardwareEvents());
    counterThread_ = self;
    if (!counterGroup_->available() && !counterUnavailableLogged_) {
      log::debug("perf counters unavailable, measuring rdtsc-only: " +
                 counterGroup_->unavailableReason());
      counterUnavailableLogged_ = true;
    }
  }
  return counterGroup_.get();
}

InvokeResult NativeBackend::invoke(launcher::KernelHandle& kernel,
                                   const KernelRequest& request) {
  NativeKernel& k = unwrap(kernel);
  k.ensureBuffers(request);
  if (!pinToCore(request.core)) {
    log::warn("sched_setaffinity failed; running unpinned");
  }
  perf::CounterGroup* counters = threadCounters();
  // The counter window wraps the rdtsc window (not the other way round) so
  // the tsc timing path is bit-identical with counters on or off.
  if (counters) counters->start();
  std::uint64_t t0 = readTsc();
  int iterations = k.call(request.n);
  std::uint64_t t1 = readTsc();
  InvokeResult out;
  if (counters) {
    perf::CounterSample sample = counters->stop();
    if (sample.valid) {
      const auto& events = counters->events();
      out.counters.valid = true;
      out.counters.cycles = sample.value(events, "cycles");
      out.counters.instructions = sample.value(events, "instructions");
      out.counters.l1dAccesses = sample.value(events, "l1d_accesses");
      out.counters.l1dMisses = sample.value(events, "l1d_misses");
      out.counters.llcAccesses = sample.value(events, "llc_accesses");
      out.counters.llcMisses = sample.value(events, "llc_misses");
      out.counters.stalledCycles = sample.value(events, "stalled_cycles");
    }
  }
  out.tscCycles = static_cast<double>(t1 - t0);
  out.iterations = static_cast<std::uint64_t>(iterations < 0 ? 0 : iterations);
  return out;
}

double NativeBackend::timerOverheadCycles() const {
  return tscOverheadCycles();
}

std::vector<InvokeResult> NativeBackend::invokeFork(
    launcher::KernelHandle& kernel, const KernelRequest& request,
    int processes, int calls, launcher::PinPolicy policy) {
  NativeKernel& k = unwrap(kernel);
  if (processes < 1) throw ExecutionError("fork mode needs processes >= 1");
  if (calls < 1) throw ExecutionError("fork mode needs calls >= 1");

  struct ChildResult {
    double cycles;
    std::uint64_t iterations;
  };

  // Barrier: children report readiness on their result pipe, then block on
  // the shared "go" pipe until the parent closes it (§4.6: "after
  // synchronization, it records the time taken").
  int goPipe[2];
  if (pipe(goPipe) != 0) throw ExecutionError("pipe failed");

  std::vector<std::array<int, 2>> resultPipes(
      static_cast<std::size_t>(processes));
  std::vector<pid_t> children;
  for (int p = 0; p < processes; ++p) {
    auto& rp = resultPipes[static_cast<std::size_t>(p)];
    if (pipe(rp.data()) != 0) throw ExecutionError("pipe failed");
    pid_t pid = ::fork();
    if (pid < 0) throw ExecutionError("fork failed");
    if (pid == 0) {
      // Child.
      close(goPipe[1]);
      close(rp[0]);
      int core = policy == launcher::PinPolicy::Compact
                     ? p % availableCores()
                     : nativeScatterPin(p, processes);
      pinToCore(core);
      // Child-private arrays (first touch on this core).
      std::vector<AlignedBuffer> buffers;
      std::vector<void*> pointers;
      for (const ArraySpec& spec : request.arrays) {
        buffers.push_back(AlignedBuffer::allocate(spec));
        pointers.push_back(buffers.back().base);
      }
      auto call = [&] {
        return k.kernel.call(request.n, pointers.data(),
                             static_cast<int>(pointers.size()));
      };
      call();  // warm-up
      char ready = 'r';
      if (write(rp[1], &ready, 1) != 1) _exit(2);
      char go;
      (void)!read(goPipe[0], &go, 1);  // blocks until parent closes
      ChildResult result{0.0, 0};
      std::uint64_t t0 = readTsc();
      for (int c = 0; c < calls; ++c) {
        int iters = call();
        result.iterations += static_cast<std::uint64_t>(iters);
      }
      std::uint64_t t1 = readTsc();
      result.cycles = static_cast<double>(t1 - t0);
      if (write(rp[1], &result, sizeof result) != sizeof result) _exit(3);
      _exit(0);
    }
    children.push_back(pid);
    close(rp[1]);
  }
  close(goPipe[0]);

  // Wait for every child to report readiness, then release the barrier.
  for (auto& rp : resultPipes) {
    char ready;
    if (read(rp[0], &ready, 1) != 1) {
      throw ExecutionError("forked child failed before the barrier");
    }
  }
  close(goPipe[1]);

  std::vector<InvokeResult> results;
  for (std::size_t p = 0; p < resultPipes.size(); ++p) {
    ChildResult r{};
    if (read(resultPipes[p][0], &r, sizeof r) != sizeof r) {
      throw ExecutionError("forked child did not report a result");
    }
    close(resultPipes[p][0]);
    results.push_back(InvokeResult{r.cycles, r.iterations});
  }
  for (pid_t pid : children) {
    int status = 0;
    waitpid(pid, &status, 0);
  }
  return results;
}

InvokeResult NativeBackend::invokeOpenMp(launcher::KernelHandle& kernel,
                                         const KernelRequest& request,
                                         int threads, int repetitions) {
  NativeKernel& k = unwrap(kernel);
  k.ensureBuffers(request);
  if (threads < 1) throw ExecutionError("OpenMP mode needs threads >= 1");
  if (repetitions < 1) {
    throw ExecutionError("OpenMP mode needs repetitions >= 1");
  }

  std::uint64_t totalIterations = 0;
  std::uint64_t t0 = readTsc();
  for (int rep = 0; rep < repetitions; ++rep) {
    std::uint64_t regionIterations = 0;
#ifdef _OPENMP
#pragma omp parallel num_threads(threads) reduction(+ : regionIterations)
    {
      int tid = omp_get_thread_num();
      int nThreads = omp_get_num_threads();
#else
    for (int tid = 0; tid < threads; ++tid) {
      int nThreads = threads;
#endif
      int base = request.n / nThreads;
      int extra = request.n % nThreads;
      int chunk = base + (tid < extra ? 1 : 0);
      long startIter = static_cast<long>(base) * tid + std::min(tid, extra);
      std::vector<void*> shifted = k.pointers;
      for (void*& ptr : shifted) {
        ptr = static_cast<char*>(ptr) +
              static_cast<std::uint64_t>(startIter) * request.chunkStrideBytes;
      }
      int iters = k.kernel.call(chunk, shifted.data(),
                                static_cast<int>(shifted.size()));
      regionIterations += static_cast<std::uint64_t>(iters);
    }
    totalIterations += regionIterations;
  }
  std::uint64_t t1 = readTsc();
  return InvokeResult{static_cast<double>(t1 - t0), totalIterations};
}

}  // namespace microtools::native
