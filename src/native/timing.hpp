#pragma once

#include <cstdint>

namespace microtools::native {

/// Serialized rdtsc read (lfence-fenced on x86-64; a clock_gettime fallback
/// scaled to ~cycles elsewhere). This is the default evaluation library the
/// paper mentions in §4.2 ("the default rdtsc register").
std::uint64_t readTsc();

/// Measured rdtsc read-to-read overhead in cycles (median of many
/// back-to-back pairs; cached after the first call).
double tscOverheadCycles();

/// True when the build target has a real rdtsc.
bool hasHardwareTsc();

}  // namespace microtools::native
