#pragma once

#include <memory>
#include <mutex>
#include <thread>

#include "launcher/backend.hpp"
#include "native/compile.hpp"
#include "native/perf_counters.hpp"

namespace microtools::native {

/// Construction knobs for NativeBackend.
struct NativeBackendOptions {
  /// Passed through to every compilation (see CompileOptions::cacheDir):
  /// content-addressed .so cache directory; empty = no persistent cache.
  std::string compileCacheDir;

  /// Open a perf::CounterGroup around every invoke() to derive IPC and
  /// cache-miss metrics. When the group cannot be opened (no perf support,
  /// perf_event_paranoid, VM without a PMU) measurement silently degrades
  /// to rdtsc-only and InvokeResult::counters stays invalid.
  bool perfCounters = true;
};

/// Hardware-backed execution: the faithful MicroLauncher path. Kernels are
/// compiled to shared objects at run time, pinned with sched_setaffinity and
/// timed with a serialized rdtsc; fork mode synchronizes child processes
/// through a pipe barrier before any child starts timing (§4.6); OpenMP mode
/// splits the trip count across an `omp parallel` region.
///
/// Absolute numbers reflect the host this runs on, not the paper's 2010-era
/// Nehalems — use the sim backend to regenerate the paper's figures.
class NativeBackend final : public launcher::Backend {
 public:
  NativeBackend();
  explicit NativeBackend(NativeBackendOptions options);

  std::string name() const override { return "native"; }

  std::unique_ptr<launcher::KernelHandle> load(
      const std::string& asmText, const std::string& functionName) override;
  using Backend::load;

  /// Loads a kernel from C source instead of assembly.
  std::unique_ptr<launcher::KernelHandle> loadCSource(
      const std::string& cText, const std::string& functionName);

  /// Loads a pre-built shared object.
  std::unique_ptr<launcher::KernelHandle> loadSharedObject(
      const std::string& path, const std::string& functionName);

  /// Accepts "asm", "c" and "so" (for "so" the text is the .so path).
  std::unique_ptr<launcher::KernelHandle> loadSource(
      const std::string& kind, const std::string& text,
      const std::string& functionName) override;

  /// Batch compilation: all units in ONE compiler invocation / one shared
  /// object (see CompileBatch). Falls back to per-unit compilation when the
  /// batched invocation fails, so one broken variant cannot take down its
  /// batch mates; a unit that still fails comes back as a null entry.
  std::vector<std::unique_ptr<launcher::KernelHandle>> loadBatch(
      const std::vector<launcher::SourceUnit>& units) override;

  /// Batch-compiles asm/c units and rewrites them as "so" units pointing at
  /// the compiled artifact, so the campaign's pinned measurement workers pay
  /// only a dlopen. Thread-safe with respect to invoke()/loadSource(). With
  /// no compile cache dir, this backend retains the temporary shared objects
  /// until it is destroyed so the returned paths stay loadable.
  std::vector<launcher::SourceUnit> prepareBatch(
      std::vector<launcher::SourceUnit> units) override;

  launcher::InvokeResult invoke(launcher::KernelHandle& kernel,
                                const launcher::KernelRequest& request) override;

  double timerOverheadCycles() const override;

  std::vector<launcher::InvokeResult> invokeFork(
      launcher::KernelHandle& kernel, const launcher::KernelRequest& request,
      int processes, int calls, launcher::PinPolicy policy) override;

  launcher::InvokeResult invokeOpenMp(launcher::KernelHandle& kernel,
                                      const launcher::KernelRequest& request,
                                      int threads, int repetitions) override;

 private:
  struct NativeKernel;
  static NativeKernel& unwrap(launcher::KernelHandle& kernel);

  /// The counter group for the CURRENT thread. perf_event_open with pid=0
  /// binds to the calling thread, but this backend is typically constructed
  /// on the campaign's main thread and invoked on a pinned worker — so the
  /// group is created lazily inside invoke() and recreated whenever the
  /// invoking thread changes. Returns nullptr when counters are disabled.
  perf::CounterGroup* threadCounters();

  NativeBackendOptions options_;

  std::unique_ptr<perf::CounterGroup> counterGroup_;
  std::thread::id counterThread_;
  bool counterUnavailableLogged_ = false;

  /// Shared objects kept alive for prepareBatch()'s "so" paths when there is
  /// no persistent cache to hold them (see prepareBatch). Guarded: the
  /// campaign calls prepareBatch from several compile workers at once.
  std::mutex retainedMutex_;
  std::vector<std::shared_ptr<SharedObject>> retainedObjects_;
};

}  // namespace microtools::native
