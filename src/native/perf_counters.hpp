#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace microtools::perf {

/// One event a CounterGroup programs: a perf_event_open (type, config) pair
/// plus a stable name the derived metrics are looked up by. Optional events
/// that the kernel refuses (unsupported on this PMU) or that do not fit the
/// hardware's simultaneous-counter budget are dropped; a required event that
/// cannot be opened makes the whole group unavailable.
struct EventSpec {
  std::uint32_t type = 0;    ///< perf_event_attr.type (PERF_TYPE_*)
  std::uint64_t config = 0;  ///< perf_event_attr.config (PERF_COUNT_*)
  std::string name;          ///< stable lookup key ("cycles", "l1d_misses"...)
  bool required = false;     ///< group is unavailable without this event
};

/// One read of the whole group: per-event counts in events() order, plus the
/// scheduling times the kernel reports. When the group was multiplexed
/// (running < enabled) the values have already been scaled by
/// enabled/running, the standard perf extrapolation.
struct CounterSample {
  bool valid = false;
  double timeEnabledNs = 0.0;
  double timeRunningNs = 0.0;
  std::vector<double> values;  ///< parallel to CounterGroup::events()

  /// Value of the event called `name` in `events`, or NaN when the event is
  /// not part of the group or the sample is invalid.
  double value(const std::vector<EventSpec>& events,
               const std::string& name) const;
};

/// nanoBench-style hardware counter group over perf_event_open.
///
/// All events are opened into ONE group (PERF_FORMAT_GROUP) on the calling
/// thread, so every start()/stop() window reads all counters over exactly
/// the same instructions. Construction degrades instead of failing:
///  - a kernel without perf (or perf_event_paranoid forbidding it, or a VM
///    without a PMU) yields available() == false with the reason recorded;
///  - an optional event the PMU lacks is silently dropped;
///  - a group too wide for the PMU's simultaneous-counter budget is
///    narrowed from the tail (least-important optional events first) until
///    it schedules — verified empirically, not assumed from CPU model.
/// After the group is settled, the read overhead of an empty start()/stop()
/// window is calibrated (median of many empty windows, per event) and
/// subtracted from every subsequent sample, clamped at zero.
///
/// A CounterGroup counts the thread that constructed it; start()/stop()
/// must be called on that same thread.
class CounterGroup {
 public:
  /// Opens `events` (first entry is the group leader) on the calling thread.
  explicit CounterGroup(std::vector<EventSpec> events);
  ~CounterGroup();

  CounterGroup(const CounterGroup&) = delete;
  CounterGroup& operator=(const CounterGroup&) = delete;

  /// The default hardware group for kernel measurement: cycles (leader),
  /// instructions, L1D read accesses/misses, LLC accesses/misses, and
  /// backend-stalled cycles — the narrowing order drops stalls and the
  /// access counts before the miss counts.
  static std::vector<EventSpec> defaultHardwareEvents();

  bool available() const { return available_; }
  /// Human-readable reason when available() is false.
  const std::string& unavailableReason() const { return reason_; }

  /// Events that actually survived opening + scheduling, in value order.
  const std::vector<EventSpec>& events() const { return events_; }

  /// Per-event calibrated empty-window overhead (events() order).
  const std::vector<double>& overhead() const { return overhead_; }

  /// Resets and enables the group. No-op when unavailable.
  void start();

  /// Disables the group and reads it; the calibrated overhead is already
  /// subtracted. Returns an invalid sample when unavailable or when the
  /// group could not be scheduled during the window.
  CounterSample stop();

 private:
  CounterSample readRaw() const;
  bool probeSchedulable();
  void calibrateOverhead();
  void closeAll();

  std::vector<EventSpec> events_;
  std::vector<int> fds_;            ///< parallel to events_; fds_[0] = leader
  std::vector<std::uint64_t> ids_;  ///< kernel ids mapping read values back
  std::vector<double> overhead_;
  bool available_ = false;
  std::string reason_;
};

}  // namespace microtools::perf
