#pragma once

namespace microtools::native {

/// Pins the calling thread to `core` (sched_setaffinity). Returns false when
/// the kernel refuses (e.g. restricted cpusets in containers) — callers
/// proceed unpinned with a warning rather than failing, because timing
/// without pinning is degraded, not wrong.
bool pinToCore(int core);

/// Number of CPUs available to this process.
int availableCores();

}  // namespace microtools::native
