#include "native/perf_counters.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace microtools::perf {

double CounterSample::value(const std::vector<EventSpec>& events,
                            const std::string& name) const {
  if (!valid) return std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i < events.size() && i < values.size(); ++i) {
    if (events[i].name == name) return values[i];
  }
  return std::numeric_limits<double>::quiet_NaN();
}

#if defined(__linux__)

namespace {

int perfEventOpen(const EventSpec& spec, int groupFd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = spec.type;
  attr.size = sizeof attr;
  attr.config = spec.config;
  attr.disabled = groupFd == -1 ? 1 : 0;  // the leader gates the group
  attr.exclude_kernel = 1;                // user-space only: works at
  attr.exclude_hv = 1;                    // perf_event_paranoid <= 2
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid = 0, cpu = -1: count the calling thread wherever it runs — the
  // campaign's measurement workers each own their backend and thread.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, groupFd, 0));
}

}  // namespace

std::vector<EventSpec> CounterGroup::defaultHardwareEvents() {
  auto hw = [](std::uint64_t config, const char* name, bool required) {
    return EventSpec{PERF_TYPE_HARDWARE, config, name, required};
  };
  auto cache = [](std::uint64_t id, std::uint64_t op, std::uint64_t result,
                  const char* name) {
    return EventSpec{PERF_TYPE_HW_CACHE, id | (op << 8) | (result << 16),
                     name, false};
  };
  // Order is the narrowing order: the tail is dropped first when the PMU
  // cannot schedule the full group, so the core ratios (ipc, miss counts)
  // survive the longest. cycles and instructions live on fixed counters on
  // x86 and cost no programmable slot.
  return {
      hw(PERF_COUNT_HW_CPU_CYCLES, "cycles", true),
      hw(PERF_COUNT_HW_INSTRUCTIONS, "instructions", false),
      cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
            PERF_COUNT_HW_CACHE_RESULT_MISS, "l1d_misses"),
      hw(PERF_COUNT_HW_CACHE_MISSES, "llc_misses", false),
      cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
            PERF_COUNT_HW_CACHE_RESULT_ACCESS, "l1d_accesses"),
      hw(PERF_COUNT_HW_CACHE_REFERENCES, "llc_accesses", false),
      hw(PERF_COUNT_HW_STALLED_CYCLES_BACKEND, "stalled_cycles", false),
  };
}

CounterGroup::CounterGroup(std::vector<EventSpec> events) {
  if (events.empty()) {
    reason_ = "no events requested";
    return;
  }

  // Open the leader first; its errno is the canonical availability verdict.
  int leader = perfEventOpen(events.front(), -1);
  if (leader < 0) {
    int err = errno;
    reason_ = std::string("perf_event_open failed for ") +
              events.front().name + ": " + std::strerror(err);
    if (err == EACCES || err == EPERM) {
      reason_ += " (check /proc/sys/kernel/perf_event_paranoid)";
    } else if (err == ENOENT || err == ENODEV || err == EOPNOTSUPP) {
      reason_ += " (no PMU exposed — virtualized host?)";
    }
    return;
  }
  events_.push_back(events.front());
  fds_.push_back(leader);

  // Optional siblings: an event the kernel refuses outright is dropped.
  for (std::size_t i = 1; i < events.size(); ++i) {
    int fd = perfEventOpen(events[i], leader);
    if (fd < 0) {
      if (events[i].required) {
        reason_ = std::string("perf_event_open failed for required event ") +
                  events[i].name + ": " + std::strerror(errno);
        closeAll();
        return;
      }
      continue;
    }
    events_.push_back(events[i]);
    fds_.push_back(fd);
  }

  // The kernel accepts groups it can never schedule (more events than
  // simultaneous counters). Verify empirically and narrow from the tail
  // until the group actually runs.
  while (!probeSchedulable()) {
    // Find the last optional event; without one the group is hopeless.
    std::size_t drop = events_.size();
    while (drop > 0 && events_[drop - 1].required) --drop;
    if (drop == 0) {
      reason_ = "counter group cannot be scheduled on this PMU";
      closeAll();
      return;
    }
    close(fds_[drop - 1]);
    fds_.erase(fds_.begin() + static_cast<std::ptrdiff_t>(drop - 1));
    events_.erase(events_.begin() + static_cast<std::ptrdiff_t>(drop - 1));
  }

  // Map each fd's kernel id so reads are decoded by identity, not by
  // assumed ordering.
  ids_.resize(fds_.size(), 0);
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    std::uint64_t id = 0;
    if (ioctl(fds_[i], PERF_EVENT_IOC_ID, &id) != 0) {
      reason_ = "PERF_EVENT_IOC_ID failed";
      closeAll();
      return;
    }
    ids_[i] = id;
  }

  available_ = true;
  calibrateOverhead();
}

CounterGroup::~CounterGroup() { closeAll(); }

void CounterGroup::closeAll() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
  fds_.clear();
  ids_.clear();
  events_.clear();
  available_ = false;
}

bool CounterGroup::probeSchedulable() {
  if (fds_.empty()) return false;
  ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  // Burn a little user-space time so the scheduler has something to count.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 50000; ++i) sink += static_cast<std::uint64_t>(i);
  ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);

  // read_format: nr, time_enabled, time_running, then {value, id} pairs.
  std::vector<std::uint64_t> buf(3 + 2 * fds_.size());
  ssize_t n = read(fds_[0], buf.data(),
                   buf.size() * sizeof(std::uint64_t));
  if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return false;
  return buf[2] > 0;  // time_running: 0 means the group never got on core
}

CounterSample CounterGroup::readRaw() const {
  CounterSample sample;
  if (!available_ && ids_.empty()) return sample;
  std::vector<std::uint64_t> buf(3 + 2 * fds_.size());
  ssize_t n = read(fds_[0], buf.data(),
                   buf.size() * sizeof(std::uint64_t));
  if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return sample;
  std::uint64_t nr = buf[0];
  std::uint64_t enabled = buf[1];
  std::uint64_t running = buf[2];
  if (running == 0) return sample;  // never scheduled during the window

  // Multiplexing extrapolation: with PERF_FORMAT_GROUP all members run (or
  // not) together, so one enabled/running ratio scales every value.
  double scale = running < enabled
                     ? static_cast<double>(enabled) /
                           static_cast<double>(running)
                     : 1.0;
  sample.values.assign(events_.size(),
                       std::numeric_limits<double>::quiet_NaN());
  for (std::uint64_t e = 0; e < nr && 3 + 2 * e + 1 < buf.size(); ++e) {
    std::uint64_t value = buf[3 + 2 * e];
    std::uint64_t id = buf[3 + 2 * e + 1];
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      if (ids_[i] == id) {
        sample.values[i] = static_cast<double>(value) * scale;
        break;
      }
    }
  }
  sample.timeEnabledNs = static_cast<double>(enabled);
  sample.timeRunningNs = static_cast<double>(running);
  sample.valid = true;
  return sample;
}

void CounterGroup::calibrateOverhead() {
  // nanoBench discipline: the counter values of an EMPTY start()/stop()
  // window are pure measurement overhead (the enable/disable ioctls and the
  // group read run with counters live for part of the window). Median over
  // many empty windows, per event, subtracted from every real sample.
  constexpr int kSamples = 65;
  std::vector<std::vector<double>> perEvent(events_.size());
  for (int s = 0; s < kSamples; ++s) {
    ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    CounterSample sample = readRaw();
    if (!sample.valid) continue;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (std::isfinite(sample.values[i])) {
        perEvent[i].push_back(sample.values[i]);
      }
    }
  }
  overhead_.assign(events_.size(), 0.0);
  for (std::size_t i = 0; i < perEvent.size(); ++i) {
    if (perEvent[i].empty()) continue;
    auto mid = perEvent[i].begin() +
               static_cast<std::ptrdiff_t>(perEvent[i].size() / 2);
    std::nth_element(perEvent[i].begin(), mid, perEvent[i].end());
    overhead_[i] = *mid;
  }
}

void CounterGroup::start() {
  if (!available_) return;
  ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

CounterSample CounterGroup::stop() {
  if (!available_) return CounterSample{};
  ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  CounterSample sample = readRaw();
  if (!sample.valid) return sample;
  for (std::size_t i = 0; i < sample.values.size(); ++i) {
    if (i < overhead_.size() && std::isfinite(sample.values[i])) {
      sample.values[i] = std::max(0.0, sample.values[i] - overhead_[i]);
    }
  }
  return sample;
}

#else  // !__linux__

std::vector<EventSpec> CounterGroup::defaultHardwareEvents() { return {}; }

CounterGroup::CounterGroup(std::vector<EventSpec>) {
  reason_ = "perf_event_open is Linux-only";
}

CounterGroup::~CounterGroup() = default;
void CounterGroup::closeAll() {}
bool CounterGroup::probeSchedulable() { return false; }
CounterSample CounterGroup::readRaw() const { return {}; }
void CounterGroup::calibrateOverhead() {}
void CounterGroup::start() {}
CounterSample CounterGroup::stop() { return {}; }

#endif

}  // namespace microtools::perf
