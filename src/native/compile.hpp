#pragma once

#include <string>

namespace microtools::native {

/// Kernel function pointer type: int f(int n, void* a0, ..., void* a4)
/// (§4.4's prototype, up to five arrays). Callers use callKernel() to invoke
/// with the right arity.
using KernelFn = int (*)(...);

/// A kernel compiled to a shared object and loaded with dlopen — exactly
/// MicroLauncher's run-time path (§4.1: "the launcher compiles the kernel
/// code, if necessary, into a dynamic library loaded at run-time").
class CompiledKernel {
 public:
  /// Compiles `sourceText` (assembly when `language` == "asm", C when "c")
  /// with the system compiler into a temporary shared object, loads it and
  /// resolves `functionName`. Throws ExecutionError with the compiler
  /// diagnostics on failure.
  CompiledKernel(const std::string& sourceText, const std::string& language,
                 const std::string& functionName);

  /// Loads an existing shared object directly.
  static CompiledKernel fromSharedObject(const std::string& path,
                                         const std::string& functionName);

  ~CompiledKernel();
  CompiledKernel(CompiledKernel&& other) noexcept;
  CompiledKernel& operator=(CompiledKernel&&) = delete;
  CompiledKernel(const CompiledKernel&) = delete;
  CompiledKernel& operator=(const CompiledKernel&) = delete;

  /// Invokes the kernel with `arrayCount` pointers from `arrays`.
  int call(int n, void* const* arrays, int arrayCount) const;

  const std::string& sharedObjectPath() const { return soPath_; }

 private:
  CompiledKernel() = default;
  void resolve(const std::string& functionName);

  void* handle_ = nullptr;
  void* fn_ = nullptr;
  std::string soPath_;
  bool ownsFile_ = false;
};

}  // namespace microtools::native
