#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "launcher/backend.hpp"

namespace microtools::native {

/// Kernel function pointer type: int f(int n, void* a0, ..., void* a4)
/// (§4.4's prototype, up to five arrays). Callers use callKernel() to invoke
/// with the right arity.
using KernelFn = int (*)(...);

// ---------------------------------------------------------------------------
// Process runner (posix_spawn, no shell)
// ---------------------------------------------------------------------------

/// Outcome of one spawned process.
struct SpawnResult {
  bool exited = false;   ///< WIFEXITED: the process ran to an exit()
  int exitCode = -1;     ///< WEXITSTATUS when exited
  int termSignal = 0;    ///< WTERMSIG when killed by a signal
  std::string output;    ///< captured stdout + stderr, interleaved

  bool ok() const { return exited && exitCode == 0; }

  /// "exited with status 1" / "killed by signal 11 (Segmentation fault)".
  std::string describe() const;
};

/// Runs `argv` directly via posix_spawn — no shell is involved, so a $CC or
/// $TMPDIR value containing spaces or shell metacharacters is passed through
/// verbatim instead of being re-tokenized. stdout and stderr are captured
/// into one stream. Throws ExecutionError only when the process cannot be
/// started at all; a started process that fails is reported in the result.
SpawnResult runProcess(const std::vector<std::string>& argv);

/// Number of processes spawned through runProcess() since program start.
/// The compile cache's "a warm rerun performs zero compiler invocations"
/// guarantee is asserted by differencing this counter around a rerun.
std::uint64_t spawnCount();

/// The compiler command: $CC, or "cc" when unset. Used verbatim as argv[0]
/// (a path containing spaces is a valid executable name, not a word list).
std::string compilerCommand();

/// Resolved identity of the compiler (its name plus the first line of
/// `$CC --version`) — part of every compile-cache key, because a compiler
/// upgrade must invalidate cached shared objects. Memoized in-process; when
/// `cacheDir` is non-empty the identity is also persisted there keyed by the
/// compiler binary's (path, size, mtime), so a warm rerun in a fresh process
/// resolves it with a stat instead of spawning `--version`.
std::string compilerIdentity(const std::string& cacheDir = "");

/// Drops the in-process compiler-identity memo. Tests use this to simulate
/// a fresh process and prove the persisted identity record avoids the
/// `--version` probe on warm reruns.
void clearCompilerIdentityMemo();

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Knobs shared by CompiledKernel and CompileBatch.
struct CompileOptions {
  /// Content-addressed cache of compiled shared objects: `<key>.so` files
  /// keyed by FNV-1a over source text + language + resolved compiler
  /// identity + flags (see DESIGN.md "Compile cache key"). Empty = compile
  /// every time. A missing or corrupt entry is recompiled, never an error.
  std::string cacheDir;
};

/// A dlopen'd shared object, shared by every kernel that was compiled into
/// it (batch compilation places many kernels in one .so). dlclose and the
/// optional unlink happen when the last referencing kernel is destroyed.
class SharedObject {
 public:
  /// dlopens `path` (RTLD_NOW | RTLD_LOCAL). `ownsFile` = unlink the file
  /// when this object is destroyed (temporary, non-cached artifacts).
  /// Throws ExecutionError when the object cannot be loaded.
  SharedObject(std::string path, bool ownsFile);
  ~SharedObject();

  SharedObject(const SharedObject&) = delete;
  SharedObject& operator=(const SharedObject&) = delete;

  /// Resolves a symbol; throws ExecutionError when it is absent.
  void* symbol(const std::string& name) const;

  const std::string& path() const { return path_; }

 private:
  void* handle_ = nullptr;
  std::string path_;
  bool ownsFile_ = false;
};

/// A kernel compiled to a shared object and loaded with dlopen — exactly
/// MicroLauncher's run-time path (§4.1: "the launcher compiles the kernel
/// code, if necessary, into a dynamic library loaded at run-time").
class CompiledKernel {
 public:
  /// Compiles `sourceText` (assembly when `language` == "asm", C when "c")
  /// with the system compiler into a shared object (served from
  /// `options.cacheDir` when the same source was compiled before), loads it
  /// and resolves `functionName`. Throws ExecutionError with the compiler
  /// diagnostics on failure; every temporary file is removed on every exit
  /// path, thrown or not.
  CompiledKernel(const std::string& sourceText, const std::string& language,
                 const std::string& functionName,
                 const CompileOptions& options = {});

  /// Loads an existing shared object directly.
  static CompiledKernel fromSharedObject(const std::string& path,
                                         const std::string& functionName);

  ~CompiledKernel() = default;
  CompiledKernel(CompiledKernel&& other) noexcept;
  CompiledKernel& operator=(CompiledKernel&& other) noexcept;
  CompiledKernel(const CompiledKernel&) = delete;
  CompiledKernel& operator=(const CompiledKernel&) = delete;

  /// Invokes the kernel with `arrayCount` pointers from `arrays`.
  int call(int n, void* const* arrays, int arrayCount) const;

  const std::string& sharedObjectPath() const;

  /// The shared object this kernel lives in. Batch consumers retain it to
  /// keep a temporary .so on disk for later dlopen()s of the same path.
  const std::shared_ptr<SharedObject>& sharedObject() const { return so_; }

 private:
  friend class CompileBatch;
  CompiledKernel(std::shared_ptr<SharedObject> so, void* fn);

  std::shared_ptr<SharedObject> so_;
  void* fn_ = nullptr;
};

/// Batch compilation: K kernels, ONE compiler invocation, one shared object,
/// one dlopen — amortizing fork/exec and compiler startup across the batch.
/// Each unit keeps its own translation unit inside the single invocation
/// (so file-local assembler labels like `.L6` can never collide across
/// variants) while the global entry symbols are uniquified by rewriting
/// every identifier occurrence of the unit's functionName.
class CompileBatch {
 public:
  explicit CompileBatch(CompileOptions options = {});

  /// Compiles every unit (kind "asm" or "c") with at most one compiler
  /// invocation — zero when `options.cacheDir` already holds the batch.
  /// All returned kernels share one dlopen'd shared object. Throws
  /// ExecutionError when the batched invocation itself fails (callers fall
  /// back to per-unit compilation to isolate the offending variant); a unit
  /// whose uniquified symbol cannot be resolved comes back as nullopt.
  std::vector<std::optional<CompiledKernel>> compile(
      const std::vector<launcher::SourceUnit>& units);

  /// Cache-aware single compilation (no symbol rename).
  CompiledKernel compileOne(const launcher::SourceUnit& unit);

  /// The entry symbol unit `index` of a batch is renamed to.
  static std::string uniquifiedName(const std::string& functionName,
                                    std::size_t index);

  /// Replaces every identifier-boundary occurrence of `from` with `to`
  /// (boundary characters are anything outside [A-Za-z0-9_$]), which covers
  /// `.globl f`, `.type f, @function`, `f:`, `.size f, .-f` and C
  /// definitions alike. Exposed for tests.
  static std::string renameIdentifier(const std::string& text,
                                      const std::string& from,
                                      const std::string& to);

 private:
  CompileOptions options_;
};

}  // namespace microtools::native
