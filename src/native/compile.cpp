#include "native/compile.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::native {

namespace {

std::string makeTempPath(const std::string& suffix) {
  // Atomic counter: campaign workers compile kernels concurrently, and two
  // threads handing out the same path would corrupt each other's .so.
  static std::atomic<int> counter{0};
  const char* tmpdir = std::getenv("TMPDIR");
  if (!tmpdir) tmpdir = "/tmp";
  return strings::format("%s/microtools_%d_%d%s", tmpdir,
                         static_cast<int>(getpid()),
                         counter.fetch_add(1, std::memory_order_relaxed),
                         suffix.c_str());
}

void runCommand(const std::string& command) {
  std::string full = command + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  if (!pipe) throw ExecutionError("cannot run compiler: " + command);
  std::string output;
  char buf[512];
  while (std::fgets(buf, sizeof buf, pipe)) output += buf;
  int status = pclose(pipe);
  if (status != 0) {
    throw ExecutionError("compiler failed (" + command + "):\n" + output);
  }
}

}  // namespace

CompiledKernel::CompiledKernel(const std::string& sourceText,
                               const std::string& language,
                               const std::string& functionName) {
  std::string suffix;
  if (language == "asm") {
    suffix = ".s";
  } else if (language == "c") {
    suffix = ".c";
  } else {
    throw ExecutionError("unsupported kernel language: " + language);
  }
  std::string srcPath = makeTempPath(suffix);
  {
    std::ofstream out(srcPath, std::ios::binary);
    if (!out) throw ExecutionError("cannot write " + srcPath);
    out << sourceText;
  }
  soPath_ = makeTempPath(".so");
  ownsFile_ = true;
  const char* cc = std::getenv("CC");
  if (!cc) cc = "cc";
  runCommand(strings::format("%s -O2 -shared -fPIC -o %s %s", cc,
                             soPath_.c_str(), srcPath.c_str()));
  std::remove(srcPath.c_str());
  resolve(functionName);
}

CompiledKernel CompiledKernel::fromSharedObject(
    const std::string& path, const std::string& functionName) {
  CompiledKernel k;
  k.soPath_ = path;
  k.ownsFile_ = false;
  k.resolve(functionName);
  return k;
}

void CompiledKernel::resolve(const std::string& functionName) {
  handle_ = dlopen(soPath_.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle_) {
    const char* err = dlerror();
    throw ExecutionError("dlopen failed: " +
                         std::string(err ? err : "unknown"));
  }
  dlerror();
  fn_ = dlsym(handle_, functionName.c_str());
  const char* err = dlerror();
  if (err || !fn_) {
    throw ExecutionError("kernel function '" + functionName +
                         "' not found in " + soPath_);
  }
}

CompiledKernel::~CompiledKernel() {
  if (handle_) dlclose(handle_);
  if (ownsFile_ && !soPath_.empty()) std::remove(soPath_.c_str());
}

CompiledKernel::CompiledKernel(CompiledKernel&& other) noexcept
    : handle_(other.handle_),
      fn_(other.fn_),
      soPath_(std::move(other.soPath_)),
      ownsFile_(other.ownsFile_) {
  other.handle_ = nullptr;
  other.fn_ = nullptr;
  other.ownsFile_ = false;
}

int CompiledKernel::call(int n, void* const* arrays, int arrayCount) const {
  switch (arrayCount) {
    case 0:
      return reinterpret_cast<int (*)(int)>(fn_)(n);
    case 1:
      return reinterpret_cast<int (*)(int, void*)>(fn_)(n, arrays[0]);
    case 2:
      return reinterpret_cast<int (*)(int, void*, void*)>(fn_)(n, arrays[0],
                                                               arrays[1]);
    case 3:
      return reinterpret_cast<int (*)(int, void*, void*, void*)>(fn_)(
          n, arrays[0], arrays[1], arrays[2]);
    case 4:
      return reinterpret_cast<int (*)(int, void*, void*, void*, void*)>(fn_)(
          n, arrays[0], arrays[1], arrays[2], arrays[3]);
    case 5:
      return reinterpret_cast<int (*)(int, void*, void*, void*, void*,
                                      void*)>(fn_)(
          n, arrays[0], arrays[1], arrays[2], arrays[3], arrays[4]);
    default:
      throw ExecutionError("kernels support at most five arrays");
  }
}

}  // namespace microtools::native
