#include "native/compile.hpp"

#include <dlfcn.h>
#include <fcntl.h>
#include <spawn.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

extern char** environ;

namespace microtools::native {

namespace fs = std::filesystem;

namespace {

/// Bumped whenever the cached-.so key composition or on-disk layout
/// changes; entries written under another version can never be loaded
/// because their keys differ.
constexpr std::uint64_t kSoCacheVersion = 1;

/// The fixed compilation flags; part of the cache key because changing them
/// changes the generated code.
const char* const kCompileFlags[] = {"-O2", "-shared", "-fPIC"};

std::atomic<std::uint64_t> gSpawnCount{0};

std::string makeTempPath(const std::string& suffix) {
  // Atomic counter: campaign workers compile kernels concurrently, and two
  // threads handing out the same path would corrupt each other's .so.
  static std::atomic<int> counter{0};
  const char* tmpdir = std::getenv("TMPDIR");
  if (!tmpdir) tmpdir = "/tmp";
  return strings::format("%s/microtools_%d_%d%s", tmpdir,
                         static_cast<int>(getpid()),
                         counter.fetch_add(1, std::memory_order_relaxed),
                         suffix.c_str());
}

/// Removes a filesystem path at scope exit unless released — compilation
/// temporaries (the source file, a partially written .so) must disappear on
/// every exit path, thrown or not.
struct PathGuard {
  std::string path;
  bool active = true;

  explicit PathGuard(std::string p) : path(std::move(p)) {}
  PathGuard(PathGuard&& o) noexcept : path(std::move(o.path)), active(o.active) {
    o.active = false;
  }
  PathGuard(const PathGuard&) = delete;
  PathGuard& operator=(const PathGuard&) = delete;
  PathGuard& operator=(PathGuard&&) = delete;
  ~PathGuard() {
    if (active && !path.empty()) std::remove(path.c_str());
  }
  void release() { active = false; }
};

std::string joinArgv(const std::vector<std::string>& argv) {
  std::string out;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    if (i) out += ' ';
    out += argv[i];
  }
  return out;
}

std::string sourceSuffix(const std::string& language) {
  if (language == "asm") return ".s";
  if (language == "c") return ".c";
  throw ExecutionError("unsupported kernel language: " + language);
}

// -- compiler identity -------------------------------------------------------

std::mutex gIdentityMutex;
std::map<std::string, std::string>& identityMemo() {
  static std::map<std::string, std::string> memo;
  return memo;
}

/// PATH resolution of a bare command name, so the identity record can be
/// keyed by the binary's stat() without spawning it.
std::string resolveExecutablePath(const std::string& command) {
  if (command.find('/') != std::string::npos) return command;
  const char* pathEnv = std::getenv("PATH");
  if (!pathEnv) return "";
  for (const std::string& dir : strings::split(pathEnv, ':')) {
    if (dir.empty()) continue;
    std::string candidate = dir + "/" + command;
    if (access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return "";
}

/// "path:size:mtime" of the compiler binary — the validity condition of a
/// persisted identity record (a replaced compiler binary changes it).
std::string compilerStatKey(const std::string& command) {
  std::string path = resolveExecutablePath(command);
  if (path.empty()) return "";
  struct stat st {};
  if (stat(path.c_str(), &st) != 0) return "";
  return strings::format("%s:%lld:%lld.%09ld", path.c_str(),
                         static_cast<long long>(st.st_size),
                         static_cast<long long>(st.st_mtim.tv_sec),
                         static_cast<long>(st.st_mtim.tv_nsec));
}

std::string firstLine(const std::string& text) {
  std::size_t nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

}  // namespace

// ---------------------------------------------------------------------------
// Process runner
// ---------------------------------------------------------------------------

std::string SpawnResult::describe() const {
  if (exited) return "exited with status " + std::to_string(exitCode);
  const char* name = strsignal(termSignal);
  return strings::format("killed by signal %d (%s)", termSignal,
                         name ? name : "unknown");
}

SpawnResult runProcess(const std::vector<std::string>& argv) {
  if (argv.empty()) throw ExecutionError("runProcess: empty argument vector");

  int fds[2];
  if (pipe(fds) != 0) throw ExecutionError("runProcess: pipe failed");

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_addclose(&actions, fds[0]);
  posix_spawn_file_actions_adddup2(&actions, fds[1], 1);
  posix_spawn_file_actions_adddup2(&actions, fds[1], 2);
  posix_spawn_file_actions_addclose(&actions, fds[1]);

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);

  pid_t pid = -1;
  int rc = posix_spawnp(&pid, argv[0].c_str(), &actions, nullptr,
                        cargv.data(), environ);
  posix_spawn_file_actions_destroy(&actions);
  close(fds[1]);
  if (rc != 0) {
    close(fds[0]);
    throw ExecutionError("cannot run " + argv[0] + ": " +
                         std::string(strerror(rc)));
  }
  gSpawnCount.fetch_add(1, std::memory_order_relaxed);

  SpawnResult result;
  char buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof buf)) > 0) {
    result.output.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);

  int status = 0;
  while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exitCode = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exited = false;
    result.termSignal = WTERMSIG(status);
  }
  return result;
}

std::uint64_t spawnCount() {
  return gSpawnCount.load(std::memory_order_relaxed);
}

std::string compilerCommand() {
  const char* cc = std::getenv("CC");
  return cc && *cc ? cc : "cc";
}

void clearCompilerIdentityMemo() {
  std::lock_guard<std::mutex> lock(gIdentityMutex);
  identityMemo().clear();
}

namespace {

/// Atomically writes the "<statKey>\n<identity>\n" record; best effort.
void persistIdentity(const std::string& cacheDir, const std::string& idFile,
                     const std::string& statKey,
                     const std::string& identity) {
  std::error_code ec;
  fs::create_directories(cacheDir, ec);
  std::string tmp = idFile + ".tmp" + std::to_string(getpid());
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) return;
  out << statKey << '\n' << identity << '\n';
  out.close();
  fs::rename(tmp, idFile, ec);
  if (ec) fs::remove(tmp, ec);
}

}  // namespace

std::string compilerIdentity(const std::string& cacheDir) {
  std::string cc = compilerCommand();
  std::string statKey = compilerStatKey(cc);
  std::string idFile =
      cacheDir.empty() ? "" : (fs::path(cacheDir) / "compiler.id").string();
  {
    std::lock_guard<std::mutex> lock(gIdentityMutex);
    auto it = identityMemo().find(cc);
    if (it != identityMemo().end()) {
      // Memo hit for a cache dir that may not hold the record yet: persist
      // it now, or the NEXT process would pay a --version spawn.
      if (!idFile.empty() && !statKey.empty() && !fs::exists(idFile)) {
        persistIdentity(cacheDir, idFile, statKey, it->second);
      }
      return it->second;
    }
  }

  // A persisted record whose stat key still matches the binary is current —
  // no --version spawn on a warm rerun. A damaged record is just a miss.
  if (!idFile.empty() && !statKey.empty()) {
    std::ifstream in(idFile, std::ios::binary);
    if (in) {
      std::string storedKey, identity;
      if (std::getline(in, storedKey) && std::getline(in, identity) &&
          storedKey == statKey && !identity.empty()) {
        std::lock_guard<std::mutex> lock(gIdentityMutex);
        identityMemo().emplace(cc, identity);
        return identity;
      }
    }
  }

  std::string identity = cc + " ";
  try {
    SpawnResult probe = runProcess({cc, "--version"});
    identity += probe.ok() ? firstLine(probe.output)
                           : "unidentified (" + probe.describe() + ")";
  } catch (const ExecutionError&) {
    identity += "unidentified (cannot spawn)";
  }

  {
    std::lock_guard<std::mutex> lock(gIdentityMutex);
    identityMemo().emplace(cc, identity);
  }
  if (!idFile.empty() && !statKey.empty()) {
    persistIdentity(cacheDir, idFile, statKey, identity);
  }
  return identity;
}

// ---------------------------------------------------------------------------
// SharedObject
// ---------------------------------------------------------------------------

SharedObject::SharedObject(std::string path, bool ownsFile)
    : path_(std::move(path)), ownsFile_(ownsFile) {
  handle_ = dlopen(path_.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle_) {
    const char* err = dlerror();
    // A failed open must not unlink the caller's file: ownership of the
    // path only transfers once the object is actually loaded.
    ownsFile_ = false;
    throw ExecutionError("dlopen failed: " +
                         std::string(err ? err : "unknown"));
  }
}

SharedObject::~SharedObject() {
  if (handle_) dlclose(handle_);
  if (ownsFile_ && !path_.empty()) std::remove(path_.c_str());
}

void* SharedObject::symbol(const std::string& name) const {
  dlerror();
  void* fn = dlsym(handle_, name.c_str());
  const char* err = dlerror();
  if (err || !fn) {
    throw ExecutionError("kernel function '" + name + "' not found in " +
                         path_);
  }
  return fn;
}

// ---------------------------------------------------------------------------
// Compilation core
// ---------------------------------------------------------------------------

namespace {

struct SourceText {
  std::string language;  // asm|c
  std::string text;
};

std::string soCacheKey(const std::vector<SourceText>& sources,
                       const std::string& identity) {
  hash::Fnv1a h;
  h.str("mtso").u64(kSoCacheVersion);
  h.str(identity);
  h.u64(std::size(kCompileFlags));
  for (const char* flag : kCompileFlags) h.str(flag);
  h.u64(sources.size());
  for (const SourceText& s : sources) h.str(s.language).str(s.text);
  return h.hex();
}

/// Compiles every source with ONE compiler invocation into one shared
/// object and loads it. With a cache directory, the artifact is served from
/// (and published to) `<cacheDir>/<key>.so`; a corrupt cached file is
/// recompiled in place. Temporary files never outlive this function on any
/// path.
std::shared_ptr<SharedObject> compileSources(
    const std::vector<SourceText>& sources, const CompileOptions& options) {
  std::string cachePath;
  if (!options.cacheDir.empty()) {
    std::error_code ec;
    fs::create_directories(options.cacheDir, ec);
    if (ec) {
      throw ExecutionError("cannot create compile cache directory '" +
                           options.cacheDir + "': " + ec.message());
    }
    std::string key = soCacheKey(sources, compilerIdentity(options.cacheDir));
    cachePath = (fs::path(options.cacheDir) / (key + ".so")).string();
    if (fs::exists(cachePath, ec)) {
      try {
        return std::make_shared<SharedObject>(cachePath, /*ownsFile=*/false);
      } catch (const ExecutionError&) {
        // Truncated or garbage cache entry: drop it and recompile — a
        // damaged cache can only cost time, never fail a campaign.
        log::warn("corrupt compile-cache entry, recompiling: " + cachePath);
        std::remove(cachePath.c_str());
      }
    }
  }

  std::vector<PathGuard> sourceGuards;
  std::vector<std::string> argv;
  argv.push_back(compilerCommand());
  for (const char* flag : kCompileFlags) argv.push_back(flag);

  // Unique temp name per writer: concurrent compile workers publish into
  // the same cache directory.
  static std::atomic<std::uint64_t> tmpCounter{0};
  std::string outPath =
      cachePath.empty()
          ? makeTempPath(".so")
          : cachePath + ".tmp" +
                std::to_string(tmpCounter.fetch_add(
                    1, std::memory_order_relaxed));
  PathGuard outGuard(outPath);
  argv.push_back("-o");
  argv.push_back(outPath);

  for (const SourceText& source : sources) {
    std::string srcPath = makeTempPath(sourceSuffix(source.language));
    {
      std::ofstream out(srcPath, std::ios::binary);
      if (!out) throw ExecutionError("cannot write " + srcPath);
      out << source.text;
    }
    sourceGuards.emplace_back(srcPath);
    argv.push_back(std::move(srcPath));
  }

  SpawnResult result = runProcess(argv);
  if (!result.ok()) {
    throw ExecutionError("compiler failed (" + joinArgv(argv) +
                         "): " + result.describe() + "\n" + result.output);
  }

  if (!cachePath.empty()) {
    std::error_code ec;
    fs::rename(outPath, cachePath, ec);  // atomic publish within cacheDir
    if (!ec) {
      outGuard.release();
      try {
        return std::make_shared<SharedObject>(cachePath, /*ownsFile=*/false);
      } catch (const ExecutionError&) {
        std::remove(cachePath.c_str());  // never leave a bad entry behind
        throw;
      }
    }
    // rename failed (exotic filesystem): fall through and use the temp
    // artifact directly, owned by the SharedObject.
  }
  auto so = std::make_shared<SharedObject>(outPath, /*ownsFile=*/true);
  outGuard.release();  // ownership of the file moved into the SharedObject
  return so;
}

}  // namespace

// ---------------------------------------------------------------------------
// CompiledKernel
// ---------------------------------------------------------------------------

CompiledKernel::CompiledKernel(std::shared_ptr<SharedObject> so, void* fn)
    : so_(std::move(so)), fn_(fn) {}

CompiledKernel::CompiledKernel(const std::string& sourceText,
                               const std::string& language,
                               const std::string& functionName,
                               const CompileOptions& options) {
  auto so = compileSources({{language, sourceText}}, options);
  fn_ = so->symbol(functionName);
  so_ = std::move(so);
}

CompiledKernel CompiledKernel::fromSharedObject(
    const std::string& path, const std::string& functionName) {
  auto so = std::make_shared<SharedObject>(path, /*ownsFile=*/false);
  void* fn = so->symbol(functionName);
  return CompiledKernel(std::move(so), fn);
}

CompiledKernel::CompiledKernel(CompiledKernel&& other) noexcept
    : so_(std::move(other.so_)), fn_(other.fn_) {
  other.fn_ = nullptr;
}

CompiledKernel& CompiledKernel::operator=(CompiledKernel&& other) noexcept {
  // Swap: the previous shared object (if any) is released when `other` is
  // destroyed — no double dlclose/unlink is possible because ownership
  // lives in one reference-counted place.
  std::swap(so_, other.so_);
  std::swap(fn_, other.fn_);
  return *this;
}

const std::string& CompiledKernel::sharedObjectPath() const {
  static const std::string kEmpty;
  return so_ ? so_->path() : kEmpty;
}

int CompiledKernel::call(int n, void* const* arrays, int arrayCount) const {
  switch (arrayCount) {
    case 0:
      return reinterpret_cast<int (*)(int)>(fn_)(n);
    case 1:
      return reinterpret_cast<int (*)(int, void*)>(fn_)(n, arrays[0]);
    case 2:
      return reinterpret_cast<int (*)(int, void*, void*)>(fn_)(n, arrays[0],
                                                               arrays[1]);
    case 3:
      return reinterpret_cast<int (*)(int, void*, void*, void*)>(fn_)(
          n, arrays[0], arrays[1], arrays[2]);
    case 4:
      return reinterpret_cast<int (*)(int, void*, void*, void*, void*)>(fn_)(
          n, arrays[0], arrays[1], arrays[2], arrays[3]);
    case 5:
      return reinterpret_cast<int (*)(int, void*, void*, void*, void*,
                                      void*)>(fn_)(
          n, arrays[0], arrays[1], arrays[2], arrays[3], arrays[4]);
    default:
      throw ExecutionError("kernels support at most five arrays");
  }
}

// ---------------------------------------------------------------------------
// CompileBatch
// ---------------------------------------------------------------------------

CompileBatch::CompileBatch(CompileOptions options)
    : options_(std::move(options)) {}

std::string CompileBatch::uniquifiedName(const std::string& functionName,
                                         std::size_t index) {
  return functionName + "_mtb" + std::to_string(index);
}

std::string CompileBatch::renameIdentifier(const std::string& text,
                                           const std::string& from,
                                           const std::string& to) {
  auto isIdentChar = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '$';
  };
  std::string out;
  out.reserve(text.size() + 32);
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t hit = text.find(from, pos);
    if (hit == std::string::npos) {
      out.append(text, pos, std::string::npos);
      break;
    }
    bool startOk = hit == 0 || !isIdentChar(text[hit - 1]);
    std::size_t end = hit + from.size();
    bool endOk = end >= text.size() || !isIdentChar(text[end]);
    out.append(text, pos, hit - pos);
    out += (startOk && endOk) ? to : from;
    pos = end;
  }
  return out;
}

std::vector<std::optional<CompiledKernel>> CompileBatch::compile(
    const std::vector<launcher::SourceUnit>& units) {
  std::vector<std::optional<CompiledKernel>> kernels;
  if (units.empty()) return kernels;

  std::vector<SourceText> sources;
  std::vector<std::string> names;
  sources.reserve(units.size());
  names.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    const launcher::SourceUnit& unit = units[i];
    sourceSuffix(unit.kind);  // validates the language up front
    std::string name = uniquifiedName(unit.functionName, i);
    sources.push_back(
        {unit.kind, renameIdentifier(unit.text, unit.functionName, name)});
    names.push_back(std::move(name));
  }

  auto so = compileSources(sources, options_);
  kernels.reserve(units.size());
  for (const std::string& name : names) {
    try {
      kernels.emplace_back(CompiledKernel(so, so->symbol(name)));
    } catch (const ExecutionError&) {
      // The unit's source never defined its declared entry point; the
      // caller reloads it individually to surface the diagnostic.
      kernels.emplace_back(std::nullopt);
    }
  }
  return kernels;
}

CompiledKernel CompileBatch::compileOne(const launcher::SourceUnit& unit) {
  auto so = compileSources({{unit.kind, unit.text}}, options_);
  void* fn = so->symbol(unit.functionName);
  return CompiledKernel(std::move(so), fn);
}

}  // namespace microtools::native
