#include "native/timing.hpp"

#include <algorithm>
#include <vector>

#if defined(__x86_64__)
#include <x86intrin.h>
#else
#include <ctime>
#endif

namespace microtools::native {

bool hasHardwareTsc() {
#if defined(__x86_64__)
  return true;
#else
  return false;
#endif
}

std::uint64_t readTsc() {
#if defined(__x86_64__)
  _mm_lfence();
  std::uint64_t t = __rdtsc();
  _mm_lfence();
  return t;
#else
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC_RAW, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#endif
}

double tscOverheadCycles() {
  static const double cached = [] {
    constexpr int kSamples = 257;
    std::vector<std::uint64_t> deltas;
    deltas.reserve(kSamples);
    for (int i = 0; i < kSamples; ++i) {
      std::uint64_t a = readTsc();
      std::uint64_t b = readTsc();
      deltas.push_back(b - a);
    }
    std::nth_element(deltas.begin(), deltas.begin() + kSamples / 2,
                     deltas.end());
    return static_cast<double>(deltas[kSamples / 2]);
  }();
  return cached;
}

}  // namespace microtools::native
