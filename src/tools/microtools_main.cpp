// The `microtools` command-line driver: subcommands that combine both halves
// of the toolchain. `microtools explore` is the paper's full loop in one
// command — MicroCreator generates every variant in memory, MicroLauncher
// measures them, and a content-addressed cache makes reruns pay only for
// new work.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "creator/creator.hpp"
#include "launcher/arch_registry.hpp"
#include "launcher/bench_diff.hpp"
#include "launcher/explore.hpp"
#include "launcher/serve.hpp"
#include "launcher/sim_backend.hpp"
#include "native/compile.hpp"
#include "native/native_backend.hpp"
#include "support/cli.hpp"
#include "support/envinfo.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "verify/costmodel.hpp"
#include "verify/stability.hpp"
#include "verify/verify.hpp"

using namespace microtools;

namespace {

void printUsage() {
  std::printf(
      "usage: microtools <subcommand> [options]\n"
      "\n"
      "subcommands:\n"
      "  explore   generate every variant of an XML kernel description and\n"
      "            measure them in one run, with a content-addressed result\n"
      "            cache (use `microtools explore --help` for options)\n"
      "  lint      statically verify kernel assembly (.s files, or every\n"
      "            variant generated from an XML description) against the\n"
      "            MT-* rule catalog without executing anything (use\n"
      "            `microtools lint --help` for options)\n"
      "  analyze   statically predict each kernel's cycles/iteration lower\n"
      "            bound from the port-level cost model (frontend, port\n"
      "            pressure, dependence recurrence) plus its stability\n"
      "            verdict, without executing anything (use `microtools\n"
      "            analyze --help` for options)\n"
      "  bench-diff  compare two campaign CSV files variant by variant with\n"
      "            a noise-aware regression threshold; exits nonzero when a\n"
      "            regression exceeds the combined measurement noise (use\n"
      "            `microtools bench-diff --help` for options)\n"
      "  serve     run the campaign-service daemon: owns the shared\n"
      "            measurement cache, hands out work leases to `explore\n"
      "            --connect` workers, and merges their rows into one\n"
      "            canonical CSV + ranked report (use `microtools serve\n"
      "            --help` for options)\n");
}

cli::Parser makeExploreParser() {
  cli::Parser parser(
      "microtools explore",
      "Generates all variants of an XML kernel description, measures them "
      "in-memory as one campaign, and reports the top-K fastest. A "
      "content-addressed cache skips every measurement already on disk.");
  parser.addString("input", "XML kernel description file");
  parser.addString("backend", "Execution backend: sim|native", "sim");
  parser.addString("arch", "Simulated machine (see microlauncher --list-arch)",
                   "nehalem_x5650_2s");
  parser.addDouble("core-ghz", "Override the core frequency (DVFS study)");
  parser.addInt("jobs", "Parallel worker threads", 1);
  parser.addInt("generate-jobs",
                "Worker threads for the per-kernel generation stages "
                "(variant expansion, code emission, verification); output "
                "is bit-identical to --generate-jobs 1",
                1);
  parser.addFlag("stream",
                 "Start measuring as soon as the first generated variant is "
                 "verified, overlapping generation and measurement (full "
                 "sweeps only; results are identical to the batch path)");
  parser.addInt("inner", "Inner repetitions per timed experiment", 8);
  parser.addInt("outer", "Outer (stability) repetitions", 10);
  parser.addFlag("no-warmup", "Skip the cache warm-up call");
  parser.addFlag("no-overhead", "Do not subtract timer overhead");
  parser.addDouble("max-cv",
                   "Re-run a variant while its cycles/iteration CV exceeds "
                   "this (0 disables)",
                   0.05);
  parser.addInt("max-repetitions",
                "Total outer-repetition budget per variant", 40);
  parser.addInt("variant-timeout-ms",
                "Per-variant wall-clock budget (0 = none)", 0);
  parser.addInt("compile-jobs",
                "Compile-pipeline producer threads that batch-compile "
                "variants ahead of the measurement workers (native backend; "
                "0 = compile inline)",
                0);
  parser.addInt("compile-batch",
                "Variants grouped into one compiler invocation", 8);
  parser.addString("compile-cache-dir",
                   "Persistent .so compile cache for the native backend "
                   "(default: <--cache>/so; --no-cache disables unless set "
                   "explicitly)");
  parser.addInt("nbvectors",
                "Arrays passed to the kernel (0 = derive from the generated "
                "programs)",
                0);
  parser.addInt("array-bytes", "Size of each array in bytes", 1 << 20);
  parser.addInt("alignment", "Array base alignment in bytes", 4096);
  parser.addInt("align-offset", "Extra offset added to each array base", 0);
  parser.addInt("element-bytes",
                "Bytes per array element (4 = float, 8 = double)", 4);
  parser.addInt("n", "Kernel trip count (default: first array's elements)");
  parser.addInt("max", "Override <maximum_benchmarks>");
  parser.addInt("seed", "Override <seed>");
  parser.addString("search",
                   "Variant-space walk: full measures every variant at the "
                   "baseline protocol; halving screens everything cheaply, "
                   "keeps the best half per round, and finishes the "
                   "survivors at full fidelity",
                   "full");
  parser.addString("budget",
                   "Halving search budget: '<seconds>s' wall-clock (e.g. "
                   "30s) or a count of fresh variant measurements (cache "
                   "hits are free); on exhaustion the best-so-far ranking "
                   "is reported");
  parser.addInt("screen-reps",
                "Halving: outer repetitions of the round-0 screening pass",
                1);
  parser.addInt("stable-screen-reps",
                "Halving: screening repetitions for variants the static "
                "stability analysis proves tight (regular L1-resident loop, "
                "no loop-carried load); only applies when below "
                "--screen-reps",
                1);
  parser.addFlag("no-predict",
                 "Disable the static cost model: no pred_cpi_lo/pred_bound "
                 "CSV columns, no predicted screening order, no "
                 "stability-reduced screening repetitions");
  parser.addString("cache", "Measurement cache directory",
                   ".microtools-cache");
  parser.addFlag("no-cache", "Disable the measurement cache");
  parser.addFlag("sim-exact",
                 "Force full cycle simulation (no steady-state extrapolation "
                 "or warm-invoke memoization); bit-identical, only slower");
  parser.addString("verify",
                   "Static pre-flight verification of generated variants — "
                   "strict skips variants with error-level diagnostics "
                   "before they can crash the campaign; warn only annotates "
                   "the CSV; off disables the check",
                   "strict");
  parser.addFlag("no-perf-counters",
                 "Do not open perf_event counter groups around native "
                 "kernel calls (rdtsc timing only; counter-derived CSV "
                 "columns stay empty)");
  parser.addInt("top", "Rank the K best variants (0 = all)", 10);
  parser.addString("csv",
                   "Stream the full campaign CSV to this file (append-safe; "
                   "variants already terminal in the file are resumed, not "
                   "re-measured or re-appended)");
  parser.addString("report", "Write the ranked report here instead of stdout");
  parser.addString("connect",
                   "Shard this campaign against a `microtools serve` daemon "
                   "at host:port or unix:/path — the daemon owns the "
                   "measurement cache and hands out work leases, so several "
                   "workers split one campaign without duplicating "
                   "measurements (full sweeps only)");
  parser.addString("worker-name",
                   "Name reported in the daemon's telemetry (default: the "
                   "worker's pid)");
  parser.addFlag("verbose", "Enable info logging");
  return parser;
}

// argv[0] is the subcommand name itself; Parser::parse skips it.
int runExploreCommand(int argc, char** argv) {
  cli::Parser parser = makeExploreParser();
  if (!parser.parse(argc, argv)) return 0;  // --help handled

  launcher::ExploreOptions options;
  if (parser.has("input")) {
    options.descriptionFile = parser.getString("input");
  } else if (!parser.positional().empty()) {
    options.descriptionFile = parser.positional().front();
  } else {
    std::fprintf(stderr, "error: no kernel description (see --help)\n");
    return 2;
  }
  options.backend = parser.getString("backend");
  options.arch = parser.getString("arch");
  if (parser.has("core-ghz")) options.coreGHz = parser.getDouble("core-ghz");
  options.campaign.jobs = static_cast<int>(parser.getInt("jobs"));
  options.generateJobs = static_cast<int>(parser.getInt("generate-jobs"));
  options.stream = parser.getFlag("stream");
  options.campaign.protocol.innerRepetitions =
      static_cast<int>(parser.getInt("inner"));
  options.campaign.protocol.outerRepetitions =
      static_cast<int>(parser.getInt("outer"));
  options.campaign.protocol.warmup = !parser.getFlag("no-warmup");
  options.campaign.protocol.subtractOverhead = !parser.getFlag("no-overhead");
  options.campaign.maxCv = parser.getDouble("max-cv");
  options.campaign.maxRepetitions =
      static_cast<int>(parser.getInt("max-repetitions"));
  options.campaign.variantTimeoutMs =
      static_cast<int>(parser.getInt("variant-timeout-ms"));
  options.campaign.compileJobs =
      static_cast<int>(parser.getInt("compile-jobs"));
  options.campaign.compileBatch =
      static_cast<int>(parser.getInt("compile-batch"));
  options.campaign.pinWorkers = options.backend == "native";
  options.campaign.verify =
      launcher::verifyModeFromName(parser.getString("verify"));
  options.nbVectors = static_cast<int>(parser.getInt("nbvectors"));
  options.arrayBytes =
      static_cast<std::uint64_t>(parser.getInt("array-bytes"));
  options.alignment = static_cast<std::uint64_t>(parser.getInt("alignment"));
  options.alignOffset =
      static_cast<std::uint64_t>(parser.getInt("align-offset"));
  options.elementBytes =
      static_cast<std::uint64_t>(parser.getInt("element-bytes"));
  if (parser.has("n")) {
    options.tripCount = static_cast<int>(parser.getInt("n"));
  }
  if (parser.has("max")) {
    options.maxVariants = static_cast<std::size_t>(parser.getInt("max"));
  }
  if (parser.has("seed")) {
    options.seed = static_cast<std::uint64_t>(parser.getInt("seed"));
  }
  options.cacheDir = parser.getString("cache");
  options.useCache = !parser.getFlag("no-cache");
  options.simExact = parser.getFlag("sim-exact");
  options.search = launcher::searchModeFromName(parser.getString("search"));
  if (parser.has("budget")) {
    options.planner.budget = launcher::parseBudget(parser.getString("budget"));
  }
  options.planner.screenRepetitions =
      static_cast<int>(parser.getInt("screen-reps"));
  options.planner.stableScreenRepetitions =
      static_cast<int>(parser.getInt("stable-screen-reps"));
  options.predict = !parser.getFlag("no-predict");
  if (parser.has("connect")) {
    options.connectAddr = parser.getString("connect");
    if (parser.has("worker-name")) {
      options.workerName = parser.getString("worker-name");
    }
  }
  if (parser.getFlag("verbose")) log::setLevel(log::Level::Info);

  if (options.backend == "native") {
    // Compile cache: defaults to a "so" subdirectory of the measurement
    // cache, so one --cache flag governs both; --no-cache turns it off
    // unless the user asked for a compile cache dir explicitly.
    std::string compileCacheDir;
    if (parser.has("compile-cache-dir")) {
      compileCacheDir = parser.getString("compile-cache-dir");
    } else if (options.useCache) {
      compileCacheDir = options.cacheDir + "/so";
    }
    bool perfCounters = !parser.getFlag("no-perf-counters");
    options.backendFactory = [compileCacheDir, perfCounters](int) {
      native::NativeBackendOptions nb;
      nb.compileCacheDir = compileCacheDir;
      nb.perfCounters = perfCounters;
      return std::make_unique<native::NativeBackend>(std::move(nb));
    };
    options.backendId = "native";
  } else if (options.backend != "sim") {
    std::fprintf(stderr, "error: --backend must be sim or native\n");
    return 2;
  }

  std::unique_ptr<launcher::CampaignCsvSink> sink;
  if (parser.has("csv")) {
    std::string csvPath = parser.getString("csv");
    // Resume: variants already terminal in the file (ok rows, cache hits,
    // verify-strict skips, errors) are skipped and NOT re-appended, so
    // rerunning with the same --csv never grows the file. A halving search
    // resumes per round instead — the planner reads the file itself, round
    // by round, and backfills the skipped rows' metrics for ranking.
    if (options.search == launcher::SearchMode::Halving) {
      options.planner.resumeCsv = csvPath;
    } else {
      options.campaign.completed = launcher::readCompletedVariants(csvPath);
    }
    env::EnvSnapshot snapshot = env::captureEnv();
    if (options.backend == "native") {
      std::string identityCache;
      if (parser.has("compile-cache-dir")) {
        identityCache = parser.getString("compile-cache-dir");
      } else if (options.useCache) {
        identityCache = options.cacheDir + "/so";
      }
      snapshot.set("compiler", native::compilerIdentity(identityCache));
    }
    sink = std::make_unique<launcher::CampaignCsvSink>(
        csvPath, env::toCsvComments(snapshot));
  }

  launcher::ExploreResult result =
      launcher::runExplore(options, sink.get());

  csv::Table report =
      launcher::topKReport(result.results,
                           static_cast<int>(parser.getInt("top")));
  if (parser.has("report")) {
    std::ofstream out(parser.getString("report"), std::ios::binary);
    if (!out) {
      throw McError("cannot write report file: " +
                    parser.getString("report"));
    }
    report.write(out);
  } else {
    report.write(std::cout);
  }

  std::printf(
      "explored %zu variant(s) on %s: %zu cache hit(s), %zu measured, "
      "%zu skipped, %zu failure(s)\n",
      options.search == launcher::SearchMode::Halving ? result.generated
                                                      : result.results.size(),
      result.backendId.c_str(), result.cacheHits, result.measured,
      result.skipped, result.failures);
  if (options.search == launcher::SearchMode::Halving) {
    std::printf(
        "halving: %zu of %zu variant(s) at full fidelity after %zu "
        "round(s), %lld work repetition(s), stop: %s\n",
        result.fullFidelityVariants, result.generated, result.rounds.size(),
        result.workRepetitions, result.stopReason.c_str());
  }
  if (!options.connectAddr.empty()) {
    // In connect mode the daemon owns the cache; the worker-side telemetry
    // counts acquires answered inline (hits) vs leases this worker measured.
    const launcher::CacheTelemetry& t = result.cacheTelemetry;
    std::printf("service: %s (%llu hit(s), %llu lease(s) measured)\n",
                options.connectAddr.c_str(),
                static_cast<unsigned long long>(t.hits),
                static_cast<unsigned long long>(t.misses));
  } else if (options.useCache) {
    const launcher::CacheTelemetry& t = result.cacheTelemetry;
    std::printf("cache: %s (%llu hit(s), %llu miss(es), %llu corrupt, "
                "%llu record file read(s))\n",
                options.cacheDir.c_str(),
                static_cast<unsigned long long>(t.hits),
                static_cast<unsigned long long>(t.misses),
                static_cast<unsigned long long>(t.corrupt),
                static_cast<unsigned long long>(t.recordFileReads));
  }
  return result.failures == 0 ? 0 : 1;
}

cli::Parser makeLintParser() {
  cli::Parser parser(
      "microtools lint",
      "Statically verifies kernel assembly against the MT-* rule catalog "
      "(control flow and loop termination, SysV ABI compliance, register "
      "def/use dataflow, symbolic bounds and alignment of every array "
      "access) without assembling or executing anything. Inputs are .s "
      "files, or .xml descriptions whose generated variants are each "
      "verified. Exits 0 when no error-level diagnostic was reported, 1 "
      "otherwise.");
  parser.addString("input", "Kernel assembly (.s) or description (.xml); "
                            "extra positional paths are linted too");
  parser.addFlag("json", "Emit one JSON object per diagnostic (JSON lines)");
  parser.addInt("nbvectors",
                "Arrays passed to the kernel (0 = derive from the generated "
                "program, or assume the SysV maximum for .s files)",
                0);
  parser.addInt("array-bytes", "Size of each array in bytes", 1 << 20);
  parser.addInt("alignment", "Array base alignment in bytes", 4096);
  parser.addInt("align-offset", "Extra offset added to each array base", 0);
  parser.addInt("element-bytes",
                "Bytes per array element (4 = float, 8 = double)", 4);
  parser.addInt("n", "Kernel trip count (default: first array's elements)");
  parser.addFlag("verbose", "Enable info logging");
  return parser;
}

int runLintCommand(int argc, char** argv) {
  cli::Parser parser = makeLintParser();
  if (!parser.parse(argc, argv)) return 0;  // --help handled

  std::vector<std::string> inputs = parser.positional();
  if (parser.has("input")) {
    inputs.insert(inputs.begin(), parser.getString("input"));
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "error: no input (.s or .xml) to lint "
                         "(see --help)\n");
    return 2;
  }
  if (parser.getFlag("verbose")) log::setLevel(log::Level::Info);

  bool json = parser.getFlag("json");
  auto arrayBytes = static_cast<std::size_t>(parser.getInt("array-bytes"));
  auto alignment = static_cast<std::size_t>(parser.getInt("alignment"));
  auto alignOffset = static_cast<std::size_t>(parser.getInt("align-offset"));
  auto elementBytes = static_cast<std::size_t>(parser.getInt("element-bytes"));
  int nbVectors = static_cast<int>(parser.getInt("nbvectors"));
  if (elementBytes == 0) {
    std::fprintf(stderr, "error: --element-bytes must be > 0\n");
    return 2;
  }
  std::int64_t tripCount =
      parser.has("n") ? static_cast<std::int64_t>(parser.getInt("n"))
                      : static_cast<std::int64_t>(arrayBytes / elementBytes);

  std::size_t totalErrors = 0;
  std::size_t totalWarnings = 0;
  std::size_t totalUnits = 0;

  // Lints one assembly unit under the same launch geometry the explore
  // driver would use (so lint verdicts match the campaign pre-flight).
  auto lintUnit = [&](const std::string& label, const std::string& asmText,
                      int arrayCount) {
    verify::VerifyOptions options;
    if (arrayCount > 0) options.arrayCount = arrayCount;
    verify::LaunchContext context;
    context.tripCount = tripCount;
    int arrays = arrayCount > 0 ? arrayCount : 5;
    for (int i = 0; i < arrays; ++i) {
      context.arrays.push_back(
          verify::ArrayExtent{arrayBytes, alignment, alignOffset});
    }
    options.context = std::move(context);
    verify::VerifyReport report = verify::verifyAssembly(asmText, options);
    totalErrors += report.errorCount();
    totalWarnings += report.warningCount();
    ++totalUnits;
    std::string rendered = json ? verify::renderJsonLines(report, label)
                                : verify::renderText(report, label);
    std::fputs(rendered.c_str(), stdout);
  };

  for (const std::string& path : inputs) {
    if (strings::endsWith(path, ".xml")) {
      creator::MicroCreator creator;
      // The pipeline's own Verification pass would silently drop the very
      // variants lint exists to report on; run the raw emitted programs.
      creator.passManager().removePass("Verification");
      std::vector<creator::GeneratedProgram> programs =
          creator.generateFromFile(path);
      for (const creator::GeneratedProgram& p : programs) {
        int arrays = nbVectors > 0 ? nbVectors : p.arrayCount;
        lintUnit(path + ":" + p.name, p.asmText, arrays);
      }
    } else {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw McError("cannot open input file: " + path);
      std::ostringstream oss;
      oss << in.rdbuf();
      lintUnit(path, oss.str(), nbVectors);
    }
  }
  if (!json) {
    std::printf("lint: %zu unit(s), %zu error(s), %zu warning(s)\n",
                totalUnits, totalErrors, totalWarnings);
  }
  return totalErrors == 0 ? 0 : 1;
}

cli::Parser makeAnalyzeParser() {
  cli::Parser parser(
      "microtools analyze",
      "Statically predicts each kernel's steady-state cycles/iteration "
      "lower bound from the port-level cost model: the dispatch-width "
      "(frontend), port-pressure (throughput) and dependence-recurrence "
      "(latency) bounds, the binding resource, and the muOpTime-style "
      "stability verdict the halving planner uses to cut screening "
      "repetitions. Inputs are .s files, or .xml descriptions whose "
      "generated variants are each analyzed. Nothing is assembled or "
      "executed. Exits 0 when every unit got a valid bound, 1 otherwise.");
  parser.addString("input", "Kernel assembly (.s) or description (.xml); "
                            "extra positional paths are analyzed too");
  parser.addString("arch",
                   "Machine whose port geometry and L1 size the bounds are "
                   "priced against (see microlauncher --list-arch)",
                   "nehalem_x5650_2s");
  parser.addInt("nbvectors",
                "Arrays passed to the kernel (0 = derive from the generated "
                "program; bare .s files then score fits_l1 as unknown)",
                0);
  parser.addInt("array-bytes", "Size of each array in bytes", 1 << 20);
  parser.addFlag("json", "Emit one JSON object per analyzed unit "
                         "(JSON lines)");
  parser.addFlag("verbose", "Enable info logging");
  return parser;
}

std::string analyzeJsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strings::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

int runAnalyzeCommand(int argc, char** argv) {
  cli::Parser parser = makeAnalyzeParser();
  if (!parser.parse(argc, argv)) return 0;  // --help handled

  std::vector<std::string> inputs = parser.positional();
  if (parser.has("input")) {
    inputs.insert(inputs.begin(), parser.getString("input"));
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "error: no input (.s or .xml) to analyze "
                         "(see --help)\n");
    return 2;
  }
  if (parser.getFlag("verbose")) log::setLevel(log::Level::Info);

  bool json = parser.getFlag("json");
  auto arrayBytes = static_cast<std::uint64_t>(parser.getInt("array-bytes"));
  int nbVectors = static_cast<int>(parser.getInt("nbvectors"));
  verify::CoreModel model = verify::coreModelFromMachine(
      launcher::archByName(parser.getString("arch")).config);

  std::size_t totalUnits = 0;
  std::size_t unbounded = 0;  // units without a valid prediction
  bool headerPrinted = false;

  auto analyzeUnit = [&](const std::string& label, const std::string& asmText,
                         int arrayCount) {
    ++totalUnits;
    verify::CyclePrediction p = verify::predictAssembly(asmText, model);
    verify::StabilityOptions geometry;
    if (arrayCount > 0) {
      geometry.footprintBytes =
          static_cast<std::uint64_t>(arrayCount) * arrayBytes;
    }
    verify::StabilityReport s =
        verify::analyzeStability(asmText, model, geometry);
    if (!p.valid) ++unbounded;

    if (json) {
      std::ostringstream out;
      out << "{\"source\":\"" << analyzeJsonEscape(label) << "\"";
      if (p.valid) {
        out << ",\"pred_cpi_lo\":" << strings::format("%.6g", p.cyclesLowerBound())
            << ",\"bound\":\"" << analyzeJsonEscape(p.binding) << "\""
            << ",\"frontend_bound\":" << strings::format("%.6g", p.frontendBound)
            << ",\"throughput_bound\":"
            << strings::format("%.6g", p.throughputBound)
            << ",\"latency_bound\":" << strings::format("%.6g", p.latencyBound)
            << ",\"load_carried\":" << (p.loadCarried ? "true" : "false");
        out << ",\"ports\":[";
        for (std::size_t i = 0; i < p.pressure.size(); ++i) {
          const verify::PortPressure& port = p.pressure[i];
          out << (i ? "," : "") << "{\"unit\":\""
              << analyzeJsonEscape(port.unit) << "\",\"occupancy\":"
              << strings::format("%.6g", port.occupancy)
              << ",\"ports\":" << port.ports
              << ",\"bound\":" << strings::format("%.6g", port.bound()) << "}";
        }
        out << "]";
      } else {
        out << ",\"pred_cpi_lo\":null";
      }
      out << ",\"stability\":{\"regular_loop\":"
          << (s.regularLoop ? "true" : "false")
          << ",\"fits_l1\":" << (s.fitsL1 ? "true" : "false")
          << ",\"steady_dependences\":"
          << (s.steadyDependences ? "true" : "false")
          << ",\"score\":" << strings::format("%.6g", s.score())
          << ",\"stable\":" << (s.stable() ? "true" : "false") << "}";
      out << ",\"warnings\":[";
      for (std::size_t i = 0; i < p.warnings.size(); ++i) {
        out << (i ? "," : "") << "\"" << analyzeJsonEscape(p.warnings[i])
            << "\"";
      }
      out << "]}\n";
      std::fputs(out.str().c_str(), stdout);
      return;
    }

    if (!headerPrinted) {
      std::printf("%-42s %9s %-10s %8s %8s %8s %6s\n", "unit", "pred_cpi",
                  "bound", "frontend", "port", "latency", "stable");
      headerPrinted = true;
    }
    if (p.valid) {
      std::printf("%-42s %9.4f %-10s %8.4f %8.4f %8.4f %3d/3\n",
                  label.c_str(), p.cyclesLowerBound(), p.binding.c_str(),
                  p.frontendBound, p.throughputBound, p.latencyBound,
                  static_cast<int>(s.regularLoop) +
                      static_cast<int>(s.fitsL1) +
                      static_cast<int>(s.steadyDependences));
    } else {
      std::printf("%-42s %9s %-10s %8s %8s %8s %3d/3\n", label.c_str(), "-",
                  "-", "-", "-", "-",
                  static_cast<int>(s.regularLoop) +
                      static_cast<int>(s.fitsL1) +
                      static_cast<int>(s.steadyDependences));
    }
    for (const std::string& warning : p.warnings) {
      std::printf("  warning: %s\n", warning.c_str());
    }
  };

  for (const std::string& path : inputs) {
    if (strings::endsWith(path, ".xml")) {
      // Analyze the variants explore would measure: the pipeline's own
      // Verification pass stays on, so the unit set matches the campaign.
      creator::MicroCreator creator;
      std::vector<creator::GeneratedProgram> programs =
          creator.generateFromFile(path);
      for (const creator::GeneratedProgram& p : programs) {
        int arrays = nbVectors > 0 ? nbVectors : p.arrayCount;
        analyzeUnit(path + ":" + p.name, p.asmText, arrays);
      }
    } else {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw McError("cannot open input file: " + path);
      std::ostringstream oss;
      oss << in.rdbuf();
      analyzeUnit(path, oss.str(), nbVectors);
    }
  }
  if (!json) {
    std::printf("analyze: %zu unit(s), %zu without a valid bound\n",
                totalUnits, unbounded);
  }
  return unbounded == 0 ? 0 : 1;
}

cli::Parser makeBenchDiffParser() {
  cli::Parser parser(
      "microtools bench-diff",
      "Compares two campaign CSV files (old, then new) variant by variant. "
      "Rows are joined by variant name and rolled up (median, p95, CV); a "
      "delta only counts as a regression when it exceeds "
      "max(--threshold, --cv-mult * sqrt(cvOld^2 + cvNew^2)) — a change "
      "inside the combined measurement noise proves nothing. Environment "
      "drift between the files' snapshot headers is reported alongside. "
      "Exits 0 when no regression was flagged, 1 on regression, 2 on usage "
      "errors or when the files share no comparable variant.");
  parser.addString("metric", "Campaign CSV column to compare",
                   "cycles_per_iteration_median");
  parser.addDouble("threshold",
                   "Minimum relative delta flagged at all (0.05 = 5%)", 0.05);
  parser.addDouble("cv-mult",
                   "Noise multiplier applied to the pooled CV", 3.0);
  parser.addFlag("json", "Emit the full report as JSON instead of a table");
  return parser;
}

int runBenchDiffCommand(int argc, char** argv) {
  cli::Parser parser = makeBenchDiffParser();
  if (!parser.parse(argc, argv)) return 0;  // --help handled

  if (parser.positional().size() != 2) {
    std::fprintf(stderr,
                 "error: bench-diff needs exactly two CSV files: "
                 "<old.csv> <new.csv> (see --help)\n");
    return 2;
  }
  launcher::BenchDiffOptions options;
  options.metric = parser.getString("metric");
  options.relThreshold = parser.getDouble("threshold");
  options.cvMultiplier = parser.getDouble("cv-mult");

  launcher::BenchDiffReport report;
  try {
    report = launcher::benchDiff(parser.positional()[0],
                                 parser.positional()[1], options);
  } catch (const McError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::string rendered = parser.getFlag("json")
                             ? launcher::renderBenchDiffJson(report)
                             : launcher::renderBenchDiffTable(report);
  std::fputs(rendered.c_str(), stdout);
  return report.regressions == 0 ? 0 : 1;
}

cli::Parser makeServeParser() {
  cli::Parser parser(
      "microtools serve",
      "Runs the campaign-service daemon: owns the shared content-addressed "
      "measurement cache, hands out idempotent work leases to `microtools "
      "explore --connect` workers sharding one campaign, and merges every "
      "worker's rows into the canonical campaign CSV and ranked report — "
      "byte-identical to a single-process run. Scheduling is cache-first: "
      "warm variants are answered inline with zero backend work. Runs until "
      "SIGINT/SIGTERM, then drains in-flight leases and prints per-worker "
      "cache telemetry.");
  parser.addString("listen",
                   "Bind address: host:port (port 0 = ephemeral, printed on "
                   "startup) or unix:/path",
                   "127.0.0.1:0");
  parser.addString("cache", "Shared measurement cache directory",
                   ".microtools-cache");
  parser.addString("csv",
                   "Write the canonical merged campaign CSV here when a "
                   "campaign completes (rows in sequence order)");
  parser.addString("report",
                   "Write the canonical ranked report here when a campaign "
                   "completes");
  parser.addInt("top", "Ranked-report size (0 = all)", 0);
  parser.addInt("lease-deadline-ms",
                "A lease not acknowledged within this window is re-issued "
                "to the next worker that asks",
                30000);
  parser.addInt("max-leases",
                "Outstanding leases one worker may hold (0 = twice its "
                "announced measurement jobs, at least 2)",
                0);
  parser.addInt("drain-timeout-ms",
                "On shutdown, wait this long for in-flight leases before "
                "cutting connections",
                10000);
  parser.addFlag("verbose", "Enable info logging");
  return parser;
}

int runServeCommand(int argc, char** argv) {
  cli::Parser parser = makeServeParser();
  if (!parser.parse(argc, argv)) return 0;  // --help handled

  launcher::ServeOptions options;
  options.listen = parser.getString("listen");
  options.cacheDir = parser.getString("cache");
  if (parser.has("csv")) options.csvPath = parser.getString("csv");
  if (parser.has("report")) options.reportPath = parser.getString("report");
  options.topK = static_cast<int>(parser.getInt("top"));
  options.leaseDeadlineMs =
      static_cast<int>(parser.getInt("lease-deadline-ms"));
  options.maxLeasesPerWorker = static_cast<int>(parser.getInt("max-leases"));
  options.drainTimeoutMs =
      static_cast<int>(parser.getInt("drain-timeout-ms"));
  if (parser.getFlag("verbose")) log::setLevel(log::Level::Info);
  return launcher::serveMain(options);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "help") == 0) {
    printUsage();
    return argc < 2 ? 2 : 0;
  }
  try {
    if (std::strcmp(argv[1], "explore") == 0) {
      return runExploreCommand(argc - 1, argv + 1);
    }
    if (std::strcmp(argv[1], "lint") == 0) {
      return runLintCommand(argc - 1, argv + 1);
    }
    if (std::strcmp(argv[1], "analyze") == 0) {
      return runAnalyzeCommand(argc - 1, argv + 1);
    }
    if (std::strcmp(argv[1], "bench-diff") == 0) {
      return runBenchDiffCommand(argc - 1, argv + 1);
    }
    if (std::strcmp(argv[1], "serve") == 0) {
      return runServeCommand(argc - 1, argv + 1);
    }
    std::fprintf(stderr, "error: unknown subcommand '%s'\n\n", argv[1]);
    printUsage();
    return 2;
  } catch (const McError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
