// The `microlauncher` command-line tool: executes kernels in a stable,
// controlled environment and reports cycles/iteration as CSV (§4).

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "launcher/arch_registry.hpp"
#include "launcher/campaign.hpp"
#include "launcher/launcher.hpp"
#include "launcher/options.hpp"
#include "launcher/planner.hpp"
#include "launcher/predict.hpp"
#include "launcher/remote_store.hpp"
#include "launcher/sim_backend.hpp"
#include "native/affinity.hpp"
#include "native/compile.hpp"
#include "native/native_backend.hpp"
#include "native/timing.hpp"
#include "support/envinfo.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

using namespace microtools;
using launcher::LauncherOptions;

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw McError("cannot open input file: " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

std::string detectKind(const LauncherOptions& options) {
  if (options.inputKind != "auto") return options.inputKind;
  if (strings::endsWith(options.inputFile, ".s")) return "asm";
  if (strings::endsWith(options.inputFile, ".c")) return "c";
  if (strings::endsWith(options.inputFile, ".so")) return "so";
  return "asm";
}

std::unique_ptr<launcher::Backend> makeBackend(const LauncherOptions& o) {
  if (o.backend == "native") {
    native::NativeBackendOptions nb;
    nb.compileCacheDir = o.compileCacheDir;
    nb.perfCounters = o.perfCounters;
    return std::make_unique<native::NativeBackend>(std::move(nb));
  }
  sim::MachineConfig config = launcher::archByName(o.arch).config;
  if (o.coreGHz) config.coreGHz = *o.coreGHz;
  return std::make_unique<launcher::SimBackend>(config);
}

std::unique_ptr<launcher::KernelHandle> loadKernel(
    launcher::Backend& backend, const LauncherOptions& options) {
  std::string kind = detectKind(options);
  if (kind == "asm") {
    return backend.load(readFile(options.inputFile), options.function);
  }
  auto* nb = dynamic_cast<native::NativeBackend*>(&backend);
  if (!nb) {
    throw McError("input kind '" + kind +
                  "' requires --backend native (the simulator executes "
                  "assembly kernels)");
  }
  if (kind == "c") {
    return nb->loadCSource(readFile(options.inputFile), options.function);
  }
  if (kind == "so") {
    return nb->loadSharedObject(options.inputFile, options.function);
  }
  throw McError("unknown input kind: " + kind);
}

int runStandalone(const LauncherOptions& options) {
  // §4.1: "In the case of an application, MicroLauncher forks its execution
  // to run the program as a stand-alone application and times it."
  int processes = std::max(1, options.processes);
  std::uint64_t t0 = native::readTsc();
  std::vector<pid_t> pids;
  for (int p = 0; p < processes; ++p) {
    pid_t pid = fork();
    if (pid < 0) throw McError("fork failed");
    if (pid == 0) {
      native::pinToCore(p);
      execl("/bin/sh", "sh", "-c", options.standaloneProgram.c_str(),
            static_cast<char*>(nullptr));
      _exit(127);
    }
    pids.push_back(pid);
  }
  int failures = 0;
  for (pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
  }
  std::uint64_t t1 = native::readTsc();
  std::printf("processes,%d\nelapsed_tsc_cycles,%llu\nfailures,%d\n",
              processes, static_cast<unsigned long long>(t1 - t0), failures);
  return failures == 0 ? 0 : 1;
}

int runCampaign(const LauncherOptions& options) {
  std::vector<launcher::CampaignVariant> variants =
      launcher::loadCampaignDirectory(options.campaignDir, options.function);

  launcher::CampaignOptions campaign;
  campaign.jobs = options.jobs;
  campaign.protocol = options.toProtocol();
  campaign.maxCv = options.maxCv;
  campaign.maxRepetitions = options.maxRepetitions;
  campaign.variantTimeoutMs = options.variantTimeoutMs;
  campaign.compileJobs = options.compileJobs;
  campaign.compileBatch = options.compileBatch;
  campaign.verify = launcher::verifyModeFromName(options.verifyMode);
  // Native workers time on real cores: spread them so they don't fight
  // over one. The simulator pins inside its own machine model instead.
  campaign.pinWorkers = options.backend == "native";

  // Static cost-model annotation (pred_cpi_lo/pred_bound/pred_err CSV
  // columns), priced against --arch; --no-predict turns it off.
  std::shared_ptr<launcher::StaticAnnotator> annotator;
  if (options.predict) {
    annotator =
        launcher::makeStaticAnnotator(options.arch, options.toRequest());
  }
  launcher::installPredict(campaign, annotator);

  bool halving = options.searchMode == "halving";
  if (!options.connectAddr.empty() && halving) {
    throw McError(
        "--connect requires the full sweep: the halving planner adapts the "
        "protocol per round, which sharded workers cannot coordinate");
  }

  // Resuming into an existing CSV: rows already completed there are
  // skipped, so an interrupted campaign restart pays only for what is
  // missing. A halving search resumes per round instead — the planner
  // reads the file round by round.
  if (!options.csvOutput.empty() && !halving) {
    campaign.completed = launcher::readCompletedVariants(options.csvOutput);
  }

  // Stream rows as variants finish — to the CSV file when given (append-safe
  // across reruns), to stdout otherwise.
  std::unique_ptr<launcher::CampaignCsvSink> sink;
  if (!options.csvOutput.empty()) {
    // New files get an environment-snapshot preamble so two campaign CSVs
    // are comparable on their face (bench-diff reports drift).
    env::EnvSnapshot snapshot = env::captureEnv();
    if (options.backend == "native") {
      snapshot.set("compiler",
                   native::compilerIdentity(options.compileCacheDir));
    }
    sink = std::make_unique<launcher::CampaignCsvSink>(
        options.csvOutput, env::toCsvComments(snapshot));
  } else {
    sink = std::make_unique<launcher::CampaignCsvSink>(std::cout);
  }

  launcher::BackendFactory factory = [&options](int) {
    return makeBackend(options);
  };

  std::vector<launcher::VariantResult> results;
  if (!options.connectAddr.empty()) {
    // Sharded worker against a `microtools serve` daemon. The backend
    // identity mirrors the explore driver's so both kinds of worker (and a
    // single-process run over the daemon's cache directory) share keys.
    std::string backendId = options.backend == "sim"
                                ? "sim:" + options.arch
                                : options.backend;
    if (options.coreGHz) {
      backendId += strings::format("@%.3fGHz", *options.coreGHz);
    }
    launcher::RemoteOptions remote;
    remote.worker = options.workerName;
    remote.jobs = campaign.jobs;
    std::shared_ptr<launcher::RemoteResultStore> store =
        launcher::bindRemoteCampaign(options.connectAddr, remote, variants,
                                     backendId, options.toRequest(),
                                     campaign);
    // Dispatch must stream per variant: the batch path resolves every
    // variant before its pool starts, so a worker at its lease cap would
    // sleep in `defer` with nothing draining its queue.
    launcher::CampaignRunner runner(factory, campaign);
    // Rotated traversal: the daemon's joining ordinal staggers where each
    // fleet member starts, so workers lease disjoint stretches; the row
    // observer rewrites sequences back to the canonical order.
    std::size_t offset =
        launcher::shardOffset(store->ordinal(), variants.size());
    std::size_t next = 0;
    results = runner.runStream(
        [&variants, &next, offset]() -> std::optional<launcher::CampaignVariant> {
          if (next >= variants.size()) return std::nullopt;
          return variants[(offset + next++) % variants.size()];
        },
        options.toRequest(), sink.get());
    const launcher::CacheTelemetry t = store->telemetry();
    std::fprintf(stderr, "service: %s (%llu hit(s), %llu lease(s) "
                 "measured)\n",
                 options.connectAddr.c_str(),
                 static_cast<unsigned long long>(t.hits),
                 static_cast<unsigned long long>(t.misses));
  } else if (halving) {
    launcher::PlannerOptions planner;
    planner.screenRepetitions = options.screenRepetitions;
    planner.stableScreenRepetitions = options.stableScreenRepetitions;
    planner.budget = launcher::parseBudget(options.budget);
    if (!options.csvOutput.empty()) planner.resumeCsv = options.csvOutput;
    launcher::installPlannerHooks(planner, annotator);
    launcher::PlannerResult planned = launcher::runSuccessiveHalving(
        variants, options.toRequest(), factory, campaign, planner,
        /*bindCache=*/nullptr, sink.get());
    results = std::move(planned.results);
    if (!options.csvOutput.empty()) {
      std::printf("halving: %zu of %zu variant(s) at full fidelity after "
                  "%zu round(s), %lld work repetition(s), stop: %s\n",
                  planned.fullFidelityVariants, variants.size(),
                  planned.rounds.size(), planned.workRepetitions,
                  planned.stopReason.c_str());
    }
  } else {
    launcher::CampaignRunner runner(factory, campaign);
    results = runner.run(variants, options.toRequest(), sink.get());
  }

  int failures = 0, skipped = 0;
  for (const launcher::VariantResult& r : results) {
    if (r.status == "skipped") {
      ++skipped;
    } else if (r.status != "ok") {
      ++failures;
    }
  }
  if (!options.csvOutput.empty()) {
    std::printf("campaign: %zu variant(s), %d skipped (resumed or failed "
                "verification), %d failed\n",
                results.size(), skipped, failures);
  }
  if (failures > 0) {
    log::warn(std::to_string(failures) + " of " +
              std::to_string(results.size()) + " variants did not complete");
  }
  return 0;
}

void emitCsv(const LauncherOptions& options, const csv::Table& table) {
  if (options.csvOutput.empty()) {
    table.write(std::cout);
    return;
  }
  std::ofstream out(options.csvOutput, std::ios::binary);
  if (!out) throw McError("cannot write CSV file: " + options.csvOutput);
  table.write(out);
}

}  // namespace

int main(int argc, char** argv) {
  cli::Parser parser = launcher::makeLauncherParser();
  try {
    if (!parser.parse(argc, argv)) return 0;
    LauncherOptions options = launcher::optionsFromParser(parser);
    if (options.verbose) log::setLevel(log::Level::Info);

    if (options.listArch) {
      for (const launcher::ArchEntry& entry : launcher::table1()) {
        std::string figs;
        for (int f : entry.figures) {
          figs += (figs.empty() ? "" : ", ") + std::to_string(f);
        }
        std::printf("%-22s %s [figures %s]\n", entry.config.name.c_str(),
                    entry.description.c_str(), figs.c_str());
      }
      return 0;
    }
    if (!options.standaloneProgram.empty()) return runStandalone(options);
    if (!options.campaignDir.empty()) return runCampaign(options);
    if (options.inputFile.empty()) {
      std::fprintf(stderr, "error: no --input kernel (see --help)\n");
      return 2;
    }

    launcher::MicroLauncher ml(makeBackend(options));
    auto kernel = loadKernel(ml.backend(), options);
    launcher::KernelRequest request = options.toRequest();
    launcher::ProtocolOptions protocol = options.toProtocol();

    if (options.useOpenMp) {
      launcher::InvokeResult r = ml.openmp(*kernel, request, options.threads,
                                           options.ompRepetitions);
      csv::Table table({"threads", "repetitions", "tsc_cycles", "iterations",
                        "cycles_per_iteration"});
      table.beginRow()
          .add(options.threads)
          .add(options.ompRepetitions)
          .add(r.tscCycles, 0)
          .add(static_cast<std::uint64_t>(r.iterations))
          .add(r.iterations ? r.tscCycles / static_cast<double>(r.iterations)
                            : 0.0)
          .commit();
      emitCsv(options, table);
      return 0;
    }

    if (options.processes > 1) {
      auto results = ml.fork(*kernel, request, options.processes,
                             options.forkCalls,
                             options.pinPolicy == "compact"
                                 ? launcher::PinPolicy::Compact
                                 : launcher::PinPolicy::Scatter);
      csv::Table table({"process", "tsc_cycles", "iterations",
                        "cycles_per_iteration"});
      for (std::size_t p = 0; p < results.size(); ++p) {
        table.beginRow()
            .add(static_cast<std::uint64_t>(p))
            .add(results[p].tscCycles, 0)
            .add(static_cast<std::uint64_t>(results[p].iterations))
            .add(results[p].iterations
                     ? results[p].tscCycles /
                           static_cast<double>(results[p].iterations)
                     : 0.0)
            .commit();
      }
      emitCsv(options, table);
      return 0;
    }

    if (options.sweepAlignment) {
      launcher::AlignmentSweepSpec spec;
      spec.minOffset = options.alignMin;
      spec.maxOffset = options.alignMax;
      spec.step = options.alignStep;
      spec.maxConfigs = options.maxAlignConfigs;
      auto samples = ml.alignmentSweep(*kernel, request, spec, protocol);
      std::vector<std::string> header;
      for (std::size_t a = 0; a < request.arrays.size(); ++a) {
        header.push_back("offset" + std::to_string(a));
      }
      header.insert(header.end(),
                    {"cycles_per_iteration_min", "cycles_per_iteration_max"});
      csv::Table table(header);
      for (const auto& sample : samples) {
        auto row = table.beginRow();
        for (std::uint64_t off : sample.offsets) row.add(off);
        row.add(sample.measurement.cyclesPerIteration.min)
            .add(sample.measurement.cyclesPerIteration.max)
            .commit();
      }
      emitCsv(options, table);
      return 0;
    }

    launcher::Measurement m = ml.measure(*kernel, request, protocol);
    if (options.reportFullKernelTime) {
      csv::Table table({"configuration", "total_tsc_cycles"});
      table.beginRow().add(options.inputFile).add(m.totalCycles, 0).commit();
      emitCsv(options, table);
    } else {
      emitCsv(options, launcher::MicroLauncher::toCsv(
                           {{options.inputFile, m}}));
    }
    return 0;
  } catch (const McError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
