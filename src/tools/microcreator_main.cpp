// The `microcreator` command-line tool: XML kernel description in, a set of
// benchmark programs out (§3 of the paper).

#include <cstdio>
#include <iostream>

#include "creator/creator.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

using namespace microtools;

int main(int argc, char** argv) {
  cli::Parser parser(
      "microcreator",
      "Generates microbenchmark program variations from an XML kernel "
      "description.");
  parser.addString("input", "XML kernel description file");
  parser.addString("output", "Output directory for generated programs",
                   "generated");
  parser.addRepeated("plugin", "Plugin shared library to load (repeatable)");
  parser.addFlag("list-passes", "Print the pass pipeline and exit");
  parser.addFlag("dry-run", "Generate but do not write files");
  parser.addFlag("names-only", "Print only the variant names");
  parser.addInt("max", "Override <maximum_benchmarks>");
  parser.addInt("seed", "Override <seed>");
  parser.addInt("generate-jobs",
                "Worker threads for the per-kernel generation stages "
                "(variant expansion, code emission, verification); output "
                "is bit-identical to --generate-jobs 1",
                1);
  parser.addFlag("emit-c", "Also emit C source for each variant");
  parser.addFlag("verbose", "Enable info logging");

  try {
    if (!parser.parse(argc, argv)) return 0;
    if (parser.getFlag("verbose")) log::setLevel(log::Level::Info);

    creator::MicroCreator creator;
    creator.setGenerateJobs(static_cast<int>(parser.getInt("generate-jobs")));
    for (const std::string& plugin : parser.getRepeated("plugin")) {
      creator.loadPlugin(plugin);
    }

    if (parser.getFlag("list-passes")) {
      int index = 1;
      for (const std::string& name : creator.passManager().passNames()) {
        std::printf("%2d. %s\n", index++, name.c_str());
      }
      return 0;
    }

    std::string input;
    if (parser.has("input")) {
      input = parser.getString("input");
    } else if (!parser.positional().empty()) {
      input = parser.positional().front();
    } else {
      std::fprintf(stderr, "error: no input file (see --help)\n");
      return 2;
    }

    creator::Description description = creator::parseDescriptionFile(input);
    if (parser.has("max")) {
      description.maximumBenchmarks =
          static_cast<std::size_t>(parser.getInt("max"));
    }
    if (parser.has("seed")) {
      description.seed = static_cast<std::uint64_t>(parser.getInt("seed"));
    }
    if (parser.getFlag("emit-c")) description.emitC = true;

    std::vector<creator::GeneratedProgram> programs =
        creator.generate(description);
    std::printf("generated %zu benchmark program(s)\n", programs.size());
    if (parser.getFlag("names-only")) {
      for (const auto& p : programs) std::printf("%s\n", p.name.c_str());
      return 0;
    }
    if (!parser.getFlag("dry-run")) {
      auto written =
          creator::writePrograms(programs, parser.getString("output"));
      std::printf("wrote %zu file(s) to %s\n", written.size(),
                  parser.getString("output").c_str());
    }
    return 0;
  } catch (const McError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
