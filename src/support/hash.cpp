#include "support/hash.hpp"

#include <cstring>

namespace microtools::hash {

Fnv1a& Fnv1a::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= p[i];
    state_ *= kPrime;
  }
  return *this;
}

Fnv1a& Fnv1a::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

Fnv1a& Fnv1a::u64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  return bytes(buf, sizeof buf);
}

Fnv1a& Fnv1a::i64(std::int64_t v) {
  return u64(static_cast<std::uint64_t>(v));
}

Fnv1a& Fnv1a::f64(double v) {
  if (v == 0.0) v = 0.0;  // fold -0.0 and +0.0 into one key
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return u64(bits);
}

Fnv1a& Fnv1a::boolean(bool v) { return u64(v ? 1 : 0); }

std::string Fnv1a::hex() const { return toHex(state_); }

std::uint64_t fnv1a(std::string_view s) {
  Fnv1a h;
  h.bytes(s.data(), s.size());
  return h.value();
}

std::string toHex(std::uint64_t v) {
  static const char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace microtools::hash
