#pragma once

#include <string>
#include <vector>

namespace microtools::env {

/// One key=value fact about the measurement environment. Keys are stable
/// ("cpu_model", "governor", ...) so two snapshots can be diffed field by
/// field; values are free-form single-line strings.
struct EnvField {
  std::string key;
  std::string value;
};

/// Snapshot of everything that makes two measurement runs comparable on
/// their face: CPU model and count, scaling governor, turbo/boost state,
/// load average, kernel release, hostname, and (when the caller fills it
/// in) the compiler identity. Fields whose source file or sysctl does not
/// exist on this machine are reported as "unknown" rather than omitted, so
/// every snapshot has the same shape.
struct EnvSnapshot {
  std::vector<EnvField> fields;

  /// Value for `key`, or "" when absent.
  std::string get(const std::string& key) const;
  /// Sets or replaces the value for `key` (single-line; newlines stripped).
  void set(const std::string& key, const std::string& value);
};

/// Captures the current environment. Purely file/sysfs reads — never fails,
/// missing sources degrade to "unknown". The "compiler" field is left for
/// the caller (support cannot depend on the native layer).
EnvSnapshot captureEnv();

/// Renders the snapshot as CSV comment lines ("# env.key=value\n" each),
/// suitable as a preamble before a CSV header. Parsers that skip '#' lines
/// are unaffected.
std::string toCsvComments(const EnvSnapshot& snapshot);

/// Parses "# env.key=value" lines out of CSV text (non-matching lines are
/// ignored), the inverse of toCsvComments for bench-diff's env comparison.
EnvSnapshot fromCsvComments(const std::string& text);

}  // namespace microtools::env
