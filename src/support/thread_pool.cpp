#include "support/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "support/error.hpp"
#include "support/log.hpp"

namespace microtools::threads {

ThreadPool::ThreadPool(int workers) {
  if (workers < 1) throw McError("thread pool requires >= 1 worker");
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void(int)> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw McError("thread pool is shutting down");
    queue_.push_back(std::move(task));
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  allIdle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::workerLoop(int index) {
  for (;;) {
    std::function<void(int)> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      taskReady_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task(index);
    } catch (const std::exception& e) {
      log::error(std::string("thread-pool task threw: ") + e.what());
    } catch (...) {
      log::error("thread-pool task threw a non-std exception");
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) allIdle_.notify_all();
    }
  }
}

void parallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (pool == nullptr || pool->workers() <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Contiguous chunks keep cache locality and make "lowest failing index"
  // cheap: the lowest-numbered chunk's first error is the global first error.
  const auto workers = static_cast<std::size_t>(pool->workers());
  const std::size_t chunks = std::min(count, workers * 4);
  const std::size_t per = (count + chunks - 1) / chunks;
  std::vector<std::exception_ptr> firstError(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    pool->submit([&body, &firstError, c, per, count](int) {
      const std::size_t begin = c * per;
      const std::size_t end = std::min(count, begin + per);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          body(i);
        } catch (...) {
          if (!firstError[c]) firstError[c] = std::current_exception();
        }
      }
    });
  }
  pool->wait();
  for (std::exception_ptr& e : firstError) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace microtools::threads
