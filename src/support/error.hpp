#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace microtools {

/// Base exception for all MicroTools errors.
///
/// Every layer throws a subclass of McError so callers can catch one type at
/// the tool boundary and still keep rich per-layer context in the message.
class McError : public std::runtime_error {
 public:
  explicit McError(std::string message)
      : std::runtime_error(message), message_(std::move(message)) {}

  const std::string& message() const noexcept { return message_; }

 private:
  std::string message_;
};

/// Error raised while parsing an input artifact (XML, assembly, CLI text).
/// Carries a 1-based line number when one is known (0 otherwise), and a
/// 1-based column when the offending token's position is known too.
class ParseError : public McError {
 public:
  ParseError(std::string message, std::size_t line = 0,
             std::size_t column = 0)
      : McError(render(message, line, column)),
        line_(line),
        column_(column) {}

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  static std::string render(const std::string& message, std::size_t line,
                            std::size_t column) {
    if (!line) return message;
    if (!column) return "line " + std::to_string(line) + ": " + message;
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column) + ": " + message;
  }

  std::size_t line_ = 0;
  std::size_t column_ = 0;
};

/// Error raised when a kernel description is well-formed but semantically
/// invalid (unknown register, contradictory unroll bounds, ...).
class DescriptionError : public McError {
 public:
  using McError::McError;
};

/// Error raised by the execution layer (backend load/run failures).
class ExecutionError : public McError {
 public:
  using McError::McError;
};

/// Error raised when a measurement exceeds its wall-clock budget (campaign
/// per-variant timeouts). Deliberately not an ExecutionError: retry logic
/// re-runs failed kernels but must not re-run ones that ran out of time.
class TimeoutError : public McError {
 public:
  using McError::McError;
};

/// Throws DescriptionError with `message` when `condition` is false.
inline void checkDescription(bool condition, const std::string& message) {
  if (!condition) throw DescriptionError(message);
}

}  // namespace microtools
