#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace microtools::cli {

/// Declarative command-line parser used by the microcreator / microlauncher
/// tools. Supports `--name value`, `--name=value`, boolean flags, repeated
/// options, and positional arguments, and renders a --help page from the
/// registered descriptions.
class Parser {
 public:
  explicit Parser(std::string programName, std::string description = "");

  /// Registers a string-valued option; returns *this for chaining.
  Parser& addString(const std::string& name, const std::string& help,
                    std::optional<std::string> defaultValue = std::nullopt);

  /// Registers an integer-valued option.
  Parser& addInt(const std::string& name, const std::string& help,
                 std::optional<std::int64_t> defaultValue = std::nullopt);

  /// Registers a double-valued option.
  Parser& addDouble(const std::string& name, const std::string& help,
                    std::optional<double> defaultValue = std::nullopt);

  /// Registers a boolean flag (no value; present = true).
  Parser& addFlag(const std::string& name, const std::string& help);

  /// Registers a string option that may be given multiple times.
  Parser& addRepeated(const std::string& name, const std::string& help);

  /// Parses argv; throws ParseError on unknown options or bad values.
  /// Returns false when --help was requested (help text printed to stdout).
  bool parse(int argc, const char* const* argv);

  /// Parses from a pre-split vector (used heavily by tests).
  bool parse(const std::vector<std::string>& args);

  bool has(const std::string& name) const;
  std::string getString(const std::string& name) const;
  std::int64_t getInt(const std::string& name) const;
  double getDouble(const std::string& name) const;
  bool getFlag(const std::string& name) const;
  const std::vector<std::string>& getRepeated(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the help page.
  std::string helpText() const;

 private:
  enum class Kind { String, Int, Double, Flag, Repeated };

  struct Option {
    Kind kind;
    std::string help;
    std::optional<std::string> defaultValue;
    bool seen = false;
    std::string value;
    std::vector<std::string> values;
  };

  Option& registerOption(const std::string& name, Kind kind,
                         const std::string& help,
                         std::optional<std::string> defaultValue);
  const Option& find(const std::string& name, Kind kind) const;

  std::string programName_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace microtools::cli
