#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace microtools::hash {

/// Streaming 64-bit FNV-1a hasher.
///
/// The measurement cache addresses results by content: a key is the FNV-1a
/// digest of everything that can change a measurement (variant source,
/// protocol options, backend identity, machine configuration). Each typed
/// mixer prefixes a length/width marker so adjacent fields cannot collide by
/// concatenation ("ab"+"c" vs "a"+"bc").
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  Fnv1a& bytes(const void* data, std::size_t size);
  Fnv1a& str(std::string_view s);  ///< mixes the length, then the bytes
  Fnv1a& u64(std::uint64_t v);
  Fnv1a& i64(std::int64_t v);
  Fnv1a& f64(double v);  ///< bit pattern; -0.0 is normalized to +0.0
  Fnv1a& boolean(bool v);

  std::uint64_t value() const { return state_; }

  /// 16 lowercase hex digits — the cache-file stem.
  std::string hex() const;

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot digest of a string.
std::uint64_t fnv1a(std::string_view s);

/// Renders a 64-bit value as 16 lowercase hex digits.
std::string toHex(std::uint64_t v);

}  // namespace microtools::hash
