#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace microtools::stats {

void Accumulator::add(double sample) {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double Accumulator::min() const {
  if (count_ == 0) throw McError("Accumulator::min on empty accumulator");
  return min_;
}

double Accumulator::max() const {
  if (count_ == 0) throw McError("Accumulator::max on empty accumulator");
  return max_;
}

double Accumulator::mean() const {
  if (count_ == 0) throw McError("Accumulator::mean on empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::cv() const {
  // stddev/mean is undefined with no samples and at mean 0 (e.g. every
  // sample clamped to 0 after overhead subtraction). Returning 0 in either
  // case would report a degenerate variant as perfectly converged; NaN
  // forces every CV-threshold comparison to fail instead, so callers mark
  // the variant non-converged.
  if (count_ == 0 || mean_ == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return stddev() / mean_;
}

double median(std::vector<double> samples) {
  if (samples.empty()) throw McError("median of empty sample set");
  std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  double hi = samples[mid];
  if (samples.size() % 2 == 1) return hi;
  double lo = *std::max_element(samples.begin(), samples.begin() + mid);
  return (lo + hi) / 2.0;
}

bool nanLastLess(double a, double b) {
  bool na = std::isnan(a);
  bool nb = std::isnan(b);
  if (na != nb) return nb;  // numbers before NaN
  if (na) return false;     // NaN == NaN under this order
  return a < b;
}

bool withinNoise(double a, double cvA, double b, double cvB,
                 double multiplier) {
  if (std::isnan(a) || std::isnan(b)) return true;
  if (std::isnan(cvA) || std::isnan(cvB)) return true;
  double sigmaA = cvA * a;
  double sigmaB = cvB * b;
  double combined = std::sqrt(sigmaA * sigmaA + sigmaB * sigmaB);
  return std::fabs(a - b) <= multiplier * combined;
}

Summary summarize(const std::vector<double>& samples) {
  if (samples.empty()) throw McError("summarize of empty sample set");
  Accumulator acc;
  for (double s : samples) acc.add(s);
  Summary out;
  out.count = acc.count();
  out.min = acc.min();
  out.max = acc.max();
  out.mean = acc.mean();
  out.median = median(samples);
  out.stddev = acc.stddev();
  out.cv = acc.cv();
  return out;
}

}  // namespace microtools::stats
