#pragma once

#include <cstddef>
#include <string>

namespace microtools::net {

/// Minimal RAII wrapper over a connected stream socket (TCP or Unix
/// domain). Move-only; the descriptor is closed on destruction. All I/O is
/// blocking; failures throw McError with the errno text — callers treat a
/// throw as "peer gone", never as state to recover field by field.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes exactly `size` bytes (looping over partial writes / EINTR).
  void sendAll(const void* data, std::size_t size);

  /// Reads exactly `size` bytes. Returns false on clean EOF before the
  /// first byte; throws on errors or EOF mid-buffer.
  bool recvAll(void* data, std::size_t size);

  /// Half-closes both directions — unblocks a peer (or another thread of
  /// this process) sleeping in recv. Safe to call from any thread while
  /// another is blocked in sendAll/recvAll.
  void shutdown();

  void close();

 private:
  int fd_ = -1;
};

/// Listening socket bound to an address spec:
///   "127.0.0.1:7777"  TCP (port 0 picks an ephemeral port)
///   "unix:/path/sock" Unix domain (the path is unlinked first)
/// boundSpec() returns the spec with any ephemeral port resolved, in the
/// same format connectTo() accepts.
class Listener {
 public:
  Listener() = default;
  explicit Listener(const std::string& spec);
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  bool valid() const { return fd_ >= 0; }
  const std::string& boundSpec() const { return boundSpec_; }

  /// Waits up to `timeoutMs` for a connection; an invalid Socket on
  /// timeout. Throws on listener errors (including a concurrent close()).
  Socket accept(int timeoutMs);

  /// Closes the listening descriptor (and unlinks a Unix socket path),
  /// waking any accept() blocked in poll.
  void close();

 private:
  int fd_ = -1;
  std::string boundSpec_;
  std::string unixPath_;  ///< unlinked on close for "unix:" listeners
};

/// Connects to a spec in the Listener format; throws McError on failure.
Socket connectTo(const std::string& spec);

}  // namespace microtools::net
