#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace microtools::csv {

/// In-memory CSV table with a fixed header row.
///
/// MicroLauncher's primary output format (§4.3 of the paper) is a generic CSV
/// file; this class builds one and writes it to any std::ostream with RFC
/// 4180 quoting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t rowCount() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  /// Appends a row; throws McError when the column count does not match.
  void addRow(std::vector<std::string> row);

  /// Convenience row builder accepting heterogeneous cells.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& add(const std::string& v);
    RowBuilder& add(const char* v);
    RowBuilder& add(std::int64_t v);
    RowBuilder& add(std::uint64_t v);
    RowBuilder& add(int v) { return add(static_cast<std::int64_t>(v)); }
    RowBuilder& add(unsigned v) { return add(static_cast<std::uint64_t>(v)); }
    RowBuilder& add(double v, int precision = 4);
    void commit();

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder beginRow() { return RowBuilder(*this); }

  /// Writes the header and all rows with proper quoting.
  void write(std::ostream& os) const;

  /// Serializes the table to a string (used by tests and tools).
  std::string toString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quotes a single CSV field if it contains separators, quotes or newlines.
std::string quoteField(const std::string& field);

/// Splits one CSV line into fields, honoring RFC 4180 quoting (quoted
/// fields may contain commas; doubled quotes unescape to one). The inverse
/// of `quoteField` for single-line fields; embedded newlines are not
/// supported. Used by campaign resume to read completed rows back.
std::vector<std::string> parseLine(const std::string& line);

}  // namespace microtools::csv
