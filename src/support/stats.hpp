#pragma once

#include <cstddef>
#include <vector>

namespace microtools::stats {

/// Streaming accumulator for min/max/mean/variance over double samples.
///
/// MicroLauncher's outer repetition loop (§4.5) exists to verify the
/// stability of experiments; this accumulator is what the harness uses to
/// summarise the outer-loop samples.
class Accumulator {
 public:
  void add(double sample);

  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation (stddev/mean). 0 for an empty accumulator;
  /// NaN when the mean is 0 (the ratio is undefined — callers must treat
  /// such a sample set as non-converged, never as perfectly stable).
  double cv() const;

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford running sum of squared deviations
};

/// Computes the median of `samples` (copies; does not reorder the input).
double median(std::vector<double> samples);

/// Summary of a finished measurement series.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double cv = 0.0;
};

/// Builds a Summary from raw samples.
Summary summarize(const std::vector<double>& samples);

}  // namespace microtools::stats
