#pragma once

#include <cstddef>
#include <vector>

namespace microtools::stats {

/// Streaming accumulator for min/max/mean/variance over double samples.
///
/// MicroLauncher's outer repetition loop (§4.5) exists to verify the
/// stability of experiments; this accumulator is what the harness uses to
/// summarise the outer-loop samples.
class Accumulator {
 public:
  void add(double sample);

  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation (stddev/mean). NaN for an empty accumulator
  /// and NaN when the mean is 0 (the ratio is undefined in both cases —
  /// callers must treat such a sample set as non-converged, never as
  /// perfectly stable).
  double cv() const;

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford running sum of squared deviations
};

/// Computes the median of `samples` (copies; does not reorder the input).
double median(std::vector<double> samples);

/// Summary of a finished measurement series.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double cv = 0.0;
};

/// Builds a Summary from raw samples.
Summary summarize(const std::vector<double>& samples);

/// Total-order "less" over doubles that sorts NaN after every number (and
/// treats all NaNs as equivalent). Plain `a < b` is not a strict weak order
/// once NaN appears — NaN compares false both ways, so it is "equivalent"
/// to everything and transitivity of equivalence breaks, which is undefined
/// behavior in std::sort/std::stable_sort. Use this for ranking measured
/// metrics that may be NaN.
bool nanLastLess(double a, double b);

/// CV-aware noise comparison (the bench-diff gate, reused by the
/// successive-halving planner's tie guard): `a` and `b` are statistically
/// indistinguishable when |a - b| <= multiplier * sqrt((cvA*a)^2 +
/// (cvB*b)^2) — the combined standard error of the two estimates scaled by
/// `multiplier` sigmas. A NaN CV (undefined stability) or NaN value makes
/// the comparison undecidable and returns true: callers must never treat
/// an unmeasurable difference as a significant one.
bool withinNoise(double a, double cvA, double b, double cvB,
                 double multiplier);

}  // namespace microtools::stats
