#include "support/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace microtools::strings {

namespace {
bool isSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && isSpace(s[begin])) ++begin;
  std::size_t end = s.size();
  while (end > begin && isSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> splitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && isSpace(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !isSpace(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<std::int64_t> parseInt(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 0);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> parseDouble(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string replaceAll(std::string s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string escapeLineBreaks(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescapeLineBreaks(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    char next = s[++i];
    if (next == 'n') {
      out += '\n';
    } else if (next == 'r') {
      out += '\r';
    } else {
      out += next;
    }
  }
  return out;
}

}  // namespace microtools::strings
