#include "support/rng.hpp"

#include "support/error.hpp"

namespace microtools {

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used only to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next() {
  std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::nextBelow(std::uint64_t bound) {
  if (bound == 0) throw McError("Rng::nextBelow(0)");
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::nextInRange(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw McError("Rng::nextInRange: lo > hi");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(nextBelow(span));
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace microtools
