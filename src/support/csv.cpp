#include "support/csv.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::csv {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw McError("CSV table requires at least one column");
}

void Table::addRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw McError(strings::format(
        "CSV row has %zu cells, expected %zu", row.size(), header_.size()));
  }
  rows_.push_back(std::move(row));
}

Table::RowBuilder& Table::RowBuilder::add(const std::string& v) {
  cells_.push_back(v);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::add(const char* v) {
  cells_.emplace_back(v);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::add(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::add(std::uint64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::add(double v, int precision) {
  cells_.push_back(strings::format("%.*f", precision, v));
  return *this;
}

void Table::RowBuilder::commit() { table_.addRow(std::move(cells_)); }

std::string quoteField(const std::string& field) {
  bool needsQuote = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> parseLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';  // escaped quote
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r' && i + 1 == line.size()) {
      // tolerate CRLF line endings
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

void Table::write(std::ostream& os) const {
  auto writeRow = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << quoteField(row[i]);
    }
    os << '\n';
  };
  writeRow(header_);
  for (const auto& row : rows_) writeRow(row);
}

std::string Table::toString() const {
  std::ostringstream oss;
  write(oss);
  return oss.str();
}

}  // namespace microtools::csv
