#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace microtools::threads {

/// Fixed-size worker pool with stable worker indices.
///
/// Every task receives the index (in [0, workers())) of the worker that runs
/// it, so callers can give each worker exclusive, lock-free state — the
/// campaign runner uses this to hand every worker its own Backend instance
/// and (natively) its own pinned core. Tasks must handle their own domain
/// errors; an exception escaping a task is logged and swallowed so one bad
/// task cannot take the pool down.
class ThreadPool {
 public:
  /// Spawns `workers` threads; throws McError when workers < 1.
  explicit ThreadPool(int workers);

  /// Drains the queue (runs every already-submitted task), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Enqueues a task; throws McError after shutdown began.
  void submit(std::function<void(int workerIndex)> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait();

 private:
  void workerLoop(int index);

  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allIdle_;
  std::deque<std::function<void(int)>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool stop_ = false;
};

/// Runs `body(i)` for every i in [0, count), spreading the indices over
/// `pool` (nullptr or a single worker: plain serial loop in index order).
/// Indices are dealt out in contiguous chunks; every invocation writes only
/// state addressed by its own index, so any schedule produces the same
/// result. Exceptions do not kill the pool: the exception thrown by the
/// LOWEST failing index is rethrown here after every index ran — the same
/// exception a serial loop would have surfaced first (later indices still
/// execute, unlike a serial loop; see fanOut for the contract).
void parallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& body);

}  // namespace microtools::threads
