#include "support/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include <utility>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw McError(what + ": " + std::strerror(errno));
}

constexpr const char* kUnixPrefix = "unix:";

bool isUnixSpec(const std::string& spec) {
  return strings::startsWith(spec, kUnixPrefix);
}

/// Splits "host:port" (throws on a missing or unparsable port).
std::pair<std::string, int> splitHostPort(const std::string& spec) {
  std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    throw McError("address '" + spec +
                  "' must be host:port or unix:/path");
  }
  auto port = strings::parseInt(spec.substr(colon + 1));
  if (!port || *port < 0 || *port > 65535) {
    throw McError("address '" + spec + "' has an invalid port");
  }
  return {spec.substr(0, colon), static_cast<int>(*port)};
}

sockaddr_in tcpAddress(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw McError("cannot parse IPv4 address '" + host +
                  "' (hostnames are not resolved; use a literal address)");
  }
  return addr;
}

sockaddr_un unixAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw McError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

// ---------------------------------------------------------------------------
// Socket
// ---------------------------------------------------------------------------

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::sendAll(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as an McError from EPIPE,
    // not kill the process with SIGPIPE.
    ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("socket send failed");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

bool Socket::recvAll(void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("socket recv failed");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF on a frame boundary
      throw McError("connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

Listener::Listener(const std::string& spec) {
  if (isUnixSpec(spec)) {
    unixPath_ = spec.substr(std::string(kUnixPrefix).size());
    if (unixPath_.empty()) throw McError("empty unix socket path");
    ::unlink(unixPath_.c_str());  // a stale socket file would refuse the bind
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throwErrno("cannot create unix socket");
    sockaddr_un addr = unixAddress(unixPath_);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      close();
      throwErrno("cannot bind unix socket '" + unixPath_ + "'");
    }
    boundSpec_ = spec;
  } else {
    auto [host, port] = splitHostPort(spec);
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throwErrno("cannot create TCP socket");
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = tcpAddress(host, port);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      close();
      throwErrno("cannot bind '" + spec + "'");
    }
    // Resolve an ephemeral port (port 0) to the one the kernel picked, so
    // boundSpec() is always a connectable address.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      close();
      throwErrno("getsockname failed");
    }
    boundSpec_ = host + ":" + std::to_string(ntohs(bound.sin_port));
  }
  if (::listen(fd_, 64) < 0) {
    close();
    throwErrno("cannot listen on '" + spec + "'");
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      boundSpec_(std::move(other.boundSpec_)),
      unixPath_(std::move(other.unixPath_)) {
  other.fd_ = -1;
  other.unixPath_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    boundSpec_ = std::move(other.boundSpec_);
    unixPath_ = std::move(other.unixPath_);
    other.fd_ = -1;
    other.unixPath_.clear();
  }
  return *this;
}

Listener::~Listener() { close(); }

Socket Listener::accept(int timeoutMs) {
  pollfd pfd{fd_, POLLIN, 0};
  int ready = ::poll(&pfd, 1, timeoutMs);
  if (ready < 0) {
    if (errno == EINTR) return Socket{};
    throwErrno("poll on listener failed");
  }
  if (ready == 0) return Socket{};  // timeout
  int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return Socket{};
    throwErrno("accept failed");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unixPath_.empty()) {
    ::unlink(unixPath_.c_str());
    unixPath_.clear();
  }
}

// ---------------------------------------------------------------------------
// connectTo
// ---------------------------------------------------------------------------

Socket connectTo(const std::string& spec) {
  int fd;
  if (isUnixSpec(spec)) {
    std::string path = spec.substr(std::string(kUnixPrefix).size());
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throwErrno("cannot create unix socket");
    sockaddr_un addr = unixAddress(path);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      int saved = errno;
      ::close(fd);
      errno = saved;
      throwErrno("cannot connect to '" + spec + "'");
    }
  } else {
    auto [host, port] = splitHostPort(spec);
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throwErrno("cannot create TCP socket");
    sockaddr_in addr = tcpAddress(host, port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      int saved = errno;
      ::close(fd);
      errno = saved;
      throwErrno("cannot connect to '" + spec + "'");
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return Socket(fd);
}

}  // namespace microtools::net
