#include "support/log.hpp"

#include <atomic>
#include <cstdio>

namespace microtools::log {

namespace {
std::atomic<Level> g_level{Level::Warn};

const char* levelName(Level lvl) {
  switch (lvl) {
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void setLevel(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }

void emit(Level lvl, const std::string& message) {
  if (lvl < level()) return;
  std::string line = std::string("[") + levelName(lvl) + "] " + message + "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void debug(const std::string& message) { emit(Level::Debug, message); }
void info(const std::string& message) { emit(Level::Info, message); }
void warn(const std::string& message) { emit(Level::Warn, message); }
void error(const std::string& message) { emit(Level::Error, message); }

}  // namespace microtools::log
