#include "support/cli.hpp"

#include <cstdio>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::cli {

Parser::Parser(std::string programName, std::string description)
    : programName_(std::move(programName)),
      description_(std::move(description)) {
  addFlag("help", "Show this help message");
}

Parser::Option& Parser::registerOption(const std::string& name, Kind kind,
                                       const std::string& help,
                                       std::optional<std::string> def) {
  if (options_.count(name)) {
    throw McError("duplicate option registration: --" + name);
  }
  order_.push_back(name);
  Option& opt = options_[name];
  opt.kind = kind;
  opt.help = help;
  opt.defaultValue = std::move(def);
  return opt;
}

Parser& Parser::addString(const std::string& name, const std::string& help,
                          std::optional<std::string> defaultValue) {
  registerOption(name, Kind::String, help, std::move(defaultValue));
  return *this;
}

Parser& Parser::addInt(const std::string& name, const std::string& help,
                       std::optional<std::int64_t> defaultValue) {
  std::optional<std::string> def;
  if (defaultValue) def = std::to_string(*defaultValue);
  registerOption(name, Kind::Int, help, std::move(def));
  return *this;
}

Parser& Parser::addDouble(const std::string& name, const std::string& help,
                          std::optional<double> defaultValue) {
  std::optional<std::string> def;
  if (defaultValue) def = strings::format("%g", *defaultValue);
  registerOption(name, Kind::Double, help, std::move(def));
  return *this;
}

Parser& Parser::addFlag(const std::string& name, const std::string& help) {
  registerOption(name, Kind::Flag, help, std::nullopt);
  return *this;
}

Parser& Parser::addRepeated(const std::string& name, const std::string& help) {
  registerOption(name, Kind::Repeated, help, std::nullopt);
  return *this;
}

bool Parser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

bool Parser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!strings::startsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inlineValue;
    if (auto eq = name.find('='); eq != std::string::npos) {
      inlineValue = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = options_.find(name);
    if (it == options_.end()) throw ParseError("unknown option --" + name);
    Option& opt = it->second;
    if (opt.kind == Kind::Flag) {
      if (inlineValue) throw ParseError("flag --" + name + " takes no value");
      opt.seen = true;
      continue;
    }
    std::string value;
    if (inlineValue) {
      value = *inlineValue;
    } else {
      if (i + 1 >= args.size()) {
        throw ParseError("option --" + name + " requires a value");
      }
      value = args[++i];
    }
    if (opt.kind == Kind::Int && !strings::parseInt(value)) {
      throw ParseError("option --" + name + " expects an integer, got '" +
                       value + "'");
    }
    if (opt.kind == Kind::Double && !strings::parseDouble(value)) {
      throw ParseError("option --" + name + " expects a number, got '" +
                       value + "'");
    }
    if (opt.kind == Kind::Repeated) {
      opt.values.push_back(value);
    } else {
      opt.value = value;
    }
    opt.seen = true;
  }
  if (getFlag("help")) {
    std::fputs(helpText().c_str(), stdout);
    return false;
  }
  return true;
}

bool Parser::has(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end()) throw McError("unregistered option --" + name);
  return it->second.seen || it->second.defaultValue.has_value();
}

const Parser::Option& Parser::find(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  if (it == options_.end()) throw McError("unregistered option --" + name);
  if (it->second.kind != kind) {
    throw McError("option --" + name + " accessed with the wrong type");
  }
  return it->second;
}

std::string Parser::getString(const std::string& name) const {
  const Option& opt = find(name, Kind::String);
  if (opt.seen) return opt.value;
  if (opt.defaultValue) return *opt.defaultValue;
  throw McError("option --" + name + " was not provided");
}

std::int64_t Parser::getInt(const std::string& name) const {
  const Option& opt = find(name, Kind::Int);
  const std::string* raw = nullptr;
  if (opt.seen) {
    raw = &opt.value;
  } else if (opt.defaultValue) {
    raw = &*opt.defaultValue;
  } else {
    throw McError("option --" + name + " was not provided");
  }
  return *strings::parseInt(*raw);
}

double Parser::getDouble(const std::string& name) const {
  const Option& opt = find(name, Kind::Double);
  const std::string* raw = nullptr;
  if (opt.seen) {
    raw = &opt.value;
  } else if (opt.defaultValue) {
    raw = &*opt.defaultValue;
  } else {
    throw McError("option --" + name + " was not provided");
  }
  return *strings::parseDouble(*raw);
}

bool Parser::getFlag(const std::string& name) const {
  return find(name, Kind::Flag).seen;
}

const std::vector<std::string>& Parser::getRepeated(
    const std::string& name) const {
  return find(name, Kind::Repeated).values;
}

std::string Parser::helpText() const {
  std::ostringstream oss;
  oss << "Usage: " << programName_ << " [options]\n";
  if (!description_.empty()) oss << "\n" << description_ << "\n";
  oss << "\nOptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    std::string left = "  --" + name;
    switch (opt.kind) {
      case Kind::String: left += " <string>"; break;
      case Kind::Int: left += " <int>"; break;
      case Kind::Double: left += " <number>"; break;
      case Kind::Repeated: left += " <string> (repeatable)"; break;
      case Kind::Flag: break;
    }
    oss << left;
    if (left.size() < 34) oss << std::string(34 - left.size(), ' ');
    oss << opt.help;
    if (opt.defaultValue) oss << " [default: " << *opt.defaultValue << "]";
    oss << "\n";
  }
  return oss.str();
}

}  // namespace microtools::cli
