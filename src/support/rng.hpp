#pragma once

#include <cstdint>

namespace microtools {

/// Deterministic xoshiro256** random number generator.
///
/// MicroCreator's random-selection pass and MicroLauncher's run-to-run jitter
/// model both need reproducible randomness: the same seed must generate the
/// same benchmark set on every host, so neither std::random_device nor
/// unspecified distribution implementations are acceptable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound) using rejection sampling; bound > 0.
  std::uint64_t nextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double nextDouble();

 private:
  std::uint64_t state_[4];
};

}  // namespace microtools
