#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace microtools::strings {

/// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view trim(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> splitWhitespace(std::string_view s);

/// True when `s` starts with / ends with the given prefix/suffix.
bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/// ASCII lower-casing (locale independent).
std::string toLower(std::string_view s);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a decimal or 0x-prefixed integer; nullopt on any trailing garbage.
std::optional<std::int64_t> parseInt(std::string_view s);

/// Parses a floating point number; nullopt on any trailing garbage.
std::optional<double> parseDouble(std::string_view s);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replaceAll(std::string s, std::string_view from,
                       std::string_view to);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Escapes '\n', '\r' and '\\' so an arbitrary string fits on one line of a
/// line-oriented format (cache records, wire-protocol fields).
std::string escapeLineBreaks(std::string_view s);

/// Inverse of escapeLineBreaks; unknown escapes decode to the literal
/// character (forward compatible with later escape additions).
std::string unescapeLineBreaks(std::string_view s);

}  // namespace microtools::strings
