#pragma once

#include <string>

namespace microtools::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that is emitted (default: Warn, so library
/// code stays quiet inside tests and benches unless asked).
void setLevel(Level level);
Level level();

/// Emits one line to stderr as "[LEVEL] message" when `lvl` >= the global
/// threshold. Thread-safe (single write syscall per line).
void emit(Level lvl, const std::string& message);

void debug(const std::string& message);
void info(const std::string& message);
void warn(const std::string& message);
void error(const std::string& message);

}  // namespace microtools::log
