#include "support/envinfo.hpp"

#include <fstream>
#include <sstream>
#include <thread>

#include "support/strings.hpp"

#if defined(__linux__) || defined(__APPLE__)
#include <unistd.h>
#include <sys/utsname.h>
#endif

namespace microtools::env {

namespace {

std::string firstLine(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string line;
  std::getline(in, line);
  return std::string(strings::trim(line));
}

std::string orUnknown(std::string value) {
  return value.empty() ? "unknown" : value;
}

std::string cpuModel() {
#if defined(__linux__)
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (strings::startsWith(line, "model name")) {
      auto colon = line.find(':');
      if (colon != std::string::npos) {
        return std::string(strings::trim(line.substr(colon + 1)));
      }
    }
  }
#endif
  return "";
}

std::string loadAverage() {
#if defined(__linux__)
  // First three fields of /proc/loadavg: 1/5/15-minute averages.
  auto fields = strings::splitWhitespace(firstLine("/proc/loadavg"));
  if (fields.size() >= 3) {
    return fields[0] + " " + fields[1] + " " + fields[2];
  }
#endif
  return "";
}

std::string turboState() {
#if defined(__linux__)
  // intel_pstate spells it "no_turbo" (1 = off); acpi-cpufreq spells it
  // "boost" (1 = on). Normalize both to on/off.
  std::string noTurbo =
      firstLine("/sys/devices/system/cpu/intel_pstate/no_turbo");
  if (!noTurbo.empty()) return noTurbo == "1" ? "off" : "on";
  std::string boost = firstLine("/sys/devices/system/cpu/cpufreq/boost");
  if (!boost.empty()) return boost == "1" ? "on" : "off";
#endif
  return "";
}

std::string kernelRelease() {
#if defined(__linux__) || defined(__APPLE__)
  utsname uts{};
  if (uname(&uts) == 0) {
    return std::string(uts.sysname) + " " + uts.release;
  }
#endif
  return "";
}

std::string hostName() {
#if defined(__linux__) || defined(__APPLE__)
  char buf[256] = {0};
  if (gethostname(buf, sizeof buf - 1) == 0) return buf;
#endif
  return "";
}

std::string singleLine(std::string value) {
  for (char& c : value) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return value;
}

}  // namespace

std::string EnvSnapshot::get(const std::string& key) const {
  for (const auto& f : fields) {
    if (f.key == key) return f.value;
  }
  return "";
}

void EnvSnapshot::set(const std::string& key, const std::string& value) {
  std::string clean = singleLine(value);
  for (auto& f : fields) {
    if (f.key == key) {
      f.value = clean;
      return;
    }
  }
  fields.push_back({key, clean});
}

EnvSnapshot captureEnv() {
  EnvSnapshot snapshot;
  snapshot.set("cpu_model", orUnknown(cpuModel()));
  snapshot.set("cpu_count",
               std::to_string(std::thread::hardware_concurrency()));
  snapshot.set(
      "governor",
      orUnknown(firstLine("/sys/devices/system/cpu/cpu0/cpufreq/"
                          "scaling_governor")));
  snapshot.set("turbo", orUnknown(turboState()));
  snapshot.set("loadavg", orUnknown(loadAverage()));
  snapshot.set("kernel", orUnknown(kernelRelease()));
  snapshot.set("hostname", orUnknown(hostName()));
  return snapshot;
}

std::string toCsvComments(const EnvSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& f : snapshot.fields) {
    out << "# env." << f.key << "=" << f.value << "\n";
  }
  return out.str();
}

EnvSnapshot fromCsvComments(const std::string& text) {
  EnvSnapshot snapshot;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::string_view view = strings::trim(line);
    if (!strings::startsWith(view, "# env.")) continue;
    view.remove_prefix(6);
    auto eq = view.find('=');
    if (eq == std::string_view::npos) continue;
    snapshot.set(std::string(view.substr(0, eq)),
                 std::string(view.substr(eq + 1)));
  }
  return snapshot;
}

}  // namespace microtools::env
