#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "asmparse/asmparse.hpp"
#include "isa/instructions.hpp"
#include "isa/registers.hpp"

namespace microtools::verify {

/// Instruction-granularity control-flow graph over an asmparse::Program.
///
/// MicroTools kernels are tiny (tens of instructions), so the CFG keeps one
/// node per instruction instead of basic blocks; every dataflow pass below
/// runs to fixpoint in a handful of sweeps regardless.
struct Cfg {
  /// successors[i]: indices of instructions control can reach from i.
  /// ret has none; a fall-through past the last instruction (or a branch to
  /// a trailing label) is recorded in fallsOffEnd instead.
  std::vector<std::vector<std::size_t>> successors;
  std::vector<std::vector<std::size_t>> predecessors;

  /// reachable[i]: instruction i is reachable from the function entry.
  std::vector<bool> reachable;

  /// fallsOffEnd[i]: control can leave the function after i without a ret
  /// (fall-through past the end, or a branch targeting a trailing label).
  std::vector<bool> fallsOffEnd;
};

/// Builds the CFG. Throws ParseError when a branch references an unknown
/// label (callers surface that as an MT-PARSE diagnostic).
Cfg buildCfg(const asmparse::Program& program);

/// One single-block loop: a conditional branch at `branchIndex` targeting an
/// earlier instruction `headIndex`, with no other control flow inside
/// [headIndex, branchIndex]. This is the only loop shape the analyses prove
/// properties about; anything else degrades to "not provable" diagnostics.
struct LoopInfo {
  std::size_t headIndex = 0;    // first instruction of the body
  std::size_t branchIndex = 0;  // the backward conditional branch
  isa::Condition condition = isa::Condition::None;

  /// Index of the last flag-writing instruction before the branch, inside
  /// the body. nullopt: the loop condition is set outside the loop.
  std::optional<std::size_t> flagSetter;

  /// The register whose value the branch tests (from cmp/test or from the
  /// flag-setting arithmetic itself). nullopt when the comparison shape is
  /// not recognized.
  std::optional<isa::PhysReg> inductionReg;

  /// Immediate bound the induction register is compared against
  /// (cmp $imm,%reg; test %r,%r and flag-setting arithmetic compare with 0).
  std::optional<std::int64_t> boundImm;
  /// Register bound (cmp %bound,%reg) -- only set when that register is not
  /// written anywhere inside the body.
  std::optional<isa::PhysReg> boundReg;

  /// Net per-iteration change of the induction register over one full trip
  /// around the body, when every write to it is a constant add/sub/inc/dec.
  std::optional<std::int64_t> delta;

  /// True when some write to the induction register sits between the flag
  /// setter and the branch: the tested value then lags the recurrence and
  /// the closed-form trip count no longer applies.
  bool writeAfterTest = false;
};

/// Result of scanning a program for loops.
struct LoopScan {
  std::vector<LoopInfo> loops;
  /// Indices of conditional/unconditional branches that do not form a
  /// recognized single-block loop (forward branches, overlapping regions,
  /// jumps into a loop body). Their termination behaviour is not analyzed.
  std::vector<std::size_t> unanalyzedBranches;
};

LoopScan findLoops(const asmparse::Program& program, const Cfg& cfg);

/// Net constant delta applied to architectural register `reg` by
/// instruction `insn`: add/sub with an immediate source and inc/dec.
/// Returns nullopt when the instruction writes `reg` any other way, and 0
/// when it does not write `reg` at all.
std::optional<std::int64_t> constantDelta(const asmparse::DecodedInsn& insn,
                                          const isa::PhysReg& reg);

/// True when no instruction in [first, last] writes `reg`.
bool regionPreserves(const asmparse::Program& program, std::size_t first,
                     std::size_t last, const isa::PhysReg& reg);

/// Target instruction index of a jump/jcc (may equal instructions.size()
/// for a trailing label); nullopt when the instruction has no label
/// operand. Throws ParseError for an unknown label.
std::optional<std::size_t> branchTargetIndex(const asmparse::Program& program,
                                             const asmparse::DecodedInsn& insn);

}  // namespace microtools::verify
