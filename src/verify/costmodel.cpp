#include "verify/costmodel.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/arch.hpp"
#include "support/error.hpp"
#include "verify/dataflow.hpp"

namespace microtools::verify {

namespace {

/// Port pools of the core model. The divider has no pool of its own: its
/// micro-ops occupy the FpMul ports (for their full latency), exactly as
/// the simulator schedules them.
enum Pool : int { kLoad, kStore, kAlu, kFpAdd, kFpMul, kBranch, kPoolCount };

constexpr std::array<const char*, kPoolCount> kPoolNames = {
    "load", "store", "alu", "fp-add", "fp-mul", "branch"};

int poolFor(isa::ExecUnit unit) {
  switch (unit) {
    case isa::ExecUnit::FpAdd: return kFpAdd;
    case isa::ExecUnit::FpMul: return kFpMul;
    case isa::ExecUnit::FpDiv: return kFpMul;  // shared divider port
    case isa::ExecUnit::Branch: return kBranch;
    default: return kAlu;
  }
}

int poolPorts(const CoreModel& model, int pool) {
  switch (pool) {
    case kLoad: return model.loadPorts;
    case kStore: return model.storePorts;
    case kAlu: return model.aluPorts;
    case kFpAdd: return model.fpAddPorts;
    case kFpMul: return model.fpMulPorts;
    case kBranch: return model.branchPorts;
    default: return 1;
  }
}

/// One micro-op of the loop body after the operand-driven load/store split
/// (the same decomposition the simulator's dispatch stage performs).
struct UopNode {
  enum class Kind { Load, Store, Compute } kind = Kind::Compute;
  int pool = kAlu;
  double latency = 1.0;      ///< producer latency seen by dependents
  double occupancy = 1.0;    ///< port-cycles this micro-op holds its pool
};

/// Register def-use edge between micro-ops. `distance` counts iteration
/// boundaries the value crosses (0: within one iteration, 1: loop-carried).
struct DepEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  double weight = 0.0;  ///< producer latency
  int distance = 0;
};

struct BodyGraph {
  std::vector<UopNode> nodes;
  std::vector<DepEdge> edges;
  /// Dispatch-slot demand per instruction, in program order. A fused
  /// load+compute pair is atomic: both slots must land in one cycle.
  struct SlotDemand {
    int slots = 0;
    bool atomic = false;
  };
  std::vector<SlotDemand> demands;
  bool ok = true;
  std::vector<std::string> warnings;
};

/// Mirrors CoreSim::dispatch()'s instruction decomposition and dependency
/// wiring over one loop iteration [loop.headIndex, loop.branchIndex].
/// Register dependences use the RegSet slot numbering; a use with no
/// earlier writer in the iteration binds to the iteration's final writer
/// at distance 1 (the straight-line body makes that reaching def exact).
BodyGraph buildBodyGraph(const asmparse::Program& program,
                         const LoopInfo& loop, const CoreModel& model) {
  BodyGraph graph;

  struct Use {
    std::size_t node;
    int reg;
  };
  struct Def {
    std::size_t node;
    int reg;
  };
  std::vector<Use> uses;
  std::vector<Def> defs;  // in program order

  std::vector<std::string> unmodeled;
  for (std::size_t pc = loop.headIndex; pc <= loop.branchIndex; ++pc) {
    const asmparse::DecodedInsn& insn = program.instructions[pc];
    const isa::InstrDesc& desc = *insn.desc;

    if (desc.unmodeled) {
      std::string base{desc.mnemonic};
      if (std::find(unmodeled.begin(), unmodeled.end(), base) ==
          unmodeled.end()) {
        unmodeled.push_back(base);
        graph.warnings.push_back("unmodeled opcode '" + base +
                                 "': no cost metadata");
      }
      graph.ok = false;
      continue;
    }
    if (desc.kind == isa::InstrKind::Ret) {
      graph.warnings.push_back("ret inside loop body");
      graph.ok = false;
      continue;
    }
    if (desc.kind == isa::InstrKind::Nop) {
      graph.demands.push_back({1, false});
      continue;
    }

    const asmparse::DecodedOperand* memOp = nullptr;
    bool memIsDest = false;
    for (std::size_t i = 0; i < insn.operands.size(); ++i) {
      if (insn.operands[i].kind == asmparse::DecodedOperand::Kind::Mem) {
        memOp = &insn.operands[i];
        memIsDest = (i + 1 == insn.operands.size()) &&
                    desc.kind != isa::InstrKind::Compare &&
                    desc.kind != isa::InstrKind::Lea;
      }
    }
    bool isLoad = memOp && !memIsDest && desc.kind != isa::InstrKind::Lea;
    bool isStore = memOp && memIsDest;
    bool fusedLoadOp = isLoad && desc.kind != isa::InstrKind::Move;

    auto memRegUses = [&](std::size_t node) {
      if (!memOp) return;
      if (memOp->mem.base) uses.push_back({node, RegSet::slot(*memOp->mem.base)});
      if (memOp->mem.index) {
        uses.push_back({node, RegSet::slot(*memOp->mem.index)});
      }
    };

    int slots = 0;
    std::size_t loadNode = static_cast<std::size_t>(-1);
    if (isLoad) {
      loadNode = graph.nodes.size();
      graph.nodes.push_back({UopNode::Kind::Load, kLoad,
                             static_cast<double>(model.loadLatency), 1.0});
      memRegUses(loadNode);
      if (!fusedLoadOp) {
        const auto& dst = insn.operands.back();
        if (dst.kind == asmparse::DecodedOperand::Kind::Reg) {
          defs.push_back({loadNode, RegSet::slot(dst.reg)});
        }
      }
      ++slots;
    }

    if (isStore) {
      std::size_t node = graph.nodes.size();
      graph.nodes.push_back({UopNode::Kind::Store, kStore, 1.0, 1.0});
      memRegUses(node);
      for (std::size_t i = 0; i + 1 < insn.operands.size(); ++i) {
        if (insn.operands[i].kind == asmparse::DecodedOperand::Kind::Reg) {
          uses.push_back({node, RegSet::slot(insn.operands[i].reg)});
        }
      }
      ++slots;
    } else if (!isLoad || fusedLoadOp) {
      std::size_t node = graph.nodes.size();
      graph.nodes.push_back(
          {UopNode::Kind::Compute, poolFor(desc.unit),
           static_cast<double>(std::max(desc.latency, 1)),
           std::max(desc.uops, 1) * desc.recipThroughput});
      if (fusedLoadOp) {
        graph.edges.push_back(
            {loadNode, node, graph.nodes[loadNode].latency, 0});
      }
      bool isPlainMove = desc.kind == isa::InstrKind::Move ||
                         desc.kind == isa::InstrKind::Lea;
      for (std::size_t i = 0; i < insn.operands.size(); ++i) {
        const auto& op = insn.operands[i];
        if (op.kind != asmparse::DecodedOperand::Kind::Reg) continue;
        if (i + 1 == insn.operands.size() && isPlainMove) continue;
        uses.push_back({node, RegSet::slot(op.reg)});
      }
      if (desc.kind == isa::InstrKind::Lea) memRegUses(node);
      if (desc.kind == isa::InstrKind::CondBranch) {
        uses.push_back({node, RegSet::kFlags});
      }
      if (!insn.operands.empty() &&
          insn.operands.back().kind == asmparse::DecodedOperand::Kind::Reg &&
          desc.kind != isa::InstrKind::Compare &&
          desc.kind != isa::InstrKind::CondBranch &&
          desc.kind != isa::InstrKind::Jump) {
        defs.push_back({node, RegSet::slot(insn.operands.back().reg)});
      }
      if (desc.kind == isa::InstrKind::IntAlu ||
          desc.kind == isa::InstrKind::IntMul ||
          desc.kind == isa::InstrKind::Compare) {
        defs.push_back({node, RegSet::kFlags});
      }
      slots += std::max(desc.uops, 1);
    }

    graph.demands.push_back({slots, fusedLoadOp});
  }

  if (!graph.ok) return graph;

  // Resolve every register use to its reaching def: the closest earlier
  // writer in this iteration, else the iteration's final writer one trip
  // back (distance 1). Uses and defs both carry program order via the
  // node index, so a single sweep suffices.
  std::array<std::int64_t, RegSet::kSlots> finalWriter;
  finalWriter.fill(-1);
  for (const Def& d : defs) {
    if (d.reg >= 0) finalWriter[static_cast<std::size_t>(d.reg)] =
        static_cast<std::int64_t>(d.node);
  }
  std::array<std::int64_t, RegSet::kSlots> lastWriter;
  lastWriter.fill(-1);
  std::size_t nextDef = 0;
  // Walk nodes in order, interleaving defs (defs vector is already in
  // program order; a node's own defs land after its uses are resolved).
  std::sort(uses.begin(), uses.end(),
            [](const Use& a, const Use& b) { return a.node < b.node; });
  std::size_t nextUse = 0;
  for (std::size_t node = 0; node < graph.nodes.size(); ++node) {
    for (; nextUse < uses.size() && uses[nextUse].node == node; ++nextUse) {
      int reg = uses[nextUse].reg;
      if (reg < 0) continue;
      std::int64_t writer = lastWriter[static_cast<std::size_t>(reg)];
      int distance = 0;
      if (writer < 0) {
        writer = finalWriter[static_cast<std::size_t>(reg)];
        distance = 1;
      }
      if (writer < 0) continue;  // loop-invariant input
      std::size_t from = static_cast<std::size_t>(writer);
      graph.edges.push_back({from, node, graph.nodes[from].latency, distance});
    }
    for (; nextDef < defs.size() && defs[nextDef].node == node; ++nextDef) {
      if (defs[nextDef].reg >= 0) {
        lastWriter[static_cast<std::size_t>(defs[nextDef].reg)] =
            static_cast<std::int64_t>(node);
      }
    }
  }
  return graph;
}

/// Dispatch cycles one iteration needs at best: greedy issue-width packing
/// with the fused load+compute pair kept in one cycle, mirroring the
/// simulator's frontend (which additionally ends the cycle at the taken
/// backward branch, so consecutive iterations never share a cycle).
double frontendCycles(const BodyGraph& graph, const CoreModel& model) {
  int cycles = 1;
  int used = 0;
  for (const BodyGraph::SlotDemand& d : graph.demands) {
    int slots = d.slots;
    if (slots == 0) continue;
    if (d.atomic) {
      if (used + slots > model.issueWidth) {
        ++cycles;
        used = 0;
      }
      used += slots;
      continue;
    }
    for (int i = 0; i < slots; ++i) {
      if (used + 1 > model.issueWidth) {
        ++cycles;
        used = 0;
      }
      ++used;
    }
  }
  return static_cast<double>(cycles);
}

/// True when the dependence graph still admits a positive-weight cycle with
/// edge weights (latency - lambda * distance): some recurrence has mean
/// latency strictly above lambda cycles/iteration.
bool hasCycleAboveLambda(const BodyGraph& graph, double lambda) {
  std::vector<double> dist(graph.nodes.size(), 0.0);
  std::size_t sweeps = graph.nodes.size() + 1;
  for (std::size_t it = 0; it < sweeps; ++it) {
    bool changed = false;
    for (const DepEdge& e : graph.edges) {
      double cand = dist[e.from] + e.weight - lambda * e.distance;
      if (cand > dist[e.to] + 1e-12) {
        dist[e.to] = cand;
        changed = true;
      }
    }
    if (!changed) return false;
  }
  return true;
}

/// Maximum dependence-cycle mean (recurrence MII), as a sound lower bound:
/// binary search keeps the returned value strictly below the true maximum
/// ratio, never above. Loop-carried distances are all 1 in a straight-line
/// body, and distance-0 edges point forward, so every cycle crosses an
/// iteration boundary and the ratio is finite.
double recurrenceBound(const BodyGraph& graph) {
  if (!hasCycleAboveLambda(graph, 0.0)) return 0.0;
  double hi = 1.0;
  for (const DepEdge& e : graph.edges) hi += e.weight;
  double lo = 0.0;
  for (int i = 0; i < 64 && hi - lo > 1e-9; ++i) {
    double mid = 0.5 * (lo + hi);
    (hasCycleAboveLambda(graph, mid) ? lo : hi) = mid;
  }
  return lo;
}

/// True when some load micro-op sits on a dependence cycle (all cycles are
/// loop-carried, see recurrenceBound).
bool loadOnCycle(const BodyGraph& graph) {
  std::size_t n = graph.nodes.size();
  std::vector<std::vector<std::size_t>> succ(n);
  for (const DepEdge& e : graph.edges) succ[e.from].push_back(e.to);
  for (std::size_t start = 0; start < n; ++start) {
    if (graph.nodes[start].kind != UopNode::Kind::Load) continue;
    std::vector<bool> seen(n, false);
    std::vector<std::size_t> stack = succ[start];
    bool found = false;
    while (!stack.empty() && !found) {
      std::size_t v = stack.back();
      stack.pop_back();
      if (v == start) {
        found = true;
        break;
      }
      if (seen[v]) continue;
      seen[v] = true;
      for (std::size_t s : succ[v]) stack.push_back(s);
    }
    if (found) return true;
  }
  return false;
}

}  // namespace

CoreModel coreModelFromMachine(const sim::MachineConfig& machine) {
  CoreModel model;
  model.issueWidth = machine.issueWidth;
  model.loadPorts = machine.loadPorts;
  model.storePorts = machine.storePorts;
  model.aluPorts = machine.aluPorts;
  model.fpAddPorts = machine.fpAddPorts;
  model.fpMulPorts = machine.fpMulPorts;
  model.branchPorts = machine.branchPorts;
  model.loadLatency = machine.l1.latencyCycles;
  model.l1SizeBytes = machine.l1.sizeBytes;
  return model;
}

double CyclePrediction::cyclesLowerBound() const {
  return std::max({frontendBound, throughputBound, latencyBound});
}

CyclePrediction predictLoop(const asmparse::Program& program,
                            const LoopInfo& loop, const CoreModel& model) {
  CyclePrediction pred;
  pred.headIndex = loop.headIndex;
  pred.branchIndex = loop.branchIndex;
  pred.headLine = program.instructions[loop.headIndex].line;

  BodyGraph graph = buildBodyGraph(program, loop, model);
  pred.warnings = graph.warnings;
  if (!graph.ok) return pred;

  pred.frontendBound = frontendCycles(graph, model);

  std::array<double, kPoolCount> occupancy{};
  for (const UopNode& node : graph.nodes) {
    occupancy[static_cast<std::size_t>(node.pool)] += node.occupancy;
  }
  pred.binding = "frontend";
  double best = pred.frontendBound;
  for (int pool = 0; pool < kPoolCount; ++pool) {
    PortPressure pressure{kPoolNames[static_cast<std::size_t>(pool)],
                          occupancy[static_cast<std::size_t>(pool)],
                          poolPorts(model, pool)};
    if (pressure.occupancy > 0.0) {
      pred.throughputBound = std::max(pred.throughputBound, pressure.bound());
      if (pressure.bound() > best) {
        best = pressure.bound();
        pred.binding = pressure.unit;
      }
      pred.pressure.push_back(std::move(pressure));
    }
  }

  pred.latencyBound = recurrenceBound(graph);
  if (pred.latencyBound > best) {
    best = pred.latencyBound;
    pred.binding = "latency";
  }
  pred.loadCarried = loadOnCycle(graph);
  pred.valid = true;
  return pred;
}

CyclePrediction predictProgram(const asmparse::Program& program,
                               const CoreModel& model) {
  CyclePrediction pred;
  for (const std::string& mnemonic : unmodeledMnemonics(program)) {
    pred.warnings.push_back("unmodeled opcode '" + mnemonic +
                            "': no cost metadata");
  }
  Cfg cfg;
  try {
    cfg = buildCfg(program);
  } catch (const ParseError& e) {
    pred.warnings.push_back(e.message());
    return pred;
  }
  LoopScan scan = findLoops(program, cfg);
  if (scan.loops.size() != 1 || !scan.unanalyzedBranches.empty()) {
    pred.warnings.push_back(
        scan.loops.empty()
            ? "no recognized single-block loop"
            : "control flow beyond one single-block loop; bounds not computed");
    return pred;
  }
  if (!pred.warnings.empty()) return pred;  // unmodeled opcodes present
  return predictLoop(program, scan.loops.front(), model);
}

CyclePrediction predictAssembly(std::string_view asmText,
                                const CoreModel& model) {
  try {
    return predictProgram(asmparse::parseAssembly(asmText), model);
  } catch (const ParseError& e) {
    CyclePrediction pred;
    pred.warnings.push_back("parse error: " + e.message());
    return pred;
  }
}

std::vector<std::string> unmodeledMnemonics(const asmparse::Program& program) {
  std::vector<std::string> out;
  for (const asmparse::DecodedInsn& insn : program.instructions) {
    if (!insn.desc->unmodeled) continue;
    std::string base{insn.desc->mnemonic};
    if (std::find(out.begin(), out.end(), base) == out.end()) {
      out.push_back(base);
    }
  }
  return out;
}

}  // namespace microtools::verify
