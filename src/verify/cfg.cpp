#include "verify/cfg.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "verify/dataflow.hpp"

namespace microtools::verify {

namespace {

using asmparse::DecodedInsn;
using asmparse::DecodedOperand;

/// Branch target index for a jump/jcc instruction; throws when absent.
std::size_t branchTarget(const asmparse::Program& program,
                         const DecodedInsn& insn) {
  auto target = branchTargetIndex(program, insn);
  if (!target) {
    throw ParseError("branch without a label operand", insn.line, insn.column);
  }
  return *target;
}

}  // namespace

std::optional<std::size_t> branchTargetIndex(
    const asmparse::Program& program, const asmparse::DecodedInsn& insn) {
  for (const DecodedOperand& op : insn.operands) {
    if (op.kind == DecodedOperand::Kind::Label) {
      try {
        return program.labelTarget(op.label);
      } catch (const ParseError& e) {
        // labelTarget has no notion of where the reference came from; pin
        // the diagnostic to the branch instruction so lint can point at it.
        throw ParseError(e.message(), insn.line, insn.column);
      }
    }
  }
  return std::nullopt;
}

Cfg buildCfg(const asmparse::Program& program) {
  const std::size_t n = program.instructions.size();
  Cfg cfg;
  cfg.successors.resize(n);
  cfg.predecessors.resize(n);
  cfg.reachable.assign(n, false);
  cfg.fallsOffEnd.assign(n, false);

  for (std::size_t i = 0; i < n; ++i) {
    const DecodedInsn& insn = program.instructions[i];
    auto link = [&](std::size_t succ) {
      if (succ < n) {
        cfg.successors[i].push_back(succ);
      } else {
        cfg.fallsOffEnd[i] = true;  // past the end / trailing label
      }
    };
    switch (insn.desc->kind) {
      case isa::InstrKind::Ret:
        break;
      case isa::InstrKind::Jump:
        link(branchTarget(program, insn));
        break;
      case isa::InstrKind::CondBranch:
        link(branchTarget(program, insn));
        link(i + 1);
        break;
      default:
        link(i + 1);
        break;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s : cfg.successors[i]) cfg.predecessors[s].push_back(i);
  }

  // Reachability sweep from the entry instruction.
  if (n > 0) {
    std::vector<std::size_t> work{0};
    cfg.reachable[0] = true;
    while (!work.empty()) {
      std::size_t i = work.back();
      work.pop_back();
      for (std::size_t s : cfg.successors[i]) {
        if (!cfg.reachable[s]) {
          cfg.reachable[s] = true;
          work.push_back(s);
        }
      }
    }
  }
  return cfg;
}

std::optional<std::int64_t> constantDelta(const asmparse::DecodedInsn& insn,
                                          const isa::PhysReg& reg) {
  DefUse du = defUse(insn);
  if (!du.defs.has(reg)) return 0;

  const auto& ops = insn.operands;
  if (ops.empty() || ops.back().kind != DecodedOperand::Kind::Reg ||
      !ops.back().reg.sameArchReg(reg)) {
    return std::nullopt;  // written through some other operand shape
  }
  const isa::InstrDesc& d = *insn.desc;
  if (d.kind == isa::InstrKind::IntAlu) {
    if (d.mnemonic == "inc" && ops.size() == 1) return 1;
    if (d.mnemonic == "dec" && ops.size() == 1) return -1;
    if ((d.mnemonic == "add" || d.mnemonic == "sub") && ops.size() == 2 &&
        ops[0].kind == DecodedOperand::Kind::Imm) {
      return d.mnemonic == "add" ? ops[0].imm : -ops[0].imm;
    }
  }
  return std::nullopt;
}

bool regionPreserves(const asmparse::Program& program, std::size_t first,
                     std::size_t last, const isa::PhysReg& reg) {
  for (std::size_t i = first; i <= last; ++i) {
    if (defUse(program.instructions[i]).defs.has(reg)) return false;
  }
  return true;
}

namespace {

/// Fills the comparison fields of `loop` from its flag-setting instruction.
void resolveComparison(const asmparse::Program& program, LoopInfo& loop) {
  if (!loop.flagSetter) return;
  const DecodedInsn& setter = program.instructions[*loop.flagSetter];
  const auto& ops = setter.operands;
  const isa::InstrDesc& d = *setter.desc;

  if (d.kind == isa::InstrKind::Compare) {
    // AT&T: cmp src,dst branches on dst <cond> src.
    if (ops.size() != 2 || ops[1].kind != DecodedOperand::Kind::Reg) return;
    loop.inductionReg = ops[1].reg;
    if (d.mnemonic == "test") {
      // Only the test %r,%r self-test maps onto a comparison with zero.
      if (ops[0].kind == DecodedOperand::Kind::Reg &&
          ops[0].reg.sameArchReg(ops[1].reg)) {
        loop.boundImm = 0;
      } else {
        loop.inductionReg.reset();
      }
    } else if (ops[0].kind == DecodedOperand::Kind::Imm) {
      loop.boundImm = ops[0].imm;
    } else if (ops[0].kind == DecodedOperand::Kind::Reg) {
      if (regionPreserves(program, loop.headIndex, loop.branchIndex,
                          ops[0].reg)) {
        loop.boundReg = ops[0].reg;
      } else {
        loop.inductionReg.reset();  // both sides move: not analyzable
      }
    }
    return;
  }

  // Flag-setting arithmetic (sub $4,%rdi; jge): the branch compares the
  // result against zero.
  if (d.writesFlags && !ops.empty() &&
      ops.back().kind == DecodedOperand::Kind::Reg) {
    loop.inductionReg = ops.back().reg;
    loop.boundImm = 0;
  }
}

}  // namespace

LoopScan findLoops(const asmparse::Program& program, const Cfg& cfg) {
  LoopScan scan;
  const std::size_t n = program.instructions.size();

  // Candidate back edges: conditional branches targeting an earlier index.
  std::vector<std::pair<std::size_t, std::size_t>> backEdges;  // (head,branch)
  for (std::size_t i = 0; i < n; ++i) {
    const DecodedInsn& insn = program.instructions[i];
    if (!cfg.reachable[i]) continue;
    const isa::InstrKind kind = insn.desc->kind;
    if (kind != isa::InstrKind::CondBranch && kind != isa::InstrKind::Jump) {
      continue;
    }
    std::size_t target = branchTarget(program, insn);
    if (kind == isa::InstrKind::CondBranch && target <= i) {
      backEdges.push_back({target, i});
    } else {
      scan.unanalyzedBranches.push_back(i);
    }
  }

  for (auto [head, branch] : backEdges) {
    bool clean = true;
    // No other control flow inside the body.
    for (std::size_t i = head; i < branch && clean; ++i) {
      clean = !isa::kindIsBranch(program.instructions[i].desc->kind);
    }
    // No branch from outside jumps into the middle of the body.
    for (std::size_t i = 0; i < n && clean; ++i) {
      if (i >= head && i <= branch) continue;
      for (std::size_t s : cfg.successors[i]) {
        if (s > head && s <= branch) {
          clean = false;
          break;
        }
      }
    }
    if (!clean) {
      scan.unanalyzedBranches.push_back(branch);
      continue;
    }

    LoopInfo loop;
    loop.headIndex = head;
    loop.branchIndex = branch;
    loop.condition = program.instructions[branch].desc->condition;
    for (std::size_t i = branch; i-- > head;) {
      if (program.instructions[i].desc->writesFlags) {
        loop.flagSetter = i;
        break;
      }
    }
    resolveComparison(program, loop);
    if (loop.inductionReg) {
      // Net change over one full trip around the body.
      std::int64_t delta = 0;
      bool known = true;
      for (std::size_t i = head; i <= branch; ++i) {
        auto d = constantDelta(program.instructions[i], *loop.inductionReg);
        if (!d) {
          known = false;
          break;
        }
        delta += *d;
        if (i > *loop.flagSetter && *d != 0) loop.writeAfterTest = true;
      }
      if (known) loop.delta = delta;
    }
    scan.loops.push_back(std::move(loop));
  }
  std::sort(scan.loops.begin(), scan.loops.end(),
            [](const LoopInfo& a, const LoopInfo& b) {
              return a.headIndex < b.headIndex;
            });
  return scan;
}

}  // namespace microtools::verify
