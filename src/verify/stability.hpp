#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "asmparse/asmparse.hpp"
#include "verify/costmodel.hpp"

namespace microtools::verify {

/// Launch-geometry facts the static analysis cannot read off the assembly.
struct StabilityOptions {
  /// Total bytes of the arrays the kernel traverses per call (sum over the
  /// launch context). 0: unknown -- the footprint criterion then fails,
  /// because a kernel that may stream past L1 is not provably stable.
  std::uint64_t footprintBytes = 0;
};

/// muOpTime-style static stability verdict: three independent criteria
/// that together predict low run-to-run variance, so a planner can screen
/// the variant with fewer repetitions without changing its verdict.
struct StabilityReport {
  /// Exactly one single-block counted loop: constant-delta induction, no
  /// unanalyzed branches, and the trip test reads the post-update value.
  bool regularLoop = false;

  /// The traversed working set provably fits in L1, so per-iteration
  /// memory time does not depend on what earlier repetitions left cached.
  bool fitsL1 = false;

  /// No load micro-op on a loop-carried dependence cycle: the recurrence
  /// length is fixed by core latencies, not by where the data lives.
  bool steadyDependences = false;

  double score() const {
    return (static_cast<int>(regularLoop) + static_cast<int>(fitsL1) +
            static_cast<int>(steadyDependences)) /
           3.0;
  }
  bool stable() const { return regularLoop && fitsL1 && steadyDependences; }
};

/// Scores `program` against the three criteria. `prediction` must come
/// from predictProgram/predictAssembly on the same program (an invalid
/// prediction fails every criterion that depends on the dependence graph).
StabilityReport analyzeStability(const asmparse::Program& program,
                                 const CoreModel& model,
                                 const CyclePrediction& prediction,
                                 const StabilityOptions& options);

/// Parse-and-score convenience; parse failures score zero.
StabilityReport analyzeStability(std::string_view asmText,
                                 const CoreModel& model,
                                 const StabilityOptions& options);

}  // namespace microtools::verify
