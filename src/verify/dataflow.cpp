#include "verify/dataflow.hpp"

namespace microtools::verify {

namespace {

using asmparse::DecodedInsn;
using asmparse::DecodedOperand;

/// xor %r,%r / pxor %x,%x and friends define their destination without
/// depending on its previous value.
bool isZeroingIdiom(const DecodedInsn& insn) {
  const auto& m = insn.desc->mnemonic;
  if (m != "xor" && m != "pxor" && m != "xorps" && m != "xorpd") return false;
  return insn.operands.size() == 2 &&
         insn.operands[0].kind == DecodedOperand::Kind::Reg &&
         insn.operands[1].kind == DecodedOperand::Kind::Reg &&
         insn.operands[0].reg.sameArchReg(insn.operands[1].reg);
}

}  // namespace

DefUse defUse(const asmparse::DecodedInsn& insn) {
  DefUse du;
  const isa::InstrDesc& d = *insn.desc;
  const auto& ops = insn.operands;

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const DecodedOperand& op = ops[i];
    switch (op.kind) {
      case DecodedOperand::Kind::Mem:
        if (op.mem.base) du.uses.add(*op.mem.base);
        if (op.mem.index) du.uses.add(*op.mem.index);
        break;
      case DecodedOperand::Kind::Reg: {
        bool isDest = (i + 1 == ops.size()) && d.writesDest;
        if (isDest) {
          du.defs.add(op.reg);
          if (d.readsDest) du.uses.add(op.reg);
        } else {
          du.uses.add(op.reg);
        }
        break;
      }
      case DecodedOperand::Kind::Imm:
      case DecodedOperand::Kind::Label:
        break;
    }
  }
  if (isZeroingIdiom(insn)) du.uses = du.uses - du.defs;
  if (d.writesFlags) du.defs.add(RegSet::kFlags);
  if (d.readsFlags) du.uses.add(RegSet::kFlags);
  return du;
}

std::vector<RegSet> liveIn(const asmparse::Program& program, const Cfg& cfg,
                           RegSet retLiveOut) {
  const std::size_t n = program.instructions.size();
  std::vector<DefUse> du(n);
  for (std::size_t i = 0; i < n; ++i) du[i] = defUse(program.instructions[i]);

  std::vector<RegSet> in(n);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = n; i-- > 0;) {
      RegSet out;
      if (program.instructions[i].desc->kind == isa::InstrKind::Ret) {
        out = retLiveOut;
      }
      for (std::size_t s : cfg.successors[i]) out = out | in[s];
      RegSet next = du[i].uses | (out - du[i].defs);
      if (!(next == in[i])) {
        in[i] = next;
        changed = true;
      }
    }
  }
  return in;
}

std::vector<RegSet> definedIn(const asmparse::Program& program, const Cfg& cfg,
                              RegSet entryDefined) {
  const std::size_t n = program.instructions.size();
  std::vector<DefUse> du(n);
  for (std::size_t i = 0; i < n; ++i) du[i] = defUse(program.instructions[i]);

  // Must-analysis: start from the full set and intersect downwards; the
  // entry instruction is seeded from the ABI-defined state.
  std::vector<RegSet> in(n, RegSet::all());
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      // Meet over every incoming path: the ABI-defined entry state for the
      // function entry (which can itself be a loop head) and
      // in[p] | defs[p] for each predecessor edge.
      RegSet next = (i == 0) ? entryDefined : RegSet::all();
      if (i != 0 && cfg.predecessors[i].empty()) {
        next = RegSet::all();  // unreachable: stay at top
      } else {
        for (std::size_t p : cfg.predecessors[i]) {
          next = next & (in[p] | du[p].defs);
        }
      }
      if (!(next == in[i])) {
        in[i] = next;
        changed = true;
      }
    }
  }
  return in;
}

}  // namespace microtools::verify
