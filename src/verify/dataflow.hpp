#pragma once

#include <cstdint>
#include <vector>

#include "asmparse/asmparse.hpp"
#include "isa/registers.hpp"
#include "verify/cfg.hpp"

namespace microtools::verify {

/// Dense set over the architectural registers the subset can name:
/// 16 GPRs (slots 0..15), 16 XMM registers (slots 16..31) and the status
/// flags (slot 32). Width is ignored -- %eax and %rax share a slot, which
/// matches sameArchReg() and over-approximates partial-register liveness.
struct RegSet {
  std::uint64_t bits = 0;

  static constexpr int kFlags = 32;
  static constexpr int kSlots = 33;

  /// Slot for a register; -1 for %rip (not tracked).
  static int slot(const isa::PhysReg& reg) {
    switch (reg.cls) {
      case isa::RegClass::Gpr: return reg.index;
      case isa::RegClass::Xmm: return 16 + reg.index;
      default: return -1;
    }
  }

  void add(int s) {
    if (s >= 0) bits |= std::uint64_t{1} << s;
  }
  void add(const isa::PhysReg& reg) { add(slot(reg)); }
  void remove(int s) {
    if (s >= 0) bits &= ~(std::uint64_t{1} << s);
  }
  bool has(int s) const {
    return s >= 0 && (bits >> s) & 1;
  }
  bool has(const isa::PhysReg& reg) const { return has(slot(reg)); }
  bool empty() const { return bits == 0; }

  RegSet operator|(RegSet o) const { return {bits | o.bits}; }
  RegSet operator&(RegSet o) const { return {bits & o.bits}; }
  RegSet operator-(RegSet o) const { return {bits & ~o.bits}; }
  bool operator==(const RegSet&) const = default;

  static RegSet all() { return {(std::uint64_t{1} << kSlots) - 1}; }
};

/// Registers an instruction reads and writes, derived from the InstrDesc
/// def/use metadata plus the decoded operands. Memory base/index registers
/// are uses; a memory destination produces no register def. The
/// zeroing idioms (xor/pxor/xorps/xorpd with identical source and
/// destination) are treated as defs without uses.
struct DefUse {
  RegSet uses;
  RegSet defs;
};

DefUse defUse(const asmparse::DecodedInsn& insn);

/// Per-instruction liveness (backward may-analysis). Returns live-in sets;
/// `retLiveOut` seeds the live-out of every ret instruction (the SysV return
/// register plus callee-saved state). liveOut(i) is the union of live-in
/// over successors(i), plus retLiveOut at a ret.
std::vector<RegSet> liveIn(const asmparse::Program& program, const Cfg& cfg,
                           RegSet retLiveOut);

/// Per-instruction defined-registers (forward must-analysis, intersection
/// over predecessors). Returns defined-in sets; `entryDefined` seeds the
/// function entry. Unreachable instructions report the full set so they do
/// not produce spurious use-before-def diagnostics.
std::vector<RegSet> definedIn(const asmparse::Program& program, const Cfg& cfg,
                              RegSet entryDefined);

}  // namespace microtools::verify
