#include "verify/verify.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "verify/cfg.hpp"
#include "verify/costmodel.hpp"
#include "verify/dataflow.hpp"

namespace microtools::verify {

namespace {

using asmparse::DecodedInsn;
using asmparse::DecodedMem;
using asmparse::DecodedOperand;

constexpr std::array<int, 6> kCalleeSavedSlots = {
    isa::kRbx, isa::kRbp, isa::kR12, isa::kR13, isa::kR14, isa::kR15};

std::string slotName(int slot) {
  if (slot == RegSet::kFlags) return "flags";
  if (slot < 16) return isa::registerName(isa::gpr(slot));
  return isa::registerName(isa::xmm(slot - 16));
}

// ---------------------------------------------------------------------------
// Symbolic values for the MT-MEM rules.
//
// Each GPR holds one of: Undef (never written), Unknown, a constant, or an
// array base plus constant offset. With a LaunchContext the trip count is a
// constant from entry, so the creator-shaped prologue folds entirely.
struct SymVal {
  enum class Kind : std::uint8_t { Undef, Unknown, Const, Array };
  Kind kind = Kind::Undef;
  std::int64_t off = 0;  // constant value / offset from the array base
  int array = 0;         // valid when kind == Array

  static SymVal undef() { return {}; }
  static SymVal unknown() { return {Kind::Unknown, 0, 0}; }
  static SymVal constant(std::int64_t c) { return {Kind::Const, c, 0}; }
  static SymVal arrayBase(int a, std::int64_t c) {
    return {Kind::Array, c, a};
  }
  bool isConst() const { return kind == Kind::Const; }
  bool isArray() const { return kind == Kind::Array; }
};

using SymState = std::array<SymVal, 16>;  // indexed by GPR slot

std::optional<SymVal> addConst(const SymVal& v, std::int64_t c) {
  switch (v.kind) {
    case SymVal::Kind::Const: return SymVal::constant(v.off + c);
    case SymVal::Kind::Array: return SymVal::arrayBase(v.array, v.off + c);
    default: return std::nullopt;
  }
}

std::optional<SymVal> addVals(const SymVal& a, const SymVal& b) {
  if (a.isConst()) return addConst(b, a.off);
  if (b.isConst()) return addConst(a, b.off);
  return std::nullopt;  // array+array, anything unknown
}

/// Symbolic value of one memory operand's address.
SymVal evalAddress(const SymState& state, const DecodedMem& mem) {
  SymVal addr = SymVal::constant(mem.disp);
  if (mem.base) {
    if (mem.base->cls != isa::RegClass::Gpr) return SymVal::unknown();
    auto sum = addVals(addr, state[mem.base->index]);
    if (!sum) return state[mem.base->index].kind == SymVal::Kind::Undef
                   ? SymVal::undef()
                   : SymVal::unknown();
    addr = *sum;
  }
  if (mem.index) {
    if (mem.index->cls != isa::RegClass::Gpr) return SymVal::unknown();
    const SymVal& iv = state[mem.index->index];
    if (!iv.isConst()) return SymVal::unknown();
    auto sum = addConst(addr, iv.off * mem.scale);
    if (!sum) return SymVal::unknown();
    addr = *sum;
  }
  return addr;
}

/// Applies one straight-line instruction to the symbolic state.
void applyInsn(SymState& state, const DecodedInsn& insn) {
  DefUse du = defUse(insn);
  const auto& ops = insn.operands;
  const isa::InstrDesc& d = *insn.desc;

  auto clobberDefs = [&] {
    for (int s = 0; s < 16; ++s) {
      if (du.defs.has(s)) state[s] = SymVal::unknown();
    }
  };
  if (ops.empty() || ops.back().kind != DecodedOperand::Kind::Reg ||
      ops.back().reg.cls != isa::RegClass::Gpr || !d.writesDest) {
    clobberDefs();
    return;
  }
  const int dst = ops.back().reg.index;
  const std::string_view m = d.mnemonic;

  if ((m == "mov" || m == "movslq" || m == "movsbl" || m == "movzbl") &&
      ops.size() == 2) {
    if (ops[0].kind == DecodedOperand::Kind::Imm) {
      state[dst] = SymVal::constant(ops[0].imm);
      return;
    }
    if (ops[0].kind == DecodedOperand::Kind::Reg &&
        ops[0].reg.cls == isa::RegClass::Gpr) {
      // Width conversions in the subset keep non-negative values intact.
      state[dst] = state[ops[0].reg.index];
      if (state[dst].kind == SymVal::Kind::Undef) {
        state[dst] = SymVal::undef();
      }
      return;
    }
    state[dst] = SymVal::unknown();  // load from memory
    return;
  }
  if (m == "xor" && ops.size() == 2 &&
      ops[0].kind == DecodedOperand::Kind::Reg &&
      ops[0].reg.sameArchReg(ops.back().reg)) {
    state[dst] = SymVal::constant(0);
    return;
  }
  if ((m == "add" || m == "sub") && ops.size() == 2) {
    std::optional<SymVal> src;
    if (ops[0].kind == DecodedOperand::Kind::Imm) {
      src = SymVal::constant(ops[0].imm);
    } else if (ops[0].kind == DecodedOperand::Kind::Reg &&
               ops[0].reg.cls == isa::RegClass::Gpr) {
      src = state[ops[0].reg.index];
    }
    if (src) {
      std::optional<SymVal> res;
      if (m == "add") {
        res = addVals(state[dst], *src);
      } else if (src->isConst()) {
        res = addConst(state[dst], -src->off);
      }
      state[dst] = res ? *res : SymVal::unknown();
      return;
    }
    state[dst] = SymVal::unknown();
    return;
  }
  if (m == "inc" || m == "dec") {
    auto res = addConst(state[dst], m == "inc" ? 1 : -1);
    state[dst] = res ? *res : SymVal::unknown();
    return;
  }
  if (m == "lea" && ops.size() == 2 &&
      ops[0].kind == DecodedOperand::Kind::Mem) {
    state[dst] = evalAddress(state, ops[0].mem);
    if (state[dst].kind == SymVal::Kind::Undef) state[dst] = SymVal::unknown();
    return;
  }
  clobberDefs();
}

std::int64_t floorDiv(std::int64_t num, std::int64_t den) {
  // den > 0 in every caller.
  std::int64_t q = num / den;
  if (num % den != 0 && num < 0) --q;
  return q;
}

std::int64_t ceilDiv(std::int64_t num, std::int64_t den) {
  return -floorDiv(-num, den);
}

/// Closed-form number of body executions of a do/test loop: the body runs,
/// the flag setter observes v(k) = a + d*k on the k-th execution (0-based),
/// and the branch re-enters while cond(v(k), b) holds. Returns nullopt when
/// the loop does not terminate or the condition has no signed closed form.
std::optional<std::int64_t> bodyExecutions(std::int64_t a, std::int64_t d,
                                           std::int64_t b,
                                           isa::Condition cond) {
  using C = isa::Condition;
  // Sign-flag conditions behave like signed comparisons for the creator's
  // in-range values (documented unsoundness near INT64 overflow).
  if (cond == C::NS) cond = C::GE;
  if (cond == C::S) cond = C::L;

  std::int64_t firstFail = 0;  // smallest k >= 0 with cond(v(k)) false
  switch (cond) {
    case C::GE:
      if (a < b) return 1;
      if (d >= 0) return std::nullopt;
      firstFail = floorDiv(a - b, -d) + 1;
      break;
    case C::G:
      if (a <= b) return 1;
      if (d >= 0) return std::nullopt;
      firstFail = ceilDiv(a - b, -d);
      break;
    case C::LE:
      if (a > b) return 1;
      if (d <= 0) return std::nullopt;
      firstFail = floorDiv(b - a, d) + 1;
      break;
    case C::L:
      if (a >= b) return 1;
      if (d <= 0) return std::nullopt;
      firstFail = ceilDiv(b - a, d);
      break;
    case C::E:
      return a == b ? 2 : 1;
    case C::NE: {
      if (a == b) return 1;
      if (d == 0) return std::nullopt;
      std::int64_t diff = b - a;
      if (diff % d != 0 || diff / d < 0) return std::nullopt;
      firstFail = diff / d;
      break;
    }
    default:
      return std::nullopt;  // unsigned conditions: no closed form here
  }
  return firstFail + 1;
}

// ---------------------------------------------------------------------------

class Checker {
 public:
  Checker(const asmparse::Program& program, const VerifyOptions& options)
      : program_(program), options_(options) {}

  VerifyReport run() {
    cfg_ = buildCfg(program_);
    loops_ = findLoops(program_, cfg_);
    arrayCount_ = resolveArrayCount();

    RegSet entry;
    entry.add(isa::kRsp);
    entry.add(isa::kRdi);  // the trip count n
    for (int a = 0; a < arrayCount_; ++a) {
      entry.add(isa::argumentRegister(1 + a));
    }
    for (int s : kCalleeSavedSlots) entry.add(s);

    RegSet retLive;
    retLive.add(isa::kRax);
    retLive.add(isa::kRsp);
    for (int s : kCalleeSavedSlots) retLive.add(s);

    defined_ = definedIn(program_, cfg_, entry);
    live_ = liveIn(program_, cfg_, retLive);
    liveOut_.resize(program_.instructions.size());
    for (std::size_t i = 0; i < program_.instructions.size(); ++i) {
      RegSet out;
      if (program_.instructions[i].desc->kind == isa::InstrKind::Ret) {
        out = retLive;
      }
      for (std::size_t s : cfg_.successors[i]) out = out | live_[s];
      liveOut_[i] = out;
    }

    checkControlFlow();
    checkLoops();
    checkAbi();
    checkDataflow();
    checkCostMetadata();
    if (options_.context) checkMemory();

    std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.line < b.line;
                     });
    return std::move(report_);
  }

 private:
  int resolveArrayCount() const {
    int count = isa::kNumArgumentRegisters - 1;
    if (options_.arrayCount) {
      count = *options_.arrayCount;
    } else if (options_.context) {
      count = static_cast<int>(options_.context->arrays.size());
    }
    return std::clamp(count, 0, isa::kNumArgumentRegisters - 1);
  }

  void emit(std::string rule, Severity severity, const DecodedInsn* insn,
            std::string message) {
    Diagnostic d;
    d.rule = std::move(rule);
    d.severity = severity;
    d.message = std::move(message);
    if (insn) {
      d.line = insn->line;
      d.column = insn->column;
    }
    report_.diagnostics.push_back(std::move(d));
  }

  const DecodedInsn& insn(std::size_t i) const {
    return program_.instructions[i];
  }

  // -- MT-CFG01 / MT-CFG04 --------------------------------------------------
  void checkControlFlow() {
    for (std::size_t i = 0; i < program_.instructions.size(); ++i) {
      if (!cfg_.reachable[i]) {
        emit("MT-CFG01", Severity::Warning, &insn(i),
             "unreachable instruction '" + insn(i).mnemonic + "'");
      } else if (cfg_.fallsOffEnd[i]) {
        emit("MT-CFG04", Severity::Error, &insn(i),
             "control falls off the end of the function without ret");
      }
    }
  }

  // -- MT-COST01 ------------------------------------------------------------
  // One warning per program, not one per occurrence: the static cost model
  // skips predictions for these kernels, nothing else is affected.
  void checkCostMetadata() {
    std::vector<std::string> missing = unmodeledMnemonics(program_);
    if (missing.empty()) return;
    std::string list;
    for (const std::string& m : missing) {
      if (!list.empty()) list += ", ";
      list += '\'' + m + '\'';
    }
    emit("MT-COST01", Severity::Warning, nullptr,
         "no cost metadata for " + list +
             "; static cycle bounds are unavailable for this kernel");
  }

  // -- MT-CFG02 / MT-CFG03 --------------------------------------------------
  void checkLoops() {
    for (const LoopInfo& loop : loops_.loops) {
      const DecodedInsn& branch = insn(loop.branchIndex);
      if (!loop.flagSetter) {
        emit("MT-CFG02", Severity::Error, &branch,
             "loop condition is invariant: no instruction in the body sets "
             "the flags, so the loop never exits once entered");
        continue;
      }
      if (!loop.inductionReg || (!loop.boundImm && !loop.boundReg)) {
        emit("MT-CFG03", Severity::Warning, &branch,
             "loop termination not provable: unrecognized comparison shape");
        continue;
      }
      if (!loop.delta) {
        emit("MT-CFG03", Severity::Warning, &branch,
             "loop termination not provable: induction register " +
                 isa::registerName(*loop.inductionReg) +
                 " is updated in a non-constant way");
        continue;
      }
      const std::int64_t d = *loop.delta;
      using C = isa::Condition;
      const C c = loop.condition;
      if (d == 0) {
        emit("MT-CFG02", Severity::Error, &branch,
             "loop cannot terminate: induction register " +
                 isa::registerName(*loop.inductionReg) +
                 " never changes across an iteration");
        continue;
      }
      const bool needsDecreasing =
          c == C::GE || c == C::G || c == C::NS || c == C::AE || c == C::A;
      const bool needsIncreasing =
          c == C::LE || c == C::L || c == C::S || c == C::BE || c == C::B;
      if ((needsDecreasing && d > 0) || (needsIncreasing && d < 0)) {
        emit("MT-CFG02", Severity::Error, &branch,
             "loop cannot terminate: induction register " +
                 isa::registerName(*loop.inductionReg) + " moves by " +
                 std::to_string(d) + " per iteration, away from its exit "
                 "bound");
        continue;
      }
      if (c == C::NE) {
        emit("MT-CFG03", Severity::Warning, &branch,
             "termination of a jne loop depends on the induction register "
             "hitting its bound exactly; not provable statically");
      }
    }
    for (std::size_t b : loops_.unanalyzedBranches) {
      auto target = branchTargetIndex(program_, insn(b));
      if (target && *target <= b) {
        emit("MT-CFG03", Severity::Warning, &insn(b),
             "backward branch does not form a recognized single-block loop; "
             "termination not analyzed");
      }
    }
  }

  // -- MT-ABI01..04 ---------------------------------------------------------
  void checkAbi() {
    for (std::size_t i = 0; i < program_.instructions.size(); ++i) {
      if (!cfg_.reachable[i]) continue;
      const DecodedInsn& in = insn(i);
      DefUse du = defUse(in);
      for (int s : kCalleeSavedSlots) {
        if (du.defs.has(s)) {
          emit("MT-ABI01", Severity::Error, &in,
               "callee-saved register " + slotName(s) +
                   " is clobbered; the kernel contract has no stack frame "
                   "to save and restore it");
        }
      }
      if (du.defs.has(isa::kRsp)) {
        emit("MT-ABI02", Severity::Error, &in,
             "stack pointer %rsp must not be modified");
      }
      if (in.writesMemory() && !in.operands.empty() &&
          in.operands.back().kind == DecodedOperand::Kind::Mem) {
        const DecodedMem& mem = in.operands.back().mem;
        if (mem.base && mem.base->cls == isa::RegClass::Gpr &&
            mem.base->index == isa::kRsp) {
          const std::int64_t lo = mem.index ? INT64_MIN : mem.disp;
          const std::int64_t hi = mem.index
                                      ? INT64_MAX
                                      : mem.disp + in.accessBytes();
          if (lo < -128 || hi > 0) {
            emit("MT-ABI03", Severity::Error, &in,
                 "store through %rsp outside the red zone "
                 "[rsp-128, rsp) would corrupt the caller's stack");
          }
        }
      }
      if (in.desc->kind == isa::InstrKind::Ret &&
          !defined_[i].has(isa::kRax)) {
        emit("MT-ABI04", Severity::Warning, &in,
             "%rax (the iteration-count return value) may be undefined on "
             "this path to ret");
      }
    }
  }

  // -- MT-DF01..04 ----------------------------------------------------------
  void checkDataflow() {
    for (std::size_t i = 0; i < program_.instructions.size(); ++i) {
      if (!cfg_.reachable[i]) continue;
      const DecodedInsn& in = insn(i);
      DefUse du = defUse(in);

      RegSet addressUses;
      for (const DecodedOperand& op : in.operands) {
        if (op.kind != DecodedOperand::Kind::Mem) continue;
        if (op.mem.base) addressUses.add(*op.mem.base);
        if (op.mem.index) addressUses.add(*op.mem.index);
      }

      RegSet undef = du.uses - defined_[i];
      for (int s = 0; s < RegSet::kSlots; ++s) {
        if (!undef.has(s)) continue;
        if (s == RegSet::kFlags) {
          emit("MT-DF01", Severity::Error, &in,
               "conditional branch consumes status flags that no reachable "
               "instruction sets");
        } else if (addressUses.has(s)) {
          emit("MT-DF01", Severity::Error, &in,
               "register " + slotName(s) +
                   " is used as a memory address but is never initialized");
        } else {
          emit("MT-DF02", Severity::Warning, &in,
               "register " + slotName(s) +
                   " is read before any initialization");
        }
      }

      // Dead register results. Flags are ignored: nearly every ALU result
      // leaves its flags unread and that is normal.
      bool isLoad = in.readsMemory();
      for (int s = 0; s < 32; ++s) {
        if (!du.defs.has(s) || liveOut_[i].has(s)) continue;
        bool calleeSaved =
            std::find(kCalleeSavedSlots.begin(), kCalleeSavedSlots.end(),
                      s) != kCalleeSavedSlots.end();
        if (calleeSaved) continue;  // already an MT-ABI01 error
        if (isLoad) {
          emit("MT-DF04", Severity::Warning, &in,
               "loaded value in " + slotName(s) +
                   " is never used (expected for pure load-bandwidth "
                   "kernels)");
        } else {
          emit("MT-DF03", Severity::Warning, &in,
               "value written to " + slotName(s) + " is never read");
        }
      }
    }
  }

  // -- MT-MEM01..03 ---------------------------------------------------------
  struct LinearAddr {
    SymVal base;          // value at the first execution of the access
    std::int64_t step = 0;  // per-iteration advance (0 outside loops)
  };

  void checkMemory() {
    const LaunchContext& ctx = *options_.context;
    if (!loops_.unanalyzedBranches.empty() || loops_.loops.size() > 1) {
      emit("MT-MEM03", Severity::Warning, nullptr,
           "control flow is too complex for the bounds analysis (multiple "
           "loops or unstructured branches)");
      return;
    }

    // Symbolic state at function entry: the trip count is concrete, array
    // pointers are symbolic bases.
    SymState state;
    state[isa::kRsp] = SymVal::unknown();
    state[isa::kRdi] = SymVal::constant(ctx.tripCount);
    for (int a = 0; a < arrayCount_; ++a) {
      state[isa::argumentRegister(1 + a).index] = SymVal::arrayBase(a, 0);
    }
    for (int s : kCalleeSavedSlots) state[s] = SymVal::unknown();

    const std::size_t n = program_.instructions.size();
    const LoopInfo* loop = loops_.loops.empty() ? nullptr : &loops_.loops[0];

    // Prologue: straight-line up to the loop head (or the whole function).
    std::size_t prologueEnd = loop ? loop->headIndex : n;
    for (std::size_t i = 0; i < prologueEnd; ++i) {
      if (!cfg_.reachable[i]) continue;
      checkAccesses(i, state, /*iterations=*/1, ctx);
      applyInsn(state, insn(i));
    }
    if (!loop) return;

    // Per-register constant deltas over one loop body trip; registers with
    // any non-constant write go unknown inside and after the loop.
    std::array<std::optional<std::int64_t>, 16> bodyDelta;
    for (int r = 0; r < 16; ++r) {
      std::int64_t total = 0;
      bool constant = true;
      for (std::size_t i = loop->headIndex;
           i <= loop->branchIndex && constant; ++i) {
        auto d = constantDelta(insn(i), isa::gpr(r));
        if (d) {
          total += *d;
        } else {
          constant = false;
        }
      }
      if (constant) bodyDelta[r] = total;
    }

    std::optional<std::int64_t> trips = tripCountOf(*loop, state, bodyDelta);
    if (!trips) {
      emit("MT-MEM03", Severity::Warning, &insn(loop->branchIndex),
           "loop trip count is not derivable; memory bounds inside the loop "
           "are unchecked");
    }

    // Body accesses: value of each register at instruction i in trip k is
    // head-state + prefix-delta + k * body-delta.
    SymState atPoint = state;
    for (std::size_t i = loop->headIndex; i <= loop->branchIndex; ++i) {
      SymState iterState = atPoint;
      for (int r = 0; r < 16; ++r) {
        if (!bodyDelta[r]) iterState[r] = SymVal::unknown();
      }
      if (trips) {
        checkAccesses(i, iterState, *trips, ctx, &bodyDelta);
      }
      applyInsn(atPoint, insn(i));
    }

    // Epilogue: fold the loop's total effect into the head state.
    if (!trips) return;
    SymState exitState = state;
    for (int r = 0; r < 16; ++r) {
      if (!bodyDelta[r]) {
        exitState[r] = SymVal::unknown();
      } else if (auto v = addConst(state[r], *bodyDelta[r] * *trips)) {
        exitState[r] = *v;
      } else if (state[r].kind != SymVal::Kind::Undef && *bodyDelta[r] != 0) {
        exitState[r] = SymVal::unknown();
      }
    }
    for (std::size_t i = loop->branchIndex + 1; i < n; ++i) {
      if (!cfg_.reachable[i]) continue;
      checkAccesses(i, exitState, 1, ctx);
      applyInsn(exitState, insn(i));
    }
  }

  std::optional<std::int64_t> tripCountOf(
      const LoopInfo& loop, const SymState& headState,
      const std::array<std::optional<std::int64_t>, 16>& bodyDelta) {
    if (!loop.inductionReg || !loop.delta || loop.writeAfterTest ||
        !loop.flagSetter) {
      return std::nullopt;
    }
    int r = loop.inductionReg->index;
    if (loop.inductionReg->cls != isa::RegClass::Gpr || !bodyDelta[r]) {
      return std::nullopt;
    }
    const SymVal& entry = headState[r];
    if (!entry.isConst()) return std::nullopt;
    std::int64_t bound;
    if (loop.boundImm) {
      bound = *loop.boundImm;
    } else if (loop.boundReg &&
               loop.boundReg->cls == isa::RegClass::Gpr &&
               headState[loop.boundReg->index].isConst()) {
      bound = headState[loop.boundReg->index].off;
    } else {
      return std::nullopt;
    }
    // Value observed by the flag setter on the first trip.
    std::int64_t first = entry.off;
    for (std::size_t i = loop.headIndex; i <= *loop.flagSetter; ++i) {
      auto d = constantDelta(insn(i), *loop.inductionReg);
      if (!d) return std::nullopt;
      first += *d;
    }
    return bodyExecutions(first, *loop.delta, bound, loop.condition);
  }

  /// Bounds/alignment check for every memory operand of instruction i,
  /// executed `iterations` times with per-register advance `bodyDelta`
  /// (nullptr outside loops).
  void checkAccesses(
      std::size_t i, const SymState& state, std::int64_t iterations,
      const LaunchContext& ctx,
      const std::array<std::optional<std::int64_t>, 16>* bodyDelta = nullptr) {
    const DecodedInsn& in = insn(i);
    for (const DecodedOperand& op : in.operands) {
      if (op.kind != DecodedOperand::Kind::Mem) continue;
      SymVal addr = evalAddress(state, op.mem);
      if (addr.kind == SymVal::Kind::Undef) continue;  // MT-DF01 covers it
      if (!addr.isArray()) {
        emit("MT-MEM03", Severity::Warning, &in,
             addr.isConst()
                 ? "absolute memory address cannot be checked against any "
                   "array extent"
                 : "memory address is not a recognizable array+offset "
                   "expression; bounds not provable");
        continue;
      }
      std::int64_t step = 0;
      if (bodyDelta) {
        if (op.mem.base && op.mem.base->cls == isa::RegClass::Gpr) {
          auto d = (*bodyDelta)[op.mem.base->index];
          if (!d) {
            emit("MT-MEM03", Severity::Warning, &in,
                 "base register advances non-linearly; bounds not provable");
            continue;
          }
          step += *d;
        }
        if (op.mem.index && op.mem.index->cls == isa::RegClass::Gpr) {
          auto d = (*bodyDelta)[op.mem.index->index];
          if (!d) {
            emit("MT-MEM03", Severity::Warning, &in,
                 "index register advances non-linearly; bounds not provable");
            continue;
          }
          step += *d * op.mem.scale;
        }
      }
      if (addr.array < 0 ||
          addr.array >= static_cast<int>(ctx.arrays.size())) {
        emit("MT-MEM03", Severity::Warning, &in,
             "access through argument register with no matching array in "
             "the launch context");
        continue;
      }
      const ArrayExtent& arr = ctx.arrays[addr.array];
      const std::int64_t bytes = in.accessBytes();
      const std::int64_t last = addr.off + step * (iterations - 1);
      const std::int64_t lo = std::min(addr.off, last);
      const std::int64_t hi = std::max(addr.off, last) + bytes;
      const std::int64_t extent =
          static_cast<std::int64_t>(arr.bytes) +
          static_cast<std::int64_t>(ctx.slackBytes);
      if (lo < 0) {
        emit("MT-MEM01", Severity::Error, &in,
             "access reaches byte " + std::to_string(lo) +
                 " before the start of array " + std::to_string(addr.array));
      } else if (hi > extent) {
        emit("MT-MEM01", Severity::Error, &in,
             "access reaches byte " + std::to_string(hi) + " of array " +
                 std::to_string(addr.array) + " (extent " +
                 std::to_string(arr.bytes) + " + " +
                 std::to_string(ctx.slackBytes) + " padding)");
      }
      if (in.desc->requiresAlignment) {
        const std::int64_t align = 16;
        bool provable = arr.alignment % align == 0 &&
                        (static_cast<std::int64_t>(arr.offset) + addr.off) %
                                align ==
                            0 &&
                        step % align == 0;
        if (!provable) {
          emit("MT-MEM02", Severity::Error, &in,
               "'" + in.mnemonic + "' requires 16-byte alignment but the "
               "address is not provably aligned (base alignment " +
                   std::to_string(arr.alignment) + ", offset " +
                   std::to_string(static_cast<std::int64_t>(arr.offset) +
                                  addr.off) +
                   ", step " + std::to_string(step) + ")");
        }
      }
    }
  }

  const asmparse::Program& program_;
  const VerifyOptions& options_;
  Cfg cfg_;
  LoopScan loops_;
  int arrayCount_ = 5;
  std::vector<RegSet> defined_;
  std::vector<RegSet> live_;
  std::vector<RegSet> liveOut_;
  VerifyReport report_;
};

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view severityName(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

std::size_t VerifyReport::errorCount() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Error;
                    }));
}

std::size_t VerifyReport::warningCount() const {
  return diagnostics.size() - errorCount();
}

std::string VerifyReport::shortSummary() const {
  if (diagnostics.empty()) return "ok";
  std::set<std::string> errors, warnings;
  for (const Diagnostic& d : diagnostics) {
    (d.severity == Severity::Error ? errors : warnings).insert(d.rule);
  }
  auto join = [](const std::set<std::string>& rules) {
    std::string out;
    for (const std::string& r : rules) {
      if (!out.empty()) out += '+';
      out += r;
    }
    return out;
  };
  std::string out;
  if (!errors.empty()) out += "E:" + join(errors);
  if (!warnings.empty()) {
    if (!out.empty()) out += ';';
    out += "W:" + join(warnings);
  }
  return out;
}

VerifyReport verifyProgram(const asmparse::Program& program,
                           const VerifyOptions& options) {
  try {
    return Checker(program, options).run();
  } catch (const ParseError& e) {
    // Unknown branch labels and similar structural defects surface here.
    VerifyReport report;
    report.diagnostics.push_back({"MT-PARSE", Severity::Error, e.message(),
                                  e.line(), e.column()});
    return report;
  }
}

VerifyReport verifyAssembly(std::string_view asmText,
                            const VerifyOptions& options) {
  try {
    return verifyProgram(asmparse::parseAssembly(asmText), options);
  } catch (const ParseError& e) {
    VerifyReport report;
    report.diagnostics.push_back({"MT-PARSE", Severity::Error, e.message(),
                                  e.line(), e.column()});
    return report;
  }
}

std::string renderText(const VerifyReport& report, std::string_view source) {
  std::ostringstream out;
  for (const Diagnostic& d : report.diagnostics) {
    out << source;
    if (d.line) {
      out << ':' << d.line;
      if (d.column) out << ':' << d.column;
    }
    out << ": " << severityName(d.severity) << ": [" << d.rule << "] "
        << d.message << '\n';
  }
  out << source << ": " << report.errorCount() << " error(s), "
      << report.warningCount() << " warning(s)\n";
  return out.str();
}

std::string renderJsonLines(const VerifyReport& report,
                            std::string_view source) {
  std::ostringstream out;
  for (const Diagnostic& d : report.diagnostics) {
    out << "{\"source\":\"" << jsonEscape(source) << "\",\"rule\":\""
        << d.rule << "\",\"severity\":\"" << severityName(d.severity)
        << "\",\"line\":" << d.line << ",\"column\":" << d.column
        << ",\"message\":\"" << jsonEscape(d.message) << "\"}\n";
  }
  return out.str();
}

}  // namespace microtools::verify
