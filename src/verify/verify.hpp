#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asmparse/asmparse.hpp"

namespace microtools::verify {

/// Diagnostic severity. Strict gating skips variants with errors only;
/// warnings flag expected-but-noteworthy properties (dead loads in a
/// load-bandwidth kernel) or facts the analysis cannot prove.
enum class Severity : std::uint8_t { Warning, Error };

std::string_view severityName(Severity s);

/// One finding, tagged with a stable rule identifier from the catalog in
/// DESIGN.md (MT-ABI01, MT-DF02, ...).
struct Diagnostic {
  std::string rule;
  Severity severity = Severity::Warning;
  std::string message;
  std::size_t line = 0;    // 1-based; 0 when not tied to a source position
  std::size_t column = 0;  // 1-based; 0 when unknown
};

/// Geometry of one argument array as the launcher will allocate it,
/// mirroring launcher ArraySpec without depending on launcher headers.
struct ArrayExtent {
  std::size_t bytes = 0;      // requested extent
  std::size_t alignment = 1;  // base alignment guarantee
  std::size_t offset = 0;     // byte offset added to the aligned base
};

/// Concrete launch parameters for the bounds/alignment rules. Both backends
/// over-allocate each array by at least `slackBytes` beyond bytes + offset
/// (launcher::kArraySlackBytes -- kept equal by a launcher-side test), so
/// the trailing up-to-one-stride over-read of a count-down loop is in
/// bounds by construction; accesses beyond the slack are real faults.
struct LaunchContext {
  std::int64_t tripCount = 0;  // the n argument (%rdi)
  std::vector<ArrayExtent> arrays;
  std::size_t slackBytes = 4096;
};

struct VerifyOptions {
  /// Number of array-pointer arguments the kernel receives after n
  /// (MicroCreator's GeneratedProgram::arrayCount). When absent, all six
  /// SysV integer argument registers are assumed defined on entry.
  std::optional<int> arrayCount;

  /// Launch geometry. The MT-MEM rules only run when present; structural
  /// rules (CFG/ABI/dataflow) never need it.
  std::optional<LaunchContext> context;
};

struct VerifyReport {
  std::vector<Diagnostic> diagnostics;

  std::size_t errorCount() const;
  std::size_t warningCount() const;
  bool ok() const { return errorCount() == 0; }

  /// Compact single-cell form for CSV columns: "ok" when clean, else
  /// "E:<rules>;W:<rules>" with deduplicated, sorted rule IDs
  /// (e.g. "E:MT-ABI01;W:MT-DF04").
  std::string shortSummary() const;
};

/// Runs every applicable rule over a parsed program.
VerifyReport verifyProgram(const asmparse::Program& program,
                           const VerifyOptions& options = {});

/// Parses then verifies; a ParseError becomes a single MT-PARSE error
/// diagnostic instead of propagating.
VerifyReport verifyAssembly(std::string_view asmText,
                            const VerifyOptions& options = {});

/// Human-readable rendering, one "source:line:col: severity: [rule] msg"
/// row per diagnostic plus a summary line.
std::string renderText(const VerifyReport& report, std::string_view source);

/// JSON-lines rendering: one object per diagnostic with keys
/// source/rule/severity/line/column/message.
std::string renderJsonLines(const VerifyReport& report,
                            std::string_view source);

}  // namespace microtools::verify
