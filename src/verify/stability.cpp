#include "verify/stability.hpp"

#include "support/error.hpp"
#include "verify/cfg.hpp"

namespace microtools::verify {

StabilityReport analyzeStability(const asmparse::Program& program,
                                 const CoreModel& model,
                                 const CyclePrediction& prediction,
                                 const StabilityOptions& options) {
  StabilityReport report;

  try {
    Cfg cfg = buildCfg(program);
    LoopScan scan = findLoops(program, cfg);
    if (scan.loops.size() == 1 && scan.unanalyzedBranches.empty()) {
      const LoopInfo& loop = scan.loops.front();
      report.regularLoop = loop.inductionReg.has_value() &&
                           loop.delta.has_value() && !loop.writeAfterTest;
    }
  } catch (const ParseError&) {
    return report;  // unknown branch target: nothing is provable
  }

  report.fitsL1 = options.footprintBytes > 0 &&
                  options.footprintBytes <= model.l1SizeBytes;
  report.steadyDependences = prediction.valid && !prediction.loadCarried;
  return report;
}

StabilityReport analyzeStability(std::string_view asmText,
                                 const CoreModel& model,
                                 const StabilityOptions& options) {
  try {
    asmparse::Program program = asmparse::parseAssembly(asmText);
    return analyzeStability(program, model, predictProgram(program, model),
                            options);
  } catch (const ParseError&) {
    return {};
  }
}

}  // namespace microtools::verify
