#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "asmparse/asmparse.hpp"
#include "verify/cfg.hpp"

namespace microtools::sim {
struct MachineConfig;
}

namespace microtools::verify {

/// Machine geometry the static cost model prices against: the execution-port
/// counts, dispatch width, and L1 parameters of the simulator's core model.
/// Derived from a sim::MachineConfig so `microtools analyze` and the
/// campaign predictions price against exactly the machine being measured.
struct CoreModel {
  int issueWidth = 4;       ///< micro-ops dispatched per cycle
  int loadPorts = 1;
  int storePorts = 1;
  int aluPorts = 3;
  int fpAddPorts = 1;
  int fpMulPorts = 1;       ///< shared with the unpipelined divider
  int branchPorts = 1;
  int loadLatency = 4;      ///< L1 load-to-use, in core cycles
  std::uint64_t l1SizeBytes = 32 * 1024;
};

CoreModel coreModelFromMachine(const sim::MachineConfig& machine);

/// Summed micro-op occupancy of one loop iteration on one port pool.
/// bound() is the pool's contribution to the throughput lower bound:
/// occupancy divided by the number of ports serving the pool.
struct PortPressure {
  std::string unit;       ///< "load", "store", "alu", "fp-add", "fp-mul", "branch"
  double occupancy = 0.0; ///< port-cycles demanded per iteration
  int ports = 1;

  double bound() const {
    return ports > 0 ? occupancy / ports : occupancy;
  }
};

/// Static cycles/iteration lower bound for one single-block loop.
///
/// Three independent bounds, each sound against the simulator's exact
/// core model on L1-resident streaming kernels (cache misses, aliasing
/// stalls, and mispredict bubbles only add cycles on top):
///   - frontendBound: dispatch cycles per iteration (greedy issue-width
///     packing; a taken backward branch ends its dispatch cycle, so
///     iterations never share one),
///   - throughputBound: max over port pools of occupancy / ports
///     (the LP relaxation of port binding),
///   - latencyBound: maximum dependence-cycle mean over the loop-carried
///     def-use graph (the classic recurrence-constrained MII), including
///     load-feeds-address chains at L1-hit load latency.
/// The predicted interval is [cyclesLowerBound(), +inf).
struct CyclePrediction {
  bool valid = false;        ///< false: unsupported shape or unmodeled opcodes
  std::size_t headIndex = 0;
  std::size_t branchIndex = 0;
  std::size_t headLine = 0;  ///< 1-based source line of the loop head

  double frontendBound = 0.0;
  double throughputBound = 0.0;
  double latencyBound = 0.0;
  std::vector<PortPressure> pressure;

  /// Which bound is binding: "frontend", "latency", or a port pool name.
  std::string binding;

  /// A load micro-op sits on a loop-carried dependence cycle (pointer
  /// chase / load-feeds-address): the recurrence length then depends on
  /// where the data lives, not just on core latencies.
  bool loadCarried = false;

  /// Why the prediction is invalid or approximate (deduplicated; the
  /// unmodeled-opcode warning is emitted once per mnemonic).
  std::vector<std::string> warnings;

  double cyclesLowerBound() const;
};

/// Predicts one recognized single-block loop of `program`.
CyclePrediction predictLoop(const asmparse::Program& program,
                            const LoopInfo& loop, const CoreModel& model);

/// Whole-program prediction: valid only when the program has exactly one
/// recognized single-block loop and no unanalyzed branches (the shape every
/// MicroCreator kernel has). Never throws on unmodeled opcodes -- the
/// prediction comes back invalid with warnings instead.
CyclePrediction predictProgram(const asmparse::Program& program,
                               const CoreModel& model);

/// Parses and predicts; parse failures come back as an invalid prediction
/// with a warning rather than an exception.
CyclePrediction predictAssembly(std::string_view asmText,
                                const CoreModel& model);

/// Mnemonics whose cost metadata is flagged `unmodeled`, deduplicated in
/// first-appearance order (for warn-once diagnostics).
std::vector<std::string> unmodeledMnemonics(const asmparse::Program& program);

}  // namespace microtools::verify
