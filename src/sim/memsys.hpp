#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/arch.hpp"
#include "sim/cache.hpp"

namespace microtools::sim {

/// Hierarchy level an access was served from.
enum class MemLevel : int { L1 = 1, L2 = 2, L3 = 3, Ram = 4 };

/// Result of one memory access.
struct AccessResult {
  std::uint64_t completeCycle = 0;  ///< load-to-use completion (core cycles)
  MemLevel level = MemLevel::L1;    ///< deepest level consulted
  bool splitLine = false;           ///< access crossed a cache line
};

/// The full memory system: per-core L1/L2 with an L2 stream prefetcher,
/// per-socket shared L3, per-socket memory channels with occupancy-based
/// bandwidth, and NUMA home-socket routing with a QPI hop penalty.
///
/// All times are in core-clock cycles of the configured machine; the
/// MachineConfig converts uncore nanosecond latencies at construction so a
/// core-frequency change (Figure 13) rescales exactly the off-core part.
class MemorySystem {
 public:
  explicit MemorySystem(const MachineConfig& config);

  const MachineConfig& config() const { return config_; }

  /// Declares [base, base+size) to be homed on `socket` (first-touch /
  /// numactl modeling). Undeclared addresses are homed on socket 0.
  void setHomeSocket(std::uint64_t base, std::uint64_t size, int socket);

  /// Peeks at the level a load from `addr` would currently hit, without
  /// changing any state. Used by the core model to reserve fill buffers
  /// before committing to an access.
  MemLevel peekLevel(int coreId, std::uint64_t addr) const;

  /// Performs a load of `bytes` at `addr`, issued at `cycle`.
  AccessResult load(int coreId, std::uint64_t addr, int bytes,
                    std::uint64_t cycle);

  /// Performs a store (write-allocate RFO). The returned completeCycle is
  /// when the line is owned — the pipeline does not stall on it, but a fill
  /// buffer stays busy until then.
  AccessResult store(int coreId, std::uint64_t addr, int bytes,
                     std::uint64_t cycle);

  /// Inserts the lines covering [addr, addr+bytes) into the hierarchy of
  /// `coreId` without accounting any time (test/warm-up helper).
  void touch(int coreId, std::uint64_t addr, std::uint64_t bytes);

  /// Drops all cached state and statistics (channel clocks keep advancing).
  void clearCaches();

  /// Per-level access counters (demand accesses, both loads and stores).
  std::uint64_t levelCount(MemLevel level) const;

  /// Total prefetches issued by the L2 streamers.
  std::uint64_t prefetchCount() const { return prefetches_; }

  int socketOfCore(int coreId) const;

 private:
  struct CorePrivate {
    CacheLevel l1;
    CacheLevel l2;
    std::uint64_t l2PortFree = 0;  // L2->L1 fill bandwidth
    // Stream prefetcher state.
    std::uint64_t lastMissLine = ~0ull;
    int streak = 0;
    // Lines being prefetched into L2: line -> arrival cycle.
    std::map<std::uint64_t, std::uint64_t> pendingFills;
  };

  struct Socket {
    CacheLevel l3;
    std::vector<std::uint64_t> channelFree;
    std::uint64_t l3PortFree = 0;  // shared L3 read bandwidth
  };

  std::uint64_t lineOf(std::uint64_t addr) const {
    return addr / static_cast<std::uint64_t>(config_.lineBytes);
  }

  int homeSocket(std::uint64_t addr) const;

  /// Fetches one line for core `coreId`; returns completion cycle and level.
  AccessResult fetchLine(int coreId, std::uint64_t lineAddr,
                         std::uint64_t cycle);

  /// Starts a DRAM transfer on the least-loaded channel of `socket`;
  /// returns the data-arrival cycle.
  std::uint64_t dramFetch(Socket& socket, std::uint64_t earliestStart,
                          bool remote);

  void maybePrefetch(int coreId, std::uint64_t missLine, std::uint64_t cycle);

  AccessResult access(int coreId, std::uint64_t addr, int bytes,
                      std::uint64_t cycle);

  MachineConfig config_;
  std::vector<CorePrivate> cores_;
  std::vector<Socket> sockets_;
  struct HomeRange {
    std::uint64_t base, size;
    int socket;
  };
  std::vector<HomeRange> homeRanges_;

  // Cached conversions.
  std::uint64_t l3LatencyCycles_;
  std::uint64_t memLatencyCycles_;
  std::uint64_t qpiLatencyCycles_;
  std::uint64_t channelOccupancy_;
  std::uint64_t l3FillCycles_;  // uncore-domain occupancy in core cycles

  std::uint64_t levelCounts_[5] = {0, 0, 0, 0, 0};
  std::uint64_t prefetches_ = 0;
};

}  // namespace microtools::sim
