#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/arch.hpp"
#include "sim/cache.hpp"

namespace microtools::sim {

/// Hierarchy level an access was served from.
enum class MemLevel : int { L1 = 1, L2 = 2, L3 = 3, Ram = 4 };

/// Result of one memory access.
struct AccessResult {
  std::uint64_t completeCycle = 0;  ///< load-to-use completion (core cycles)
  MemLevel level = MemLevel::L1;    ///< deepest level consulted
  bool splitLine = false;           ///< access crossed a cache line
};

/// The full memory system: per-core L1/L2 with an L2 stream prefetcher,
/// per-socket shared L3, per-socket memory channels with occupancy-based
/// bandwidth, and NUMA home-socket routing with a QPI hop penalty.
///
/// All times are in core-clock cycles of the configured machine; the
/// MachineConfig converts uncore nanosecond latencies at construction so a
/// core-frequency change (Figure 13) rescales exactly the off-core part.
class MemorySystem {
 public:
  explicit MemorySystem(const MachineConfig& config);

  const MachineConfig& config() const { return config_; }

  /// Declares [base, base+size) to be homed on `socket` (first-touch /
  /// numactl modeling). Undeclared addresses are homed on socket 0.
  void setHomeSocket(std::uint64_t base, std::uint64_t size, int socket);

  /// Peeks at the level a load from `addr` would currently hit, without
  /// changing any state. Used by the core model to reserve fill buffers
  /// before committing to an access.
  MemLevel peekLevel(int coreId, std::uint64_t addr) const;

  /// Performs a load of `bytes` at `addr`, issued at `cycle`.
  AccessResult load(int coreId, std::uint64_t addr, int bytes,
                    std::uint64_t cycle);

  /// Performs a store (write-allocate RFO). The returned completeCycle is
  /// when the line is owned — the pipeline does not stall on it, but a fill
  /// buffer stays busy until then.
  AccessResult store(int coreId, std::uint64_t addr, int bytes,
                     std::uint64_t cycle);

  /// Inserts the lines covering [addr, addr+bytes) into the hierarchy of
  /// `coreId` without accounting any time (test/warm-up helper).
  void touch(int coreId, std::uint64_t addr, std::uint64_t bytes);

  /// Drops all cached state and statistics (channel clocks keep advancing).
  void clearCaches();

  /// Per-level access counters (demand accesses, both loads and stores).
  std::uint64_t levelCount(MemLevel level) const;

  /// Total prefetches issued by the L2 streamers.
  std::uint64_t prefetchCount() const { return prefetches_; }

  /// Digest of all behavior-relevant state, normalized to be invariant
  /// under time translation: cache contents with LRU *ranks* (not absolute
  /// use clocks), prefetcher streaks, in-flight fills and port/channel
  /// busy-times expressed relative to `clock` (anything already free hashes
  /// as "free now"). Two MemorySystems with equal fingerprints at their
  /// respective clocks respond identically to identical future access
  /// streams — the foundation of SimBackend's warm-invoke memoization.
  /// Statistics (levelCounts, prefetch and hit/miss counters) are excluded:
  /// they never influence timing.
  std::uint64_t stateFingerprint(std::uint64_t clock) const;

  /// Credits `count` L1 demand hits to the statistics without simulating
  /// them — used when CoreSim extrapolates a steady-state loop tail (the
  /// skipped accesses are proven L1 hits) and when SimBackend replays a
  /// memoized invoke, so counters track full simulation exactly.
  void creditReplayedAccesses(const std::uint64_t levelDeltas[5],
                              std::uint64_t prefetchDelta);

  /// Replays the L1 recency effect of a demand access that is known to hit
  /// L1: the covered line(s) get their LRU position refreshed exactly as
  /// the real access would have done, with no time charged. Steady-state
  /// extrapolation uses this for the skipped iterations' accesses — they
  /// can never miss (proven beforehand), but their ordering determines the
  /// final LRU state, which later invokes in a warm protocol observe.
  /// Returns false if a covered line was absent (caller bug).
  bool refreshL1(int coreId, std::uint64_t addr, int bytes);

  /// Shifts every pending busy-time and fill arrival forward by `delta`
  /// cycles. Used when a memoized invoke is replayed: the global clock
  /// advances by the invoke's duration without simulation, and shifting the
  /// in-flight state by the same amount keeps its position relative to the
  /// clock — and therefore the state fingerprint — exactly what full
  /// simulation would have produced.
  void translateInFlight(std::uint64_t delta);

  int socketOfCore(int coreId) const;

 private:
  struct CorePrivate {
    CacheLevel l1;
    CacheLevel l2;
    std::uint64_t l2PortFree = 0;  // L2->L1 fill bandwidth
    // Stream prefetcher state.
    std::uint64_t lastMissLine = ~0ull;
    int streak = 0;
    // Lines being prefetched into L2: line -> arrival cycle.
    std::map<std::uint64_t, std::uint64_t> pendingFills;
  };

  struct Socket {
    CacheLevel l3;
    std::vector<std::uint64_t> channelFree;
    std::uint64_t l3PortFree = 0;  // shared L3 read bandwidth
  };

  std::uint64_t lineOf(std::uint64_t addr) const {
    return addr / static_cast<std::uint64_t>(config_.lineBytes);
  }

  int homeSocket(std::uint64_t addr) const;

  /// Fetches one line for core `coreId`; returns completion cycle and level.
  AccessResult fetchLine(int coreId, std::uint64_t lineAddr,
                         std::uint64_t cycle);

  /// Starts a DRAM transfer on the least-loaded channel of `socket`;
  /// returns the data-arrival cycle.
  std::uint64_t dramFetch(Socket& socket, std::uint64_t earliestStart,
                          bool remote);

  void maybePrefetch(int coreId, std::uint64_t missLine, std::uint64_t cycle);

  AccessResult access(int coreId, std::uint64_t addr, int bytes,
                      std::uint64_t cycle);

  MachineConfig config_;
  std::vector<CorePrivate> cores_;
  std::vector<Socket> sockets_;
  struct HomeRange {
    std::uint64_t base, size;
    int socket;
  };
  std::vector<HomeRange> homeRanges_;

  // Cached conversions.
  std::uint64_t l3LatencyCycles_;
  std::uint64_t memLatencyCycles_;
  std::uint64_t qpiLatencyCycles_;
  std::uint64_t channelOccupancy_;
  std::uint64_t l3FillCycles_;  // uncore-domain occupancy in core cycles

  std::uint64_t levelCounts_[5] = {0, 0, 0, 0, 0};
  std::uint64_t prefetches_ = 0;
};

}  // namespace microtools::sim
