#include "sim/memsys.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace microtools::sim {

MemorySystem::MemorySystem(const MachineConfig& config) : config_(config) {
  if (config_.sockets <= 0 || config_.coresPerSocket <= 0) {
    throw McError("machine must have at least one socket and core");
  }
  for (int c = 0; c < config_.totalCores(); ++c) {
    cores_.push_back(CorePrivate{
        CacheLevel(config_.l1.sizeBytes, config_.l1.ways, config_.lineBytes),
        CacheLevel(config_.l2.sizeBytes, config_.l2.ways, config_.lineBytes),
        0,
        ~0ull,
        0,
        {}});
  }
  for (int s = 0; s < config_.sockets; ++s) {
    Socket socket{
        CacheLevel(config_.l3.sizeBytes, config_.l3.ways, config_.lineBytes),
        std::vector<std::uint64_t>(
            static_cast<std::size_t>(config_.memChannelsPerSocket), 0),
        0};
    sockets_.push_back(std::move(socket));
  }
  l3LatencyCycles_ = config_.nsToCoreCycles(config_.l3.latencyNs);
  memLatencyCycles_ = config_.nsToCoreCycles(config_.memLatencyNs);
  qpiLatencyCycles_ = config_.nsToCoreCycles(20.0);
  channelOccupancy_ = std::max<std::uint64_t>(1, config_.channelOccupancyCycles());
  // The L3 runs in the uncore clock domain: its fill occupancy is constant
  // in wall time, so the core-cycle value scales with the core clock
  // (Figure 13: L3 timings are frequency independent in rdtsc cycles).
  l3FillCycles_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(config_.l3FillCycles * config_.coreGHz /
                                        config_.nominalGHz +
                                    0.5));
}

int MemorySystem::socketOfCore(int coreId) const {
  if (coreId < 0 || coreId >= config_.totalCores()) {
    throw McError("core id out of range: " + std::to_string(coreId));
  }
  return coreId / config_.coresPerSocket;
}

void MemorySystem::setHomeSocket(std::uint64_t base, std::uint64_t size,
                                 int socket) {
  if (socket < 0 || socket >= config_.sockets) {
    throw McError("home socket out of range: " + std::to_string(socket));
  }
  homeRanges_.push_back({base, size, socket});
}

int MemorySystem::homeSocket(std::uint64_t addr) const {
  for (const HomeRange& r : homeRanges_) {
    if (addr >= r.base && addr - r.base < r.size) return r.socket;
  }
  return 0;
}

MemLevel MemorySystem::peekLevel(int coreId, std::uint64_t addr) const {
  const CorePrivate& core = cores_[static_cast<std::size_t>(coreId)];
  std::uint64_t line = lineOf(addr);
  if (core.l1.contains(line)) return MemLevel::L1;
  if (core.l2.contains(line) || core.pendingFills.count(line)) {
    return MemLevel::L2;
  }
  const Socket& socket = sockets_[static_cast<std::size_t>(socketOfCore(coreId))];
  if (socket.l3.contains(line)) return MemLevel::L3;
  return MemLevel::Ram;
}

std::uint64_t MemorySystem::dramFetch(Socket& socket,
                                      std::uint64_t earliestStart,
                                      bool remote) {
  auto it = std::min_element(socket.channelFree.begin(),
                             socket.channelFree.end());
  std::uint64_t start = std::max(earliestStart, *it);
  *it = start + channelOccupancy_;
  std::uint64_t arrival = start + memLatencyCycles_ + channelOccupancy_;
  if (remote) arrival += qpiLatencyCycles_;
  return arrival;
}

void MemorySystem::maybePrefetch(int coreId, std::uint64_t missLine,
                                 std::uint64_t cycle) {
  CorePrivate& core = cores_[static_cast<std::size_t>(coreId)];
  if (missLine == core.lastMissLine + 1) {
    ++core.streak;
  } else if (missLine != core.lastMissLine) {
    core.streak = 1;
  }
  core.lastMissLine = missLine;
  if (core.streak < config_.prefetchTrigger) return;

  int localSocket = socketOfCore(coreId);
  Socket& l3Socket = sockets_[static_cast<std::size_t>(localSocket)];
  std::uint64_t linesPerPage = 4096 / static_cast<std::uint64_t>(config_.lineBytes);
  for (int d = 1; d <= config_.prefetchDegree; ++d) {
    std::uint64_t line = missLine + static_cast<std::uint64_t>(d);
    // Hardware streamers do not prefetch across a 4 KiB page boundary (the
    // physical mapping of the next page is unknown); the stream re-arms
    // after the boundary. This caps single-stream bandwidth realistically.
    if (line / linesPerPage != missLine / linesPerPage) break;
    if (core.l2.contains(line) || core.pendingFills.count(line)) continue;
    std::uint64_t arrival;
    if (l3Socket.l3.lookup(line)) {
      std::uint64_t start = std::max(cycle, l3Socket.l3PortFree);
      l3Socket.l3PortFree =
          start + l3FillCycles_;
      arrival = start + l3LatencyCycles_;
    } else {
      std::uint64_t byteAddr =
          line * static_cast<std::uint64_t>(config_.lineBytes);
      int home = homeSocket(byteAddr);
      arrival = dramFetch(sockets_[static_cast<std::size_t>(home)],
                          cycle + l3LatencyCycles_, home != localSocket);
      l3Socket.l3.insert(line);
    }
    core.l2.insert(line);
    core.pendingFills[line] = arrival;
    ++prefetches_;
  }
}

AccessResult MemorySystem::fetchLine(int coreId, std::uint64_t lineAddr,
                                     std::uint64_t cycle) {
  CorePrivate& core = cores_[static_cast<std::size_t>(coreId)];
  AccessResult result;

  std::uint64_t l1Latency = static_cast<std::uint64_t>(config_.l1.latencyCycles);
  if (core.l1.lookup(lineAddr)) {
    result.level = MemLevel::L1;
    result.completeCycle = cycle + l1Latency;
    return result;
  }

  std::uint64_t l2Latency = static_cast<std::uint64_t>(config_.l2.latencyCycles);
  // Train the stream prefetcher on every L1 miss — including accesses that
  // hit lines already prefetched into L2 — so a stream keeps advancing
  // instead of stalling at the end of each prefetch window.
  maybePrefetch(coreId, lineAddr, cycle);
  // A line still in flight from the prefetcher counts as an L2 hit that may
  // have to wait for the fill to arrive.
  if (auto it = core.pendingFills.find(lineAddr);
      it != core.pendingFills.end()) {
    std::uint64_t arrival = it->second;
    if (arrival <= cycle) {
      core.pendingFills.erase(it);
    } else {
      result.level = MemLevel::L2;
      result.completeCycle = std::max(cycle + l1Latency + l2Latency,
                                      arrival + l1Latency);
      core.l1.insert(lineAddr);
      return result;
    }
  }

  if (core.l2.lookup(lineAddr)) {
    result.level = MemLevel::L2;
    std::uint64_t start = std::max(cycle, core.l2PortFree);
    core.l2PortFree = start + static_cast<std::uint64_t>(config_.l2FillCycles);
    result.completeCycle = start + l1Latency + l2Latency;
    core.l1.insert(lineAddr);
    return result;
  }

  // L2 demand miss: consult the socket L3.
  int localSocket = socketOfCore(coreId);
  Socket& socket = sockets_[static_cast<std::size_t>(localSocket)];
  if (socket.l3.lookup(lineAddr)) {
    result.level = MemLevel::L3;
    std::uint64_t start = std::max(cycle, socket.l3PortFree);
    socket.l3PortFree =
        start + l3FillCycles_;
    result.completeCycle = start + l1Latency + l2Latency + l3LatencyCycles_;
  } else {
    std::uint64_t byteAddr =
        lineAddr * static_cast<std::uint64_t>(config_.lineBytes);
    int home = homeSocket(byteAddr);
    result.level = MemLevel::Ram;
    result.completeCycle =
        dramFetch(sockets_[static_cast<std::size_t>(home)],
                  cycle + l1Latency + l2Latency + l3LatencyCycles_,
                  home != localSocket);
    socket.l3.insert(lineAddr);
  }
  core.l2.insert(lineAddr);
  core.l1.insert(lineAddr);
  return result;
}

AccessResult MemorySystem::access(int coreId, std::uint64_t addr, int bytes,
                                  std::uint64_t cycle) {
  if (coreId < 0 || coreId >= config_.totalCores()) {
    throw McError("core id out of range: " + std::to_string(coreId));
  }
  std::uint64_t firstLine = lineOf(addr);
  std::uint64_t lastLine = lineOf(addr + static_cast<std::uint64_t>(bytes) - 1);
  AccessResult result = fetchLine(coreId, firstLine, cycle);
  levelCounts_[static_cast<int>(result.level)]++;
  if (lastLine != firstLine) {
    AccessResult second = fetchLine(coreId, lastLine, cycle);
    result.completeCycle =
        std::max(result.completeCycle, second.completeCycle) +
        static_cast<std::uint64_t>(config_.splitLinePenalty);
    result.level = std::max(result.level, second.level);
    result.splitLine = true;
  }
  return result;
}

AccessResult MemorySystem::load(int coreId, std::uint64_t addr, int bytes,
                                std::uint64_t cycle) {
  return access(coreId, addr, bytes, cycle);
}

AccessResult MemorySystem::store(int coreId, std::uint64_t addr, int bytes,
                                 std::uint64_t cycle) {
  // Write-allocate: the RFO follows the same path as a load. The returned
  // completion is the ownership time (fill-buffer release), not a pipeline
  // stall.
  return access(coreId, addr, bytes, cycle);
}

void MemorySystem::touch(int coreId, std::uint64_t addr, std::uint64_t bytes) {
  CorePrivate& core = cores_[static_cast<std::size_t>(coreId)];
  Socket& socket = sockets_[static_cast<std::size_t>(socketOfCore(coreId))];
  std::uint64_t first = lineOf(addr);
  std::uint64_t last = lineOf(addr + (bytes ? bytes - 1 : 0));
  for (std::uint64_t line = first; line <= last; ++line) {
    socket.l3.insert(line);
    core.l2.insert(line);
    core.l1.insert(line);
  }
}

void MemorySystem::clearCaches() {
  for (CorePrivate& core : cores_) {
    core.l1.clear();
    core.l2.clear();
    core.l2PortFree = 0;
    core.lastMissLine = ~0ull;
    core.streak = 0;
    core.pendingFills.clear();
  }
  for (Socket& socket : sockets_) socket.l3.clear();
  for (auto& c : levelCounts_) c = 0;
  prefetches_ = 0;
}

std::uint64_t MemorySystem::levelCount(MemLevel level) const {
  return levelCounts_[static_cast<int>(level)];
}

std::uint64_t MemorySystem::stateFingerprint(std::uint64_t clock) const {
  // Busy-times in the past are equivalent to "free now": every consumer
  // computes max(cycle, free), so any value <= clock behaves like clock.
  auto rel = [clock](std::uint64_t t) { return t > clock ? t - clock : 0; };
  hash::Fnv1a h;
  h.u64(cores_.size()).u64(sockets_.size());
  for (const CorePrivate& core : cores_) {
    core.l1.hashState(h);
    core.l2.hashState(h);
    h.u64(rel(core.l2PortFree));
    h.u64(core.lastMissLine);
    h.u64(static_cast<std::uint64_t>(core.streak));
    // Arrived-but-unconsumed fills still gate maybePrefetch via their map
    // presence, so they are hashed (with relative arrival 0) rather than
    // dropped.
    h.u64(core.pendingFills.size());
    for (const auto& [line, arrival] : core.pendingFills) {
      h.u64(line).u64(rel(arrival));
    }
  }
  for (const Socket& socket : sockets_) {
    socket.l3.hashState(h);
    h.u64(rel(socket.l3PortFree));
    h.u64(socket.channelFree.size());
    for (std::uint64_t f : socket.channelFree) h.u64(rel(f));
  }
  h.u64(homeRanges_.size());
  for (const HomeRange& r : homeRanges_) {
    h.u64(r.base).u64(r.size).u64(static_cast<std::uint64_t>(r.socket));
  }
  return h.value();
}

void MemorySystem::creditReplayedAccesses(const std::uint64_t levelDeltas[5],
                                          std::uint64_t prefetchDelta) {
  for (int i = 0; i < 5; ++i) levelCounts_[i] += levelDeltas[i];
  prefetches_ += prefetchDelta;
}

bool MemorySystem::refreshL1(int coreId, std::uint64_t addr, int bytes) {
  CorePrivate& core = cores_[static_cast<std::size_t>(coreId)];
  std::uint64_t firstLine = lineOf(addr);
  std::uint64_t lastLine =
      lineOf(addr + static_cast<std::uint64_t>(bytes) - 1);
  bool ok = core.l1.lookup(firstLine);
  if (lastLine != firstLine) ok = core.l1.lookup(lastLine) && ok;
  return ok;
}

void MemorySystem::translateInFlight(std::uint64_t delta) {
  for (CorePrivate& core : cores_) {
    core.l2PortFree += delta;
    for (auto& [line, arrival] : core.pendingFills) arrival += delta;
  }
  for (Socket& socket : sockets_) {
    socket.l3PortFree += delta;
    for (std::uint64_t& f : socket.channelFree) f += delta;
  }
}

}  // namespace microtools::sim
