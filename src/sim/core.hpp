#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "asmparse/asmparse.hpp"
#include "sim/arch.hpp"
#include "sim/memsys.hpp"

namespace microtools::sim {

/// Knobs of the steady-state loop extrapolation (DESIGN.md "Steady-state
/// model"). Off by default: only the single-core launcher path opts in,
/// because lockstep multi-core runs share one MemorySystem and must tick
/// every cycle.
struct SteadyStateOptions {
  bool enabled = false;

  /// Same-phase loop-boundary confirmations required before the per-period
  /// state delta counts as established.
  int confirmPeriods = 6;

  /// Smallest number of iterations worth skipping; below this the loop is
  /// nearly done and detection shuts off to keep the hot path clean.
  std::uint64_t minSkipIterations = 64;

  /// Budget for the L1-residency precheck of the skipped address stream;
  /// exceeding it bails (never extrapolates) rather than scanning forever.
  std::uint64_t maxPrecheckLines = 1ull << 22;
};

/// Outcome of one simulated kernel invocation.
struct RunResult {
  std::uint64_t coreCycles = 0;    ///< wall time in core-clock cycles
  std::uint64_t instructions = 0;  ///< dynamic instruction count
  std::uint64_t uops = 0;          ///< dynamic uop count
  std::uint64_t iterations = 0;    ///< %eax at ret (§4.4 contract)
  double tscCycles = 0.0;          ///< invariant-TSC cycles (what rdtsc sees)

  /// Audit trail of the steady-state extrapolation: 0 when every iteration
  /// was cycle-simulated; otherwise the loop iteration at which the
  /// simulator proved periodicity and analytically skipped
  /// `extrapolatedIterations` iterations (the tail after the skip is again
  /// cycle-simulated).
  std::uint64_t extrapolatedFrom = 0;
  std::uint64_t extrapolatedIterations = 0;

  /// Estimated energy of the run (§7's "power utilization" output):
  /// dynamic uop + cache/DRAM access energies plus static leakage over the
  /// run's cycles, per the machine's energy parameters.
  double energyPj = 0.0;

  /// Average power over the run in watts (0 for an empty run).
  double averageWatts(const MachineConfig& config) const {
    if (coreCycles == 0) return 0.0;
    double seconds = static_cast<double>(coreCycles) /
                     (config.coreGHz * 1e9);
    return energyPj * 1e-12 / seconds;
  }
};

/// Simplified out-of-order core in the spirit of Nehalem: in-order dispatch
/// of up to issueWidth uops/cycle into a ROB window, dataflow issue to typed
/// execution ports, a fill-buffer cap on outstanding misses (MLP), in-order
/// retirement, predicted-taken loop branches, 4 KiB store/load aliasing
/// penalties, and a one-time mispredict bubble at loop exit.
///
/// Instructions are executed *functionally at dispatch* (register values,
/// addresses and branch directions are architecturally exact) while timing is
/// resolved through the dependency graph — the same decoupling llvm-mca
/// uses, plus real cache state from the shared MemorySystem.
///
/// Loaded data values are not tracked (they never influence control flow in
/// MicroCreator kernels); a GPR load produces zero. This is the one
/// documented functional approximation.
class CoreSim {
 public:
  CoreSim(const MachineConfig& config, MemorySystem& memsys, int coreId);

  /// Prepares execution of `program` with arguments (n, arrays...) per the
  /// SysV ABI. `startCycle` is the global cycle at which the call begins.
  void start(const asmparse::Program& program, int n,
             const std::vector<std::uint64_t>& arrayAddrs,
             std::uint64_t startCycle);

  bool finished() const { return finished_; }

  /// Advances the core by one cycle (retire, issue, dispatch).
  void tick(std::uint64_t cycle);

  /// Earliest future cycle at which tick() can make progress; used for
  /// fast-forwarding. Always > the cycle passed to the last tick().
  std::uint64_t nextEvent() const { return nextEvent_; }

  /// Valid once finished().
  RunResult result() const;

  /// Convenience: runs to completion on a private clock; returns the result.
  RunResult run(const asmparse::Program& program, int n,
                const std::vector<std::uint64_t>& arrayAddrs,
                std::uint64_t startCycle = 0);

  int coreId() const { return coreId_; }

  /// Optional pipeline trace: when set, one line per uop issue/retire event
  /// is written to the stream (debugging aid, also exercised by tests).
  void setTrace(std::FILE* stream) { trace_ = stream; }

  /// Enables/configures steady-state loop extrapolation for subsequent
  /// runs. Takes effect at the next start().
  void setSteadyState(const SteadyStateOptions& opts) { ss_ = opts; }

 private:
  // Register-file ids: 0-15 GPR, 16-31 XMM, 32 flags.
  static constexpr int kNumRegs = 33;
  static constexpr int kFlagsReg = 32;

  enum class Unit : std::uint8_t {
    Load, Store, Alu, FpAdd, FpMul, FpDiv, Branch
  };

  struct Uop {
    Unit unit = Unit::Alu;
    int dst = -1;
    std::array<int, 4> deps{};  // producer uop global ids; -1 = none
    int depCount = 0;
    int latency = 1;
    bool isMem = false;
    std::uint64_t addr = 0;
    int bytes = 0;
    bool issued = false;
    std::uint64_t completeCycle = 0;  // valid when issued
  };

  struct RecentStore {
    std::uint64_t addr = 0;
    std::uint64_t cycle = 0;
  };

  // -- pipeline stages -------------------------------------------------------
  void retire(std::uint64_t cycle);
  void issue(std::uint64_t cycle);
  void dispatch(std::uint64_t cycle);
  void computeNextEvent(std::uint64_t cycle, bool progressed);

  bool depsReady(const Uop& uop, std::uint64_t cycle) const;
  bool tryIssueOne(Uop& uop, std::uint64_t globalId, std::uint64_t cycle);

  // -- functional execution --------------------------------------------------
  std::int64_t readGpr(const isa::PhysReg& reg) const;
  void writeGpr(const isa::PhysReg& reg, std::int64_t value);
  std::uint64_t effectiveAddress(const asmparse::DecodedMem& mem) const;
  std::int64_t operandValue(const asmparse::DecodedOperand& op) const;
  void executeFunctional(const asmparse::DecodedInsn& insn, bool& branchTaken);
  bool evaluateCondition(isa::Condition cond) const;

  // -- dispatch helpers ------------------------------------------------------
  static int regId(const isa::PhysReg& reg);
  void addDep(Uop& uop, int reg) const;
  void noteWrite(int reg, std::uint64_t producerId);
  std::uint64_t pushUop(Uop uop);

  // -- steady-state extrapolation (see DESIGN.md) ----------------------------
  /// One loop-boundary snapshot, taken right after a backward-taken branch
  /// dispatches. Slots are grouped by the invariant they must satisfy for
  /// the loop to count as steady:
  ///  - shape:  equal at lag p (ROB structure, pc, non-L1 counters),
  ///  - arch:   constant first difference at lag 1 (registers, flags,
  ///            retired-work counters — the slots the exit solve reads),
  ///  - timing: constant first difference at lag p (cycle clock, port and
  ///            fill-buffer busy times, ROB addresses/completions, the
  ///            recent-store ring, whose natural period is 16/stores-per-
  ///            iteration rather than 1).
  struct SsBoundary {
    std::vector<std::uint64_t> shape;
    std::vector<std::uint64_t> arch;
    std::vector<std::uint64_t> timing;
  };
  struct SsMemOp {
    std::size_t pc = 0;
    std::uint64_t addr = 0;    // address at the first post-boundary iteration
    std::int64_t stride = 0;   // per-iteration address delta
    int bytes = 0;
    bool isStore = false;
  };
  /// One recorded L1 access (issue order), for LRU replay of skipped
  /// iterations: the skipped accesses can never miss, but the order in
  /// which they refresh recency determines the final LRU state.
  struct SsAccess {
    std::uint64_t addr = 0;
    int bytes = 0;
  };

  void ssOnBoundary(std::uint64_t cycle);
  SsBoundary ssCapture(std::uint64_t cycle);
  template <typename Fn>
  void ssVisitArch(Fn&& fn);
  template <typename Fn>
  void ssVisitTiming(Fn&& fn);
  bool ssConfirm(int period) const;
  void ssTryExtrapolate(std::uint64_t cycle, int period);
  bool ssCollectMemOps(std::vector<SsMemOp>& ops);
  bool ssCheckAliasing(const std::vector<SsMemOp>& ops,
                       std::uint64_t perIterCycles, std::uint64_t now,
                       std::uint64_t windowCycles) const;
  bool ssPrecheckL1(const std::vector<SsMemOp>& ops,
                    std::uint64_t skip) const;

  SteadyStateOptions ss_;
  bool ssDisabled_ = false;
  std::deque<SsBoundary> ssHistory_;
  /// Issue-order access log, one window per captured boundary, aligned
  /// with ssHistory_. Recording starts one boundary before capture does,
  /// so every logged window is complete.
  bool ssRecording_ = false;
  std::vector<SsAccess> ssCurWindow_;
  std::deque<std::vector<SsAccess>> ssAccessLog_;
  std::size_t ssBranchPc_ = ~std::size_t{0};
  std::size_t ssTargetPc_ = ~std::size_t{0};
  std::uint64_t ssIterations_ = 0;  // backward-taken branches seen this run
  std::uint64_t ssLevelMark_[5] = {0, 0, 0, 0, 0};
  int ssCleanStreak_ = 0;  // consecutive all-L1 boundaries
  bool ssBoundaryPending_ = false;
  std::uint64_t extrapolatedFrom_ = 0;
  std::uint64_t extrapolatedIterations_ = 0;

  const MachineConfig& config_;
  MemorySystem& memsys_;
  int coreId_;

  const asmparse::Program* program_ = nullptr;
  std::size_t pc_ = 0;

  // Architectural state (exact at the dispatch frontier).
  std::array<std::int64_t, 16> gprs_{};
  std::int64_t flagsResult_ = 0;     // signed wide result of last flag setter
  std::uint64_t flagsA_ = 0;         // unsigned dst operand (for jb/ja)
  std::uint64_t flagsB_ = 0;         // unsigned src operand

  // Timing state.
  std::deque<Uop> rob_;
  std::uint64_t headId_ = 0;                 // global id of rob_.front()
  std::array<std::int64_t, kNumRegs> lastWriter_{};  // -1 = none in flight
  std::vector<std::uint64_t> portFree_[7];   // per Unit
  std::vector<std::uint64_t> fillBufferFree_;
  std::array<RecentStore, 16> recentStores_{};
  std::size_t recentStoreNext_ = 0;
  std::uint64_t dispatchStallUntil_ = 0;
  bool doneDispatching_ = false;
  bool finished_ = false;
  std::uint64_t startCycle_ = 0;
  std::uint64_t endCycle_ = 0;
  std::uint64_t lastCompletion_ = 0;
  std::uint64_t nextEvent_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t uopCount_ = 0;
  std::uint64_t levelAccesses_[5] = {0, 0, 0, 0, 0};  // indexed by MemLevel
  std::FILE* trace_ = nullptr;
};

}  // namespace microtools::sim
