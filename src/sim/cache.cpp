#include "sim/cache.hpp"

#include <algorithm>
#include <bit>

#include "support/error.hpp"

namespace microtools::sim {

CacheLevel::CacheLevel(std::uint64_t sizeBytes, int ways, int lineBytes)
    : sizeBytes_(sizeBytes), ways_(ways), lineBytes_(lineBytes) {
  if (ways <= 0 || lineBytes <= 0 ||
      !std::has_single_bit(static_cast<unsigned>(lineBytes))) {
    throw McError("cache requires positive ways and power-of-two line size");
  }
  std::uint64_t lines = sizeBytes / static_cast<std::uint64_t>(lineBytes);
  if (lines == 0 || lines % static_cast<std::uint64_t>(ways) != 0) {
    throw McError("cache size must be a multiple of ways * lineBytes");
  }
  sets_ = lines / static_cast<std::uint64_t>(ways);
  ways_storage_.resize(sets_ * static_cast<std::uint64_t>(ways));
}

bool CacheLevel::lookup(std::uint64_t lineAddr) {
  ++clock_;
  std::uint64_t set = setIndex(lineAddr);
  std::uint64_t tag = tagOf(lineAddr);
  Way* base = &ways_storage_[set * static_cast<std::uint64_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lastUse = clock_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  return false;
}

bool CacheLevel::contains(std::uint64_t lineAddr) const {
  std::uint64_t set = setIndex(lineAddr);
  std::uint64_t tag = tagOf(lineAddr);
  const Way* base = &ways_storage_[set * static_cast<std::uint64_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

std::uint64_t CacheLevel::insert(std::uint64_t lineAddr) {
  ++clock_;
  std::uint64_t set = setIndex(lineAddr);
  std::uint64_t tag = tagOf(lineAddr);
  Way* base = &ways_storage_[set * static_cast<std::uint64_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lastUse = clock_;  // already present: refresh
      return kNoEviction;
    }
  }
  // Prefer an invalid way; otherwise evict the LRU valid way.
  int victim = -1;
  for (int w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = w;
      break;
    }
  }
  if (victim == -1) {
    victim = 0;
    for (int w = 1; w < ways_; ++w) {
      if (base[w].lastUse < base[victim].lastUse) victim = w;
    }
  }
  std::uint64_t evicted = kNoEviction;
  if (base[victim].valid) {
    evicted = base[victim].tag;
  }
  base[victim].tag = tag;
  base[victim].valid = true;
  base[victim].lastUse = clock_;
  return evicted;
}

bool CacheLevel::invalidate(std::uint64_t lineAddr) {
  std::uint64_t set = setIndex(lineAddr);
  std::uint64_t tag = tagOf(lineAddr);
  Way* base = &ways_storage_[set * static_cast<std::uint64_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].valid = false;
      return true;
    }
  }
  return false;
}

void CacheLevel::clear() {
  for (Way& w : ways_storage_) w.valid = false;
  clock_ = 0;
  hits_ = 0;
  misses_ = 0;
}

void CacheLevel::hashState(hash::Fnv1a& h) const {
  h.u64(sets_).u64(static_cast<std::uint64_t>(ways_));
  std::vector<const Way*> valid;
  valid.reserve(static_cast<std::size_t>(ways_));
  for (std::uint64_t set = 0; set < sets_; ++set) {
    const Way* base = &ways_storage_[set * static_cast<std::uint64_t>(ways_)];
    valid.clear();
    for (int w = 0; w < ways_; ++w) {
      if (base[w].valid) valid.push_back(&base[w]);
    }
    if (valid.empty()) continue;  // empty sets hash as absent
    // Recency order (oldest first): the victim scan and every future hit
    // depend only on this ordering, never on the absolute lastUse values.
    std::sort(valid.begin(), valid.end(), [](const Way* a, const Way* b) {
      return a->lastUse < b->lastUse;
    });
    h.u64(set).u64(valid.size());
    for (const Way* w : valid) h.u64(w->tag);
  }
}

}  // namespace microtools::sim
