#include "sim/machine.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace microtools::sim {

namespace {
constexpr std::uint64_t kFar = std::numeric_limits<std::uint64_t>::max();
}

MultiCoreRunner::MultiCoreRunner(const MachineConfig& config)
    : config_(config), memsys_(std::make_unique<MemorySystem>(config)) {}

int MultiCoreRunner::compactPin(const MachineConfig& config,
                                int processIndex) {
  return processIndex % config.totalCores();
}

int MultiCoreRunner::scatterPin(const MachineConfig& config,
                                int processIndex) {
  int total = config.totalCores();
  int i = processIndex % total;
  int socket = i % config.sockets;
  int slot = i / config.sockets;
  return socket * config.coresPerSocket + slot;
}

std::vector<RunResult> MultiCoreRunner::run(const std::vector<CoreWork>& work,
                                            std::uint64_t startCycle) {
  if (work.empty()) return {};
  struct Slot {
    std::unique_ptr<CoreSim> core;
    const CoreWork* work = nullptr;
    int callsLeft = 0;
    std::uint64_t callStart = 0;
    RunResult aggregate;
    bool done = false;
  };
  std::vector<Slot> slots;
  slots.reserve(work.size());
  for (const CoreWork& w : work) {
    if (!w.program) throw McError("CoreWork without a program");
    if (w.calls < 1) throw McError("CoreWork requires calls >= 1");
    Slot slot;
    slot.core = std::make_unique<CoreSim>(config_, *memsys_, w.physicalCore);
    slot.work = &w;
    slot.callsLeft = w.calls;
    slot.callStart = startCycle;
    slot.core->start(*w.program, w.n, w.arrayAddrs, startCycle);
    slots.push_back(std::move(slot));
  }

  std::uint64_t cycle = startCycle;
  for (;;) {
    bool anyRunning = false;
    std::uint64_t next = kFar;
    for (Slot& slot : slots) {
      if (slot.done) continue;
      slot.core->tick(cycle);
      while (slot.core->finished()) {
        RunResult r = slot.core->result();
        slot.aggregate.coreCycles += r.coreCycles;
        slot.aggregate.instructions += r.instructions;
        slot.aggregate.uops += r.uops;
        slot.aggregate.iterations += r.iterations;
        if (--slot.callsLeft == 0) {
          slot.done = true;
          break;
        }
        // Next back-to-back call begins where the previous one ended.
        slot.callStart += r.coreCycles;
        slot.core->start(*slot.work->program, slot.work->n,
                         slot.work->arrayAddrs, slot.callStart);
        slot.core->tick(cycle);
      }
      if (!slot.done) {
        anyRunning = true;
        next = std::min(next, slot.core->nextEvent());
      }
    }
    if (!anyRunning) break;
    cycle = std::max(cycle + 1, next);
  }

  std::vector<RunResult> results;
  results.reserve(slots.size());
  for (Slot& slot : slots) {
    slot.aggregate.tscCycles = config_.coreCyclesToTsc(
        static_cast<double>(slot.aggregate.coreCycles));
    results.push_back(slot.aggregate);
  }
  return results;
}

OpenMpModel::OpenMpModel(const MachineConfig& config)
    : config_(config), memsys_(std::make_unique<MemorySystem>(config)) {}

OmpRegionResult OpenMpModel::runParallelFor(
    const asmparse::Program& program, int n,
    const std::vector<std::uint64_t>& arrayAddrs,
    std::uint64_t chunkStrideBytes, int threads, std::uint64_t startCycle) {
  if (threads <= 0) throw McError("OpenMP model requires threads >= 1");
  if (threads > config_.totalCores()) {
    throw McError("more OpenMP threads than cores");
  }

  // Static schedule: contiguous chunks. Thread t handles chunk sizes that
  // differ by at most one iteration.
  std::vector<std::unique_ptr<CoreSim>> cores;
  int base = n / threads;
  int extra = n % threads;
  std::uint64_t forkCycles = config_.nsToCoreCycles(
      config_.ompForkJoinNs + config_.ompPerThreadNs * threads);
  std::uint64_t workStart = startCycle + forkCycles / 2;

  int offsetIters = 0;
  for (int t = 0; t < threads; ++t) {
    int chunk = base + (t < extra ? 1 : 0);
    std::vector<std::uint64_t> addrs = arrayAddrs;
    for (std::uint64_t& a : addrs) {
      a += static_cast<std::uint64_t>(offsetIters) * chunkStrideBytes;
    }
    auto core = std::make_unique<CoreSim>(config_, *memsys_, t);
    core->start(program, chunk, addrs, workStart);
    cores.push_back(std::move(core));
    offsetIters += chunk;
  }

  std::uint64_t cycle = workStart;
  for (;;) {
    bool anyRunning = false;
    std::uint64_t next = kFar;
    for (auto& core : cores) {
      if (core->finished()) continue;
      core->tick(cycle);
      if (!core->finished()) {
        anyRunning = true;
        next = std::min(next, core->nextEvent());
      }
    }
    if (!anyRunning) break;
    cycle = std::max(cycle + 1, next);
  }

  OmpRegionResult out;
  std::uint64_t lastEnd = workStart;
  for (auto& core : cores) {
    RunResult r = core->result();
    lastEnd = std::max(lastEnd, workStart + r.coreCycles);
    out.totalIterations += r.iterations;
    out.threads.push_back(r);
  }
  out.regionCoreCycles = (lastEnd - startCycle) + (forkCycles - forkCycles / 2);
  out.regionTscCycles =
      config_.coreCyclesToTsc(static_cast<double>(out.regionCoreCycles));
  return out;
}

OmpRegionResult OpenMpModel::runRepeated(
    const asmparse::Program& program, int n,
    const std::vector<std::uint64_t>& arrayAddrs,
    std::uint64_t chunkStrideBytes, int threads, int repetitions) {
  if (repetitions < 1) throw McError("OpenMP model requires repetitions >= 1");
  OmpRegionResult total;
  for (int r = 0; r < repetitions; ++r) {
    OmpRegionResult one = runParallelFor(program, n, arrayAddrs,
                                         chunkStrideBytes, threads, clock_);
    clock_ += one.regionCoreCycles;
    total.regionCoreCycles += one.regionCoreCycles;
    total.totalIterations += one.totalIterations;
    total.threads = std::move(one.threads);
  }
  total.regionTscCycles =
      config_.coreCyclesToTsc(static_cast<double>(total.regionCoreCycles));
  return total;
}

}  // namespace microtools::sim
