#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/core.hpp"

namespace microtools::sim {

/// One per-core workload for a multi-core simulation.
struct CoreWork {
  const asmparse::Program* program = nullptr;
  int n = 0;                               ///< trip-count argument
  std::vector<std::uint64_t> arrayAddrs;   ///< pointer arguments
  int physicalCore = 0;                    ///< pinning target
  int calls = 1;                           ///< back-to-back invocations
};

/// Runs several cores in cycle-lockstep against one shared MemorySystem:
/// the fork-based multi-core mode of §4.6 ("forks its execution into
/// multiple launchers, pins each to a separate core; after synchronization,
/// it records the time taken"). All cores start at the same cycle (the
/// post-synchronization point) and interact through the shared L3s and
/// memory channels.
class MultiCoreRunner {
 public:
  explicit MultiCoreRunner(const MachineConfig& config);

  MemorySystem& memory() { return *memsys_; }
  const MachineConfig& config() const { return config_; }

  /// Runs every workload to completion; returns one result per workload in
  /// input order (cycles and iterations aggregated over all `calls`).
  /// Deterministic: cores tick in input order within each cycle, and idle
  /// stretches are fast-forwarded.
  std::vector<RunResult> run(const std::vector<CoreWork>& work,
                             std::uint64_t startCycle = 0);

  /// Pinning helpers for the launcher: physical core for the i-th process.
  /// "compact" fills a socket before moving on; "scatter" round-robins
  /// across sockets (what MicroLauncher does for fork mode, spreading
  /// memory pressure).
  static int compactPin(const MachineConfig& config, int processIndex);
  static int scatterPin(const MachineConfig& config, int processIndex);

 private:
  MachineConfig config_;
  std::unique_ptr<MemorySystem> memsys_;
};

/// Static-schedule OpenMP model (§5.2.3): an `omp parallel for` over the
/// kernel's trip count. Each thread executes the kernel over its contiguous
/// chunk (array base shifted, counter reduced); the region pays the
/// fork/join overhead of the machine config. Returns the region wall time
/// in core cycles plus per-thread results.
struct OmpRegionResult {
  std::uint64_t regionCoreCycles = 0;  ///< including fork/join overhead
  double regionTscCycles = 0.0;
  std::uint64_t totalIterations = 0;
  std::vector<RunResult> threads;
};

class OpenMpModel {
 public:
  explicit OpenMpModel(const MachineConfig& config);

  MemorySystem& memory() { return *memsys_; }

  /// Runs the kernel as `omp parallel for` with `threads` threads over a
  /// total trip count `n` on the arrays at `arrayAddrs` (each of
  /// `arrayBytes` bytes). chunkStride is the byte distance the kernel
  /// advances per counted iteration (used to split arrays).
  OmpRegionResult runParallelFor(const asmparse::Program& program, int n,
                                 const std::vector<std::uint64_t>& arrayAddrs,
                                 std::uint64_t chunkStrideBytes, int threads,
                                 std::uint64_t startCycle = 0);

  /// Runs `repetitions` back-to-back parallel regions (caches stay warm
  /// across regions; each pays the fork/join overhead) and returns the
  /// aggregate, with iterations summed over all regions.
  OmpRegionResult runRepeated(const asmparse::Program& program, int n,
                              const std::vector<std::uint64_t>& arrayAddrs,
                              std::uint64_t chunkStrideBytes, int threads,
                              int repetitions);

 private:
  std::uint64_t clock_ = 0;
  MachineConfig config_;
  std::unique_ptr<MemorySystem> memsys_;
};

}  // namespace microtools::sim
