#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace microtools::sim {

/// One private cache level (L1 or L2): latency is expressed in *core* clock
/// cycles because these structures run in the core clock domain — the
/// property Figure 13 of the paper demonstrates (L1/L2 timings scale with
/// core frequency, L3/RAM do not).
struct PrivateCacheConfig {
  std::string name;
  std::uint64_t sizeBytes = 0;
  int ways = 8;
  int latencyCycles = 4;  // load-to-use in core cycles
};

/// The shared last-level cache: latency in nanoseconds (uncore domain).
struct SharedCacheConfig {
  std::string name = "L3";
  std::uint64_t sizeBytes = 0;
  int ways = 16;
  double latencyNs = 15.0;
};

/// Complete machine description used by the simulator and the launcher's
/// architecture registry (Table 1 of the paper).
struct MachineConfig {
  std::string name;

  // -- topology -------------------------------------------------------------
  int sockets = 1;
  int coresPerSocket = 4;

  // -- clock domains ----------------------------------------------------------
  double nominalGHz = 2.67;  ///< TSC / rated frequency (rdtsc is invariant)
  double coreGHz = 2.67;     ///< current core clock (DVFS, Figure 13)
  double uncoreGHz = 2.67;   ///< L3 + memory controller clock

  // -- memory hierarchy -------------------------------------------------------
  int lineBytes = 64;
  PrivateCacheConfig l1{"L1", 32 * 1024, 8, 4};
  PrivateCacheConfig l2{"L2", 256 * 1024, 8, 10};
  SharedCacheConfig l3{"L3", 12 * 1024 * 1024, 16, 15.0};
  double memLatencyNs = 60.0;       ///< DRAM load-to-use latency
  int memChannelsPerSocket = 3;
  double channelGBs = 10.6;         ///< peak bandwidth per channel
  int fillBuffers = 10;             ///< outstanding L1 misses per core (MLP)
  int prefetchDegree = 12;          ///< L2 streamer lookahead (lines)
  int prefetchTrigger = 2;          ///< consecutive ascending misses to arm
  int l2FillCycles = 7;             ///< L2->L1 line transfer occupancy
  int l3FillCycles = 8;             ///< L3->L2 line transfer occupancy (shared)

  // -- core ---------------------------------------------------------------
  int issueWidth = 4;       ///< uops dispatched per cycle
  int robSize = 128;        ///< in-flight window (Nehalem ROB)
  int rsEntries = 36;       ///< scheduler window: oldest un-issued uops
                            ///< eligible for issue each cycle
  int loadPorts = 1;
  int storePorts = 1;
  int aluPorts = 3;
  int fpAddPorts = 1;
  int fpMulPorts = 1;
  int branchPorts = 1;
  int mispredictPenalty = 15;
  int aliasing4kPenalty = 5;  ///< load vs recent-store 4 KiB aliasing stall
  int splitLinePenalty = 2;   ///< extra cycles for a line-crossing access

  // -- parallel runtime model ---------------------------------------------
  double ompForkJoinNs = 2500.0;   ///< per parallel-region constant overhead
  double ompPerThreadNs = 350.0;   ///< additional overhead per thread

  // -- energy model (the paper's "performance or power utilization", §7) ---
  // Event energies in picojoules, Nehalem-class estimates; static power per
  // core in watts. Energy per run = uops*uopPj + sum(level accesses *
  // access energy) + cycles * static energy per cycle.
  double uopEnergyPj = 25.0;
  double l1AccessPj = 12.0;
  double l2AccessPj = 40.0;
  double l3AccessPj = 150.0;
  double dramAccessPj = 2200.0;   ///< per line fetched from memory
  double staticWattsPerCore = 2.0;

  /// Static (leakage + clock tree) energy per core cycle, in picojoules:
  /// watts / (cycles/second) = joules/cycle; scaled to pJ.
  double staticEnergyPjPerCycle() const {
    return staticWattsPerCore / coreGHz * 1000.0;
  }

  int totalCores() const { return sockets * coresPerSocket; }

  /// Core-cycle conversions.
  double coreCyclesPerNs() const { return coreGHz; }
  std::uint64_t nsToCoreCycles(double ns) const {
    return static_cast<std::uint64_t>(ns * coreGHz + 0.5);
  }

  /// Converts a core-cycle count to invariant-TSC cycles (what rdtsc-based
  /// MicroLauncher reports; §4.2 and Figure 13).
  double coreCyclesToTsc(double coreCycles) const {
    return coreCycles * (nominalGHz / coreGHz);
  }

  /// Channel occupancy per cache line, in core cycles.
  std::uint64_t channelOccupancyCycles() const {
    double ns = static_cast<double>(lineBytes) / channelGBs;
    return nsToCoreCycles(ns);
  }
};

/// The three machines of Table 1.
MachineConfig sandyBridgeE31240();
MachineConfig nehalemX5650DualSocket();
MachineConfig nehalemX7550QuadSocket();

/// Looks up a machine by registry name ("sandy_bridge_e31240",
/// "nehalem_x5650_2s", "nehalem_x7550_4s"); throws McError when unknown.
MachineConfig machineByName(const std::string& name);

/// Names of all registered machines.
std::vector<std::string> machineNames();

}  // namespace microtools::sim
