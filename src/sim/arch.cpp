#include "sim/arch.hpp"

#include "support/error.hpp"

namespace microtools::sim {

MachineConfig sandyBridgeE31240() {
  MachineConfig m;
  m.name = "sandy_bridge_e31240";
  m.sockets = 1;
  m.coresPerSocket = 4;
  m.nominalGHz = m.coreGHz = 3.30;
  m.uncoreGHz = 3.30;
  m.l1 = {"L1", 32 * 1024, 8, 4};
  m.l2 = {"L2", 256 * 1024, 8, 12};
  m.l3 = {"L3", 8ull * 1024 * 1024, 16, 12.0};
  m.memLatencyNs = 55.0;
  m.memChannelsPerSocket = 2;
  m.channelGBs = 10.6;  // DDR3-1333
  m.fillBuffers = 10;
  m.issueWidth = 4;
  m.loadPorts = 2;  // Sandy Bridge has two load ports
  return m;
}

MachineConfig nehalemX5650DualSocket() {
  MachineConfig m;
  m.name = "nehalem_x5650_2s";
  m.sockets = 2;
  m.coresPerSocket = 6;
  m.nominalGHz = m.coreGHz = 2.67;
  m.uncoreGHz = 2.13;
  m.l1 = {"L1", 32 * 1024, 8, 4};
  m.l2 = {"L2", 256 * 1024, 8, 10};
  m.l3 = {"L3", 12ull * 1024 * 1024, 16, 15.0};
  m.memLatencyNs = 65.0;
  m.memChannelsPerSocket = 3;
  m.channelGBs = 10.6;  // DDR3-1333 (X5650 supports 1333 MT/s)
  m.fillBuffers = 10;
  m.issueWidth = 4;
  m.loadPorts = 1;
  return m;
}

MachineConfig nehalemX7550QuadSocket() {
  MachineConfig m;
  m.name = "nehalem_x7550_4s";
  m.sockets = 4;
  m.coresPerSocket = 8;
  m.nominalGHz = m.coreGHz = 2.00;
  m.uncoreGHz = 1.86;
  m.l1 = {"L1", 32 * 1024, 8, 4};
  m.l2 = {"L2", 256 * 1024, 8, 10};
  m.l3 = {"L3", 18ull * 1024 * 1024, 16, 18.0};
  m.memLatencyNs = 90.0;  // Boxboro chipset adds latency
  // The X7550's memory sits behind serial SMB buffers on the Boxboro
  // platform; effective per-socket streaming bandwidth is famously low
  // compared to the DP Nehalems despite the large capacity.
  m.memChannelsPerSocket = 2;
  m.channelGBs = 3.2;
  m.fillBuffers = 10;
  m.issueWidth = 4;
  m.loadPorts = 1;
  return m;
}

MachineConfig machineByName(const std::string& name) {
  if (name == "sandy_bridge_e31240") return sandyBridgeE31240();
  if (name == "nehalem_x5650_2s") return nehalemX5650DualSocket();
  if (name == "nehalem_x7550_4s") return nehalemX7550QuadSocket();
  throw McError("unknown machine '" + name + "'");
}

std::vector<std::string> machineNames() {
  return {"sandy_bridge_e31240", "nehalem_x5650_2s", "nehalem_x7550_4s"};
}

}  // namespace microtools::sim
