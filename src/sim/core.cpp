#include "sim/core.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "support/error.hpp"

namespace microtools::sim {

namespace {
constexpr std::uint64_t kFar = std::numeric_limits<std::uint64_t>::max();

// ---- steady-state exit solve ----------------------------------------------

// Indices of the flag slots inside SsBoundary::arch (must match
// CoreSim::ssVisitArch's traversal order: 16 GPRs first).
constexpr std::size_t kSsArchFlagsResult = 16;
constexpr std::size_t kSsArchFlagsA = 17;
constexpr std::size_t kSsArchFlagsB = 18;

// Never extrapolate across more steps than this; keeps all the closed-form
// arithmetic comfortably inside __int128.
constexpr std::uint64_t kSsMaxSteps = 1ull << 40;

// Consecutive all-L1 loop boundaries required before boundary snapshots
// start being captured. Must exceed the longest clean run of a streaming
// loop (15 boundaries for a 4-byte stride over 64-byte lines) so that
// loops which periodically miss never pay the capture cost.
constexpr int kSsMinCleanStreak = 24;

// Upper bound on replayed LRU refreshes per extrapolation. Loops whose
// skipped accesses exceed this fall back to full simulation — correctness
// is never at stake, only how much work extrapolation is allowed to save.
constexpr std::uint64_t kSsMaxReplayAccesses = 1ull << 24;

// The loop branch at the current boundary was taken with flag state
// (r0, a0, b0); each further iteration advances the flags by (dr, da, db)
// in wrapping arithmetic. Returns the first t >= 1 at which the branch
// condition evaluates false — i.e. the number of remaining loop iterations —
// or nullopt when no exact closed form applies (the caller then simply keeps
// simulating cycle by cycle, which is always correct).
std::optional<std::uint64_t> ssSolveExit(isa::Condition cond, std::int64_t r0,
                                         std::int64_t dr, std::uint64_t a0,
                                         std::uint64_t da, std::uint64_t b0,
                                         std::uint64_t db) {
  using i128 = __int128;

  // Exact wrapping re-evaluation of the condition after j iterations; the
  // candidate from the closed form is only accepted when the predicate
  // flips between j-1 and j under this exact semantics.
  auto predicate = [&](std::uint64_t j) -> bool {
    std::int64_t r = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(r0) + static_cast<std::uint64_t>(dr) * j);
    std::uint64_t a = a0 + da * j;
    std::uint64_t b = b0 + db * j;
    switch (cond) {
      case isa::Condition::E: return r == 0;
      case isa::Condition::NE: return r != 0;
      case isa::Condition::L:
      case isa::Condition::S: return r < 0;
      case isa::Condition::LE: return r <= 0;
      case isa::Condition::G: return r > 0;
      case isa::Condition::GE:
      case isa::Condition::NS: return r >= 0;
      case isa::Condition::B: return a < b;
      case isa::Condition::BE: return a <= b;
      case isa::Condition::A: return a > b;
      case isa::Condition::AE: return a >= b;
      case isa::Condition::None: return false;
    }
    return false;
  };
  if (!predicate(0)) return std::nullopt;  // inconsistent boundary state

  const i128 R0 = r0;
  const i128 DR = dr;
  std::optional<std::uint64_t> cand;
  bool signedCond = false;
  switch (cond) {
    case isa::Condition::E:
      if (dr != 0) cand = 1;
      break;
    case isa::Condition::NE: {
      // Exits when the result reaches exactly zero.
      if (dr != 0 && (-R0) % DR == 0 && (-R0) / DR >= 1) {
        cand = static_cast<std::uint64_t>((-R0) / DR);
        signedCond = true;
      }
      break;
    }
    case isa::Condition::L:
    case isa::Condition::S:  // exits when result becomes >= 0
      if (dr > 0) {
        cand = static_cast<std::uint64_t>((-R0 + DR - 1) / DR);
        signedCond = true;
      }
      break;
    case isa::Condition::LE:  // exits when result becomes > 0
      if (dr > 0) {
        cand = static_cast<std::uint64_t>((-R0) / DR + 1);
        signedCond = true;
      }
      break;
    case isa::Condition::G:  // exits when result becomes <= 0
      if (dr < 0) {
        cand = static_cast<std::uint64_t>((R0 + (-DR) - 1) / (-DR));
        signedCond = true;
      }
      break;
    case isa::Condition::GE:
    case isa::Condition::NS:  // exits when result becomes < 0
      if (dr < 0) {
        cand = static_cast<std::uint64_t>(R0 / (-DR) + 1);
        signedCond = true;
      }
      break;
    case isa::Condition::B:   // exits when a >= b
    case isa::Condition::BE:  // exits when a > b
      if (db == 0) {
        std::int64_t sa = static_cast<std::int64_t>(da);
        if (sa > 0) {
          // Monotone increase; require that the value cannot wrap before
          // the crossing.
          std::uint64_t gap = b0 - a0 + (cond == isa::Condition::BE ? 1 : 0);
          std::uint64_t c = (gap + da - 1) / da;
          if (static_cast<unsigned __int128>(a0) +
                  static_cast<unsigned __int128>(c) * da <
              (static_cast<unsigned __int128>(1) << 64)) {
            cand = c;
          }
        } else if (sa < 0) {
          // Monotone decrease; the exit is the wrap below zero, after which
          // the value is huge. The verification below confirms it.
          std::uint64_t s = static_cast<std::uint64_t>(-sa);
          cand = a0 / s + 1;
        }
      }
      break;
    case isa::Condition::A:   // exits when a <= b
    case isa::Condition::AE:  // exits when a < b
      if (db == 0) {
        std::int64_t sa = static_cast<std::int64_t>(da);
        if (sa < 0) {
          std::uint64_t s = static_cast<std::uint64_t>(-sa);
          std::uint64_t gap = a0 - b0 + (cond == isa::Condition::AE ? 1 : 0);
          if (a0 / s + 1 >= (gap + s - 1) / s) {  // crossing before any wrap
            cand = (gap + s - 1) / s;
          }
        }
        // Increasing operand exits only through a wrap-around; too exotic
        // to model — fall through to nullopt.
      }
      break;
    case isa::Condition::None:
      break;
  }
  if (!cand || *cand < 1 || *cand > kSsMaxSteps) return std::nullopt;
  if (signedCond) {
    // The closed form used non-wrapping arithmetic; reject any range where
    // the wide value could cross the int64 boundary before the exit.
    i128 lo = R0, hi = R0 + DR * static_cast<i128>(*cand);
    if (lo > hi) std::swap(lo, hi);
    constexpr i128 kI64Max = std::numeric_limits<std::int64_t>::max();
    constexpr i128 kI64Min = std::numeric_limits<std::int64_t>::min();
    if (lo < kI64Min || hi > kI64Max) return std::nullopt;
  }
  if (!predicate(*cand - 1) || predicate(*cand)) return std::nullopt;
  return cand;
}
}  // namespace

CoreSim::CoreSim(const MachineConfig& config, MemorySystem& memsys,
                 int coreId)
    : config_(config), memsys_(memsys), coreId_(coreId) {
  auto setPorts = [this](Unit unit, int count) {
    portFree_[static_cast<int>(unit)].assign(
        static_cast<std::size_t>(std::max(count, 1)), 0);
  };
  setPorts(Unit::Load, config_.loadPorts);
  setPorts(Unit::Store, config_.storePorts);
  setPorts(Unit::Alu, config_.aluPorts);
  setPorts(Unit::FpAdd, config_.fpAddPorts);
  setPorts(Unit::FpMul, config_.fpMulPorts);
  setPorts(Unit::FpDiv, config_.fpMulPorts);  // divider shares the mul port
  setPorts(Unit::Branch, config_.branchPorts);
  fillBufferFree_.assign(static_cast<std::size_t>(config_.fillBuffers), 0);
  lastWriter_.fill(-1);
}

void CoreSim::start(const asmparse::Program& program, int n,
                    const std::vector<std::uint64_t>& arrayAddrs,
                    std::uint64_t startCycle) {
  program_ = &program;
  pc_ = 0;
  gprs_.fill(0);
  gprs_[isa::kRdi] = n;
  for (std::size_t i = 0; i < arrayAddrs.size(); ++i) {
    if (static_cast<int>(i) + 1 >= isa::kNumArgumentRegisters) {
      throw McError("too many array arguments for the SysV registers");
    }
    gprs_[static_cast<std::size_t>(
        isa::argumentRegister(static_cast<int>(i) + 1).index)] =
        static_cast<std::int64_t>(arrayAddrs[i]);
  }
  flagsResult_ = 0;
  flagsA_ = flagsB_ = 0;
  rob_.clear();
  headId_ = 0;
  lastWriter_.fill(-1);
  for (auto& ports : portFree_) {
    std::fill(ports.begin(), ports.end(), startCycle);
  }
  std::fill(fillBufferFree_.begin(), fillBufferFree_.end(), startCycle);
  recentStores_.fill(RecentStore{});
  recentStoreNext_ = 0;
  dispatchStallUntil_ = startCycle;
  doneDispatching_ = false;
  finished_ = false;
  startCycle_ = startCycle;
  endCycle_ = startCycle;
  lastCompletion_ = startCycle;
  nextEvent_ = startCycle;
  instructions_ = 0;
  uopCount_ = 0;
  for (auto& c : levelAccesses_) c = 0;
  // Steady-state extrapolation bookkeeping. Tracing wants every issue and
  // retire event, so it forces full simulation.
  ssDisabled_ = !ss_.enabled || trace_ != nullptr;
  ssHistory_.clear();
  ssBranchPc_ = ~std::size_t{0};
  ssTargetPc_ = ~std::size_t{0};
  ssIterations_ = 0;
  for (auto& m : ssLevelMark_) m = 0;
  ssCleanStreak_ = 0;
  ssRecording_ = false;
  ssCurWindow_.clear();
  ssAccessLog_.clear();
  ssBoundaryPending_ = false;
  extrapolatedFrom_ = 0;
  extrapolatedIterations_ = 0;
  // Jump to the entry label when the function name is a known label.
  if (!program.functionName.empty()) {
    auto it = program.labels.find(program.functionName);
    if (it != program.labels.end()) pc_ = it->second;
  }
}

int CoreSim::regId(const isa::PhysReg& reg) {
  if (reg.cls == isa::RegClass::Gpr) return reg.index;
  if (reg.cls == isa::RegClass::Xmm) return 16 + reg.index;
  throw McError("unsupported register class in simulator");
}

std::int64_t CoreSim::readGpr(const isa::PhysReg& reg) const {
  std::int64_t raw = gprs_[static_cast<std::size_t>(reg.index)];
  switch (reg.widthBits) {
    case 64: return raw;
    case 32: return static_cast<std::int64_t>(static_cast<std::int32_t>(raw));
    case 16: return static_cast<std::int64_t>(static_cast<std::int16_t>(raw));
    case 8: return static_cast<std::int64_t>(static_cast<std::int8_t>(raw));
    default: throw McError("bad register width");
  }
}

void CoreSim::writeGpr(const isa::PhysReg& reg, std::int64_t value) {
  std::int64_t& slot = gprs_[static_cast<std::size_t>(reg.index)];
  switch (reg.widthBits) {
    case 64:
      slot = value;
      break;
    case 32:
      // x86-64: 32-bit writes zero-extend into the full register.
      slot = static_cast<std::int64_t>(
          static_cast<std::uint32_t>(value));
      break;
    case 16:
      slot = (slot & ~0xffffll) | (value & 0xffff);
      break;
    case 8:
      slot = (slot & ~0xffll) | (value & 0xff);
      break;
    default:
      throw McError("bad register width");
  }
}

std::uint64_t CoreSim::effectiveAddress(const asmparse::DecodedMem& mem) const {
  std::int64_t addr = mem.disp;
  if (mem.base) {
    if (mem.base->cls == isa::RegClass::Rip) {
      // RIP-relative: treat the displacement as absolute.
    } else {
      addr += readGpr(*mem.base);
    }
  }
  if (mem.index) {
    addr += readGpr(*mem.index) * mem.scale;
  }
  return static_cast<std::uint64_t>(addr);
}

std::int64_t CoreSim::operandValue(const asmparse::DecodedOperand& op) const {
  using Kind = asmparse::DecodedOperand::Kind;
  switch (op.kind) {
    case Kind::Imm: return op.imm;
    case Kind::Reg:
      if (op.reg.cls == isa::RegClass::Gpr) return readGpr(op.reg);
      return 0;  // XMM data values are not tracked
    case Kind::Mem: return 0;  // loaded values are not tracked
    case Kind::Label: return 0;
  }
  return 0;
}

bool CoreSim::evaluateCondition(isa::Condition cond) const {
  switch (cond) {
    case isa::Condition::E: return flagsResult_ == 0;
    case isa::Condition::NE: return flagsResult_ != 0;
    case isa::Condition::L: return flagsResult_ < 0;
    case isa::Condition::LE: return flagsResult_ <= 0;
    case isa::Condition::G: return flagsResult_ > 0;
    case isa::Condition::GE: return flagsResult_ >= 0;
    case isa::Condition::S: return flagsResult_ < 0;
    case isa::Condition::NS: return flagsResult_ >= 0;
    case isa::Condition::B: return flagsA_ < flagsB_;
    case isa::Condition::BE: return flagsA_ <= flagsB_;
    case isa::Condition::A: return flagsA_ > flagsB_;
    case isa::Condition::AE: return flagsA_ >= flagsB_;
    case isa::Condition::None: break;
  }
  throw McError("branch without a condition");
}

void CoreSim::executeFunctional(const asmparse::DecodedInsn& insn,
                                bool& branchTaken) {
  using Kind = asmparse::DecodedOperand::Kind;
  const auto& ops = insn.operands;
  branchTaken = false;

  auto setFlags = [this](std::int64_t result, std::uint64_t a,
                         std::uint64_t b) {
    flagsResult_ = result;
    flagsA_ = a;
    flagsB_ = b;
  };

  switch (insn.desc->kind) {
    case isa::InstrKind::Move: {
      if (ops.size() != 2) throw McError("move needs two operands");
      if (ops[1].kind == Kind::Reg && ops[1].reg.cls == isa::RegClass::Gpr) {
        writeGpr(ops[1].reg, operandValue(ops[0]));
      }
      // XMM destinations and stores: no tracked value.
      return;
    }
    case isa::InstrKind::IntAlu: {
      // inc/dec/neg/not have one operand; the rest have two (src, dst).
      if (ops.size() == 1) {
        if (ops[0].kind != Kind::Reg) return;  // memory forms: timing only
        std::int64_t v = readGpr(ops[0].reg);
        std::string_view m = insn.desc->mnemonic;
        std::int64_t r = v;
        if (m == "inc") r = v + 1;
        else if (m == "dec") r = v - 1;
        else if (m == "neg") r = -v;
        else if (m == "not") r = ~v;
        writeGpr(ops[0].reg, r);
        if (m != "not") {
          setFlags(r, static_cast<std::uint64_t>(r), 0);
        }
        return;
      }
      if (ops.size() != 2 || ops[1].kind != Kind::Reg) return;
      std::int64_t src = operandValue(ops[0]);
      std::int64_t dst = readGpr(ops[1].reg);
      std::string_view m = insn.desc->mnemonic;
      std::int64_t r = dst;
      if (m == "add") r = dst + src;
      else if (m == "sub") r = dst - src;
      else if (m == "and") r = dst & src;
      else if (m == "or") r = dst | src;
      else if (m == "xor") r = dst ^ src;
      else if (m == "shl") r = dst << (src & 63);
      else if (m == "shr") {
        r = static_cast<std::int64_t>(static_cast<std::uint64_t>(dst) >>
                                      (src & 63));
      } else if (m == "sar") {
        r = dst >> (src & 63);
      }
      writeGpr(ops[1].reg, r);
      setFlags(r, static_cast<std::uint64_t>(dst),
               static_cast<std::uint64_t>(src));
      return;
    }
    case isa::InstrKind::IntMul: {
      if (ops.size() == 2 && ops[1].kind == Kind::Reg) {
        std::int64_t r = readGpr(ops[1].reg) * operandValue(ops[0]);
        writeGpr(ops[1].reg, r);
        setFlags(r, static_cast<std::uint64_t>(r), 0);
      }
      return;
    }
    case isa::InstrKind::Lea: {
      if (ops.size() == 2 && ops[0].kind == Kind::Mem &&
          ops[1].kind == Kind::Reg) {
        writeGpr(ops[1].reg,
                 static_cast<std::int64_t>(effectiveAddress(ops[0].mem)));
      }
      return;
    }
    case isa::InstrKind::Compare: {
      if (ops.size() != 2) throw McError("compare needs two operands");
      std::int64_t src = operandValue(ops[0]);
      std::int64_t dst = ops[1].kind == Kind::Reg ? readGpr(ops[1].reg)
                                                  : operandValue(ops[1]);
      if (insn.desc->mnemonic == "test") {
        setFlags(dst & src, static_cast<std::uint64_t>(dst),
                 static_cast<std::uint64_t>(src));
      } else {
        setFlags(dst - src, static_cast<std::uint64_t>(dst),
                 static_cast<std::uint64_t>(src));
      }
      return;
    }
    case isa::InstrKind::CondBranch:
      branchTaken = evaluateCondition(insn.desc->condition);
      return;
    case isa::InstrKind::Jump:
      branchTaken = true;
      return;
    case isa::InstrKind::FpAdd:
    case isa::InstrKind::FpMul:
    case isa::InstrKind::FpDiv:
    case isa::InstrKind::FpLogic:
      return;  // FP values are not tracked
    case isa::InstrKind::Ret:
    case isa::InstrKind::Nop:
      return;
  }
}

void CoreSim::addDep(Uop& uop, int reg) const {
  std::int64_t writer = lastWriter_[static_cast<std::size_t>(reg)];
  if (writer < 0) return;
  if (uop.depCount >= static_cast<int>(uop.deps.size())) {
    throw McError("uop dependency list overflow");
  }
  uop.deps[static_cast<std::size_t>(uop.depCount++)] = static_cast<int>(writer);
}

void CoreSim::noteWrite(int reg, std::uint64_t producerId) {
  lastWriter_[static_cast<std::size_t>(reg)] =
      static_cast<std::int64_t>(producerId);
}

std::uint64_t CoreSim::pushUop(Uop uop) {
  std::uint64_t id = headId_ + rob_.size();
  rob_.push_back(uop);
  ++uopCount_;
  return id;
}

bool CoreSim::depsReady(const Uop& uop, std::uint64_t cycle) const {
  for (int i = 0; i < uop.depCount; ++i) {
    std::uint64_t depId = static_cast<std::uint64_t>(
        uop.deps[static_cast<std::size_t>(i)]);
    if (depId < headId_) continue;  // retired => complete
    const Uop& producer = rob_[depId - headId_];
    if (!producer.issued || producer.completeCycle > cycle) return false;
  }
  return true;
}

bool CoreSim::tryIssueOne(Uop& uop, std::uint64_t globalId,
                          std::uint64_t cycle) {
  if (!depsReady(uop, cycle)) return false;

  auto& ports = portFree_[static_cast<int>(uop.unit)];
  auto portIt = std::min_element(ports.begin(), ports.end());
  if (*portIt > cycle) return false;

  std::uint64_t completion = cycle + static_cast<std::uint64_t>(uop.latency);
  std::uint64_t portBusyUntil = cycle + 1;

  if (uop.isMem) {
    bool needsFillBuffer =
        memsys_.peekLevel(coreId_, uop.addr) != MemLevel::L1;
    std::vector<std::uint64_t>::iterator fb = fillBufferFree_.end();
    if (needsFillBuffer) {
      fb = std::min_element(fillBufferFree_.begin(), fillBufferFree_.end());
      if (*fb > cycle) return false;  // MLP limit reached
    }
    if (ssRecording_) ssCurWindow_.push_back({uop.addr, uop.bytes});
    if (uop.unit == Unit::Load) {
      AccessResult res = memsys_.load(coreId_, uop.addr, uop.bytes, cycle);
      completion = res.completeCycle;
      ++levelAccesses_[static_cast<int>(res.level)];
      // 4 KiB aliasing: a recent store whose address matches the load's low
      // twelve bits (different line) triggers a false MOB dependence and a
      // load replay — the load port stays busy for the penalty, costing
      // real throughput, and the data arrives late.
      bool aliased = false;
      std::uint64_t pageOff = uop.addr & 0xfffull;
      for (const RecentStore& st : recentStores_) {
        if (st.cycle == 0 || st.cycle + 32 < cycle) continue;
        std::uint64_t stOff = st.addr & 0xfffull;
        std::uint64_t distance = stOff > pageOff ? stOff - pageOff
                                                 : pageOff - stOff;
        if (distance < 64 && (st.addr / 64) != (uop.addr / 64)) {
          aliased = true;
          break;
        }
      }
      if (aliased) {
        completion += static_cast<std::uint64_t>(config_.aliasing4kPenalty);
        portBusyUntil = cycle +
            static_cast<std::uint64_t>(config_.aliasing4kPenalty);
      }
      if (fb != fillBufferFree_.end()) *fb = completion;
    } else {  // Store
      AccessResult res = memsys_.store(coreId_, uop.addr, uop.bytes, cycle);
      ++levelAccesses_[static_cast<int>(res.level)];
      // The pipeline does not wait for the RFO; the fill buffer does.
      if (fb != fillBufferFree_.end()) *fb = res.completeCycle;
      completion = cycle + 1;
      recentStores_[recentStoreNext_] = {uop.addr, cycle};
      recentStoreNext_ = (recentStoreNext_ + 1) % recentStores_.size();
    }
  }

  *portIt = uop.unit == Unit::FpDiv
                ? cycle + static_cast<std::uint64_t>(uop.latency)
                : portBusyUntil;
  uop.issued = true;
  uop.completeCycle = completion;
  lastCompletion_ = std::max(lastCompletion_, completion);
  if (trace_) {
    static const char* kUnitNames[] = {"LD", "ST", "ALU", "FPA",
                                       "FPM", "FPD", "BR"};
    std::fprintf(trace_, "core%d id=%llu %s issue=%llu complete=%llu addr=%llx\n",
                 coreId_, static_cast<unsigned long long>(globalId),
                 kUnitNames[static_cast<int>(uop.unit)],
                 static_cast<unsigned long long>(cycle),
                 static_cast<unsigned long long>(completion),
                 static_cast<unsigned long long>(uop.addr));
  }
  return true;
}

void CoreSim::retire(std::uint64_t cycle) {
  int retired = 0;
  while (!rob_.empty() && retired < config_.issueWidth) {
    const Uop& head = rob_.front();
    if (!head.issued || head.completeCycle > cycle) break;
    rob_.pop_front();
    ++headId_;
    ++retired;
  }
}

void CoreSim::issue(std::uint64_t cycle) {
  int issued = 0;
  int examined = 0;
  bool olderStorePending = false;
  // Only the oldest rsEntries un-issued uops are visible to the scheduler
  // (Nehalem's 36-entry reservation station); this also bounds the scan.
  for (std::size_t i = 0; i < rob_.size() && issued < config_.issueWidth &&
                          examined < config_.rsEntries;
       ++i) {
    Uop& uop = rob_[i];
    if (uop.issued) continue;
    ++examined;
    // Stores issue in order among themselves (store-buffer FIFO).
    if (uop.unit == Unit::Store && olderStorePending) continue;
    bool ok = tryIssueOne(uop, headId_ + i, cycle);
    if (ok) {
      ++issued;
    } else if (uop.unit == Unit::Store) {
      olderStorePending = true;
    }
  }
}

void CoreSim::dispatch(std::uint64_t cycle) {
  if (doneDispatching_ || cycle < dispatchStallUntil_) return;
  int dispatched = 0;
  while (dispatched < config_.issueWidth && !doneDispatching_) {
    if (rob_.size() + 2 > static_cast<std::size_t>(config_.robSize)) break;
    if (pc_ >= program_->instructions.size()) {
      doneDispatching_ = true;
      break;
    }
    const asmparse::DecodedInsn& insn = program_->instructions[pc_];
    const isa::InstrDesc& desc = *insn.desc;

    if (desc.kind == isa::InstrKind::Ret) {
      ++instructions_;
      doneDispatching_ = true;
      break;
    }
    if (desc.kind == isa::InstrKind::Nop) {
      ++instructions_;
      ++pc_;
      ++dispatched;
      continue;
    }

    // ---- build uops (before functional update so deps see old writers,
    //      but addresses need current values: compute them now) -------------
    const asmparse::DecodedOperand* memOp = nullptr;
    bool memIsDest = false;
    for (std::size_t i = 0; i < insn.operands.size(); ++i) {
      if (insn.operands[i].kind == asmparse::DecodedOperand::Kind::Mem) {
        memOp = &insn.operands[i];
        memIsDest = (i + 1 == insn.operands.size()) &&
                    desc.kind != isa::InstrKind::Compare &&
                    desc.kind != isa::InstrKind::Lea;
      }
    }
    std::uint64_t addr = memOp ? effectiveAddress(memOp->mem) : 0;
    int accessBytes = insn.accessBytes();

    auto depOnMemRegs = [&](Uop& uop) {
      if (!memOp) return;
      if (memOp->mem.base && memOp->mem.base->cls == isa::RegClass::Gpr) {
        addDep(uop, regId(*memOp->mem.base));
      }
      if (memOp->mem.index && memOp->mem.index->cls == isa::RegClass::Gpr) {
        addDep(uop, regId(*memOp->mem.index));
      }
    };

    int loadUopId = -1;
    int neededUops = 1;
    bool isLoad = memOp && !memIsDest && desc.kind != isa::InstrKind::Lea;
    bool isStore = memOp && memIsDest;
    bool fusedLoadOp = isLoad && desc.kind != isa::InstrKind::Move;
    if (fusedLoadOp) neededUops = 2;
    if (dispatched + neededUops > config_.issueWidth) break;

    if (isLoad) {
      Uop load;
      load.unit = Unit::Load;
      load.isMem = true;
      load.addr = addr;
      load.bytes = accessBytes;
      load.latency = config_.l1.latencyCycles;
      depOnMemRegs(load);
      if (!fusedLoadOp) {
        // Plain move load: destination register is the last operand.
        const auto& dst = insn.operands.back();
        if (dst.kind == asmparse::DecodedOperand::Kind::Reg) {
          load.dst = regId(dst.reg);
        }
      }
      std::uint64_t id = pushUop(load);
      if (fusedLoadOp) {
        loadUopId = static_cast<int>(id);
      } else if (load.dst >= 0) {
        noteWrite(load.dst, id);
      }
      ++dispatched;
    }

    if (isStore) {
      Uop store;
      store.unit = Unit::Store;
      store.isMem = true;
      store.addr = addr;
      store.bytes = accessBytes;
      store.latency = 1;
      depOnMemRegs(store);
      // Data source: every non-memory source operand.
      for (std::size_t i = 0; i + 1 < insn.operands.size(); ++i) {
        if (insn.operands[i].kind == asmparse::DecodedOperand::Kind::Reg) {
          addDep(store, regId(insn.operands[i].reg));
        }
      }
      pushUop(store);
      ++dispatched;
    } else if (!isLoad || fusedLoadOp) {
      // Compute uop (also covers reg-reg moves and branches).
      Uop compute;
      compute.latency = std::max(desc.latency, 1);
      switch (desc.kind) {
        case isa::InstrKind::FpAdd: compute.unit = Unit::FpAdd; break;
        case isa::InstrKind::FpMul: compute.unit = Unit::FpMul; break;
        case isa::InstrKind::FpDiv: compute.unit = Unit::FpDiv; break;
        case isa::InstrKind::CondBranch:
        case isa::InstrKind::Jump: compute.unit = Unit::Branch; break;
        default: compute.unit = Unit::Alu; break;
      }
      if (loadUopId >= 0) {
        compute.deps[static_cast<std::size_t>(compute.depCount++)] = loadUopId;
      }
      // Register sources: all register operands (AT&T: dst is read-modify-
      // write except for plain moves).
      bool isPlainMove = desc.kind == isa::InstrKind::Move ||
                         desc.kind == isa::InstrKind::Lea;
      for (std::size_t i = 0; i < insn.operands.size(); ++i) {
        const auto& op = insn.operands[i];
        if (op.kind != asmparse::DecodedOperand::Kind::Reg) continue;
        bool isDst = (i + 1 == insn.operands.size());
        if (isDst && isPlainMove) continue;  // pure overwrite
        addDep(compute, regId(op.reg));
      }
      if (desc.kind == isa::InstrKind::Lea && memOp) depOnMemRegs(compute);
      if (desc.kind == isa::InstrKind::CondBranch) {
        addDep(compute, kFlagsReg);
      }
      // Destination register.
      if (!insn.operands.empty() &&
          insn.operands.back().kind == asmparse::DecodedOperand::Kind::Reg &&
          desc.kind != isa::InstrKind::Compare &&
          desc.kind != isa::InstrKind::CondBranch &&
          desc.kind != isa::InstrKind::Jump) {
        compute.dst = regId(insn.operands.back().reg);
      }
      std::uint64_t id = pushUop(compute);
      if (compute.dst >= 0) noteWrite(compute.dst, id);
      bool writesFlags = desc.kind == isa::InstrKind::IntAlu ||
                         desc.kind == isa::InstrKind::IntMul ||
                         desc.kind == isa::InstrKind::Compare;
      if (writesFlags) noteWrite(kFlagsReg, id);
      ++dispatched;
    }

    // ---- functional execution & control flow -------------------------------
    bool branchTaken = false;
    executeFunctional(insn, branchTaken);
    ++instructions_;

    if (desc.kind == isa::InstrKind::CondBranch ||
        desc.kind == isa::InstrKind::Jump) {
      if (branchTaken) {
        const auto& target = insn.operands.at(0);
        if (target.kind != asmparse::DecodedOperand::Kind::Label) {
          throw McError("indirect branches are not supported");
        }
        std::size_t targetPc = program_->labelTarget(target.label);
        bool backward = targetPc <= pc_;
        std::size_t branchPc = pc_;
        pc_ = targetPc;
        if (!backward) {
          // Forward taken branches are modeled as predicted not-taken.
          dispatchStallUntil_ =
              cycle + static_cast<std::uint64_t>(config_.mispredictPenalty);
        } else if (!ssDisabled_) {
          // Loop boundary: snapshot at the end of the tick, once the full
          // cycle's effects (including this dispatch) are in place.
          ++ssIterations_;
          if (branchPc != ssBranchPc_ || targetPc != ssTargetPc_) {
            ssHistory_.clear();
            ssAccessLog_.clear();
            ssCurWindow_.clear();
            ssRecording_ = false;
            ssCleanStreak_ = 0;
            ssBranchPc_ = branchPc;
            ssTargetPc_ = targetPc;
          }
          ssBoundaryPending_ = true;
        }
        // The frontend cannot dispatch past a taken branch in the same
        // cycle; this also caps tiny loops at one iteration per cycle.
        break;
      } else {
        // Loop exit: the backward branch was predicted taken; pay the
        // mispredict bubble once.
        ++pc_;
        dispatchStallUntil_ =
            cycle + static_cast<std::uint64_t>(config_.mispredictPenalty);
        break;
      }
    } else {
      ++pc_;
    }
  }
}

void CoreSim::tick(std::uint64_t cycle) {
  if (finished_) return;
  std::uint64_t robBefore = headId_ + rob_.size();
  std::uint64_t headBefore = headId_;
  retire(cycle);
  issue(cycle);
  dispatch(cycle);
  bool progressed = (headId_ != headBefore) ||
                    (headId_ + rob_.size() != robBefore);
  if (doneDispatching_ && rob_.empty()) {
    finished_ = true;
    endCycle_ = std::max(lastCompletion_, cycle);
    nextEvent_ = kFar;
    return;
  }
  computeNextEvent(cycle, progressed);
  if (ssBoundaryPending_) {
    ssBoundaryPending_ = false;
    ssOnBoundary(cycle);  // may fast-forward state and overwrite nextEvent_
  }
}

void CoreSim::computeNextEvent(std::uint64_t cycle, bool progressed) {
  if (progressed) {
    nextEvent_ = cycle + 1;
    return;
  }
  std::uint64_t next = kFar;
  for (const Uop& uop : rob_) {
    if (uop.issued && uop.completeCycle > cycle) {
      next = std::min(next, uop.completeCycle);
    }
  }
  if (dispatchStallUntil_ > cycle) {
    next = std::min(next, dispatchStallUntil_);
  }
  for (const auto& ports : portFree_) {
    for (std::uint64_t f : ports) {
      if (f > cycle) next = std::min(next, f);
    }
  }
  for (std::uint64_t f : fillBufferFree_) {
    if (f > cycle) next = std::min(next, f);
  }
  if (next == kFar) next = cycle + 1;  // safety: never stall forever
  nextEvent_ = std::max(next, cycle + 1);
}

// ---- steady-state extrapolation --------------------------------------------
//
// The detection/extrapolation machinery below is documented in DESIGN.md
// ("Steady-state model"). In short: once every loop iteration is an exact
// repeat of the previous one — same ROB shape, same per-iteration register
// and counter deltas, same per-period timing deltas, and an address stream
// that is provably all-L1 for the remainder of the loop — the simulator
// solves the loop-exit condition analytically, adds the per-iteration deltas
// m times in one step, and resumes cycle simulation for the final iteration
// and the pipeline drain. The result is bit-identical to full simulation.

template <typename Fn>
void CoreSim::ssVisitArch(Fn&& fn) {
  auto i64slot = [&fn](std::int64_t& s) {
    std::uint64_t v = static_cast<std::uint64_t>(s);
    fn(v);
    s = static_cast<std::int64_t>(v);
  };
  // Order matters: kSsArchFlags* index into this sequence.
  for (std::int64_t& g : gprs_) i64slot(g);
  i64slot(flagsResult_);
  fn(flagsA_);
  fn(flagsB_);
  fn(uopCount_);
  fn(instructions_);
  for (std::int64_t& w : lastWriter_) i64slot(w);
}

template <typename Fn>
void CoreSim::ssVisitTiming(Fn&& fn) {
  fn(headId_);
  fn(levelAccesses_[1]);
  fn(dispatchStallUntil_);
  fn(lastCompletion_);
  for (Uop& u : rob_) {
    fn(u.addr);
    fn(u.completeCycle);
    // Dependency ids are absolute uop ids and advance with the frontier;
    // already-retired producers sit below headId_ and keep a zero delta.
    for (int i = 0; i < u.depCount; ++i) {
      int& d = u.deps[static_cast<std::size_t>(i)];
      std::uint64_t v =
          static_cast<std::uint64_t>(static_cast<std::int64_t>(d));
      fn(v);
      d = static_cast<int>(static_cast<std::int64_t>(v));
    }
  }
  for (auto& ports : portFree_) {
    for (std::uint64_t& f : ports) fn(f);
  }
  for (std::uint64_t& f : fillBufferFree_) fn(f);
  for (RecentStore& st : recentStores_) {
    fn(st.addr);
    fn(st.cycle);
  }
}

CoreSim::SsBoundary CoreSim::ssCapture(std::uint64_t cycle) {
  SsBoundary b;
  b.shape.reserve(7 + rob_.size() * 7);
  b.shape.push_back(pc_);
  b.shape.push_back(rob_.size());
  b.shape.push_back(recentStoreNext_);
  b.shape.push_back(levelAccesses_[0]);
  b.shape.push_back(levelAccesses_[2]);
  b.shape.push_back(levelAccesses_[3]);
  b.shape.push_back(levelAccesses_[4]);
  for (const Uop& u : rob_) {
    b.shape.push_back(static_cast<std::uint64_t>(u.unit));
    b.shape.push_back(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(u.dst)));
    b.shape.push_back(static_cast<std::uint64_t>(u.depCount));
    b.shape.push_back(static_cast<std::uint64_t>(u.latency));
    b.shape.push_back(u.isMem ? 1 : 0);
    b.shape.push_back(static_cast<std::uint64_t>(u.bytes));
    b.shape.push_back(u.issued ? 1 : 0);
  }
  ssVisitArch([&b](std::uint64_t& v) { b.arch.push_back(v); });
  b.timing.push_back(cycle);
  ssVisitTiming([&b](std::uint64_t& v) { b.timing.push_back(v); });
  return b;
}

void CoreSim::ssOnBoundary(std::uint64_t cycle) {
  // Any non-L1 access since the previous boundary means caches are still
  // warming: periodicity cannot hold, so drop the history cheaply.
  bool nonL1 = levelAccesses_[0] != ssLevelMark_[0] ||
               levelAccesses_[2] != ssLevelMark_[2] ||
               levelAccesses_[3] != ssLevelMark_[3] ||
               levelAccesses_[4] != ssLevelMark_[4];
  for (int i = 0; i < 5; ++i) ssLevelMark_[i] = levelAccesses_[i];
  if (nonL1) {
    ssCleanStreak_ = 0;
    ssRecording_ = false;
    ssCurWindow_.clear();
    ssHistory_.clear();
    ssAccessLog_.clear();
    return;
  }
  // Streaming loops (a miss every line's worth of iterations) pass the
  // all-L1 filter on most boundaries yet can never confirm periodicity;
  // capturing state there is pure overhead. Only start recording once the
  // loop has gone a whole stretch without leaving L1 — L1-resident loops
  // get there immediately, streaming loops never do.
  if (++ssCleanStreak_ < kSsMinCleanStreak) {
    if (ssCleanStreak_ == kSsMinCleanStreak - 1) {
      // Arm the access log one boundary early so the window that ends at
      // the first captured boundary is complete.
      ssRecording_ = true;
      ssCurWindow_.clear();
    }
    return;
  }
  ssAccessLog_.push_back(std::move(ssCurWindow_));
  ssCurWindow_.clear();
  ssHistory_.push_back(ssCapture(cycle));
  // The recent-store ring gives store loops a natural period of up to 16
  // boundaries; keep enough history for the largest period we try.
  static constexpr int kPeriods[] = {1, 2, 4, 8, 16};
  std::size_t maxKeep =
      16u * static_cast<std::size_t>(ss_.confirmPeriods) + 1;
  while (ssHistory_.size() > maxKeep) ssHistory_.pop_front();
  while (ssAccessLog_.size() > maxKeep) ssAccessLog_.pop_front();
  for (int p : kPeriods) {
    std::size_t need = static_cast<std::size_t>(p) *
                           static_cast<std::size_t>(ss_.confirmPeriods) +
                       1;
    if (ssHistory_.size() < need) break;  // larger periods need even more
    if (ssConfirm(p)) {
      ssTryExtrapolate(cycle, p);
      return;
    }
  }
}

bool CoreSim::ssConfirm(int period) const {
  std::size_t p = static_cast<std::size_t>(period);
  std::size_t c = static_cast<std::size_t>(ss_.confirmPeriods);
  std::size_t n = ssHistory_.size();
  const SsBoundary& last = ssHistory_[n - 1];
  const SsBoundary& prev = ssHistory_[n - 1 - p];
  if (prev.shape != last.shape) return false;
  if (prev.timing.size() != last.timing.size()) return false;
  std::size_t tlen = last.timing.size();
  // Timing: first differences at lag p must be constant across c periods.
  for (std::size_t i = 1; i <= c; ++i) {
    const SsBoundary& a = ssHistory_[n - 1 - i * p];
    const SsBoundary& b = ssHistory_[n - 1 - (i - 1) * p];
    if (a.shape != last.shape) return false;
    if (a.timing.size() != tlen || b.timing.size() != tlen) return false;
    for (std::size_t s = 0; s < tlen; ++s) {
      if (b.timing[s] - a.timing[s] != last.timing[s] - prev.timing[s]) {
        return false;
      }
    }
  }
  // Architectural state: first differences at lag 1 must be constant over
  // the whole window (the exit solve reads per-iteration deltas).
  std::size_t alen = last.arch.size();
  const SsBoundary& penult = ssHistory_[n - 2];
  if (penult.arch.size() != alen) return false;
  for (std::size_t j = n - 1 - c * p; j + 1 <= n - 1; ++j) {
    const auto& a = ssHistory_[j].arch;
    const auto& b = ssHistory_[j + 1].arch;
    if (a.size() != alen || b.size() != alen) return false;
    for (std::size_t s = 0; s < alen; ++s) {
      if (b[s] - a[s] != last.arch[s] - penult.arch[s]) return false;
    }
  }
  return true;
}

bool CoreSim::ssCollectMemOps(std::vector<SsMemOp>& ops) {
  using Kind = asmparse::DecodedOperand::Kind;
  // The exit iteration falls through into the epilogue; it must be free of
  // memory accesses and of control flow that could re-enter the loop.
  for (std::size_t pc = ssBranchPc_ + 1; pc < program_->instructions.size();
       ++pc) {
    const asmparse::DecodedInsn& insn = program_->instructions[pc];
    if (insn.desc->kind == isa::InstrKind::CondBranch ||
        insn.desc->kind == isa::InstrKind::Jump) {
      return false;
    }
    if (insn.desc->kind == isa::InstrKind::Lea) continue;
    for (const auto& op : insn.operands) {
      if (op.kind == Kind::Mem) return false;
    }
  }

  // Functionally walk two loop iterations on the live architectural state
  // (restored afterwards) to obtain the exact address of every memory op in
  // the next iteration and its per-iteration stride.
  auto savedGprs = gprs_;
  std::int64_t savedR = flagsResult_;
  std::uint64_t savedA = flagsA_, savedB = flagsB_;

  auto walkOnce = [&](std::vector<SsMemOp>& acc) -> bool {
    std::size_t pc = ssTargetPc_;
    std::size_t cap = (ssBranchPc_ - ssTargetPc_ + 2) * 4 + 8;
    for (std::size_t steps = 0;; ++steps) {
      if (steps > cap) return false;
      if (pc < ssTargetPc_ || pc > ssBranchPc_) return false;
      const asmparse::DecodedInsn& insn = program_->instructions[pc];
      const isa::InstrDesc& desc = *insn.desc;
      if (desc.kind == isa::InstrKind::Ret) return false;
      const asmparse::DecodedOperand* memOp = nullptr;
      bool memIsDest = false;
      for (std::size_t i = 0; i < insn.operands.size(); ++i) {
        if (insn.operands[i].kind == Kind::Mem) {
          memOp = &insn.operands[i];
          memIsDest = (i + 1 == insn.operands.size()) &&
                      desc.kind != isa::InstrKind::Compare &&
                      desc.kind != isa::InstrKind::Lea;
        }
      }
      if (memOp && desc.kind != isa::InstrKind::Lea) {
        SsMemOp op;
        op.pc = pc;
        op.addr = effectiveAddress(memOp->mem);
        op.bytes = insn.accessBytes();
        op.isStore = memIsDest;
        acc.push_back(op);
      }
      bool taken = false;
      executeFunctional(insn, taken);
      if (pc == ssBranchPc_) return taken;  // must close the loop
      if (desc.kind == isa::InstrKind::CondBranch ||
          desc.kind == isa::InstrKind::Jump) {
        if (taken) {
          const auto& target = insn.operands.at(0);
          if (target.kind != Kind::Label) return false;
          std::size_t tpc = program_->labelTarget(target.label);
          if (tpc <= pc) return false;  // nested backward branch: give up
          pc = tpc;
        } else {
          ++pc;
        }
      } else {
        ++pc;
      }
    }
  };

  std::vector<SsMemOp> first, second;
  bool ok = walkOnce(first) && walkOnce(second);
  gprs_ = savedGprs;
  flagsResult_ = savedR;
  flagsA_ = savedA;
  flagsB_ = savedB;
  if (!ok || first.size() != second.size()) return false;
  ops.clear();
  ops.reserve(first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (first[i].pc != second[i].pc) return false;  // divergent paths
    SsMemOp op = first[i];
    op.stride = static_cast<std::int64_t>(second[i].addr - first[i].addr);
    ops.push_back(op);
  }
  return true;
}

bool CoreSim::ssCheckAliasing(const std::vector<SsMemOp>& ops,
                              std::uint64_t perIterCycles, std::uint64_t now,
                              std::uint64_t windowCycles) const {
  bool anyLoad = false, anyStore = false;
  for (const SsMemOp& op : ops) {
    (op.isStore ? anyStore : anyLoad) = true;
  }
  if (!anyLoad) return true;  // aliasing only penalizes loads

  // Ring entries that are still live but predate the confirmed window are
  // not part of the periodic store stream; they will expire somewhere in
  // the skipped region and change load timing — bail.
  for (const RecentStore& st : recentStores_) {
    if (st.cycle == 0 || st.cycle + 32 < now) continue;
    if (st.cycle < now - windowCycles) return false;
  }

  if (!anyStore) return true;
  // A store can alias loads issued up to ~32 cycles later; bound the
  // iteration-age difference between a ring entry and a load.
  std::uint64_t aMax = 32 / std::max<std::uint64_t>(perIterCycles, 1) + 2;
  for (const SsMemOp& ld : ops) {
    if (ld.isStore) continue;
    for (const SsMemOp& st : ops) {
      if (!st.isStore) continue;
      // Equal strides keep every load/store page-offset gap constant.
      if (ld.stride != st.stride) return false;
      for (std::uint64_t a = 0; a <= aMax; ++a) {
        std::uint64_t g =
            (st.addr - static_cast<std::uint64_t>(st.stride) * a - ld.addr) &
            0xfffull;
        // g == 0 keeps the same-line predicate constant; gaps in (0, 64) or
        // (4032, 4096) flip the aliasing predicate when the stream crosses
        // a 4 KiB page boundary — not extrapolable.
        if (g != 0 && (g < 64 || g > 4096 - 64)) return false;
      }
    }
  }
  return true;
}

bool CoreSim::ssPrecheckL1(const std::vector<SsMemOp>& ops,
                           std::uint64_t skip) const {
  std::uint64_t lineBytes = static_cast<std::uint64_t>(config_.lineBytes);
  std::uint64_t budget = ss_.maxPrecheckLines;
  auto lineOk = [&](std::uint64_t line) {
    if (budget == 0) return false;
    --budget;
    return memsys_.peekLevel(coreId_, line * lineBytes) == MemLevel::L1;
  };
  auto rangeOk = [&](std::uint64_t lo, std::uint64_t hi) {  // [lo, hi)
    if (hi <= lo) return true;
    for (std::uint64_t line = lo / lineBytes; line <= (hi - 1) / lineBytes;
         ++line) {
      if (!lineOk(line)) return false;
    }
    return true;
  };
  for (const SsMemOp& op : ops) {
    std::uint64_t bytes = static_cast<std::uint64_t>(op.bytes);
    std::uint64_t s = static_cast<std::uint64_t>(
        op.stride < 0 ? -op.stride : op.stride);
    std::uint64_t lastAddr =
        op.addr + static_cast<std::uint64_t>(op.stride) * (skip - 1);
    if (s <= lineBytes) {
      // Dense stream: every line between the first and last access is
      // touched anyway, so one contiguous scan covers all of them.
      std::uint64_t lo = std::min(op.addr, lastAddr);
      std::uint64_t hi = std::max(op.addr, lastAddr) + bytes;
      if (!rangeOk(lo, hi)) return false;
    } else {
      for (std::uint64_t j = 0; j < skip; ++j) {
        std::uint64_t a = op.addr + static_cast<std::uint64_t>(op.stride) * j;
        if (!rangeOk(a, a + bytes)) return false;
      }
    }
  }
  return true;
}

void CoreSim::ssTryExtrapolate(std::uint64_t cycle, int period) {
  // Any hard bail below disables detection for the rest of the run: the
  // property that failed is a property of the loop, not of the moment.
  auto disable = [this]() {
    ssDisabled_ = true;
    ssRecording_ = false;
    ssCurWindow_.clear();
    ssCurWindow_.shrink_to_fit();
    ssAccessLog_.clear();
    ssHistory_.clear();
    ssHistory_.shrink_to_fit();
  };

  std::size_t n = ssHistory_.size();
  std::size_t p = static_cast<std::size_t>(period);
  const SsBoundary& last = ssHistory_[n - 1];
  const SsBoundary& prevPhase = ssHistory_[n - 1 - p];
  const SsBoundary& prevIter = ssHistory_[n - 2];

  const isa::InstrDesc& branchDesc = *program_->instructions[ssBranchPc_].desc;
  if (branchDesc.kind != isa::InstrKind::CondBranch) {
    disable();  // unconditional backward jump: the loop never exits
    return;
  }
  auto archDelta = [&](std::size_t s) { return last.arch[s] - prevIter.arch[s]; };
  std::optional<std::uint64_t> t = ssSolveExit(
      branchDesc.condition,
      static_cast<std::int64_t>(last.arch[kSsArchFlagsResult]),
      static_cast<std::int64_t>(archDelta(kSsArchFlagsResult)),
      last.arch[kSsArchFlagsA], archDelta(kSsArchFlagsA),
      last.arch[kSsArchFlagsB], archDelta(kSsArchFlagsB));
  if (!t || *t < 2) {
    disable();
    return;
  }
  // Skip whole periods only, and always leave the exit iteration (and any
  // sub-period remainder) to real simulation.
  std::uint64_t skip = ((*t - 1) / p) * p;
  if (skip < ss_.minSkipIterations) {
    // The loop is nearly done; detection costs outweigh the win.
    disable();
    return;
  }

  std::vector<SsMemOp> ops;
  if (!ssCollectMemOps(ops)) {
    disable();
    return;
  }
  std::uint64_t perPeriodCycles = last.timing[0] - prevPhase.timing[0];
  std::uint64_t perIterCycles = perPeriodCycles / p;
  std::uint64_t windowCycles =
      static_cast<std::uint64_t>(ss_.confirmPeriods) * perPeriodCycles;
  if (!ssCheckAliasing(ops, perIterCycles, cycle, windowCycles) ||
      !ssPrecheckL1(ops, skip)) {
    disable();
    return;
  }
  std::uint64_t q = skip / p;

  // The skipped accesses can never miss, but they do refresh L1 recency —
  // and later invokes of a warm protocol observe the resulting LRU state.
  // Replay them from the issue-order log: the last p windows are one full
  // steady period; matched positionally against the period before, each
  // entry gets its per-period address stride, and round r of the skipped
  // periods touches entry i at `addr + stride * r`. Positional matching
  // preserves the true (out-of-order) issue sequence, which program-order
  // reconstruction from `ops` would not.
  if (ssAccessLog_.size() < 2 * p) {
    disable();
    return;
  }
  std::vector<SsAccess> newer, older;
  for (std::size_t w = ssAccessLog_.size() - p; w < ssAccessLog_.size(); ++w) {
    newer.insert(newer.end(), ssAccessLog_[w].begin(), ssAccessLog_[w].end());
  }
  for (std::size_t w = ssAccessLog_.size() - 2 * p;
       w < ssAccessLog_.size() - p; ++w) {
    older.insert(older.end(), ssAccessLog_[w].begin(), ssAccessLog_[w].end());
  }
  if (newer.size() != older.size()) {
    disable();
    return;
  }
  std::vector<std::uint64_t> periodStride(newer.size());
  bool allStatic = true;
  for (std::size_t i = 0; i < newer.size(); ++i) {
    if (newer[i].bytes != older[i].bytes) {
      disable();
      return;
    }
    periodStride[i] = newer[i].addr - older[i].addr;
    allStatic = allStatic && periodStride[i] == 0;
  }
  // Static access patterns repeat the identical sequence every round, so
  // one replay round leaves the exact same LRU ordering as q of them.
  std::uint64_t rounds = allStatic ? std::min<std::uint64_t>(q, 1) : q;
  if (rounds * newer.size() > kSsMaxReplayAccesses) {
    disable();
    return;
  }

  // Commit: architectural slots advance by the per-iteration delta `skip`
  // times, timing slots by the per-period delta once per skipped period.
  std::uint64_t l1Before = levelAccesses_[1];
  {
    std::size_t s = 0;
    ssVisitArch([&](std::uint64_t& v) { v += skip * archDelta(s++); });
  }
  {
    std::size_t s = 1;  // timing[0] is the cycle clock, handled below
    ssVisitTiming([&](std::uint64_t& v) {
      v += q * (last.timing[s] - prevPhase.timing[s]);
      ++s;
    });
  }
  for (std::uint64_t r = 1; r <= rounds; ++r) {
    for (std::size_t i = 0; i < newer.size(); ++i) {
      memsys_.refreshL1(coreId_, newer[i].addr + periodStride[i] * r,
                        newer[i].bytes);
    }
  }
  // The skipped accesses are all proven L1 hits; keep the shared statistics
  // in sync with what full simulation would have counted.
  std::uint64_t credit[5] = {0, levelAccesses_[1] - l1Before, 0, 0, 0};
  memsys_.creditReplayedAccesses(credit, 0);

  extrapolatedFrom_ = ssIterations_;
  extrapolatedIterations_ = skip;
  ssIterations_ += skip;
  // Resume exactly where full simulation would be one tick after the
  // boundary at iteration k + skip.
  nextEvent_ = cycle + q * perPeriodCycles + 1;
  disable();
}

RunResult CoreSim::result() const {
  if (!finished_) throw McError("CoreSim::result before completion");
  RunResult r;
  r.coreCycles = endCycle_ - startCycle_;
  r.instructions = instructions_;
  r.uops = uopCount_;
  r.iterations = static_cast<std::uint32_t>(gprs_[isa::kRax]);
  r.extrapolatedFrom = extrapolatedFrom_;
  r.extrapolatedIterations = extrapolatedIterations_;
  r.tscCycles = config_.coreCyclesToTsc(static_cast<double>(r.coreCycles));
  r.energyPj =
      static_cast<double>(r.uops) * config_.uopEnergyPj +
      static_cast<double>(levelAccesses_[1]) * config_.l1AccessPj +
      static_cast<double>(levelAccesses_[2]) * config_.l2AccessPj +
      static_cast<double>(levelAccesses_[3]) * config_.l3AccessPj +
      static_cast<double>(levelAccesses_[4]) * config_.dramAccessPj +
      static_cast<double>(r.coreCycles) * config_.staticEnergyPjPerCycle();
  return r;
}

RunResult CoreSim::run(const asmparse::Program& program, int n,
                       const std::vector<std::uint64_t>& arrayAddrs,
                       std::uint64_t startCycle) {
  start(program, n, arrayAddrs, startCycle);
  std::uint64_t cycle = startCycle;
  while (!finished_) {
    tick(cycle);
    if (finished_) break;
    cycle = std::max(cycle + 1, nextEvent_);
  }
  return result();
}

}  // namespace microtools::sim
