#include "sim/core.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace microtools::sim {

namespace {
constexpr std::uint64_t kFar = std::numeric_limits<std::uint64_t>::max();
}

CoreSim::CoreSim(const MachineConfig& config, MemorySystem& memsys,
                 int coreId)
    : config_(config), memsys_(memsys), coreId_(coreId) {
  auto setPorts = [this](Unit unit, int count) {
    portFree_[static_cast<int>(unit)].assign(
        static_cast<std::size_t>(std::max(count, 1)), 0);
  };
  setPorts(Unit::Load, config_.loadPorts);
  setPorts(Unit::Store, config_.storePorts);
  setPorts(Unit::Alu, config_.aluPorts);
  setPorts(Unit::FpAdd, config_.fpAddPorts);
  setPorts(Unit::FpMul, config_.fpMulPorts);
  setPorts(Unit::FpDiv, config_.fpMulPorts);  // divider shares the mul port
  setPorts(Unit::Branch, config_.branchPorts);
  fillBufferFree_.assign(static_cast<std::size_t>(config_.fillBuffers), 0);
  lastWriter_.fill(-1);
}

void CoreSim::start(const asmparse::Program& program, int n,
                    const std::vector<std::uint64_t>& arrayAddrs,
                    std::uint64_t startCycle) {
  program_ = &program;
  pc_ = 0;
  gprs_.fill(0);
  gprs_[isa::kRdi] = n;
  for (std::size_t i = 0; i < arrayAddrs.size(); ++i) {
    if (static_cast<int>(i) + 1 >= isa::kNumArgumentRegisters) {
      throw McError("too many array arguments for the SysV registers");
    }
    gprs_[static_cast<std::size_t>(
        isa::argumentRegister(static_cast<int>(i) + 1).index)] =
        static_cast<std::int64_t>(arrayAddrs[i]);
  }
  flagsResult_ = 0;
  flagsA_ = flagsB_ = 0;
  rob_.clear();
  headId_ = 0;
  lastWriter_.fill(-1);
  for (auto& ports : portFree_) {
    std::fill(ports.begin(), ports.end(), startCycle);
  }
  std::fill(fillBufferFree_.begin(), fillBufferFree_.end(), startCycle);
  recentStores_.fill(RecentStore{});
  recentStoreNext_ = 0;
  dispatchStallUntil_ = startCycle;
  doneDispatching_ = false;
  finished_ = false;
  startCycle_ = startCycle;
  endCycle_ = startCycle;
  lastCompletion_ = startCycle;
  nextEvent_ = startCycle;
  instructions_ = 0;
  uopCount_ = 0;
  for (auto& c : levelAccesses_) c = 0;
  // Jump to the entry label when the function name is a known label.
  if (!program.functionName.empty()) {
    auto it = program.labels.find(program.functionName);
    if (it != program.labels.end()) pc_ = it->second;
  }
}

int CoreSim::regId(const isa::PhysReg& reg) {
  if (reg.cls == isa::RegClass::Gpr) return reg.index;
  if (reg.cls == isa::RegClass::Xmm) return 16 + reg.index;
  throw McError("unsupported register class in simulator");
}

std::int64_t CoreSim::readGpr(const isa::PhysReg& reg) const {
  std::int64_t raw = gprs_[static_cast<std::size_t>(reg.index)];
  switch (reg.widthBits) {
    case 64: return raw;
    case 32: return static_cast<std::int64_t>(static_cast<std::int32_t>(raw));
    case 16: return static_cast<std::int64_t>(static_cast<std::int16_t>(raw));
    case 8: return static_cast<std::int64_t>(static_cast<std::int8_t>(raw));
    default: throw McError("bad register width");
  }
}

void CoreSim::writeGpr(const isa::PhysReg& reg, std::int64_t value) {
  std::int64_t& slot = gprs_[static_cast<std::size_t>(reg.index)];
  switch (reg.widthBits) {
    case 64:
      slot = value;
      break;
    case 32:
      // x86-64: 32-bit writes zero-extend into the full register.
      slot = static_cast<std::int64_t>(
          static_cast<std::uint32_t>(value));
      break;
    case 16:
      slot = (slot & ~0xffffll) | (value & 0xffff);
      break;
    case 8:
      slot = (slot & ~0xffll) | (value & 0xff);
      break;
    default:
      throw McError("bad register width");
  }
}

std::uint64_t CoreSim::effectiveAddress(const asmparse::DecodedMem& mem) const {
  std::int64_t addr = mem.disp;
  if (mem.base) {
    if (mem.base->cls == isa::RegClass::Rip) {
      // RIP-relative: treat the displacement as absolute.
    } else {
      addr += readGpr(*mem.base);
    }
  }
  if (mem.index) {
    addr += readGpr(*mem.index) * mem.scale;
  }
  return static_cast<std::uint64_t>(addr);
}

std::int64_t CoreSim::operandValue(const asmparse::DecodedOperand& op) const {
  using Kind = asmparse::DecodedOperand::Kind;
  switch (op.kind) {
    case Kind::Imm: return op.imm;
    case Kind::Reg:
      if (op.reg.cls == isa::RegClass::Gpr) return readGpr(op.reg);
      return 0;  // XMM data values are not tracked
    case Kind::Mem: return 0;  // loaded values are not tracked
    case Kind::Label: return 0;
  }
  return 0;
}

bool CoreSim::evaluateCondition(isa::Condition cond) const {
  switch (cond) {
    case isa::Condition::E: return flagsResult_ == 0;
    case isa::Condition::NE: return flagsResult_ != 0;
    case isa::Condition::L: return flagsResult_ < 0;
    case isa::Condition::LE: return flagsResult_ <= 0;
    case isa::Condition::G: return flagsResult_ > 0;
    case isa::Condition::GE: return flagsResult_ >= 0;
    case isa::Condition::S: return flagsResult_ < 0;
    case isa::Condition::NS: return flagsResult_ >= 0;
    case isa::Condition::B: return flagsA_ < flagsB_;
    case isa::Condition::BE: return flagsA_ <= flagsB_;
    case isa::Condition::A: return flagsA_ > flagsB_;
    case isa::Condition::AE: return flagsA_ >= flagsB_;
    case isa::Condition::None: break;
  }
  throw McError("branch without a condition");
}

void CoreSim::executeFunctional(const asmparse::DecodedInsn& insn,
                                bool& branchTaken) {
  using Kind = asmparse::DecodedOperand::Kind;
  const auto& ops = insn.operands;
  branchTaken = false;

  auto setFlags = [this](std::int64_t result, std::uint64_t a,
                         std::uint64_t b) {
    flagsResult_ = result;
    flagsA_ = a;
    flagsB_ = b;
  };

  switch (insn.desc->kind) {
    case isa::InstrKind::Move: {
      if (ops.size() != 2) throw McError("move needs two operands");
      if (ops[1].kind == Kind::Reg && ops[1].reg.cls == isa::RegClass::Gpr) {
        writeGpr(ops[1].reg, operandValue(ops[0]));
      }
      // XMM destinations and stores: no tracked value.
      return;
    }
    case isa::InstrKind::IntAlu: {
      // inc/dec/neg/not have one operand; the rest have two (src, dst).
      if (ops.size() == 1) {
        if (ops[0].kind != Kind::Reg) return;  // memory forms: timing only
        std::int64_t v = readGpr(ops[0].reg);
        std::string_view m = insn.desc->mnemonic;
        std::int64_t r = v;
        if (m == "inc") r = v + 1;
        else if (m == "dec") r = v - 1;
        else if (m == "neg") r = -v;
        else if (m == "not") r = ~v;
        writeGpr(ops[0].reg, r);
        if (m != "not") {
          setFlags(r, static_cast<std::uint64_t>(r), 0);
        }
        return;
      }
      if (ops.size() != 2 || ops[1].kind != Kind::Reg) return;
      std::int64_t src = operandValue(ops[0]);
      std::int64_t dst = readGpr(ops[1].reg);
      std::string_view m = insn.desc->mnemonic;
      std::int64_t r = dst;
      if (m == "add") r = dst + src;
      else if (m == "sub") r = dst - src;
      else if (m == "and") r = dst & src;
      else if (m == "or") r = dst | src;
      else if (m == "xor") r = dst ^ src;
      else if (m == "shl") r = dst << (src & 63);
      else if (m == "shr") {
        r = static_cast<std::int64_t>(static_cast<std::uint64_t>(dst) >>
                                      (src & 63));
      } else if (m == "sar") {
        r = dst >> (src & 63);
      }
      writeGpr(ops[1].reg, r);
      setFlags(r, static_cast<std::uint64_t>(dst),
               static_cast<std::uint64_t>(src));
      return;
    }
    case isa::InstrKind::IntMul: {
      if (ops.size() == 2 && ops[1].kind == Kind::Reg) {
        std::int64_t r = readGpr(ops[1].reg) * operandValue(ops[0]);
        writeGpr(ops[1].reg, r);
        setFlags(r, static_cast<std::uint64_t>(r), 0);
      }
      return;
    }
    case isa::InstrKind::Lea: {
      if (ops.size() == 2 && ops[0].kind == Kind::Mem &&
          ops[1].kind == Kind::Reg) {
        writeGpr(ops[1].reg,
                 static_cast<std::int64_t>(effectiveAddress(ops[0].mem)));
      }
      return;
    }
    case isa::InstrKind::Compare: {
      if (ops.size() != 2) throw McError("compare needs two operands");
      std::int64_t src = operandValue(ops[0]);
      std::int64_t dst = ops[1].kind == Kind::Reg ? readGpr(ops[1].reg)
                                                  : operandValue(ops[1]);
      if (insn.desc->mnemonic == "test") {
        setFlags(dst & src, static_cast<std::uint64_t>(dst),
                 static_cast<std::uint64_t>(src));
      } else {
        setFlags(dst - src, static_cast<std::uint64_t>(dst),
                 static_cast<std::uint64_t>(src));
      }
      return;
    }
    case isa::InstrKind::CondBranch:
      branchTaken = evaluateCondition(insn.desc->condition);
      return;
    case isa::InstrKind::Jump:
      branchTaken = true;
      return;
    case isa::InstrKind::FpAdd:
    case isa::InstrKind::FpMul:
    case isa::InstrKind::FpDiv:
    case isa::InstrKind::FpLogic:
      return;  // FP values are not tracked
    case isa::InstrKind::Ret:
    case isa::InstrKind::Nop:
      return;
  }
}

void CoreSim::addDep(Uop& uop, int reg) const {
  std::int64_t writer = lastWriter_[static_cast<std::size_t>(reg)];
  if (writer < 0) return;
  if (uop.depCount >= static_cast<int>(uop.deps.size())) {
    throw McError("uop dependency list overflow");
  }
  uop.deps[static_cast<std::size_t>(uop.depCount++)] = static_cast<int>(writer);
}

void CoreSim::noteWrite(int reg, std::uint64_t producerId) {
  lastWriter_[static_cast<std::size_t>(reg)] =
      static_cast<std::int64_t>(producerId);
}

std::uint64_t CoreSim::pushUop(Uop uop) {
  std::uint64_t id = headId_ + rob_.size();
  rob_.push_back(uop);
  ++uopCount_;
  return id;
}

bool CoreSim::depsReady(const Uop& uop, std::uint64_t cycle) const {
  for (int i = 0; i < uop.depCount; ++i) {
    std::uint64_t depId = static_cast<std::uint64_t>(
        uop.deps[static_cast<std::size_t>(i)]);
    if (depId < headId_) continue;  // retired => complete
    const Uop& producer = rob_[depId - headId_];
    if (!producer.issued || producer.completeCycle > cycle) return false;
  }
  return true;
}

bool CoreSim::tryIssueOne(Uop& uop, std::uint64_t globalId,
                          std::uint64_t cycle) {
  if (!depsReady(uop, cycle)) return false;

  auto& ports = portFree_[static_cast<int>(uop.unit)];
  auto portIt = std::min_element(ports.begin(), ports.end());
  if (*portIt > cycle) return false;

  std::uint64_t completion = cycle + static_cast<std::uint64_t>(uop.latency);
  std::uint64_t portBusyUntil = cycle + 1;

  if (uop.isMem) {
    bool needsFillBuffer =
        memsys_.peekLevel(coreId_, uop.addr) != MemLevel::L1;
    std::vector<std::uint64_t>::iterator fb = fillBufferFree_.end();
    if (needsFillBuffer) {
      fb = std::min_element(fillBufferFree_.begin(), fillBufferFree_.end());
      if (*fb > cycle) return false;  // MLP limit reached
    }
    if (uop.unit == Unit::Load) {
      AccessResult res = memsys_.load(coreId_, uop.addr, uop.bytes, cycle);
      completion = res.completeCycle;
      ++levelAccesses_[static_cast<int>(res.level)];
      // 4 KiB aliasing: a recent store whose address matches the load's low
      // twelve bits (different line) triggers a false MOB dependence and a
      // load replay — the load port stays busy for the penalty, costing
      // real throughput, and the data arrives late.
      bool aliased = false;
      std::uint64_t pageOff = uop.addr & 0xfffull;
      for (const RecentStore& st : recentStores_) {
        if (st.cycle == 0 || st.cycle + 32 < cycle) continue;
        std::uint64_t stOff = st.addr & 0xfffull;
        std::uint64_t distance = stOff > pageOff ? stOff - pageOff
                                                 : pageOff - stOff;
        if (distance < 64 && (st.addr / 64) != (uop.addr / 64)) {
          aliased = true;
          break;
        }
      }
      if (aliased) {
        completion += static_cast<std::uint64_t>(config_.aliasing4kPenalty);
        portBusyUntil = cycle +
            static_cast<std::uint64_t>(config_.aliasing4kPenalty);
      }
      if (fb != fillBufferFree_.end()) *fb = completion;
    } else {  // Store
      AccessResult res = memsys_.store(coreId_, uop.addr, uop.bytes, cycle);
      ++levelAccesses_[static_cast<int>(res.level)];
      // The pipeline does not wait for the RFO; the fill buffer does.
      if (fb != fillBufferFree_.end()) *fb = res.completeCycle;
      completion = cycle + 1;
      recentStores_[recentStoreNext_] = {uop.addr, cycle};
      recentStoreNext_ = (recentStoreNext_ + 1) % recentStores_.size();
    }
  }

  *portIt = uop.unit == Unit::FpDiv
                ? cycle + static_cast<std::uint64_t>(uop.latency)
                : portBusyUntil;
  uop.issued = true;
  uop.completeCycle = completion;
  lastCompletion_ = std::max(lastCompletion_, completion);
  if (trace_) {
    static const char* kUnitNames[] = {"LD", "ST", "ALU", "FPA",
                                       "FPM", "FPD", "BR"};
    std::fprintf(trace_, "core%d id=%llu %s issue=%llu complete=%llu addr=%llx\n",
                 coreId_, static_cast<unsigned long long>(globalId),
                 kUnitNames[static_cast<int>(uop.unit)],
                 static_cast<unsigned long long>(cycle),
                 static_cast<unsigned long long>(completion),
                 static_cast<unsigned long long>(uop.addr));
  }
  return true;
}

void CoreSim::retire(std::uint64_t cycle) {
  int retired = 0;
  while (!rob_.empty() && retired < config_.issueWidth) {
    const Uop& head = rob_.front();
    if (!head.issued || head.completeCycle > cycle) break;
    rob_.pop_front();
    ++headId_;
    ++retired;
  }
}

void CoreSim::issue(std::uint64_t cycle) {
  int issued = 0;
  int examined = 0;
  bool olderStorePending = false;
  // Only the oldest rsEntries un-issued uops are visible to the scheduler
  // (Nehalem's 36-entry reservation station); this also bounds the scan.
  for (std::size_t i = 0; i < rob_.size() && issued < config_.issueWidth &&
                          examined < config_.rsEntries;
       ++i) {
    Uop& uop = rob_[i];
    if (uop.issued) continue;
    ++examined;
    // Stores issue in order among themselves (store-buffer FIFO).
    if (uop.unit == Unit::Store && olderStorePending) continue;
    bool ok = tryIssueOne(uop, headId_ + i, cycle);
    if (ok) {
      ++issued;
    } else if (uop.unit == Unit::Store) {
      olderStorePending = true;
    }
  }
}

void CoreSim::dispatch(std::uint64_t cycle) {
  if (doneDispatching_ || cycle < dispatchStallUntil_) return;
  int dispatched = 0;
  while (dispatched < config_.issueWidth && !doneDispatching_) {
    if (rob_.size() + 2 > static_cast<std::size_t>(config_.robSize)) break;
    if (pc_ >= program_->instructions.size()) {
      doneDispatching_ = true;
      break;
    }
    const asmparse::DecodedInsn& insn = program_->instructions[pc_];
    const isa::InstrDesc& desc = *insn.desc;

    if (desc.kind == isa::InstrKind::Ret) {
      ++instructions_;
      doneDispatching_ = true;
      break;
    }
    if (desc.kind == isa::InstrKind::Nop) {
      ++instructions_;
      ++pc_;
      ++dispatched;
      continue;
    }

    // ---- build uops (before functional update so deps see old writers,
    //      but addresses need current values: compute them now) -------------
    const asmparse::DecodedOperand* memOp = nullptr;
    bool memIsDest = false;
    for (std::size_t i = 0; i < insn.operands.size(); ++i) {
      if (insn.operands[i].kind == asmparse::DecodedOperand::Kind::Mem) {
        memOp = &insn.operands[i];
        memIsDest = (i + 1 == insn.operands.size()) &&
                    desc.kind != isa::InstrKind::Compare &&
                    desc.kind != isa::InstrKind::Lea;
      }
    }
    std::uint64_t addr = memOp ? effectiveAddress(memOp->mem) : 0;
    int accessBytes = insn.accessBytes();

    auto depOnMemRegs = [&](Uop& uop) {
      if (!memOp) return;
      if (memOp->mem.base && memOp->mem.base->cls == isa::RegClass::Gpr) {
        addDep(uop, regId(*memOp->mem.base));
      }
      if (memOp->mem.index && memOp->mem.index->cls == isa::RegClass::Gpr) {
        addDep(uop, regId(*memOp->mem.index));
      }
    };

    int loadUopId = -1;
    int neededUops = 1;
    bool isLoad = memOp && !memIsDest && desc.kind != isa::InstrKind::Lea;
    bool isStore = memOp && memIsDest;
    bool fusedLoadOp = isLoad && desc.kind != isa::InstrKind::Move;
    if (fusedLoadOp) neededUops = 2;
    if (dispatched + neededUops > config_.issueWidth) break;

    if (isLoad) {
      Uop load;
      load.unit = Unit::Load;
      load.isMem = true;
      load.addr = addr;
      load.bytes = accessBytes;
      load.latency = config_.l1.latencyCycles;
      depOnMemRegs(load);
      if (!fusedLoadOp) {
        // Plain move load: destination register is the last operand.
        const auto& dst = insn.operands.back();
        if (dst.kind == asmparse::DecodedOperand::Kind::Reg) {
          load.dst = regId(dst.reg);
        }
      }
      std::uint64_t id = pushUop(load);
      if (fusedLoadOp) {
        loadUopId = static_cast<int>(id);
      } else if (load.dst >= 0) {
        noteWrite(load.dst, id);
      }
      ++dispatched;
    }

    if (isStore) {
      Uop store;
      store.unit = Unit::Store;
      store.isMem = true;
      store.addr = addr;
      store.bytes = accessBytes;
      store.latency = 1;
      depOnMemRegs(store);
      // Data source: every non-memory source operand.
      for (std::size_t i = 0; i + 1 < insn.operands.size(); ++i) {
        if (insn.operands[i].kind == asmparse::DecodedOperand::Kind::Reg) {
          addDep(store, regId(insn.operands[i].reg));
        }
      }
      pushUop(store);
      ++dispatched;
    } else if (!isLoad || fusedLoadOp) {
      // Compute uop (also covers reg-reg moves and branches).
      Uop compute;
      compute.latency = std::max(desc.latency, 1);
      switch (desc.kind) {
        case isa::InstrKind::FpAdd: compute.unit = Unit::FpAdd; break;
        case isa::InstrKind::FpMul: compute.unit = Unit::FpMul; break;
        case isa::InstrKind::FpDiv: compute.unit = Unit::FpDiv; break;
        case isa::InstrKind::CondBranch:
        case isa::InstrKind::Jump: compute.unit = Unit::Branch; break;
        default: compute.unit = Unit::Alu; break;
      }
      if (loadUopId >= 0) {
        compute.deps[static_cast<std::size_t>(compute.depCount++)] = loadUopId;
      }
      // Register sources: all register operands (AT&T: dst is read-modify-
      // write except for plain moves).
      bool isPlainMove = desc.kind == isa::InstrKind::Move ||
                         desc.kind == isa::InstrKind::Lea;
      for (std::size_t i = 0; i < insn.operands.size(); ++i) {
        const auto& op = insn.operands[i];
        if (op.kind != asmparse::DecodedOperand::Kind::Reg) continue;
        bool isDst = (i + 1 == insn.operands.size());
        if (isDst && isPlainMove) continue;  // pure overwrite
        addDep(compute, regId(op.reg));
      }
      if (desc.kind == isa::InstrKind::Lea && memOp) depOnMemRegs(compute);
      if (desc.kind == isa::InstrKind::CondBranch) {
        addDep(compute, kFlagsReg);
      }
      // Destination register.
      if (!insn.operands.empty() &&
          insn.operands.back().kind == asmparse::DecodedOperand::Kind::Reg &&
          desc.kind != isa::InstrKind::Compare &&
          desc.kind != isa::InstrKind::CondBranch &&
          desc.kind != isa::InstrKind::Jump) {
        compute.dst = regId(insn.operands.back().reg);
      }
      std::uint64_t id = pushUop(compute);
      if (compute.dst >= 0) noteWrite(compute.dst, id);
      bool writesFlags = desc.kind == isa::InstrKind::IntAlu ||
                         desc.kind == isa::InstrKind::IntMul ||
                         desc.kind == isa::InstrKind::Compare;
      if (writesFlags) noteWrite(kFlagsReg, id);
      ++dispatched;
    }

    // ---- functional execution & control flow -------------------------------
    bool branchTaken = false;
    executeFunctional(insn, branchTaken);
    ++instructions_;

    if (desc.kind == isa::InstrKind::CondBranch ||
        desc.kind == isa::InstrKind::Jump) {
      if (branchTaken) {
        const auto& target = insn.operands.at(0);
        if (target.kind != asmparse::DecodedOperand::Kind::Label) {
          throw McError("indirect branches are not supported");
        }
        std::size_t targetPc = program_->labelTarget(target.label);
        bool backward = targetPc <= pc_;
        pc_ = targetPc;
        if (!backward) {
          // Forward taken branches are modeled as predicted not-taken.
          dispatchStallUntil_ =
              cycle + static_cast<std::uint64_t>(config_.mispredictPenalty);
        }
        // The frontend cannot dispatch past a taken branch in the same
        // cycle; this also caps tiny loops at one iteration per cycle.
        break;
      } else {
        // Loop exit: the backward branch was predicted taken; pay the
        // mispredict bubble once.
        ++pc_;
        dispatchStallUntil_ =
            cycle + static_cast<std::uint64_t>(config_.mispredictPenalty);
        break;
      }
    } else {
      ++pc_;
    }
  }
}

void CoreSim::tick(std::uint64_t cycle) {
  if (finished_) return;
  std::uint64_t robBefore = headId_ + rob_.size();
  std::uint64_t headBefore = headId_;
  retire(cycle);
  issue(cycle);
  dispatch(cycle);
  bool progressed = (headId_ != headBefore) ||
                    (headId_ + rob_.size() != robBefore);
  if (doneDispatching_ && rob_.empty()) {
    finished_ = true;
    endCycle_ = std::max(lastCompletion_, cycle);
    nextEvent_ = kFar;
    return;
  }
  computeNextEvent(cycle, progressed);
}

void CoreSim::computeNextEvent(std::uint64_t cycle, bool progressed) {
  if (progressed) {
    nextEvent_ = cycle + 1;
    return;
  }
  std::uint64_t next = kFar;
  for (const Uop& uop : rob_) {
    if (uop.issued && uop.completeCycle > cycle) {
      next = std::min(next, uop.completeCycle);
    }
  }
  if (dispatchStallUntil_ > cycle) {
    next = std::min(next, dispatchStallUntil_);
  }
  for (const auto& ports : portFree_) {
    for (std::uint64_t f : ports) {
      if (f > cycle) next = std::min(next, f);
    }
  }
  for (std::uint64_t f : fillBufferFree_) {
    if (f > cycle) next = std::min(next, f);
  }
  if (next == kFar) next = cycle + 1;  // safety: never stall forever
  nextEvent_ = std::max(next, cycle + 1);
}

RunResult CoreSim::result() const {
  if (!finished_) throw McError("CoreSim::result before completion");
  RunResult r;
  r.coreCycles = endCycle_ - startCycle_;
  r.instructions = instructions_;
  r.uops = uopCount_;
  r.iterations = static_cast<std::uint32_t>(gprs_[isa::kRax]);
  r.tscCycles = config_.coreCyclesToTsc(static_cast<double>(r.coreCycles));
  r.energyPj =
      static_cast<double>(r.uops) * config_.uopEnergyPj +
      static_cast<double>(levelAccesses_[1]) * config_.l1AccessPj +
      static_cast<double>(levelAccesses_[2]) * config_.l2AccessPj +
      static_cast<double>(levelAccesses_[3]) * config_.l3AccessPj +
      static_cast<double>(levelAccesses_[4]) * config_.dramAccessPj +
      static_cast<double>(r.coreCycles) * config_.staticEnergyPjPerCycle();
  return r;
}

RunResult CoreSim::run(const asmparse::Program& program, int n,
                       const std::vector<std::uint64_t>& arrayAddrs,
                       std::uint64_t startCycle) {
  start(program, n, arrayAddrs, startCycle);
  std::uint64_t cycle = startCycle;
  while (!finished_) {
    tick(cycle);
    if (finished_) break;
    cycle = std::max(cycle + 1, nextEvent_);
  }
  return result();
}

}  // namespace microtools::sim
