#pragma once

#include <cstdint>
#include <vector>

#include "support/hash.hpp"

namespace microtools::sim {

/// A set-associative cache with true-LRU replacement, operating on line
/// addresses (byte address >> log2(lineBytes)).
///
/// The simulator uses this for L1/L2 (per core) and L3 (per socket). Only
/// presence is tracked — data values never matter for timing.
class CacheLevel {
 public:
  /// sizeBytes must be a multiple of ways*lineBytes; throws McError
  /// otherwise. The set count may be any positive integer (real LLCs are
  /// frequently non-power-of-two); indexing is modulo the set count.
  CacheLevel(std::uint64_t sizeBytes, int ways, int lineBytes);

  /// Looks up a line and updates LRU on hit. Returns true on hit.
  /// Does NOT insert on miss (the memory system decides when the fill
  /// arrives).
  bool lookup(std::uint64_t lineAddr);

  /// True when present, without touching LRU state.
  bool contains(std::uint64_t lineAddr) const;

  /// Inserts a line, evicting the LRU way if the set is full.
  /// Returns the evicted line address, or kNoEviction when a free way was
  /// available or the line was already present.
  std::uint64_t insert(std::uint64_t lineAddr);

  /// Removes a line if present; returns whether it was.
  bool invalidate(std::uint64_t lineAddr);

  /// Drops all content.
  void clear();

  std::uint64_t sizeBytes() const { return sizeBytes_; }
  int ways() const { return ways_; }
  int lineBytes() const { return lineBytes_; }
  std::uint64_t sets() const { return sets_; }

  /// Statistics (cumulative since construction/clear).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Mixes the replacement-relevant state into `h`: per set, the valid ways
  /// ordered by recency rank. The absolute LRU clock is deliberately
  /// excluded — two caches whose contents and recency *ordering* agree
  /// behave identically forever, which is what warm-invoke memoization
  /// needs to compare across invocations.
  void hashState(hash::Fnv1a& h) const;

  static constexpr std::uint64_t kNoEviction = ~0ull;

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lastUse = 0;
    bool valid = false;
  };

  std::uint64_t setIndex(std::uint64_t lineAddr) const {
    return lineAddr % sets_;
  }
  // The full line address is stored as the tag, so evicted-line reporting
  // needs no reconstruction.
  static std::uint64_t tagOf(std::uint64_t lineAddr) { return lineAddr; }

  std::uint64_t sizeBytes_;
  int ways_;
  int lineBytes_;
  std::uint64_t sets_;
  std::vector<Way> ways_storage_;  // sets_ * ways_ entries
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace microtools::sim
