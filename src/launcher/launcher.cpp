#include "launcher/launcher.hpp"

#include <numeric>

#include "support/error.hpp"

namespace microtools::launcher {

std::vector<std::vector<std::uint64_t>> alignmentConfigurations(
    std::size_t arrayCount, const AlignmentSweepSpec& spec) {
  if (arrayCount == 0) throw McError("alignment sweep needs >= 1 array");
  if (spec.step == 0 || spec.maxOffset <= spec.minOffset) {
    throw McError("alignment sweep requires step > 0 and max > min");
  }
  if (spec.maxConfigs == 0) {
    throw McError("alignment sweep requires maxConfigs > 0");
  }
  std::uint64_t perArray = (spec.maxOffset - spec.minOffset + spec.step - 1) /
                           spec.step;
  // Total configurations = perArray ^ arrayCount, computed with saturation.
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < arrayCount; ++i) {
    if (total > (1ull << 62) / perArray) {
      total = ~0ull;
      break;
    }
    total *= perArray;
  }
  std::uint64_t count =
      std::min<std::uint64_t>(total, static_cast<std::uint64_t>(spec.maxConfigs));
  // Stride through the product space so every digit (array offset) varies.
  std::uint64_t stride;
  if (total == ~0ull) {
    // Saturated product: `total / count` is meaningless here (the old
    // stride-1 fallback froze every digit but the lowest). Walk the code
    // space with a golden-ratio step instead: odd, so the 2^64 orbit never
    // revisits a code, with bits in every 16-bit chunk so even a small
    // budget of consecutive codes varies every array's digit (a stride near
    // a power of the radix would hold the middle digits constant). Nudged
    // until coprime with the radix so the lowest digit sweeps as well.
    stride = 0x9e3779b97f4a7c15ull;
    while (std::gcd(stride, perArray) != 1) stride -= 2;
  } else {
    stride = total / count;
    if (stride == 0) stride = 1;
    if (stride > 1 && stride % perArray == 0) {
      // A stride that is a multiple of the radix would freeze the lowest
      // digit; nudge it off the multiple.
      --stride;
    }
  }

  std::vector<std::vector<std::uint64_t>> configs;
  configs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t code = i * stride;
    std::vector<std::uint64_t> offsets(arrayCount);
    for (std::size_t a = 0; a < arrayCount; ++a) {
      offsets[a] = spec.minOffset + (code % perArray) * spec.step;
      code /= perArray;
    }
    configs.push_back(std::move(offsets));
  }
  return configs;
}

MicroLauncher::MicroLauncher(std::unique_ptr<Backend> backend)
    : backend_(std::move(backend)) {
  if (!backend_) throw McError("MicroLauncher requires a backend");
}

std::unique_ptr<KernelHandle> MicroLauncher::load(
    const std::string& asmText, const std::string& functionName) {
  return backend_->load(asmText, functionName);
}

std::unique_ptr<KernelHandle> MicroLauncher::load(
    const creator::GeneratedProgram& p) {
  return backend_->load(p);
}

Measurement MicroLauncher::measure(KernelHandle& kernel,
                                   const KernelRequest& request,
                                   const ProtocolOptions& options) {
  return measureKernel(*backend_, kernel, request, options);
}

std::vector<AlignmentSample> MicroLauncher::alignmentSweep(
    KernelHandle& kernel, const KernelRequest& request,
    const AlignmentSweepSpec& spec, const ProtocolOptions& options) {
  std::vector<AlignmentSample> samples;
  for (std::vector<std::uint64_t>& offsets :
       alignmentConfigurations(request.arrays.size(), spec)) {
    KernelRequest configured = request;
    for (std::size_t a = 0; a < configured.arrays.size(); ++a) {
      configured.arrays[a].offset = offsets[a];
    }
    backend_->reset();  // each configuration starts from cold caches
    AlignmentSample sample;
    sample.measurement = measureKernel(*backend_, kernel, configured, options);
    sample.offsets = std::move(offsets);
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::vector<InvokeResult> MicroLauncher::fork(KernelHandle& kernel,
                                              const KernelRequest& request,
                                              int processes, int calls,
                                              PinPolicy policy) {
  return backend_->invokeFork(kernel, request, processes, calls, policy);
}

InvokeResult MicroLauncher::openmp(KernelHandle& kernel,
                                   const KernelRequest& request, int threads,
                                   int repetitions) {
  return backend_->invokeOpenMp(kernel, request, threads, repetitions);
}

csv::Table MicroLauncher::toCsv(
    const std::vector<std::pair<std::string, Measurement>>& rows) {
  csv::Table table({"configuration", "iterations_per_call",
                    "cycles_per_iteration_min", "cycles_per_iteration_mean",
                    "cycles_per_iteration_median", "cycles_per_iteration_max",
                    "cv"});
  for (const auto& [name, m] : rows) {
    table.beginRow()
        .add(name)
        .add(static_cast<std::uint64_t>(m.iterationsPerCall))
        .add(m.cyclesPerIteration.min)
        .add(m.cyclesPerIteration.mean)
        .add(m.cyclesPerIteration.median)
        .add(m.cyclesPerIteration.max)
        .add(m.cyclesPerIteration.cv, 6)
        .commit();
  }
  return table;
}

}  // namespace microtools::launcher
