#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "creator/pass.hpp"
#include "support/error.hpp"

namespace microtools::launcher {

/// How one kernel array is materialized: size plus alignment request.
/// MicroLauncher sweeps `offset` to study alignment effects (§4 and §5.2.2):
/// the array base is placed at (a multiple of `alignment`) + `offset`.
struct ArraySpec {
  std::uint64_t bytes = 0;
  std::uint64_t alignment = 4096;
  std::uint64_t offset = 0;
};

/// Guaranteed over-allocation beyond bytes + offset for every kernel array,
/// on every backend. Count-down kernels (sub $k,%rdi; jge) legitimately
/// over-read up to one unrolled stride past the array, so backends pad each
/// allocation by at least one page and the static verifier (verify::
/// LaunchContext::slackBytes) accepts accesses within the same slack.
inline constexpr std::uint64_t kArraySlackBytes = 4096;

/// One kernel invocation request.
struct KernelRequest {
  int n = 0;                      ///< trip-count argument
  std::vector<ArraySpec> arrays;  ///< pointer arguments after n
  int core = 0;                   ///< pinning target (§4: CPU pinning)

  /// Bytes the kernel advances per counted iteration — used to split arrays
  /// across OpenMP threads (4 = the movss/float convention). The simulator
  /// backend derives the exact value from the kernel's induction code.
  std::uint64_t chunkStrideBytes = 4;
};

/// Hardware-counter sample accompanying one invocation. `valid` is false —
/// and every value NaN — when no counter group is available (no perf, VM
/// without a PMU, perf_event_paranoid, non-native backend); an individual
/// value stays NaN when its event did not fit the PMU's counter budget.
/// Callers aggregate with plain arithmetic: NaN propagates, so a metric
/// derived from an absent event is itself absent.
struct InvokeCounters {
  bool valid = false;
  double cycles = std::numeric_limits<double>::quiet_NaN();
  double instructions = std::numeric_limits<double>::quiet_NaN();
  double l1dAccesses = std::numeric_limits<double>::quiet_NaN();
  double l1dMisses = std::numeric_limits<double>::quiet_NaN();
  double llcAccesses = std::numeric_limits<double>::quiet_NaN();
  double llcMisses = std::numeric_limits<double>::quiet_NaN();
  double stalledCycles = std::numeric_limits<double>::quiet_NaN();
};

/// Timing sample for one or more kernel calls.
struct InvokeResult {
  double tscCycles = 0.0;         ///< elapsed invariant-TSC cycles
  std::uint64_t iterations = 0;   ///< iteration count the kernel returned
  InvokeCounters counters;        ///< perf-counter window over the call(s)
};

/// Pinning policy for fork-mode runs.
enum class PinPolicy { Compact, Scatter };

/// One kernel source for batch loading: Backend::loadSource's triple as a
/// value, so a whole campaign batch can be handed to the backend at once.
struct SourceUnit {
  std::string kind = "asm";  ///< asm|c (the native backend also takes "so")
  std::string text;          ///< kernel source (the .so path for kind "so")
  std::string functionName = "microkernel";
};

class Backend;

/// Opaque loaded-kernel handle; concrete backends subclass it.
class KernelHandle {
 public:
  virtual ~KernelHandle() = default;

  /// The backend that created this handle, set once in load(). Backends
  /// validate it with a pointer comparison and then downcast statically —
  /// a handle whose origin matches is by construction the backend's own
  /// concrete type, so the per-invoke hot path needs no RTTI.
  Backend* origin = nullptr;
};

/// Execution backend abstraction.
///
/// The paper's MicroLauncher runs on bare hardware; this reproduction offers
/// two interchangeable backends: `native` (compile + dlopen + rdtsc — the
/// faithful tool) and `sim` (the deterministic Nehalem-class simulator that
/// regenerates the paper's figures; see DESIGN.md's substitution note).
class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  /// Loads a kernel from its assembly text; `functionName` is the entry
  /// point (§4.1: "a command-line parameter provides the function name").
  virtual std::unique_ptr<KernelHandle> load(
      const std::string& asmText, const std::string& functionName) = 0;

  /// Convenience for MicroCreator output.
  std::unique_ptr<KernelHandle> load(const creator::GeneratedProgram& p) {
    return load(p.asmText, p.functionName);
  }

  /// Loads a kernel from source of the given kind ("asm" everywhere; the
  /// native backend also accepts "c" and "so"). The campaign runner goes
  /// through this so mixed .s/.c campaign directories work on any backend
  /// that can take them.
  virtual std::unique_ptr<KernelHandle> loadSource(
      const std::string& kind, const std::string& text,
      const std::string& functionName) {
    if (kind == "asm") return load(text, functionName);
    throw ExecutionError("backend '" + name() + "' cannot load '" + kind +
                         "' kernels");
  }

  /// Loads a batch of kernels at once. The native backend overrides this to
  /// compile the whole batch with ONE compiler invocation into one shared
  /// object (entry symbols uniquified per unit); the default simply loops
  /// over loadSource(), so backends with cheap loads (the simulator) need
  /// nothing special. A unit that fails to load comes back as a null entry
  /// — callers that need the diagnostic reload that unit individually.
  virtual std::vector<std::unique_ptr<KernelHandle>> loadBatch(
      const std::vector<SourceUnit>& units) {
    std::vector<std::unique_ptr<KernelHandle>> handles;
    handles.reserve(units.size());
    for (const SourceUnit& unit : units) {
      try {
        handles.push_back(loadSource(unit.kind, unit.text, unit.functionName));
      } catch (const McError&) {
        handles.push_back(nullptr);
      }
    }
    return handles;
  }

  /// Ahead-of-time preparation for the campaign's pipelined compile stage:
  /// maps source units to equivalent units that loadSource() can consume
  /// more cheaply. The native backend batch-compiles the units with one
  /// compiler invocation and returns "so" units pointing at the shared
  /// object, so pinned measurement workers only pay a dlopen. Must be safe
  /// to call concurrently with invoke()/loadSource() on the same backend.
  /// The default (and the simulator's) preparation is the identity — loads
  /// are already cheap. A unit that cannot be prepared comes back
  /// unchanged: the measuring worker's own loadSource() surfaces the
  /// diagnostic, keeping error reporting identical to the unpipelined path.
  virtual std::vector<SourceUnit> prepareBatch(std::vector<SourceUnit> units) {
    return units;
  }

  /// One timed kernel call.
  virtual InvokeResult invoke(KernelHandle& kernel,
                              const KernelRequest& request) = 0;

  /// Timer read-read overhead to subtract (Figure 10's "overhead
  /// calculation removes the function call cost").
  virtual double timerOverheadCycles() const = 0;

  /// Fork mode (§4.6): `processes` copies of the kernel, each pinned to its
  /// own core per `policy`, synchronized, then run `calls` times
  /// back-to-back. Returns one aggregate per process.
  virtual std::vector<InvokeResult> invokeFork(KernelHandle& kernel,
                                               const KernelRequest& request,
                                               int processes, int calls,
                                               PinPolicy policy) = 0;

  /// OpenMP mode (§5.2.3): `repetitions` parallel-for regions over the trip
  /// count with `threads` threads; returns the aggregate region timing.
  virtual InvokeResult invokeOpenMp(KernelHandle& kernel,
                                    const KernelRequest& request, int threads,
                                    int repetitions) = 0;

  /// Returns the backend to a cold-machine state where the backend can (a
  /// no-op natively). Contract: after reset() the backend must reproduce
  /// cold-machine numbers bit-identically — every form of warm state,
  /// including caches, advancing clocks and any memoized invoke results,
  /// must be dropped or invalidated. The campaign runner resets before
  /// every variant and relies on results being independent of what a worker
  /// ran previously.
  virtual void reset() {}
};

}  // namespace microtools::launcher
