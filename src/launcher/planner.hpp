#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "launcher/campaign.hpp"

namespace microtools::launcher {

// ---------------------------------------------------------------------------
// Search-driven exploration planner (successive halving)
// ---------------------------------------------------------------------------
//
// The paper's pipeline measures every generated variant at full fidelity.
// For interactive best-variant queries that is wasteful: most variants are
// clearly slower after a handful of repetitions. The planner screens the
// whole space with a cheap low-repetition pass, then repeatedly keeps the
// best half (by median cycles/iteration, with a CV-aware tie guard so noise
// never eliminates a statistically indistinguishable variant) and
// re-measures the survivors at a doubled repetition budget, until the
// survivor set runs at the full baseline protocol. Each round is an
// ordinary campaign, so caching, verify pre-flight, perf counters and CSV
// streaming all compose unchanged; rows are tagged with their round in the
// campaign CSV's `round` column.

/// How `explore` (and campaign mode) walks the variant space.
enum class SearchMode {
  Full,     ///< exhaustive sweep: every variant at the baseline protocol
  Halving,  ///< successive halving: screen cheap, keep best half, repeat
};

/// Parses a --search value ("full"|"halving"); throws McError otherwise.
SearchMode searchModeFromName(const std::string& name);

/// A user-facing search budget: "none" (run to completion), a wall-clock
/// allowance in seconds, or a count of fresh variant measurements.
struct Budget {
  enum class Kind { None, Seconds, Variants };
  Kind kind = Kind::None;
  double seconds = 0.0;       ///< Kind::Seconds
  long long variants = 0;     ///< Kind::Variants — fresh measurements only
};

/// Parses a --budget value: "<number>s" (e.g. "30s", "2.5s") is a
/// wall-clock budget in seconds; a plain positive integer (e.g. "16") is a
/// budget of fresh variant measurements (cache hits and resumed rows are
/// free — a warm rerun is never truncated). Empty string = no budget.
/// Throws McError on anything else.
Budget parseBudget(const std::string& text);

/// Planner knobs, layered on top of the baseline CampaignOptions.
struct PlannerOptions {
  /// Outer repetitions (and repetition budget) of the round-0 screening
  /// pass. 1 is enough on low-noise backends; raise it when screening
  /// medians are too noisy to halve on.
  int screenRepetitions = 1;

  /// CV tie guard: a variant just past the elimination cut survives when
  /// its median is within `tieCvMultiplier` combined standard errors of the
  /// last kept variant's median (stats::withinNoise). Never eliminates on
  /// an undefined (NaN) CV.
  double tieCvMultiplier = 3.0;

  Budget budget;  ///< stop-with-best-so-far contract (see Budget)

  /// Static cost-model hooks (optional; `explore --no-predict` leaves them
  /// empty). `predictedCpi` returns the port-level cycles/iteration lower
  /// bound of a variant (NaN when the analyzer cannot bound it); when set,
  /// the round-0 screening pass measures variants in ascending predicted
  /// order, so a variant budget truncates the *predicted-slow* tail instead
  /// of an arbitrary suffix. Later rounds keep measured rank order.
  std::function<double(const CampaignVariant&)> predictedCpi;

  /// Returns true when the μOpTime-style stability analysis proves a
  /// variant's measurement distribution is tight (regular single-block
  /// loop, L1-resident footprint, no loop-carried load dependence). Stable
  /// variants screen with `stableScreenRepetitions` outer reps in round 0
  /// instead of `screenRepetitions` — their median does not move, so the
  /// extra repetitions are pure waste. Unstable variants are untouched, and
  /// every round past screening runs the full schedule regardless.
  std::function<bool(const CampaignVariant&)> stable;

  /// Round-0 repetition cap for provably-stable variants (see `stable`).
  /// Only applies when it is an actual reduction over screenRepetitions.
  int stableScreenRepetitions = 1;

  /// Path of a previously interrupted halving CSV. Rows already terminal
  /// for a round are not re-measured: the campaign skips them and the
  /// planner backfills their metrics from the CSV so ranking still works.
  std::string resumeCsv;
};

/// Per-round accounting, reported back to the CLI and bench.
struct RoundSummary {
  int round = 0;
  int outerRepetitions = 0;  ///< protocol outer reps this round ran with
  int maxRepetitions = 0;    ///< adaptive repetition budget this round
  std::size_t scheduled = 0; ///< variants this round measured (or resolved)
  std::size_t measured = 0;  ///< fresh backend measurements
  std::size_t cacheHits = 0;
  std::size_t resumed = 0;   ///< rows backfilled from the resumed CSV
  std::size_t failures = 0;  ///< status error/timeout
  long long workRepetitions = 0;  ///< executed outer reps, fresh rows only
  bool finalRound = false;   ///< ran the untouched baseline protocol
  bool truncated = false;    ///< variant budget cut this round short
};

/// Outcome of a successive-halving run.
struct PlannerResult {
  /// Rows of the last completed round — the winner set at the highest
  /// fidelity reached (full baseline when stopReason == "complete", the
  /// best-so-far screening/refinement rows when the budget ran out).
  std::vector<VariantResult> results;
  std::vector<RoundSummary> rounds;
  bool budgetExhausted = false;
  std::string stopReason;  ///< "complete" | "budget exhausted (time)" |
                           ///< "budget exhausted (variants)" |
                           ///< "all variants failed"
  int finalRound = -1;     ///< round index that ran the baseline protocol
  std::size_t fullFidelityVariants = 0;  ///< variants in that final round
  long long workRepetitions = 0;  ///< total fresh outer reps, all rounds
  std::size_t measured = 0;       ///< total fresh measurements
  std::size_t cacheHits = 0;
  std::size_t resumed = 0;
  std::size_t failures = 0;
};

/// Installs measurement-cache hooks on one round's CampaignOptions. The
/// planner rebuilds the hooks every round because cacheKey() hashes the
/// round's protocol: screening entries and full-fidelity entries must never
/// serve each other, while the final round's keys are identical to an
/// exhaustive sweep's (warm interop both ways).
using CacheBinder = std::function<void(CampaignOptions& roundOptions)>;

/// The intermediate adaptive-repetition budgets of a halving schedule:
/// screenRepetitions, doubling, strictly below fullOuter (the final round
/// runs the untouched baseline options instead). Empty when screening
/// already meets the baseline. Exposed for tests.
std::vector<int> halvingBudgets(int screenRepetitions, int fullOuter);

/// Ranks one round's rows by median cycles/iteration (NaN-last, mean then
/// name as tie-breaks; non-ok rows never rank) and returns the indices of
/// the survivors in rank order: the best half (at least one), extended past
/// the cut by the CV tie guard. Empty when no row ranked (all failed).
/// Exposed for tests.
std::vector<std::size_t> selectSurvivors(
    const std::vector<VariantResult>& rows, double tieCvMultiplier);

/// Reads the terminal rows of one round from a halving campaign CSV,
/// keyed by variant name, with the ranking metrics (median/mean/min/max,
/// CV, repetitions, convergence, cache provenance) reconstructed — what
/// resume uses to rank rows it did not re-measure. Exposed for tests.
std::map<std::string, VariantResult> readRoundResults(
    const std::string& csvPath, int round);

/// Runs the successive-halving loop over `variants`. Each round drives an
/// ordinary CampaignRunner built from `base` with the round's protocol
/// (outer = min(base outer, budget), maxRepetitions = budget) and round
/// tag; the final round runs `base` untouched. `bindCache` (optional)
/// installs per-round cache hooks; `sink` (optional) receives every row of
/// every round, tagged via the `round` CSV column.
PlannerResult runSuccessiveHalving(const std::vector<CampaignVariant>& variants,
                                   const KernelRequest& request,
                                   const BackendFactory& factory,
                                   const CampaignOptions& base,
                                   const PlannerOptions& planner,
                                   const CacheBinder& bindCache = nullptr,
                                   CampaignCsvSink* sink = nullptr);

}  // namespace microtools::launcher
