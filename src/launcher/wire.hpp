#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "launcher/campaign.hpp"
#include "support/socket.hpp"

namespace microtools::launcher::wire {

/// Wire protocol version: bumped whenever a message, field, or the result
/// encoding changes incompatibly. A daemon refuses clients speaking any
/// other version during the hello handshake.
constexpr int kVersion = 1;

/// Hard ceiling on one frame's payload. A length prefix above this is a
/// protocol violation (or garbage traffic), not a large message: the
/// receiver drops the connection instead of allocating attacker-sized
/// buffers. Generated kernels are a few KiB; 16 MiB is ~3 orders of margin.
constexpr std::uint32_t kMaxFramePayload = 16u * 1024 * 1024;

/// One protocol message: a verb plus a flat field map. On the wire this is
/// a length-prefixed text payload —
///
///   <u32 big-endian payload length>
///   <verb>\n
///   <field> <value-escaped>\n
///   ...
///
/// Verbs and field names contain no whitespace; values are escaped (\n, \r,
/// \\) so multi-line values (serialized results, error messages) stay one
/// line per field. The first space separates name from value.
struct Message {
  std::string verb;
  std::map<std::string, std::string> fields;

  bool has(const std::string& name) const { return fields.count(name) > 0; }
  std::string get(const std::string& name) const;
  std::int64_t getInt(const std::string& name) const;
};

/// Serializes a message to its frame payload (without the length prefix).
std::string encodeMessage(const Message& message);

/// Parses a frame payload; throws McError on a malformed payload.
Message decodeMessage(const std::string& payload);

/// Sends one framed message.
void sendMessage(net::Socket& socket, const Message& message);

/// Receives one framed message; nullopt on clean EOF at a frame boundary.
/// Throws on torn frames, oversized length prefixes, or malformed payloads.
std::optional<Message> recvMessage(net::Socket& socket);

/// Full-fidelity VariantResult codec, used inside message fields. Unlike
/// MeasurementCache::serialize this carries EVERY field — sequence, round,
/// cached, verify, non-ok statuses — because the daemon merges complete
/// campaign rows, not just cacheable measurements. Doubles round-trip
/// exactly (%.17g), so a merged row is byte-identical to the worker's own
/// CSV row.
std::string encodeResult(const VariantResult& result);
VariantResult decodeResult(const std::string& text);  ///< throws McError

}  // namespace microtools::launcher::wire
