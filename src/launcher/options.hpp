#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "launcher/backend.hpp"
#include "launcher/protocol.hpp"
#include "support/cli.hpp"

namespace microtools::launcher {

/// Execution mode of the microlauncher tool.
enum class LaunchMode {
  Single,
  AlignmentSweep,
  Fork,
  OpenMp,
  Standalone,
  Campaign
};

/// The launcher's full option surface (§4.2: "more than thirty options in
/// the MicroLauncher tool for behavior tweaking").
struct LauncherOptions {
  // -- input -----------------------------------------------------------------
  std::string inputFile;             ///< assembly/C/shared-object kernel
  std::string inputKind = "auto";    ///< auto|asm|c|so|exec (§4.1)
  std::string function = "microkernel";  ///< kernel entry point
  std::string standaloneProgram;     ///< fork-and-time a whole program

  // -- arrays (--nbvectors & friends, §4.4) -----------------------------------
  int nbVectors = 1;
  std::uint64_t arrayBytes = 1 << 20;
  std::vector<std::uint64_t> arrayBytesPerVector;  ///< overrides per array
  std::uint64_t alignment = 4096;
  std::uint64_t alignOffset = 0;
  std::uint64_t elementBytes = 4;  ///< element size (4 = float, 8 = double)

  // -- alignment sweep ---------------------------------------------------------
  bool sweepAlignment = false;
  std::uint64_t alignMin = 0;
  std::uint64_t alignMax = 4096;
  std::uint64_t alignStep = 64;
  std::uint64_t maxAlignConfigs = 2500;

  // -- protocol ---------------------------------------------------------------
  std::optional<int> tripCount;  ///< kernel n; default from array size
  int innerRepetitions = 8;
  int outerRepetitions = 10;
  bool noWarmup = false;
  bool noOverheadSubtraction = false;
  bool reportFullKernelTime = false;  ///< §4.3 "full kernel execution" option

  // -- placement ----------------------------------------------------------------
  int pinCore = 0;
  int processes = 1;            ///< fork mode core count (§4.6)
  std::string pinPolicy = "scatter";  ///< scatter|compact
  int forkCalls = 4;

  // -- OpenMP -------------------------------------------------------------------
  bool useOpenMp = false;
  int threads = 4;
  int ompRepetitions = 10;

  // -- campaign mode ------------------------------------------------------------
  std::string campaignDir;     ///< directory of .s/.c variants; "" = off
  int jobs = 1;                ///< campaign worker threads
  double maxCv = 0.05;         ///< adaptive repetition CV target
  int maxRepetitions = 40;     ///< total outer-repetition budget per variant
  int variantTimeoutMs = 0;    ///< per-variant wall-clock budget (0 = none)
  int compileJobs = 0;         ///< compile-pipeline producer threads (0 = off)
  int compileBatch = 8;        ///< variants per batched compiler invocation
  std::string compileCacheDir; ///< persistent .so cache ("" = no cache)
  std::string verifyMode = "strict";  ///< pre-flight check: off|warn|strict
  std::string searchMode = "full";    ///< variant walk: full|halving
  std::string budget;          ///< halving budget: "<seconds>s" or variants
  int screenRepetitions = 1;   ///< halving round-0 screening outer reps
  int stableScreenRepetitions = 1;  ///< screening reps for provably-stable
                                    ///< variants (--stable-screen-reps)
  bool predict = true;         ///< static cost-model annotation/ordering
  std::string connectAddr;     ///< serve daemon address ("" = standalone)
  std::string workerName;      ///< telemetry name at the daemon ("": pid)

  // -- backend / machine ---------------------------------------------------------
  std::string backend = "sim";   ///< sim|native
  bool perfCounters = true;  ///< perf_event counter groups (native backend)
  std::string arch = "nehalem_x5650_2s";
  std::optional<double> coreGHz;  ///< DVFS override (Figure 13)
  std::uint64_t seed = 1;

  // -- output -------------------------------------------------------------------
  std::string csvOutput;  ///< path; empty = stdout
  bool verbose = false;
  bool listArch = false;

  /// Derives the trip count: explicit --n, else elements that fit the first
  /// array at --element-bytes per element (default 4, the movss convention;
  /// 8 for double-precision kernels).
  int effectiveTripCount() const;

  /// Builds the KernelRequest implied by these options.
  KernelRequest toRequest() const;

  /// Protocol options implied by these options.
  ProtocolOptions toProtocol() const;
};

/// Registers every option on a CLI parser (also serves as the --help page).
cli::Parser makeLauncherParser();

/// Extracts LauncherOptions from a parsed command line; throws ParseError
/// on invalid combinations.
LauncherOptions optionsFromParser(const cli::Parser& parser);

}  // namespace microtools::launcher
