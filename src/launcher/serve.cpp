#include "launcher/serve.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "launcher/campaign.hpp"
#include "launcher/explore.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace microtools::launcher {

namespace fs = std::filesystem;

namespace {

wire::Message okMessage() {
  wire::Message m;
  m.verb = "ok";
  return m;
}

wire::Message errorMessage(const std::string& text) {
  wire::Message m;
  m.verb = "error";
  m.fields["message"] = text;
  return m;
}

wire::Message hitMessage(const VariantResult& result) {
  wire::Message m;
  m.verb = "hit";
  m.fields["result"] = wire::encodeResult(result);
  return m;
}

}  // namespace

ServeServer::ServeServer(ServeOptions options) : options_(std::move(options)) {
  if (options_.leaseDeadlineMs < 1) {
    throw McError("serve requires --lease-deadline-ms >= 1");
  }
  if (options_.maxLeasesPerWorker < 0) {
    throw McError("serve requires --max-leases >= 0");
  }
}

ServeServer::~ServeServer() {
  requestStop();
  wait();
}

void ServeServer::start() {
  cache_ = std::make_unique<MeasurementCache>(options_.cacheDir);
  listener_ = net::Listener(options_.listen);
  boundAddress_ = listener_.boundSpec();
  acceptThread_ = std::thread(&ServeServer::acceptLoop, this);
}

void ServeServer::acceptLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    net::Socket socket;
    try {
      socket = listener_.accept(200);
    } catch (const McError&) {
      return;  // listener closed by requestStop
    }
    if (!socket.valid()) continue;
    std::lock_guard<std::mutex> lock(threadsMutex_);
    int connId = nextConnId_++;
    auto owned = std::make_unique<net::Socket>(std::move(socket));
    net::Socket* raw = owned.get();
    sockets_.emplace(connId, std::move(owned));
    connectionThreads_.emplace_back(&ServeServer::serveConnection, this,
                                    connId, raw);
  }
}

void ServeServer::serveConnection(int connId, net::Socket* socket) {
  try {
    handleConnection(connId, socket);
  } catch (const McError& e) {
    // Torn frame, oversized length prefix, or a peer that vanished
    // mid-message: drop the connection. Its leases are re-issued below.
    log::info("serve connection " + std::to_string(connId) +
              " dropped: " + e.message());
  }
  // The peer must observe EOF once this thread is done with the socket
  // (every exit path, including a rejected handshake, funnels through
  // here); the fd itself stays owned by sockets_ until wait() reaps it.
  socket->shutdown();
  std::lock_guard<std::mutex> lock(mutex_);
  releaseConnectionLeases(connId);
  connections_.erase(connId);
}

void ServeServer::handleConnection(int connId, net::Socket* socket) {
  // Handshake: the first frame must be a matching-version hello. Anything
  // else gets one error frame, then the connection closes — a client from
  // another protocol version must fail loudly, not mysteriously.
  std::optional<wire::Message> hello = wire::recvMessage(*socket);
  if (!hello) return;
  if (hello->verb != "hello" ||
      hello->getInt("version") != wire::kVersion) {
    wire::sendMessage(
        *socket,
        errorMessage(strings::format(
            "wire version mismatch: daemon speaks %d", wire::kVersion)));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ConnInfo info;
    info.worker = hello->has("worker") ? hello->get("worker")
                                       : "conn" + std::to_string(connId);
    info.jobs = hello->has("jobs")
                    ? std::max(1, static_cast<int>(hello->getInt("jobs")))
                    : 1;
    summary_.workers[info.worker];  // appears in telemetry even if idle
    connections_[connId] = std::move(info);
  }
  wire::Message welcome;
  welcome.verb = "welcome";
  welcome.fields["version"] = std::to_string(wire::kVersion);
  wire::sendMessage(*socket, welcome);

  for (;;) {
    std::optional<wire::Message> request = wire::recvMessage(*socket);
    if (!request) return;  // clean disconnect
    wire::sendMessage(*socket, dispatch(connId, *request));
  }
}

wire::Message ServeServer::dispatch(int connId,
                                    const wire::Message& request) {
  try {
    std::lock_guard<std::mutex> lock(mutex_);
    ConnInfo& info = connections_[connId];
    WorkerTelemetry& worker = summary_.workers[info.worker];

    if (request.verb == "probe") {
      std::optional<VariantResult> hit = cache_->load(request.get("key"));
      if (!hit) {
        ++worker.misses;
        wire::Message m;
        m.verb = "miss";
        return m;
      }
      ++worker.hits;
      return hitMessage(*hit);
    }

    if (request.verb == "begin") {
      std::string id = request.get("campaign");
      auto expected = request.getInt("variants");
      if (expected <= 0) return errorMessage("begin requires variants > 0");
      CampaignState& c = campaigns_[id];
      if (c.finalized) c = CampaignState{};  // warm rerun: fresh merge
      if (c.expected == 0) {
        c.expected = static_cast<std::size_t>(expected);
      } else if (c.expected != static_cast<std::size_t>(expected)) {
        return errorMessage(strings::format(
            "campaign variant count mismatch: daemon has %zu, worker "
            "announced %lld — workers must shard identical campaigns",
            c.expected, static_cast<long long>(expected)));
      }
      // The joining order doubles as a shard ordinal: clients stagger
      // their traversal start with it so fleet members lease disjoint
      // stretches instead of colliding on the same keys in lockstep.
      wire::Message m = okMessage();
      m.fields["ordinal"] = std::to_string(c.beginCount++);
      return m;
    }

    if (request.verb == "acquire") {
      auto cIt = campaigns_.find(request.get("campaign"));
      if (cIt == campaigns_.end()) {
        return errorMessage("unknown campaign: begin before acquire");
      }
      CampaignState& c = cIt->second;
      const std::string key = request.get("key");
      ++summary_.acquires;

      // Cache-first: warm variants never consume a lease or a backend.
      if (std::optional<VariantResult> hit = cache_->load(key)) {
        ++summary_.hits;
        ++worker.hits;
        return hitMessage(*hit);
      }
      // A failure another worker of this cohort already measured is
      // terminal too: re-measuring it here would diverge from the
      // single-process run, which measures each variant exactly once.
      if (auto f = c.failResults.find(key); f != c.failResults.end()) {
        ++summary_.hits;
        ++worker.hits;
        return hitMessage(f->second);
      }

      auto lIt = leases_.find(key);
      if (lIt != leases_.end() &&
          std::chrono::steady_clock::now() >= lIt->second.deadline) {
        // Missed ack deadline: the worker is presumed dead; free the lease
        // so the requester (or anyone else) re-measures the slice.
        auto owner = connections_.find(lIt->second.connId);
        if (owner != connections_.end()) --owner->second.outstandingLeases;
        leases_.erase(lIt);
        lIt = leases_.end();
      }
      if (lIt != leases_.end()) {
        wire::Message m;
        m.verb = "wait";  // a live peer is measuring this key
        m.fields["retry_ms"] = "20";
        return m;
      }
      if (stopping_) {
        return errorMessage("daemon is draining: no new leases");
      }
      int cap = options_.maxLeasesPerWorker > 0 ? options_.maxLeasesPerWorker
                                                : std::max(2, info.jobs * 2);
      if (info.outstandingLeases >= cap) {
        wire::Message m;
        m.verb = "defer";  // backpressure: let this worker's pool drain
        m.fields["retry_ms"] = "10";
        return m;
      }
      Lease lease;
      lease.id = nextLeaseId_++;
      lease.connId = connId;
      lease.worker = info.worker;
      lease.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.leaseDeadlineMs);
      leases_[key] = lease;
      ++info.outstandingLeases;
      ++summary_.leases;
      ++worker.misses;
      if (!c.leasedKeys.insert(key).second) ++summary_.reissues;
      wire::Message m;
      m.verb = "lease";
      m.fields["lease"] = std::to_string(lease.id);
      m.fields["deadline_ms"] = std::to_string(options_.leaseDeadlineMs);
      return m;
    }

    if (request.verb == "store") {
      VariantResult result = wire::decodeResult(request.get("result"));
      cache_->store(request.get("key"), result);
      if (request.has("lease")) {
        releaseLease(request.get("key"), request.get("lease"), connId);
      }
      return okMessage();
    }

    if (request.verb == "row") {
      auto cIt = campaigns_.find(request.get("campaign"));
      if (cIt == campaigns_.end()) {
        return errorMessage("unknown campaign: begin before row");
      }
      CampaignState& c = cIt->second;
      const std::string key = request.get("key");
      VariantResult row = wire::decodeResult(request.get("result"));
      RowId id{row.round, row.sequence, row.name};
      auto [it, inserted] = c.rows.emplace(id, MergedRow{key, row});
      if (!inserted && it->second.row.cached && !row.cached) {
        // The measurer's fresh row beats a peer's cache-hit copy of it.
        it->second = MergedRow{key, row};
      }
      ++summary_.rowsMerged;
      ++worker.rows;
      if (row.status != "ok" && row.status != "skipped" && !row.cached) {
        c.failResults.emplace(key, row);
      }
      if (request.has("lease")) releaseLease(key, request.get("lease"),
                                             connId);
      if (!c.finalized && c.expected > 0 && c.rows.size() >= c.expected) {
        finalizeCampaign(cIt->first, c);
      }
      return okMessage();
    }

    if (request.verb == "stats") {
      wire::Message m;
      m.verb = "stats";
      m.fields["acquires"] = std::to_string(summary_.acquires);
      m.fields["hits"] = std::to_string(summary_.hits);
      m.fields["leases"] = std::to_string(summary_.leases);
      m.fields["reissues"] = std::to_string(summary_.reissues);
      m.fields["rows"] = std::to_string(summary_.rowsMerged);
      m.fields["campaigns_finalized"] =
          std::to_string(summary_.campaignsFinalized);
      m.fields["active_leases"] = std::to_string(leases_.size());
      return m;
    }

    return errorMessage("unknown verb '" + request.verb + "'");
  } catch (const McError& e) {
    // A malformed field in an otherwise well-framed message answers with an
    // error instead of killing the connection.
    return errorMessage(e.message());
  }
}

void ServeServer::releaseLease(const std::string& key,
                               const std::string& leaseId, int connId) {
  auto it = leases_.find(key);
  if (it == leases_.end()) return;  // expired and re-issued: first-wins
  if (std::to_string(it->second.id) != leaseId) return;  // stale publisher
  auto owner = connections_.find(it->second.connId);
  if (owner != connections_.end()) --owner->second.outstandingLeases;
  (void)connId;
  leases_.erase(it);
}

void ServeServer::releaseConnectionLeases(int connId) {
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.connId == connId) {
      it = leases_.erase(it);  // key stays in leasedKeys -> regrant counts
                               // as a re-issue
    } else {
      ++it;
    }
  }
}

void ServeServer::finalizeCampaign(const std::string& id,
                                   CampaignState& campaign) {
  campaign.finalized = true;
  ++summary_.campaignsFinalized;

  // Canonical rows in (round, sequence, name) order, with the cached flag
  // normalized to single-process batch semantics: a key measured fresh this
  // campaign (leased) is a miss for every row it produced, whichever worker
  // happened to measure it; everything else kept its hit/skip flag.
  std::vector<VariantResult> rows;
  rows.reserve(campaign.rows.size());
  for (const auto& [rowId, merged] : campaign.rows) {
    VariantResult r = merged.row;
    if (campaign.leasedKeys.count(merged.key)) r.cached = false;
    rows.push_back(std::move(r));
  }

  if (!options_.csvPath.empty()) {
    std::error_code ec;
    fs::remove(options_.csvPath, ec);  // canonical rewrite, not an append
    CampaignCsvSink sink(options_.csvPath, "# serve.campaign=" + id + "\n");
    for (const VariantResult& r : rows) sink.append(r);
  }
  if (!options_.reportPath.empty()) {
    csv::Table report = topKReport(rows, options_.topK);
    std::ofstream out(options_.reportPath,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      log::error("serve: cannot write report file: " + options_.reportPath);
    } else {
      report.write(out);
    }
  }
  log::info(strings::format("serve: campaign %s finalized (%zu row(s))",
                            id.c_str(), rows.size()));
}

void ServeServer::finalizeRemaining() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, campaign] : campaigns_) {
    if (campaign.finalized || campaign.rows.empty()) continue;
    log::warn(strings::format(
        "serve: campaign %s stopped incomplete (%zu of %zu row(s))",
        id.c_str(), campaign.rows.size(), campaign.expected));
    finalizeCampaign(id, campaign);
  }
}

void ServeServer::requestStop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  listener_.close();  // wakes the accept poll
}

void ServeServer::wait() {
  {
    std::lock_guard<std::mutex> lock(threadsMutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (acceptThread_.joinable()) acceptThread_.join();

  // Drain: give in-flight leases a bounded chance to be acked (store/row)
  // over the still-open connections before those are cut.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.drainTimeoutMs);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (leases_.empty()) break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      log::warn("serve: drain timeout: cutting connections with leases "
                "outstanding");
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  {
    std::lock_guard<std::mutex> lock(threadsMutex_);
    for (auto& [connId, socket] : sockets_) socket->shutdown();
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threadsMutex_);
    threads.swap(connectionThreads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  finalizeRemaining();
  {
    std::lock_guard<std::mutex> lock(threadsMutex_);
    sockets_.clear();
  }
}

ServeSummary ServeServer::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeSummary s = summary_;
  if (cache_) s.cache = cache_->telemetry();
  return s;
}

// ---------------------------------------------------------------------------
// CLI entry
// ---------------------------------------------------------------------------

namespace {

volatile std::sig_atomic_t gStopSignal = 0;

void onStopSignal(int) { gStopSignal = 1; }

}  // namespace

int serveMain(const ServeOptions& options) {
  ServeServer server(options);
  server.start();
  std::printf("serve: listening on %s (cache: %s)\n",
              server.boundAddress().c_str(), options.cacheDir.c_str());
  std::fflush(stdout);  // scripts wait for this line before launching workers

  struct sigaction sa{};
  sa.sa_handler = onStopSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  while (!gStopSignal) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("serve: draining...\n");
  std::fflush(stdout);
  server.requestStop();
  server.wait();

  ServeSummary s = server.summary();
  std::printf(
      "serve: drained; %llu campaign(s) finalized, %llu acquire(s): "
      "%llu hit(s), %llu lease(s), %llu reissue(s), %llu row(s) merged\n",
      static_cast<unsigned long long>(s.campaignsFinalized),
      static_cast<unsigned long long>(s.acquires),
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.leases),
      static_cast<unsigned long long>(s.reissues),
      static_cast<unsigned long long>(s.rowsMerged));
  std::printf("serve: cache: %llu hit(s), %llu miss(es), %llu corrupt, "
              "%llu record file read(s)\n",
              static_cast<unsigned long long>(s.cache.hits),
              static_cast<unsigned long long>(s.cache.misses),
              static_cast<unsigned long long>(s.cache.corrupt),
              static_cast<unsigned long long>(s.cache.recordFileReads));
  for (const auto& [name, w] : s.workers) {
    std::printf("serve: worker %s: %llu hit(s), %llu miss(es), "
                "%llu row(s)\n",
                name.c_str(), static_cast<unsigned long long>(w.hits),
                static_cast<unsigned long long>(w.misses),
                static_cast<unsigned long long>(w.rows));
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace microtools::launcher
