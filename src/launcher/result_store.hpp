#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "launcher/campaign.hpp"

namespace microtools::launcher {

/// Cache access counters. `corrupt` counts records that were present but
/// failed to decode (bad magic, version mismatch, mislabeled key, truncated
/// fields) — before telemetry existed these were silently recompiled.
/// `recordFileReads` counts individual record files opened; after open() a
/// healthy cache serves every load from the in-memory index, so a warm run
/// keeps this at zero.
struct CacheTelemetry {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t recordFileReads = 0;
};

/// Abstract store of variant measurement results keyed by content digests:
/// the seam between measurement and persistence. MeasurementCache is the
/// on-disk implementation; ROADMAP item 1's service mode will put a remote
/// implementation behind the same interface.
class ResultStore {
 public:
  virtual ~ResultStore() = default;

  /// Loads a result; nullopt on miss (absent/corrupt/mismatched).
  virtual std::optional<VariantResult> load(const std::string& key) = 0;

  /// Persists a result under `key`. Implementations only persist
  /// successful (status == "ok") results; anything else must be retried.
  virtual void store(const std::string& key, const VariantResult& result) = 0;
};

/// Persistent content-addressed store of VariantResults: one small text
/// file per key, sharded into two levels of key-prefix subdirectories
/// (`ab/cd/abcd....mtres`) so fleet-scale cache directories never
/// accumulate millions of siblings. Lookups of absent, corrupt,
/// version-mismatched, or mislabeled records are plain misses — a damaged
/// cache can only cost time, never poison a result.
///
/// Probes are O(1) against an in-memory index built once at open from a
/// single directory scan plus the `index.pack` journal (a framed append-only
/// copy of every record's contents). A scanned record whose pack entry is
/// missing or whose size disagrees with the file is re-read from the file
/// once and re-journaled; pack entries without a backing file are dropped
/// (the files stay authoritative). Flat records written by earlier versions
/// (`<key>.mtres` in the cache root) are migrated into their shard at open.
/// Records added by OTHER processes after open are not visible to this
/// instance — a staleness that can only cause re-measurement.
class MeasurementCache : public ResultStore {
 public:
  /// Bumped whenever the record format or key composition changes; files
  /// written by other versions are ignored.
  static constexpr int kFormatVersion = 1;

  /// Opens (creating if needed) the cache rooted at `dir`: migrates flat
  /// records, scans the shard tree, and builds the in-memory index.
  explicit MeasurementCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Path of the (sharded) record file backing `key`.
  std::string recordPath(const std::string& key) const;

  std::optional<VariantResult> load(const std::string& key) override;
  void store(const std::string& key, const VariantResult& result) override;

  /// Counters accumulated since open (index construction included).
  CacheTelemetry telemetry() const;

  /// Serialization used by the record files, exposed for tests.
  static std::string serialize(const std::string& key,
                               const VariantResult& result);
  static std::optional<VariantResult> deserialize(const std::string& key,
                                                  const std::string& text);

 private:
  void openIndex();
  void appendToPack(const std::string& key, const std::string& payload);

  std::string dir_;
  std::string packPath_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::string> index_;  ///< key -> record text
  CacheTelemetry telemetry_;
};

}  // namespace microtools::launcher
