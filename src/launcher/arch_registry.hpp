#pragma once

#include <string>
#include <vector>

#include "sim/arch.hpp"

namespace microtools::launcher {

/// One row of the paper's Table 1: a target architecture, its human
/// description, and the figures evaluated on it.
struct ArchEntry {
  sim::MachineConfig config;
  std::string description;
  std::vector<int> figures;
};

/// The architecture registry reproducing Table 1.
const std::vector<ArchEntry>& table1();

/// Entry lookup by registry name; throws McError when unknown.
const ArchEntry& archByName(const std::string& name);

}  // namespace microtools::launcher
