#include "launcher/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "verify/verify.hpp"

namespace microtools::launcher {

namespace fs = std::filesystem;

namespace {

/// One pipeline item: a variant whose source has been prepared (e.g. batch
/// compiled to an "so" unit by the native backend) and is ready to measure.
struct PreparedVariant {
  std::size_t index = 0;  ///< position in the campaign's variant vector
  SourceUnit unit;
};

/// Bounded MPMC queue between the compile producers and the measurement
/// workers. push() blocks while the queue is at capacity (bounding how far
/// compilation can run ahead); pop() blocks until an item arrives or every
/// producer has finished, then returns false.
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(std::max<std::size_t>(capacity, 1)) {}

  void push(PreparedVariant item) {
    std::unique_lock<std::mutex> lock(mutex_);
    notFull_.wait(lock, [this] { return items_.size() < capacity_; });
    items_.push_back(std::move(item));
    notEmpty_.notify_one();
  }

  bool pop(PreparedVariant& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    notFull_.notify_one();
    return true;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    notEmpty_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<PreparedVariant> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// Maps the campaign's launch geometry onto the verifier's context so the
/// MT-MEM bounds/alignment rules check exactly what the backends will
/// allocate (including the kArraySlackBytes page of slack).
verify::VerifyOptions verifyOptionsFor(const KernelRequest& request) {
  verify::VerifyOptions options;
  verify::LaunchContext context;
  context.tripCount = request.n;
  context.slackBytes = static_cast<std::size_t>(kArraySlackBytes);
  context.arrays.reserve(request.arrays.size());
  for (const ArraySpec& spec : request.arrays) {
    verify::ArrayExtent extent;
    extent.bytes = static_cast<std::size_t>(spec.bytes);
    extent.alignment = static_cast<std::size_t>(spec.alignment);
    extent.offset = static_cast<std::size_t>(spec.offset);
    context.arrays.push_back(extent);
  }
  options.arrayCount = static_cast<int>(request.arrays.size());
  options.context = std::move(context);
  return options;
}

}  // namespace

VerifyMode verifyModeFromName(const std::string& name) {
  if (name == "off") return VerifyMode::Off;
  if (name == "warn") return VerifyMode::Warn;
  if (name == "strict") return VerifyMode::Strict;
  throw McError("--verify must be off, warn, or strict (got '" + name + "')");
}

// ---------------------------------------------------------------------------
// CampaignCsvSink
// ---------------------------------------------------------------------------

CampaignCsvSink::CampaignCsvSink(const std::string& path,
                                 const std::string& preamble) {
  // Append-safe: an interrupted campaign can be rerun against the same file
  // and only the header is deduplicated. Before appending to an existing
  // file, two resume hazards are checked: a header from an older (or newer)
  // schema, and a last row torn mid-write by a crash.
  std::error_code ec;
  bool hasContent = fs::exists(path, ec) && fs::file_size(path, ec) > 0;
  bool existingHeader = false;
  bool missingFinalNewline = false;
  if (hasContent) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw McError("cannot read campaign CSV file: " + path);
    std::string line;
    while (std::getline(in, line)) {
      if (strings::startsWith(strings::trim(line), "#")) continue;  // preamble
      if (csv::parseLine(line) != CampaignRunner::csvHeader()) {
        throw McError("campaign CSV header of '" + path +
                      "' does not match the current schema; refusing to mix "
                      "schemas in one file (move the old file aside)");
      }
      existingHeader = true;
      break;
    }
    in.clear();
    in.seekg(-1, std::ios::end);
    char last = '\n';
    if (in.get(last) && last != '\n') missingFinalNewline = true;
  }
  auto file = std::make_unique<std::ofstream>(
      path, std::ios::binary | std::ios::app);
  if (!*file) throw McError("cannot open campaign CSV file: " + path);
  owned_ = std::move(file);
  os_ = owned_.get();
  headerWritten_ = existingHeader;
  if (missingFinalNewline) {
    // Repair a crash-truncated final row: terminate the torn line so the
    // next append starts fresh. The partial row itself stays (parsers skip
    // short rows), but nothing concatenates onto it.
    *os_ << '\n';
    os_->flush();
  }
  if (!hasContent && !preamble.empty()) {
    *os_ << preamble;
    os_->flush();
  }
}

CampaignCsvSink::CampaignCsvSink(std::ostream& os) : os_(&os) {}

CampaignCsvSink::~CampaignCsvSink() = default;

void CampaignCsvSink::writeLine(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += csv::quoteField(cells[i]);
  }
  line += '\n';
  *os_ << line;
  os_->flush();  // one flush per row: a crash loses at most the row in flight
}

void CampaignCsvSink::append(const VariantResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!headerWritten_) {
    writeLine(CampaignRunner::csvHeader());
    headerWritten_ = true;
  }
  writeLine(CampaignRunner::csvRow(result));
}

// ---------------------------------------------------------------------------
// CampaignRunner
// ---------------------------------------------------------------------------

CampaignRunner::CampaignRunner(BackendFactory factory, CampaignOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {
  if (!factory_) throw McError("campaign runner requires a backend factory");
  if (options_.jobs < 1) throw McError("campaign requires --jobs >= 1");
  if (options_.compileJobs < 0) {
    throw McError("campaign requires --compile-jobs >= 0");
  }
  if (options_.compileBatch < 1) {
    throw McError("campaign requires --compile-batch >= 1");
  }
}

VariantResult CampaignRunner::runOne(Backend& backend,
                                     const CampaignVariant& variant,
                                     std::size_t sequence,
                                     const KernelRequest& request) {
  VariantResult result;
  result.sequence = sequence;
  result.round = options_.round;
  result.name = variant.name;

  DeadlineCheck outOfTime;
  if (options_.variantTimeoutMs > 0) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.variantTimeoutMs);
    outOfTime = [deadline] {
      return std::chrono::steady_clock::now() > deadline;
    };
  }

  // Stability-directed screening: the override caps both the protocol's
  // outer repetitions and the adaptive budget for this variant. explore's
  // cacheKey() applies the same cap, so the entry is keyed by the protocol
  // that actually ran.
  ProtocolOptions protocol = options_.protocol;
  int maxRepetitions = options_.maxRepetitions;
  if (options_.repOverride) {
    int cap = options_.repOverride(variant);
    if (cap > 0) {
      protocol.outerRepetitions = std::min(protocol.outerRepetitions, cap);
      maxRepetitions = std::min(maxRepetitions, cap);
    }
  }

  AdaptivePolicy policy;
  policy.maxCv = options_.maxCv;
  policy.maxRepetitions = std::max(maxRepetitions, protocol.outerRepetitions);

  for (int attempt = 1; attempt <= 2; ++attempt) {
    result.attempts = attempt;
    try {
      backend.reset();  // every variant starts from post-construction state
      std::unique_ptr<KernelHandle> kernel =
          backend.loadSource(variant.kind, variant.source,
                             variant.functionName);
      AdaptiveMeasurement am = measureKernelAdaptive(
          backend, *kernel, request, protocol, policy, outOfTime);
      result.measurement = am.measurement;
      result.repetitions = am.repetitions;
      result.finalCv = am.measurement.cyclesPerIteration.cv;
      result.converged = am.converged;
      if (std::isnan(result.finalCv)) {
        // Zero-mean sample set (every sample clamped to 0 after overhead
        // subtraction): the CV is undefined, so this variant must never be
        // reported as converged, whatever the adaptive policy says.
        result.converged = false;
        result.note = "cv undefined: zero-mean samples";
      }
      result.status = "ok";
      result.error.clear();
      return result;
    } catch (const TimeoutError& e) {
      result.status = "timeout";
      result.error = e.message();
      return result;  // out of time: retrying would also time out
    } catch (const ExecutionError& e) {
      result.status = "error";
      result.error = e.message();
      // Transient execution failures get exactly one retry.
    } catch (const McError& e) {
      result.status = "error";
      result.error = e.message();
      return result;  // structural error: a retry cannot change the outcome
    }
  }
  return result;
}

bool CampaignRunner::resolveUpfront(const CampaignVariant& variant,
                                    std::size_t sequence,
                                    const verify::VerifyOptions& verifyOptions,
                                    VariantResult& r, CampaignCsvSink* sink) {
  r.sequence = sequence;
  r.round = options_.round;
  r.name = variant.name;
  if (options_.completed.count({sequence, variant.name})) {
    r.status = "skipped";
    r.note = "already completed in resumed CSV";
    return true;  // its row already exists in the file being resumed
  }
  // Static prediction annotates every row this run appends (strict skips,
  // cache hits, fresh measurements). Cache hits get theirs recomputed here
  // because predictions never enter the measurement cache.
  auto annotate = [&](VariantResult& row) {
    if (options_.predict) options_.predict(variant, row);
  };
  std::string verdict;
  if (options_.verify != VerifyMode::Off && variant.kind == "asm") {
    verify::VerifyReport report =
        verify::verifyAssembly(variant.source, verifyOptions);
    verdict = report.shortSummary();
    if (!report.ok()) {
      std::string detail;
      for (const verify::Diagnostic& d : report.diagnostics) {
        if (d.severity != verify::Severity::Error) continue;
        if (!detail.empty()) detail += "; ";
        detail += "[" + d.rule + "] " + d.message;
      }
      if (options_.verify == VerifyMode::Strict) {
        r.status = "skipped";
        r.verify = verdict;
        r.error = "static verification failed: " + detail;
        r.note = "skipped by --verify=strict";
        annotate(r);
        log::warn("variant '" + r.name + "' skipped by verification: " +
                  verdict);
        if (options_.rowObserver) options_.rowObserver(variant, r);
        if (sink) sink->append(r);
        return true;  // never compiled, loaded, or measured
      }
      log::warn("variant '" + r.name + "' failed verification (" + verdict +
                "); measuring anyway (--verify=warn)");
    }
  }
  if (options_.cacheLookup && options_.cacheLookup(variant, r)) {
    r.sequence = sequence;
    r.round = options_.round;
    r.name = variant.name;
    r.cached = true;
    r.verify = verdict;
    annotate(r);
    if (options_.rowObserver) options_.rowObserver(variant, r);
    if (sink) sink->append(r);
    return true;
  }
  r = VariantResult{};  // a miss may have partially filled the result
  r.sequence = sequence;
  r.round = options_.round;
  r.name = variant.name;
  r.verify = std::move(verdict);
  annotate(r);
  return false;
}

std::vector<VariantResult> CampaignRunner::run(
    const std::vector<CampaignVariant>& variants,
    const KernelRequest& request, CampaignCsvSink* sink) {
  std::vector<VariantResult> results(variants.size());
  if (variants.empty()) return results;

  // Pre-flight verification runs before the cache probe: a variant the
  // strict gate rejects must never be measured, even from cache, and its
  // verdict must reach the CSV.
  verify::VerifyOptions verifyOptions;
  if (options_.verify != VerifyMode::Off) {
    verifyOptions = verifyOptionsFor(request);
  }

  // Resolve resume skips, verification skips and cache hits up front: when
  // everything is already known, no backend is ever constructed — a fully
  // cached rerun performs zero backend invocations.
  std::vector<std::size_t> pending;
  pending.reserve(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    if (!resolveUpfront(variants[i], i, verifyOptions, results[i], sink)) {
      pending.push_back(i);
    }
  }
  if (pending.empty()) return results;

  int jobs = std::min<int>(options_.jobs, static_cast<int>(pending.size()));
  std::vector<std::unique_ptr<Backend>> backends;
  backends.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    std::unique_ptr<Backend> backend = factory_(w);
    if (!backend) throw McError("backend factory returned null");
    backends.push_back(std::move(backend));
  }

  // Measures variant `i` (whose source may have been rewritten by a compile
  // producer) on the given worker's backend. The cache is always written
  // with the ORIGINAL variant: a prepared "so" unit is a process-local
  // artifact and must never leak into the content-addressed cache key.
  std::vector<char> measured(variants.size(), 0);

  auto measureTask = [this, &variants, &results, &backends, &request, sink,
                      &measured](int worker, std::size_t i,
                                 const CampaignVariant& prepared) {
    KernelRequest workerRequest = request;
    if (options_.pinWorkers) workerRequest.core = worker;
    // Pre-flight annotations (verify verdict, static prediction) were
    // resolved upfront on the campaign thread; carry them across runOne's
    // fresh result.
    std::string verdict = std::move(results[i].verify);
    double predCpiLo = results[i].predCpiLo;
    std::string predBound = std::move(results[i].predBound);
    results[i] = runOne(*backends[static_cast<std::size_t>(worker)], prepared,
                        i, workerRequest);
    results[i].verify = std::move(verdict);
    results[i].predCpiLo = predCpiLo;
    results[i].predBound = std::move(predBound);
    measured[i] = 1;
    if (results[i].status == "ok" && options_.cacheStore) {
      options_.cacheStore(variants[i], results[i]);
    }
    // The observer, like the cache, always sees the ORIGINAL variant — a
    // prepared "so" unit is a process-local artifact.
    if (options_.rowObserver) options_.rowObserver(variants[i], results[i]);
    if (sink) sink->append(results[i]);
  };

  threads::ThreadPool pool(jobs);

  if (options_.compileJobs <= 0) {
    for (std::size_t i : pending) {
      pool.submit([&measureTask, &variants, i](int worker) {
        measureTask(worker, i, variants[i]);
      });
    }
    pool.wait();
    return results;
  }

  // Pipelined path: compile producers run prepareBatch() on groups of
  // variants and stream the prepared units — individually, for worker load
  // balance — through a bounded queue into the measurement pool. A variant
  // whose preparation failed arrives unchanged and fails (with the real
  // diagnostic) in the measurement worker's own loadSource, exactly like
  // the unpipelined path.
  std::size_t batchSize = static_cast<std::size_t>(options_.compileBatch);
  std::size_t batches = (pending.size() + batchSize - 1) / batchSize;
  int compileJobs =
      std::min<int>(options_.compileJobs, static_cast<int>(batches));

  std::vector<std::unique_ptr<Backend>> compileBackends;
  compileBackends.reserve(static_cast<std::size_t>(compileJobs));
  for (int j = 0; j < compileJobs; ++j) {
    std::unique_ptr<Backend> backend = factory_(jobs + j);
    if (!backend) throw McError("backend factory returned null");
    compileBackends.push_back(std::move(backend));
  }

  // Capacity bounds the compile lead: roughly one in-flight batch per
  // producer plus a batch of ready work per measurement worker.
  BoundedQueue queue(batchSize *
                     static_cast<std::size_t>(compileJobs + jobs));
  std::atomic<std::size_t> nextBatch{0};
  std::atomic<int> liveProducers{compileJobs};

  // The last producer to exit — on ANY path, including an exception that
  // escapes the loop — must close the queue, or the measurement workers
  // block in pop() forever. A destructor is the only spot that covers every
  // exit, so the decrement lives in a scope guard rather than after the
  // loop.
  struct ProducerExit {
    std::atomic<int>& live;
    BoundedQueue& queue;
    ~ProducerExit() {
      if (live.fetch_sub(1) == 1) queue.close();
    }
  };

  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(compileJobs));
  for (int j = 0; j < compileJobs; ++j) {
    producers.emplace_back([&, j] {
      ProducerExit exitGuard{liveProducers, queue};
      Backend& backend = *compileBackends[static_cast<std::size_t>(j)];
      std::size_t b;
      while ((b = nextBatch.fetch_add(1)) < batches) {
        std::size_t begin = b * batchSize;
        std::size_t end = std::min(begin + batchSize, pending.size());
        std::vector<SourceUnit> units;
        units.reserve(end - begin);
        for (std::size_t k = begin; k < end; ++k) {
          const CampaignVariant& v = variants[pending[k]];
          units.push_back(SourceUnit{v.kind, v.source, v.functionName});
        }
        std::vector<SourceUnit> prepared;
        try {
          prepared = backend.prepareBatch(units);
        } catch (const McError& e) {
          // prepareBatch contractually degrades instead of throwing; treat
          // a throwing backend the same way — measure the originals.
          log::warn("prepareBatch failed (" + e.message() +
                    "); measuring unprepared sources");
          prepared = units;
        } catch (const std::exception& e) {
          // Not just McError: bad_alloc, system_error from thread machinery,
          // anything — an uncaught exception here used to skip the producer
          // accounting and deadlock every measurement worker in pop().
          log::warn(std::string("prepareBatch failed (") + e.what() +
                    "); measuring unprepared sources");
          prepared = units;
        } catch (...) {
          log::warn("prepareBatch failed (unknown exception); measuring "
                    "unprepared sources");
          prepared = units;
        }
        if (prepared.size() != units.size()) prepared = std::move(units);
        for (std::size_t k = begin; k < end; ++k) {
          queue.push(PreparedVariant{pending[k],
                                     std::move(prepared[k - begin])});
        }
      }
    });
  }

  for (int w = 0; w < jobs; ++w) {
    pool.submit([&measureTask, &variants, &queue](int worker) {
      PreparedVariant item;
      while (queue.pop(item)) {
        CampaignVariant prepared = variants[item.index];
        prepared.kind = std::move(item.unit.kind);
        prepared.source = std::move(item.unit.text);
        prepared.functionName = std::move(item.unit.functionName);
        measureTask(worker, item.index, prepared);
      }
    });
  }
  pool.wait();
  for (std::thread& producer : producers) producer.join();

  // A producer that died before pushing its items leaves variants that no
  // worker ever saw; their pre-initialized results still read status "ok".
  // Surface them as errors (with a CSV row) instead of returning phantom
  // successes.
  for (std::size_t i : pending) {
    if (measured[i]) continue;
    std::string verdict = std::move(results[i].verify);
    double predCpiLo = results[i].predCpiLo;
    std::string predBound = std::move(results[i].predBound);
    results[i] = VariantResult{};
    results[i].sequence = i;
    results[i].round = options_.round;
    results[i].name = variants[i].name;
    results[i].verify = std::move(verdict);
    results[i].predCpiLo = predCpiLo;
    results[i].predBound = std::move(predBound);
    results[i].status = "error";
    results[i].error = "never measured: compile pipeline aborted";
    if (options_.rowObserver) options_.rowObserver(variants[i], results[i]);
    if (sink) sink->append(results[i]);
  }
  return results;
}

std::vector<VariantResult> CampaignRunner::runStream(
    const VariantSource& source, const KernelRequest& request,
    CampaignCsvSink* sink) {
  if (!source) throw McError("streaming campaign requires a variant source");
  if (options_.compileJobs > 0) {
    log::warn(
        "streaming campaign ignores --compile-jobs: batching compiles would "
        "re-serialize the stream; each worker compiles inline");
  }
  verify::VerifyOptions verifyOptions;
  if (options_.verify != VerifyMode::Off) {
    verifyOptions = verifyOptionsFor(request);
  }

  // Deques, not vectors: worker tasks hold references to their own slots
  // while the campaign thread keeps appending, and deque growth never
  // invalidates references to existing elements.
  std::deque<CampaignVariant> variants;
  std::deque<VariantResult> results;

  // Pool and backends come into existence on the first cache miss, so a
  // fully cached stream constructs zero backends — the same guarantee the
  // batch path gets from its upfront resolve. Worker w's backend is built
  // by that worker on its first task; the factory itself is serialized (a
  // test factory may count constructions in non-atomic state).
  std::unique_ptr<threads::ThreadPool> pool;
  std::vector<std::unique_ptr<Backend>> backends(
      static_cast<std::size_t>(options_.jobs));
  std::mutex factoryMutex;

  auto measureTask = [this, &variants, &results, &backends, &factoryMutex,
                      &request, sink](int worker, std::size_t i) {
    Backend* backend = nullptr;
    {
      std::lock_guard<std::mutex> lock(factoryMutex);
      auto& slot = backends[static_cast<std::size_t>(worker)];
      if (!slot) slot = factory_(worker);
      backend = slot.get();
    }
    std::string verdict = std::move(results[i].verify);
    double predCpiLo = results[i].predCpiLo;
    std::string predBound = std::move(results[i].predBound);
    if (backend == nullptr) {
      results[i] = VariantResult{};
      results[i].sequence = i;
      results[i].round = options_.round;
      results[i].name = variants[i].name;
      results[i].status = "error";
      results[i].error = "backend factory returned null";
    } else {
      KernelRequest workerRequest = request;
      if (options_.pinWorkers) workerRequest.core = worker;
      results[i] = runOne(*backend, variants[i], i, workerRequest);
    }
    results[i].verify = std::move(verdict);
    results[i].predCpiLo = predCpiLo;
    results[i].predBound = std::move(predBound);
    if (results[i].status == "ok" && options_.cacheStore) {
      options_.cacheStore(variants[i], results[i]);
    }
    if (options_.rowObserver) options_.rowObserver(variants[i], results[i]);
    if (sink) sink->append(results[i]);
  };

  std::size_t i = 0;
  for (std::optional<CampaignVariant> next; (next = source());) {
    variants.push_back(std::move(*next));
    results.emplace_back();
    if (!resolveUpfront(variants.back(), i, verifyOptions, results.back(),
                        sink)) {
      if (!pool) {
        pool = std::make_unique<threads::ThreadPool>(options_.jobs);
      }
      pool->submit([&measureTask, i](int worker) { measureTask(worker, i); });
    }
    ++i;
  }
  if (pool) pool->wait();
  return std::vector<VariantResult>(
      std::make_move_iterator(results.begin()),
      std::make_move_iterator(results.end()));
}

std::vector<std::string> CampaignRunner::csvHeader() {
  return {"sequence",
          "round",
          "variant",
          "status",
          "iterations_per_call",
          "cycles_per_iteration_min",
          "cycles_per_iteration_mean",
          "cycles_per_iteration_median",
          "cycles_per_iteration_max",
          "cv",
          "instructions_per_iteration",
          "ipc",
          "l1_miss_rate",
          "llc_miss_rate",
          "stall_ratio",
          "repetitions",
          "converged",
          "attempts",
          "verify",
          "error",
          "cached",
          "note",
          "pred_cpi_lo",
          "pred_bound",
          "pred_err"};
}

std::vector<std::string> CampaignRunner::csvRow(const VariantResult& r) {
  std::vector<std::string> cells;
  cells.push_back(std::to_string(r.sequence));
  cells.push_back(std::to_string(r.round));
  cells.push_back(r.name);
  cells.push_back(r.status);
  // A counter metric cell is empty whenever the value is absent — the
  // rdtsc-only degradation path (no perf, VM without PMU, sim backend) and
  // individual events dropped from the PMU group both surface as NaN.
  auto metricCell = [&cells](double value, const char* fmt) {
    cells.push_back(std::isfinite(value) ? strings::format(fmt, value) : "");
  };
  if (r.status == "ok") {
    const stats::Summary& s = r.measurement.cyclesPerIteration;
    cells.push_back(std::to_string(r.measurement.iterationsPerCall));
    cells.push_back(strings::format("%.4f", s.min));
    cells.push_back(strings::format("%.4f", s.mean));
    cells.push_back(strings::format("%.4f", s.median));
    cells.push_back(strings::format("%.4f", s.max));
    cells.push_back(strings::format("%.6f", r.finalCv));
    const CounterMetrics& c = r.measurement.counters;
    metricCell(c.instructionsPerIteration, "%.4f");
    metricCell(c.ipc, "%.4f");
    metricCell(c.l1MissRate, "%.6f");
    metricCell(c.llcMissRate, "%.6f");
    metricCell(c.stallRatio, "%.6f");
  } else {
    for (int i = 0; i < 11; ++i) cells.push_back("");
  }
  cells.push_back(std::to_string(r.repetitions));
  cells.push_back(r.converged ? "1" : "0");
  cells.push_back(std::to_string(r.attempts));
  cells.push_back(r.verify);
  cells.push_back(r.error);
  cells.push_back(r.cached ? "1" : "0");
  cells.push_back(r.note);
  // Static cost-model columns: the prediction is independent of measurement
  // status, so even error/skipped rows keep their bound. pred_err is the
  // relative gap of the measured best over the static lower bound,
  // (min - pred) / pred — available only when both sides exist.
  metricCell(r.predCpiLo, "%.4f");
  cells.push_back(r.predBound);
  double predErr = std::numeric_limits<double>::quiet_NaN();
  if (r.status == "ok" && std::isfinite(r.predCpiLo) && r.predCpiLo > 0.0) {
    predErr =
        (r.measurement.cyclesPerIteration.min - r.predCpiLo) / r.predCpiLo;
  }
  metricCell(predErr, "%.4f");
  return cells;
}

csv::Table CampaignRunner::toCsv(const std::vector<VariantResult>& results) {
  std::vector<const VariantResult*> ordered;
  ordered.reserve(results.size());
  for (const VariantResult& r : results) ordered.push_back(&r);
  std::sort(ordered.begin(), ordered.end(),
            [](const VariantResult* a, const VariantResult* b) {
              return a->sequence < b->sequence;
            });
  csv::Table table(csvHeader());
  for (const VariantResult* r : ordered) table.addRow(csvRow(*r));
  return table;
}

// ---------------------------------------------------------------------------
// Variant sources
// ---------------------------------------------------------------------------

std::vector<CampaignVariant> loadCampaignDirectory(
    const std::string& dir, const std::string& functionName) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw McError("campaign directory not found: " + dir);
  }
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext == ".s" || ext == ".c") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // deterministic sequence
  std::vector<CampaignVariant> variants;
  variants.reserve(files.size());
  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw McError("cannot read campaign kernel: " + path.string());
    std::ostringstream oss;
    oss << in.rdbuf();
    CampaignVariant v;
    v.name = path.stem().string();
    v.kind = path.extension() == ".c" ? "c" : "asm";
    v.source = oss.str();
    v.functionName = functionName;
    variants.push_back(std::move(v));
  }
  if (variants.empty()) {
    throw McError("campaign directory holds no .s or .c kernels: " + dir);
  }
  return variants;
}

std::vector<CampaignVariant> variantsFromPrograms(
    const std::vector<creator::GeneratedProgram>& programs) {
  std::vector<CampaignVariant> variants;
  variants.reserve(programs.size());
  for (const creator::GeneratedProgram& p : programs) {
    CampaignVariant v;
    v.name = p.name;
    v.kind = "asm";
    v.source = p.asmText;
    v.functionName = p.functionName;
    v.contentId = p.contentId;
    variants.push_back(std::move(v));
  }
  return variants;
}

namespace {

/// Shared body of the two readCompletedVariants overloads. A negative
/// `roundFilter` accepts every row; otherwise only rows whose `round`
/// column matches are returned (a file without a round column counts every
/// row as round 0).
std::set<std::pair<std::size_t, std::string>> readCompletedImpl(
    const std::string& csvPath, int roundFilter) {
  std::set<std::pair<std::size_t, std::string>> completed;
  std::ifstream in(csvPath, std::ios::binary);
  if (!in) return completed;

  // Skip the "# env.*" preamble (and any other comment lines) before the
  // header.
  std::string line;
  std::vector<std::string> header;
  while (std::getline(in, line)) {
    if (strings::startsWith(strings::trim(line), "#")) continue;
    header = csv::parseLine(line);
    break;
  }
  if (header.empty()) return completed;
  auto column = [&header](const std::string& name) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };
  std::ptrdiff_t seqCol = column("sequence");
  std::ptrdiff_t nameCol = column("variant");
  std::ptrdiff_t statusCol = column("status");
  std::ptrdiff_t roundCol = column("round");
  if (seqCol < 0 || nameCol < 0 || statusCol < 0) return completed;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (strings::startsWith(strings::trim(line), "#")) continue;
    std::vector<std::string> cells = csv::parseLine(line);
    // The runner always writes full-width rows (missing metrics are empty
    // cells, not absent ones), so any shorter row is the torn remnant of a
    // crash mid-write — its data is gone; re-measure it.
    if (cells.size() < header.size()) continue;
    // Every status the runner writes is terminal: a failed variant already
    // consumed its retry and a verify-strict skip is a verdict. Only rows
    // with an unknown status (foreign file, torn row) are re-run.
    const std::string& status = cells[static_cast<std::size_t>(statusCol)];
    if (status != "ok" && status != "error" && status != "timeout" &&
        status != "skipped") {
      continue;
    }
    if (roundFilter >= 0) {
      int rowRound = 0;
      if (roundCol >= 0) {
        auto parsed =
            strings::parseInt(cells[static_cast<std::size_t>(roundCol)]);
        if (!parsed) continue;  // unparsable round: torn or foreign row
        rowRound = static_cast<int>(*parsed);
      }
      if (rowRound != roundFilter) continue;
    }
    auto seq = strings::parseInt(cells[static_cast<std::size_t>(seqCol)]);
    if (!seq || *seq < 0) continue;
    completed.emplace(static_cast<std::size_t>(*seq),
                      cells[static_cast<std::size_t>(nameCol)]);
  }
  return completed;
}

}  // namespace

std::set<std::pair<std::size_t, std::string>> readCompletedVariants(
    const std::string& csvPath) {
  return readCompletedImpl(csvPath, -1);
}

std::set<std::pair<std::size_t, std::string>> readCompletedVariants(
    const std::string& csvPath, int round) {
  if (round < 0) throw McError("readCompletedVariants: round must be >= 0");
  return readCompletedImpl(csvPath, round);
}

}  // namespace microtools::launcher
