#include "launcher/sim_backend.hpp"

#include "sim/core.hpp"
#include "support/error.hpp"

namespace microtools::launcher {

namespace {

constexpr std::uint64_t kRegionBase = 0x100000000ull;   // 4 GiB
constexpr std::uint64_t kProcessStride = 0x400000000ull;  // 16 GiB apart
constexpr std::uint64_t kArrayPadding = 2ull * 1024 * 1024;

std::uint64_t alignUp(std::uint64_t v, std::uint64_t a) {
  if (a == 0) a = 1;
  return (v + a - 1) / a * a;
}

/// Derives the byte distance the kernel advances per counted iteration by
/// comparing the pointer increment with the counter decrement in the loop
/// maintenance code (e.g. `add $48, %rsi` + `sub $12, %rdi` -> 4 bytes per
/// counted element). Falls back to 4 when the pattern is not found.
std::uint64_t analyzeChunkStride(const asmparse::Program& program) {
  std::int64_t pointerStep = 0;
  std::int64_t counterStep = 0;
  for (const asmparse::DecodedInsn& insn : program.instructions) {
    if (insn.desc->kind != isa::InstrKind::IntAlu) continue;
    if (insn.operands.size() != 2) continue;
    if (insn.operands[0].kind != asmparse::DecodedOperand::Kind::Imm) continue;
    if (insn.operands[1].kind != asmparse::DecodedOperand::Kind::Reg) continue;
    const isa::PhysReg& reg = insn.operands[1].reg;
    if (reg.cls != isa::RegClass::Gpr) continue;
    bool isAdd = insn.desc->mnemonic == "add";
    bool isSub = insn.desc->mnemonic == "sub";
    if (!isAdd && !isSub) continue;
    std::int64_t step = insn.operands[0].imm * (isSub ? -1 : 1);
    if (reg.index == isa::kRdi) {
      counterStep = step;
    } else if (reg.index == isa::argumentRegister(1).index) {
      pointerStep = step;
    }
  }
  if (pointerStep > 0 && counterStep < 0 &&
      pointerStep % (-counterStep) == 0) {
    return static_cast<std::uint64_t>(pointerStep / (-counterStep));
  }
  return 4;
}

}  // namespace

SimBackend::SimBackend(sim::MachineConfig config)
    : config_(std::move(config)),
      memsys_(std::make_unique<sim::MemorySystem>(config_)) {}

void SimBackend::setMachine(sim::MachineConfig config) {
  config_ = std::move(config);
  memsys_ = std::make_unique<sim::MemorySystem>(config_);
  clock_ = 0;
}

std::unique_ptr<KernelHandle> SimBackend::load(
    const std::string& asmText, const std::string& functionName) {
  auto handle = std::make_unique<SimKernel>();
  handle->program = asmparse::parseAssembly(asmText);
  if (!functionName.empty()) handle->program.functionName = functionName;
  return handle;
}

std::vector<std::uint64_t> SimBackend::planAddresses(
    const KernelRequest& request, int processIndex) {
  std::vector<std::uint64_t> addrs;
  std::uint64_t cursor =
      kRegionBase + static_cast<std::uint64_t>(processIndex) * kProcessStride;
  for (const ArraySpec& spec : request.arrays) {
    std::uint64_t base = alignUp(cursor, spec.alignment) + spec.offset;
    addrs.push_back(base);
    cursor = base + spec.bytes + kArrayPadding;
  }
  return addrs;
}

InvokeResult SimBackend::invoke(KernelHandle& kernel,
                                const KernelRequest& request) {
  auto& handle = dynamic_cast<SimKernel&>(kernel);
  std::vector<std::uint64_t> addrs = planAddresses(request, 0);
  sim::CoreSim core(config_, *memsys_, request.core);
  sim::RunResult r = core.run(handle.program, request.n, addrs, clock_);
  clock_ += r.coreCycles + static_cast<std::uint64_t>(kCallOverhead);
  InvokeResult out;
  out.tscCycles = r.tscCycles + kCallOverhead + kTimerOverhead;
  out.iterations = r.iterations;
  return out;
}

std::vector<InvokeResult> SimBackend::invokeFork(KernelHandle& kernel,
                                                 const KernelRequest& request,
                                                 int processes, int calls,
                                                 PinPolicy policy) {
  auto& handle = dynamic_cast<SimKernel&>(kernel);
  if (processes < 1) throw McError("fork mode requires processes >= 1");
  if (processes > config_.totalCores()) {
    throw McError("more forked processes than cores");
  }
  // Fresh processes, fresh machine state: a dedicated runner (its own
  // MemorySystem) models the post-fork, post-synchronization start.
  sim::MultiCoreRunner runner(config_);
  std::vector<sim::CoreWork> work(static_cast<std::size_t>(processes));
  for (int p = 0; p < processes; ++p) {
    sim::CoreWork& w = work[static_cast<std::size_t>(p)];
    w.program = &handle.program;
    w.n = request.n;
    w.arrayAddrs = planAddresses(request, p);
    w.physicalCore = policy == PinPolicy::Scatter
                         ? sim::MultiCoreRunner::scatterPin(config_, p)
                         : sim::MultiCoreRunner::compactPin(config_, p);
    w.calls = calls;
    // First-touch allocation: each process's arrays live on its socket.
    std::uint64_t regionBase =
        kRegionBase + static_cast<std::uint64_t>(p) * kProcessStride;
    runner.memory().setHomeSocket(regionBase, kProcessStride,
                                  runner.memory().socketOfCore(w.physicalCore));
  }
  std::vector<sim::RunResult> results = runner.run(work);
  std::vector<InvokeResult> out;
  out.reserve(results.size());
  for (const sim::RunResult& r : results) {
    out.push_back(InvokeResult{r.tscCycles, r.iterations});
  }
  return out;
}

InvokeResult SimBackend::invokeOpenMp(KernelHandle& kernel,
                                      const KernelRequest& request,
                                      int threads, int repetitions) {
  auto& handle = dynamic_cast<SimKernel&>(kernel);
  sim::OpenMpModel model(config_);
  std::vector<std::uint64_t> addrs = planAddresses(request, 0);
  std::uint64_t stride = analyzeChunkStride(handle.program);
  sim::OmpRegionResult region = model.runRepeated(
      handle.program, request.n, addrs, stride, threads, repetitions);
  InvokeResult out;
  out.tscCycles = region.regionTscCycles;
  out.iterations = region.totalIterations;
  return out;
}

void SimBackend::reset() {
  // Full machine reset (fresh memory system, clock at 0), not just a cache
  // flush: the campaign runner resets before every variant and relies on
  // results being bit-identical regardless of which worker ran what before.
  memsys_ = std::make_unique<sim::MemorySystem>(config_);
  clock_ = 0;
}

}  // namespace microtools::launcher
