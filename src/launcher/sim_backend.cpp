#include "launcher/sim_backend.hpp"

#include <atomic>

#include "sim/core.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"

namespace microtools::launcher {

namespace {

constexpr std::uint64_t kRegionBase = 0x100000000ull;   // 4 GiB
constexpr std::uint64_t kProcessStride = 0x400000000ull;  // 16 GiB apart
constexpr std::uint64_t kArrayPadding = 2ull * 1024 * 1024;

std::uint64_t alignUp(std::uint64_t v, std::uint64_t a) {
  if (a == 0) a = 1;
  return (v + a - 1) / a * a;
}

/// Derives the byte distance the kernel advances per counted iteration by
/// comparing the pointer increment with the counter decrement in the loop
/// maintenance code (e.g. `add $48, %rsi` + `sub $12, %rdi` -> 4 bytes per
/// counted element). Falls back to 4 when the pattern is not found.
std::uint64_t analyzeChunkStride(const asmparse::Program& program) {
  std::int64_t pointerStep = 0;
  std::int64_t counterStep = 0;
  for (const asmparse::DecodedInsn& insn : program.instructions) {
    if (insn.desc->kind != isa::InstrKind::IntAlu) continue;
    if (insn.operands.size() != 2) continue;
    if (insn.operands[0].kind != asmparse::DecodedOperand::Kind::Imm) continue;
    if (insn.operands[1].kind != asmparse::DecodedOperand::Kind::Reg) continue;
    const isa::PhysReg& reg = insn.operands[1].reg;
    if (reg.cls != isa::RegClass::Gpr) continue;
    bool isAdd = insn.desc->mnemonic == "add";
    bool isSub = insn.desc->mnemonic == "sub";
    if (!isAdd && !isSub) continue;
    std::int64_t step = insn.operands[0].imm * (isSub ? -1 : 1);
    if (reg.index == isa::kRdi) {
      counterStep = step;
    } else if (reg.index == isa::argumentRegister(1).index) {
      pointerStep = step;
    }
  }
  if (pointerStep > 0 && counterStep < 0 &&
      pointerStep % (-counterStep) == 0) {
    return static_cast<std::uint64_t>(pointerStep / (-counterStep));
  }
  // The fallback silently mis-splits OpenMP chunks for kernels with exotic
  // induction code, so say so — once per process, not per variant.
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    log::warn(
        "analyzeChunkStride: no pointer/counter induction pattern found; "
        "assuming 4 bytes per counted iteration");
  }
  return 4;
}

void hashRequest(hash::Fnv1a& h, const KernelRequest& request) {
  h.i64(request.n);
  h.i64(request.core);
  h.u64(request.chunkStrideBytes);
  h.u64(request.arrays.size());
  for (const ArraySpec& spec : request.arrays) {
    h.u64(spec.bytes).u64(spec.alignment).u64(spec.offset);
  }
}

}  // namespace

SimBackend::SimBackend(sim::MachineConfig config, SimBackendOptions options)
    : config_(std::move(config)),
      options_(options),
      memsys_(std::make_unique<sim::MemorySystem>(config_)) {}

void SimBackend::setMachine(sim::MachineConfig config) {
  config_ = std::move(config);
  reset();
}

std::unique_ptr<KernelHandle> SimBackend::load(
    const std::string& asmText, const std::string& functionName) {
  auto handle = std::make_unique<SimKernel>();
  asmparse::CachedProgram cached =
      asmparse::ProgramCache::global().get(asmText, functionName);
  handle->program = std::move(cached.program);
  handle->contentId = cached.contentId;
  handle->origin = this;
  return handle;
}

SimBackend::SimKernel& SimBackend::checkedHandle(KernelHandle& kernel) const {
  if (kernel.origin != this) {
    throw McError("kernel handle was not loaded by this simulator backend");
  }
  return static_cast<SimKernel&>(kernel);
}

std::vector<std::uint64_t> SimBackend::planAddresses(
    const KernelRequest& request, int processIndex) {
  std::vector<std::uint64_t> addrs;
  std::uint64_t cursor =
      kRegionBase + static_cast<std::uint64_t>(processIndex) * kProcessStride;
  for (const ArraySpec& spec : request.arrays) {
    std::uint64_t base = alignUp(cursor, spec.alignment) + spec.offset;
    addrs.push_back(base);
    cursor = base + spec.bytes + kArrayPadding;
  }
  return addrs;
}

std::uint64_t SimBackend::invokeKey(const SimKernel& handle,
                                    const KernelRequest& request) const {
  hash::Fnv1a h;
  h.u64(handle.contentId);
  hashRequest(h, request);
  return h.value();
}

std::uint64_t SimBackend::stateKey() {
  if (!stateKeyCache_) stateKeyCache_ = memsys_->stateFingerprint(clock_);
  return *stateKeyCache_;
}

InvokeResult SimBackend::invoke(KernelHandle& kernel,
                                const KernelRequest& request) {
  SimKernel& handle = checkedHandle(kernel);

  std::uint64_t memoKey = 0;
  std::uint64_t preState = 0;
  std::uint64_t lvlBefore[5] = {
      0, memsys_->levelCount(sim::MemLevel::L1),
      memsys_->levelCount(sim::MemLevel::L2),
      memsys_->levelCount(sim::MemLevel::L3),
      memsys_->levelCount(sim::MemLevel::Ram)};
  std::uint64_t prefetchBefore = memsys_->prefetchCount();

  if (options_.memoize) {
    preState = stateKey();
    hash::Fnv1a mh;
    mh.u64(invokeKey(handle, request)).u64(preState);
    memoKey = mh.value();
    auto it = memo_.find(memoKey);
    if (it != memo_.end()) {
      // Same program + request from a fingerprint-equal machine state:
      // deterministic simulation would reproduce the recorded run bit for
      // bit, ending in a state that is the recorded post-state shifted
      // forward in time by however much later we are starting. So restore
      // the snapshot, shift its in-flight busy-times by that difference
      // (cache contents and LRU ranks are time-free and restore verbatim),
      // and splice the statistics: current counters plus the recorded
      // run's deltas.
      const MemoEntry& e = it->second;
      *memsys_ = e.postState;
      memsys_->translateInFlight(clock_ - e.preClock);
      std::uint64_t credit[5] = {0, lvlBefore[1] - e.preLevels[1],
                                 lvlBefore[2] - e.preLevels[2],
                                 lvlBefore[3] - e.preLevels[3],
                                 lvlBefore[4] - e.preLevels[4]};
      memsys_->creditReplayedAccesses(credit,
                                      prefetchBefore - e.prePrefetches);
      clock_ += e.coreCycles + static_cast<std::uint64_t>(kCallOverhead);
      stateKeyCache_ = e.postStateKey;
      ++replayedInvokes_;
      return e.result;
    }
  }

  std::vector<std::uint64_t> addrs = planAddresses(request, 0);
  sim::CoreSim core(config_, *memsys_, request.core);
  if (options_.steadyState) {
    sim::SteadyStateOptions ss;
    ss.enabled = true;
    core.setSteadyState(ss);
  }
  std::uint64_t preClock = clock_;
  sim::RunResult r = core.run(*handle.program, request.n, addrs, clock_);
  clock_ += r.coreCycles + static_cast<std::uint64_t>(kCallOverhead);
  stateKeyCache_.reset();  // simulation moved the machine

  InvokeResult out;
  out.tscCycles = r.tscCycles + kCallOverhead + kTimerOverhead;
  out.iterations = r.iterations;

  if (options_.memoize && memo_.size() < kMaxMemoEntries) {
    MemoEntry memo{r.coreCycles,
                   preClock,
                   {0, lvlBefore[1], lvlBefore[2], lvlBefore[3], lvlBefore[4]},
                   prefetchBefore,
                   stateKey(),
                   *memsys_,
                   out};
    memo_.emplace(memoKey, std::move(memo));
  }
  return out;
}

std::vector<InvokeResult> SimBackend::invokeFork(KernelHandle& kernel,
                                                 const KernelRequest& request,
                                                 int processes, int calls,
                                                 PinPolicy policy) {
  SimKernel& handle = checkedHandle(kernel);
  if (processes < 1) throw McError("fork mode requires processes >= 1");
  if (processes > config_.totalCores()) {
    throw McError("more forked processes than cores");
  }
  std::uint64_t key = 0;
  if (options_.memoize) {
    hash::Fnv1a h;
    h.u64(handle.contentId);
    hashRequest(h, request);
    h.i64(processes).i64(calls).i64(static_cast<int>(policy));
    key = h.value();
    auto it = forkMemo_.find(key);
    if (it != forkMemo_.end()) return it->second;
  }
  // Fresh processes, fresh machine state: a dedicated runner (its own
  // MemorySystem) models the post-fork, post-synchronization start — which
  // also makes the result a pure function of (machine, program, request).
  sim::MultiCoreRunner runner(config_);
  std::vector<sim::CoreWork> work(static_cast<std::size_t>(processes));
  for (int p = 0; p < processes; ++p) {
    sim::CoreWork& w = work[static_cast<std::size_t>(p)];
    w.program = handle.program.get();
    w.n = request.n;
    w.arrayAddrs = planAddresses(request, p);
    w.physicalCore = policy == PinPolicy::Scatter
                         ? sim::MultiCoreRunner::scatterPin(config_, p)
                         : sim::MultiCoreRunner::compactPin(config_, p);
    w.calls = calls;
    // First-touch allocation: each process's arrays live on its socket.
    std::uint64_t regionBase =
        kRegionBase + static_cast<std::uint64_t>(p) * kProcessStride;
    runner.memory().setHomeSocket(regionBase, kProcessStride,
                                  runner.memory().socketOfCore(w.physicalCore));
  }
  std::vector<sim::RunResult> results = runner.run(work);
  std::vector<InvokeResult> out;
  out.reserve(results.size());
  for (const sim::RunResult& r : results) {
    out.push_back(InvokeResult{r.tscCycles, r.iterations});
  }
  if (options_.memoize) forkMemo_.emplace(key, out);
  return out;
}

InvokeResult SimBackend::invokeOpenMp(KernelHandle& kernel,
                                      const KernelRequest& request,
                                      int threads, int repetitions) {
  SimKernel& handle = checkedHandle(kernel);
  std::uint64_t key = 0;
  if (options_.memoize) {
    hash::Fnv1a h;
    h.u64(handle.contentId);
    hashRequest(h, request);
    h.i64(threads).i64(repetitions);
    key = h.value();
    auto it = ompMemo_.find(key);
    if (it != ompMemo_.end()) return it->second;
  }
  // A fresh model per call: pure function of (machine, program, request).
  sim::OpenMpModel model(config_);
  std::vector<std::uint64_t> addrs = planAddresses(request, 0);
  std::uint64_t stride = analyzeChunkStride(*handle.program);
  sim::OmpRegionResult region = model.runRepeated(
      *handle.program, request.n, addrs, stride, threads, repetitions);
  InvokeResult out;
  out.tscCycles = region.regionTscCycles;
  out.iterations = region.totalIterations;
  if (options_.memoize) ompMemo_.emplace(key, out);
  return out;
}

void SimBackend::reset() {
  // Full machine reset (fresh memory system, clock at 0), not just a cache
  // flush: the campaign runner resets before every variant and relies on
  // results being bit-identical regardless of which worker ran what before.
  // That contract extends to memoized results — they describe the previous
  // machine and must not survive into the cold one.
  memsys_ = std::make_unique<sim::MemorySystem>(config_);
  clock_ = 0;
  memo_.clear();
  stateKeyCache_.reset();
  forkMemo_.clear();
  ompMemo_.clear();
  replayedInvokes_ = 0;
}

}  // namespace microtools::launcher
