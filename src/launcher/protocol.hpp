#pragma once

#include "launcher/backend.hpp"
#include "support/stats.hpp"

namespace microtools::launcher {

/// Knobs of the Figure-10 measurement protocol.
struct ProtocolOptions {
  int innerRepetitions = 8;   ///< kernel calls per timed experiment
  int outerRepetitions = 10;  ///< timed experiments (stability check, §4.5)
  bool warmup = true;         ///< heat I/D caches with one untimed call
  bool subtractOverhead = true;
};

/// Result of one measured kernel configuration.
struct Measurement {
  /// Cycles per kernel iteration, summarized over the outer experiments
  /// (min is what the paper plots; min/max spread demonstrates stability).
  stats::Summary cyclesPerIteration;

  /// Iterations one kernel call executes (from the %eax contract, §4.4).
  std::uint64_t iterationsPerCall = 0;

  /// Raw cycles of the full measured phase.
  double totalCycles = 0.0;
};

/// Runs the paper's timing pseudo-algorithm (Figure 10) against a backend:
///
///   call the benchmark once              // load I/D caches
///   for outer in 1..O:
///     t0 = timer()
///     for inner in 1..I: call kernel
///     t1 = timer()
///     sample = (t1 - t0 - overhead) / (I * iterations)
///
/// and summarizes the outer samples.
Measurement measureKernel(Backend& backend, KernelHandle& kernel,
                          const KernelRequest& request,
                          const ProtocolOptions& options);

}  // namespace microtools::launcher
