#pragma once

#include <functional>
#include <limits>

#include "launcher/backend.hpp"
#include "support/stats.hpp"

namespace microtools::launcher {

/// Knobs of the Figure-10 measurement protocol.
struct ProtocolOptions {
  int innerRepetitions = 8;   ///< kernel calls per timed experiment
  int outerRepetitions = 10;  ///< timed experiments (stability check, §4.5)
  bool warmup = true;         ///< heat I/D caches with one untimed call
  bool subtractOverhead = true;
};

/// Stability-driven repetition extension (μOpTime-style): after the baseline
/// outer repetitions, keep adding timed experiments while the coefficient of
/// variation of the most recent `outerRepetitions` samples exceeds `maxCv`,
/// up to `maxRepetitions` total. The reported summary covers that trailing
/// window, so a noisy warm-up prefix neither blocks convergence nor leaks
/// into the statistics.
struct AdaptivePolicy {
  double maxCv = 0.0;      ///< CV target; <= 0 disables the extension
  int maxRepetitions = 0;  ///< total outer-repetition budget (incl. baseline)
};

/// Derived hardware-counter metrics for one measurement, aggregated over
/// every timed invocation whose counter window was valid. `valid` is false
/// (all NaN, empty CSV cells) when no invocation carried counters — the
/// rdtsc-only degradation path. Individual metrics are NaN when the event
/// they derive from was dropped to fit the PMU's counter budget.
struct CounterMetrics {
  bool valid = false;
  double instructionsPerIteration = std::numeric_limits<double>::quiet_NaN();
  double ipc = std::numeric_limits<double>::quiet_NaN();  ///< instr/cycle
  double l1MissRate = std::numeric_limits<double>::quiet_NaN();
  double llcMissRate = std::numeric_limits<double>::quiet_NaN();
  double stallRatio = std::numeric_limits<double>::quiet_NaN();
};

/// Result of one measured kernel configuration.
struct Measurement {
  /// Cycles per kernel iteration, summarized over the outer experiments
  /// (min is what the paper plots; min/max spread demonstrates stability).
  stats::Summary cyclesPerIteration;

  /// Iterations one kernel call executes (from the %eax contract, §4.4).
  std::uint64_t iterationsPerCall = 0;

  /// Raw cycles of the full measured phase.
  double totalCycles = 0.0;

  /// Counter-derived metrics (invalid on non-native backends and whenever
  /// the perf counter group could not be opened).
  CounterMetrics counters;
};

/// A Measurement plus the adaptive-repetition bookkeeping the campaign
/// runner records per variant.
struct AdaptiveMeasurement {
  Measurement measurement;
  int repetitions = 0;    ///< outer repetitions actually executed
  bool converged = true;  ///< final CV <= maxCv (true when adaptive is off)
};

/// Cooperative wall-clock budget: checked before every kernel invocation;
/// returning true aborts the measurement with TimeoutError.
using DeadlineCheck = std::function<bool()>;

/// Runs the paper's timing pseudo-algorithm (Figure 10) against a backend:
///
///   call the benchmark once              // load I/D caches
///   for outer in 1..O:
///     t0 = timer()
///     for inner in 1..I: call kernel
///     t1 = timer()
///     sample = (t1 - t0 - overhead) / (I * iterations)
///
/// and summarizes the outer samples. Samples are clamped at 0: on a noisy
/// host a fast kernel can measure less than the subtracted timer overhead,
/// and a negative cycles/iteration must never reach the CSV output.
Measurement measureKernel(Backend& backend, KernelHandle& kernel,
                          const KernelRequest& request,
                          const ProtocolOptions& options);

/// measureKernel plus the adaptive stability extension and an optional
/// cooperative deadline (campaign per-variant timeouts).
AdaptiveMeasurement measureKernelAdaptive(Backend& backend,
                                          KernelHandle& kernel,
                                          const KernelRequest& request,
                                          const ProtocolOptions& options,
                                          const AdaptivePolicy& policy,
                                          const DeadlineCheck& outOfTime = {});

}  // namespace microtools::launcher
