#include "launcher/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "support/csv.hpp"
#include "support/envinfo.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"

namespace microtools::launcher {

namespace {

/// One parsed campaign CSV: env snapshot plus, per variant (in first-seen
/// order), the metric samples and per-row CVs of its ok rows.
struct ParsedCsv {
  env::EnvSnapshot env;
  std::vector<std::string> order;
  std::map<std::string, std::vector<double>> metricSamples;
  std::map<std::string, std::vector<double>> rowCvs;
};

ParsedCsv parseCampaignCsv(const std::string& path,
                           const std::string& metric) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw McError("bench-diff: cannot read '" + path + "'");
  std::ostringstream oss;
  oss << in.rdbuf();
  std::string text = oss.str();

  ParsedCsv parsed;
  parsed.env = env::fromCsvComments(text);

  std::istringstream lines(text);
  std::string line;
  std::vector<std::string> header;
  while (std::getline(lines, line)) {
    if (strings::startsWith(strings::trim(line), "#")) continue;
    if (strings::trim(line).empty()) continue;
    header = csv::parseLine(line);
    break;
  }
  auto column = [&header](const std::string& name) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };
  std::ptrdiff_t nameCol = column("variant");
  std::ptrdiff_t statusCol = column("status");
  std::ptrdiff_t metricCol = column(metric);
  std::ptrdiff_t cvCol = column("cv");
  if (nameCol < 0 || statusCol < 0) {
    throw McError("bench-diff: '" + path + "' is not a campaign CSV "
                  "(missing variant/status columns)");
  }
  if (metricCol < 0) {
    throw McError("bench-diff: '" + path + "' has no '" + metric +
                  "' column");
  }

  std::size_t need =
      static_cast<std::size_t>(std::max({nameCol, statusCol, metricCol})) + 1;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (strings::startsWith(strings::trim(line), "#")) continue;
    std::vector<std::string> cells = csv::parseLine(line);
    if (cells.size() < need) continue;  // truncated row from a crash
    if (cells[static_cast<std::size_t>(statusCol)] != "ok") continue;
    auto value =
        strings::parseDouble(cells[static_cast<std::size_t>(metricCol)]);
    if (!value || !std::isfinite(*value)) continue;  // empty counter cell
    const std::string& name = cells[static_cast<std::size_t>(nameCol)];
    if (!parsed.metricSamples.count(name)) parsed.order.push_back(name);
    parsed.metricSamples[name].push_back(*value);
    if (cvCol >= 0 && cells.size() > static_cast<std::size_t>(cvCol)) {
      auto cv = strings::parseDouble(cells[static_cast<std::size_t>(cvCol)]);
      if (cv && std::isfinite(*cv)) parsed.rowCvs[name].push_back(*cv);
    }
  }
  return parsed;
}

VariantRollup rollup(const std::vector<double>& samples,
                     const std::vector<double>& rowCvs) {
  VariantRollup r;
  r.samples = samples.size();
  if (samples.empty()) return r;
  stats::Summary summary = stats::summarize(samples);
  r.median = summary.median;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  std::size_t idx = (sorted.size() * 95 + 99) / 100;  // ceil(0.95 * n)
  idx = idx > 0 ? idx - 1 : 0;
  r.p95 = sorted[std::min(idx, sorted.size() - 1)];
  double acrossCv = std::isfinite(summary.cv) ? summary.cv : 0.0;
  double withinCv = 0.0;
  if (!rowCvs.empty()) {
    std::vector<double> cvs = rowCvs;
    auto mid = cvs.begin() + static_cast<std::ptrdiff_t>(cvs.size() / 2);
    std::nth_element(cvs.begin(), mid, cvs.end());
    withinCv = *mid;
  }
  r.cv = std::max(acrossCv, withinCv);
  return r;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strings::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return strings::format("%.17g", v);
}

}  // namespace

BenchDiffReport benchDiff(const std::string& oldPath,
                          const std::string& newPath,
                          const BenchDiffOptions& options) {
  if (options.relThreshold < 0 || options.cvMultiplier < 0) {
    throw McError("bench-diff thresholds must be >= 0");
  }
  ParsedCsv before = parseCampaignCsv(oldPath, options.metric);
  ParsedCsv after = parseCampaignCsv(newPath, options.metric);

  BenchDiffReport report;
  report.metric = options.metric;

  for (const std::string& name : before.order) {
    if (!after.metricSamples.count(name)) report.onlyOld.push_back(name);
  }
  for (const std::string& name : after.order) {
    if (!before.metricSamples.count(name)) report.onlyNew.push_back(name);
  }

  // Environment drift between the two files is reported, never fatal: a
  // governor or kernel change does not invalidate the comparison, but the
  // reader must see it next to any verdict.
  for (const env::EnvField& f : before.env.fields) {
    std::string now = after.env.get(f.key);
    if (!now.empty() && now != f.value && f.key != "loadavg") {
      report.envChanges.push_back(f.key + ": " + f.value + " -> " + now);
    }
  }

  for (const std::string& name : before.order) {
    auto it = after.metricSamples.find(name);
    if (it == after.metricSamples.end()) continue;
    BenchDiffEntry entry;
    entry.name = name;
    entry.before = rollup(before.metricSamples[name], before.rowCvs[name]);
    entry.after = rollup(it->second, after.rowCvs[name]);

    // Relative delta on the medians; a zero baseline is compared absolutely
    // (both zero: identical; zero -> nonzero: infinite relative change).
    if (entry.before.median != 0.0) {
      entry.delta =
          (entry.after.median - entry.before.median) / entry.before.median;
    } else {
      entry.delta = entry.after.median == 0.0
                        ? 0.0
                        : std::numeric_limits<double>::infinity();
    }
    double pooledCv = std::sqrt(entry.before.cv * entry.before.cv +
                                entry.after.cv * entry.after.cv);
    entry.allowed =
        std::max(options.relThreshold, options.cvMultiplier * pooledCv);
    if (entry.delta > entry.allowed) {
      entry.verdict = "regression";
      ++report.regressions;
    } else if (entry.delta < -entry.allowed) {
      entry.verdict = "improved";
      ++report.improvements;
    } else {
      entry.verdict = "ok";
    }
    report.entries.push_back(std::move(entry));
  }

  if (report.entries.empty()) {
    throw McError(
        "bench-diff: the two files share no variant with ok rows; nothing "
        "to compare");
  }
  return report;
}

std::string renderBenchDiffTable(const BenchDiffReport& report) {
  std::ostringstream out;
  out << strings::format("%-32s %12s %12s %8s %8s  %s\n", "variant",
                         "old median", "new median", "delta", "allowed",
                         "verdict");
  for (const BenchDiffEntry& e : report.entries) {
    out << strings::format("%-32s %12.4f %12.4f %+7.1f%% %7.1f%%  %s\n",
                           e.name.c_str(), e.before.median, e.after.median,
                           e.delta * 100.0, e.allowed * 100.0,
                           e.verdict.c_str());
  }
  for (const std::string& name : report.onlyOld) {
    out << "only in old: " << name << "\n";
  }
  for (const std::string& name : report.onlyNew) {
    out << "only in new: " << name << "\n";
  }
  for (const std::string& change : report.envChanges) {
    out << "env changed: " << change << "\n";
  }
  out << strings::format(
      "bench-diff (%s): %zu compared, %zu regression(s), %zu improvement(s)\n",
      report.metric.c_str(), report.entries.size(), report.regressions,
      report.improvements);
  return out.str();
}

std::string renderBenchDiffJson(const BenchDiffReport& report) {
  std::ostringstream out;
  out << "{\n  \"metric\": \"" << jsonEscape(report.metric) << "\",\n";
  out << "  \"regressions\": " << report.regressions << ",\n";
  out << "  \"improvements\": " << report.improvements << ",\n";
  out << "  \"entries\": [";
  for (std::size_t i = 0; i < report.entries.size(); ++i) {
    const BenchDiffEntry& e = report.entries[i];
    out << (i ? ",\n    " : "\n    ");
    out << "{\"variant\": \"" << jsonEscape(e.name) << "\""
        << ", \"old_median\": " << jsonNumber(e.before.median)
        << ", \"new_median\": " << jsonNumber(e.after.median)
        << ", \"old_p95\": " << jsonNumber(e.before.p95)
        << ", \"new_p95\": " << jsonNumber(e.after.p95)
        << ", \"old_cv\": " << jsonNumber(e.before.cv)
        << ", \"new_cv\": " << jsonNumber(e.after.cv)
        << ", \"delta\": " << jsonNumber(e.delta)
        << ", \"allowed\": " << jsonNumber(e.allowed)
        << ", \"verdict\": \"" << e.verdict << "\"}";
  }
  out << (report.entries.empty() ? "]" : "\n  ]") << ",\n";
  auto nameList = [&out](const char* key,
                         const std::vector<std::string>& names) {
    out << "  \"" << key << "\": [";
    for (std::size_t i = 0; i < names.size(); ++i) {
      out << (i ? ", " : "") << "\"" << jsonEscape(names[i]) << "\"";
    }
    out << "]";
  };
  nameList("only_old", report.onlyOld);
  out << ",\n";
  nameList("only_new", report.onlyNew);
  out << ",\n";
  nameList("env_changes", report.envChanges);
  out << "\n}\n";
  return out.str();
}

}  // namespace microtools::launcher
