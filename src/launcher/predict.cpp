#include "launcher/predict.hpp"

#include <limits>
#include <utility>

#include "asmparse/asmparse.hpp"
#include "launcher/arch_registry.hpp"
#include "support/error.hpp"
#include "verify/stability.hpp"

namespace microtools::launcher {

StaticAnnotator::StaticAnnotator(const verify::CoreModel& model,
                                 std::uint64_t footprintBytes)
    : model_(model), footprint_(footprintBytes) {}

void StaticAnnotator::annotate(const CampaignVariant& variant,
                               VariantResult& out) {
  const Entry& e = entry(variant);
  out.predCpiLo = e.predCpiLo;
  out.predBound = e.bound;
}

double StaticAnnotator::predictedCpi(const CampaignVariant& variant) {
  return entry(variant).predCpiLo;
}

bool StaticAnnotator::stable(const CampaignVariant& variant) {
  return entry(variant).stable;
}

const StaticAnnotator::Entry& StaticAnnotator::entry(
    const CampaignVariant& variant) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(variant.name);
  if (it != cache_.end()) return it->second;
  Entry e;
  e.predCpiLo = std::numeric_limits<double>::quiet_NaN();
  if (variant.kind == "asm") {
    try {
      asmparse::Program program = asmparse::parseAssembly(variant.source);
      verify::CyclePrediction pred = verify::predictProgram(program, model_);
      if (pred.valid) {
        e.predCpiLo = pred.cyclesLowerBound();
        e.bound = pred.binding;
      }
      verify::StabilityOptions stability;
      stability.footprintBytes = footprint_;
      e.stable =
          verify::analyzeStability(program, model_, pred, stability).stable();
    } catch (const ParseError&) {
      // Unparseable variants fail later with a real diagnostic; the
      // annotation just stays empty.
    }
  }
  return cache_.emplace(variant.name, std::move(e)).first->second;
}

std::shared_ptr<StaticAnnotator> makeStaticAnnotator(
    const std::string& arch, const KernelRequest& request) {
  verify::CoreModel model =
      verify::coreModelFromMachine(archByName(arch).config);
  std::uint64_t footprint = 0;
  for (const ArraySpec& a : request.arrays) footprint += a.bytes;
  return std::make_shared<StaticAnnotator>(model, footprint);
}

void installPredict(CampaignOptions& campaign,
                    const std::shared_ptr<StaticAnnotator>& annotator) {
  if (!annotator) return;
  campaign.predict = [annotator](const CampaignVariant& v,
                                 VariantResult& out) {
    annotator->annotate(v, out);
  };
}

void installPlannerHooks(PlannerOptions& planner,
                         const std::shared_ptr<StaticAnnotator>& annotator) {
  if (!annotator) return;
  planner.predictedCpi = [annotator](const CampaignVariant& v) {
    return annotator->predictedCpi(v);
  };
  planner.stable = [annotator](const CampaignVariant& v) {
    return annotator->stable(v);
  };
}

}  // namespace microtools::launcher
