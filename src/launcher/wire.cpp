#include "launcher/wire.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::launcher::wire {

namespace {

std::string fmtDouble(double v) { return strings::format("%.17g", v); }

bool validToken(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t') return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Message
// ---------------------------------------------------------------------------

std::string Message::get(const std::string& name) const {
  auto it = fields.find(name);
  if (it == fields.end()) {
    throw McError("wire message '" + verb + "' lacks field '" + name + "'");
  }
  return it->second;
}

std::int64_t Message::getInt(const std::string& name) const {
  auto v = strings::parseInt(get(name));
  if (!v) {
    throw McError("wire message '" + verb + "' field '" + name +
                  "' is not an integer");
  }
  return *v;
}

std::string encodeMessage(const Message& message) {
  if (!validToken(message.verb)) {
    throw McError("wire verb must be a non-empty whitespace-free token");
  }
  std::string out = message.verb + '\n';
  for (const auto& [name, value] : message.fields) {
    if (!validToken(name)) {
      throw McError("wire field name '" + name + "' is not a valid token");
    }
    out += name;
    out += ' ';
    out += strings::escapeLineBreaks(value);
    out += '\n';
  }
  return out;
}

Message decodeMessage(const std::string& payload) {
  std::vector<std::string> lines = strings::split(payload, '\n');
  if (lines.empty() || lines.front().empty()) {
    throw McError("wire payload lacks a verb line");
  }
  Message message;
  message.verb = lines.front();
  if (!validToken(message.verb)) {
    throw McError("wire payload has a malformed verb");
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;  // trailing newline after the last field
    std::size_t space = lines[i].find(' ');
    std::string name =
        space == std::string::npos ? lines[i] : lines[i].substr(0, space);
    std::string value =
        space == std::string::npos ? "" : lines[i].substr(space + 1);
    if (!validToken(name)) {
      throw McError("wire payload has a malformed field line");
    }
    message.fields[name] = strings::unescapeLineBreaks(value);
  }
  return message;
}

void sendMessage(net::Socket& socket, const Message& message) {
  std::string payload = encodeMessage(message);
  if (payload.size() > kMaxFramePayload) {
    throw McError("wire message exceeds the frame payload limit");
  }
  auto size = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {
      static_cast<unsigned char>((size >> 24) & 0xff),
      static_cast<unsigned char>((size >> 16) & 0xff),
      static_cast<unsigned char>((size >> 8) & 0xff),
      static_cast<unsigned char>(size & 0xff),
  };
  // One send for prefix + payload: a frame is either fully queued or the
  // call throws; the peer never parses a prefix whose payload went missing
  // because of an exception between two sends.
  std::string framed(reinterpret_cast<const char*>(prefix), 4);
  framed += payload;
  socket.sendAll(framed.data(), framed.size());
}

std::optional<Message> recvMessage(net::Socket& socket) {
  unsigned char prefix[4];
  if (!socket.recvAll(prefix, sizeof(prefix))) return std::nullopt;
  std::uint32_t size = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                       (static_cast<std::uint32_t>(prefix[1]) << 16) |
                       (static_cast<std::uint32_t>(prefix[2]) << 8) |
                       static_cast<std::uint32_t>(prefix[3]);
  if (size == 0 || size > kMaxFramePayload) {
    throw McError(strings::format(
        "wire frame length %u outside (0, %u]: corrupt or hostile peer",
        size, kMaxFramePayload));
  }
  std::string payload(size, '\0');
  if (!socket.recvAll(payload.data(), payload.size())) {
    throw McError("connection closed mid-message");
  }
  return decodeMessage(payload);
}

// ---------------------------------------------------------------------------
// VariantResult codec
// ---------------------------------------------------------------------------

std::string encodeResult(const VariantResult& r) {
  std::ostringstream oss;
  oss << "sequence " << r.sequence << '\n';
  oss << "round " << r.round << '\n';
  oss << "name " << strings::escapeLineBreaks(r.name) << '\n';
  oss << "status " << r.status << '\n';
  oss << "error " << strings::escapeLineBreaks(r.error) << '\n';
  oss << "note " << strings::escapeLineBreaks(r.note) << '\n';
  oss << "verify " << strings::escapeLineBreaks(r.verify) << '\n';
  oss << "cached " << (r.cached ? 1 : 0) << '\n';
  oss << "repetitions " << r.repetitions << '\n';
  oss << "final_cv " << fmtDouble(r.finalCv) << '\n';
  oss << "converged " << (r.converged ? 1 : 0) << '\n';
  oss << "attempts " << r.attempts << '\n';
  oss << "iterations_per_call " << r.measurement.iterationsPerCall << '\n';
  oss << "total_cycles " << fmtDouble(r.measurement.totalCycles) << '\n';
  const stats::Summary& s = r.measurement.cyclesPerIteration;
  oss << "count " << s.count << '\n';
  oss << "min " << fmtDouble(s.min) << '\n';
  oss << "max " << fmtDouble(s.max) << '\n';
  oss << "mean " << fmtDouble(s.mean) << '\n';
  oss << "median " << fmtDouble(s.median) << '\n';
  oss << "stddev " << fmtDouble(s.stddev) << '\n';
  oss << "cv " << fmtDouble(s.cv) << '\n';
  const CounterMetrics& c = r.measurement.counters;
  if (c.valid) {
    oss << "pc_valid 1\n";
    oss << "pc_instructions_per_iteration "
        << fmtDouble(c.instructionsPerIteration) << '\n';
    oss << "pc_ipc " << fmtDouble(c.ipc) << '\n';
    oss << "pc_l1_miss_rate " << fmtDouble(c.l1MissRate) << '\n';
    oss << "pc_llc_miss_rate " << fmtDouble(c.llcMissRate) << '\n';
    oss << "pc_stall_ratio " << fmtDouble(c.stallRatio) << '\n';
  }
  // Static cost-model annotation: optional keys, so daemons and workers of
  // mixed versions interoperate (decoders ignore unknown keys and tolerate
  // absent ones).
  if (std::isfinite(r.predCpiLo)) {
    oss << "pred_cpi_lo " << fmtDouble(r.predCpiLo) << '\n';
    oss << "pred_bound " << strings::escapeLineBreaks(r.predBound) << '\n';
  }
  return oss.str();
}

VariantResult decodeResult(const std::string& text) {
  std::map<std::string, std::string> fields;
  for (const std::string& line : strings::split(text, '\n')) {
    if (line.empty()) continue;
    std::size_t space = line.find(' ');
    std::string name =
        space == std::string::npos ? line : line.substr(0, space);
    std::string value =
        space == std::string::npos ? "" : line.substr(space + 1);
    fields.emplace(std::move(name), std::move(value));
  }
  auto getStr = [&fields](const char* f) -> std::string {
    auto it = fields.find(f);
    if (it == fields.end()) {
      throw McError(std::string("wire result lacks field '") + f + "'");
    }
    return it->second;
  };
  auto getInt = [&getStr](const char* f) -> std::int64_t {
    auto v = strings::parseInt(getStr(f));
    if (!v) {
      throw McError(std::string("wire result field '") + f +
                    "' is not an integer");
    }
    return *v;
  };
  auto getDouble = [&getStr](const char* f) -> double {
    auto v = strings::parseDouble(getStr(f));
    if (!v) {
      throw McError(std::string("wire result field '") + f +
                    "' is not a number");
    }
    return *v;
  };

  VariantResult r;
  std::int64_t sequence = getInt("sequence");
  if (sequence < 0) throw McError("wire result has a negative sequence");
  r.sequence = static_cast<std::size_t>(sequence);
  r.round = static_cast<int>(getInt("round"));
  r.name = strings::unescapeLineBreaks(getStr("name"));
  r.status = getStr("status");
  if (r.status != "ok" && r.status != "error" && r.status != "timeout" &&
      r.status != "skipped") {
    throw McError("wire result has unknown status '" + r.status + "'");
  }
  r.error = strings::unescapeLineBreaks(getStr("error"));
  r.note = strings::unescapeLineBreaks(getStr("note"));
  r.verify = strings::unescapeLineBreaks(getStr("verify"));
  r.cached = getInt("cached") != 0;
  r.repetitions = static_cast<int>(getInt("repetitions"));
  r.finalCv = getDouble("final_cv");
  r.converged = getInt("converged") != 0;
  r.attempts = static_cast<int>(getInt("attempts"));
  std::int64_t iterations = getInt("iterations_per_call");
  std::int64_t count = getInt("count");
  if (iterations < 0 || count < 0) {
    throw McError("wire result has negative measurement counts");
  }
  r.measurement.iterationsPerCall = static_cast<std::uint64_t>(iterations);
  r.measurement.totalCycles = getDouble("total_cycles");
  stats::Summary& s = r.measurement.cyclesPerIteration;
  s.count = static_cast<std::size_t>(count);
  s.min = getDouble("min");
  s.max = getDouble("max");
  s.mean = getDouble("mean");
  s.median = getDouble("median");
  s.stddev = getDouble("stddev");
  s.cv = getDouble("cv");
  if (fields.count("pc_valid") && fields["pc_valid"] != "0") {
    CounterMetrics& c = r.measurement.counters;
    c.valid = true;
    c.instructionsPerIteration = getDouble("pc_instructions_per_iteration");
    c.ipc = getDouble("pc_ipc");
    c.l1MissRate = getDouble("pc_l1_miss_rate");
    c.llcMissRate = getDouble("pc_llc_miss_rate");
    c.stallRatio = getDouble("pc_stall_ratio");
  }
  if (fields.count("pred_cpi_lo")) {
    r.predCpiLo = getDouble("pred_cpi_lo");
    if (fields.count("pred_bound")) {
      r.predBound = strings::unescapeLineBreaks(getStr("pred_bound"));
    }
  }
  return r;
}

}  // namespace microtools::launcher::wire
