#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "launcher/campaign.hpp"
#include "launcher/planner.hpp"
#include "verify/costmodel.hpp"

namespace microtools::launcher {

/// Shared static-analysis engine behind the campaign `predict` hook and the
/// planner's `predictedCpi`/`stable` hooks. Memoized by variant name: the
/// halving planner re-applies its hooks every round, and parsing the same
/// kernel four times per round would be pure waste. Thread-safe because the
/// campaign resolves predictions on its own thread while the planner drives
/// the ordering hooks from another.
class StaticAnnotator {
 public:
  StaticAnnotator(const verify::CoreModel& model, std::uint64_t footprintBytes);

  /// Fills predCpiLo/predBound (left NaN/"" when the variant is not asm,
  /// does not parse, or has no valid bound). Measured fields are untouched.
  void annotate(const CampaignVariant& variant, VariantResult& out);

  /// The cycles/iteration lower bound (NaN when unboundable).
  double predictedCpi(const CampaignVariant& variant);

  /// The muOpTime-style verdict: true only when all three stability
  /// criteria are proven.
  bool stable(const CampaignVariant& variant);

 private:
  struct Entry {
    double predCpiLo;
    std::string bound;
    bool stable = false;
  };

  const Entry& entry(const CampaignVariant& variant);

  verify::CoreModel model_;
  std::uint64_t footprint_ = 0;
  std::mutex mutex_;
  std::map<std::string, Entry> cache_;
};

/// Builds the annotator for a run, priced against the named simulated
/// machine (see microlauncher --list-arch) with the kernel request's summed
/// array bytes as the stability footprint. The model is priced from `arch`
/// even for the native backend: the sim's port geometry is the only model
/// the repo carries, and the bound is a bound, not an estimate.
std::shared_ptr<StaticAnnotator> makeStaticAnnotator(
    const std::string& arch, const KernelRequest& request);

/// Installs the campaign `predict` hook (no-op on nullptr).
void installPredict(CampaignOptions& campaign,
                    const std::shared_ptr<StaticAnnotator>& annotator);

/// Installs the planner's `predictedCpi`/`stable` hooks (no-op on nullptr):
/// static bounds seed the screening order, and provable stability caps the
/// round-0 screening protocol (the final round always runs untouched).
void installPlannerHooks(PlannerOptions& planner,
                         const std::shared_ptr<StaticAnnotator>& annotator);

}  // namespace microtools::launcher
