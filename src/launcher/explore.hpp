#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "launcher/campaign.hpp"
#include "launcher/planner.hpp"
#include "launcher/result_store.hpp"
#include "support/csv.hpp"

namespace microtools::launcher {

// ---------------------------------------------------------------------------
// Content-addressed cache key (the store itself lives in result_store.hpp)
// ---------------------------------------------------------------------------

/// Computes the content-addressed cache key of one variant measurement:
/// the FNV-1a digest over everything that can change the result — variant
/// source + kind + entry point, the full measurement protocol (inner/outer
/// repetitions, warmup, overhead subtraction, adaptive CV target and
/// budget), the backend identity string (backend name + machine/arch
/// configuration, e.g. "sim:nehalem_x5650_2s"), and the kernel request
/// (trip count, array shapes, element stride). The worker core is
/// deliberately excluded: per-worker pinning must not fragment the cache.
std::string cacheKey(const CampaignVariant& variant,
                     const CampaignOptions& options,
                     const std::string& backendId,
                     const KernelRequest& request);

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// Knobs of one `microtools explore` run: description in, ranked results
/// out, with every measurement flowing creator -> campaign in memory.
struct ExploreOptions {
  std::string descriptionFile;  ///< XML kernel description path
  std::string descriptionText;  ///< inline XML (tests); used when file == ""

  // -- generation overrides --------------------------------------------------
  std::optional<std::size_t> maxVariants;  ///< <maximum_benchmarks> override
  std::optional<std::uint64_t> seed;       ///< <seed> override

  /// Worker threads for the per-kernel generation stages (fanOut expansion,
  /// CodeEmission, Verification). 1 = serial; output is bit-identical
  /// across job counts (--generate-jobs).
  int generateJobs = 1;

  /// Streaming producer mode (--stream): measurement starts as soon as the
  /// first verified variant is emitted, so a cold run's wall-clock is
  /// max(generate, measure) instead of the sum. Results, CSV rows and cache
  /// records are identical to the batch path. Full sweeps only — the
  /// halving planner needs the complete variant set per round.
  bool stream = false;

  // -- execution -------------------------------------------------------------
  std::string backend = "sim";  ///< sim|native
  std::string arch = "nehalem_x5650_2s";
  std::optional<double> coreGHz;
  CampaignOptions campaign;  ///< jobs/protocol/adaptive/timeout knobs

  /// Escape hatch (`--sim-exact`): force the simulator backend to cycle-
  /// simulate every invoke — no steady-state extrapolation, no warm-invoke
  /// memoization. Results are bit-identical to the default fast path; this
  /// exists to prove that, and to debug the fast path when it isn't.
  bool simExact = false;

  /// Static cost-model integration (`--no-predict` turns it off). When on,
  /// every asm variant is annotated with the port-level cycles/iteration
  /// lower bound (CSV columns pred_cpi_lo/pred_bound/pred_err, priced
  /// against `arch`), the halving planner seeds its screening round in
  /// predicted order, and provably-stable variants screen with
  /// planner.stableScreenRepetitions instead of planner.screenRepetitions.
  /// Predictions are recomputed per run and never cached; measured values
  /// are never altered.
  bool predict = true;

  /// How the variant space is walked: Full sweeps everything at the
  /// baseline protocol (the paper's pipeline); Halving runs the
  /// successive-halving planner (screen cheap, keep the best half, double
  /// the budget, finish with the untouched baseline protocol).
  SearchMode search = SearchMode::Full;
  PlannerOptions planner;  ///< screen reps / budget / tie guard / resume

  /// Overrides the backend construction (tests inject counting backends).
  /// When empty, a SimBackend factory is built from `arch`/`coreGHz`
  /// ("native" requires an explicit factory — the CLI provides one).
  BackendFactory backendFactory;

  /// Cache-key identity of the execution environment; derived from
  /// backend/arch/coreGHz when empty. Must be set alongside a custom
  /// backendFactory.
  std::string backendId;

  // -- kernel request --------------------------------------------------------
  int nbVectors = 0;  ///< arrays passed to the kernel; 0 = derive from
                      ///< the generated programs' array counts
  std::uint64_t arrayBytes = 1 << 20;
  std::uint64_t alignment = 4096;
  std::uint64_t alignOffset = 0;
  std::uint64_t elementBytes = 4;
  std::optional<int> tripCount;  ///< explicit n; default from first array

  // -- cache -----------------------------------------------------------------
  std::string cacheDir = ".microtools-cache";
  bool useCache = true;

  // -- campaign service (--connect) ------------------------------------------
  /// When non-empty, this worker shards the campaign against a `microtools
  /// serve` daemon at the given address instead of using a local cache: the
  /// daemon owns the measurement cache, hands out idempotent work leases,
  /// and merges every worker's rows into the canonical CSV/report. Full
  /// sweeps only. Dispatch is per-variant (streaming), so a worker measures
  /// its leases while peers hold theirs.
  std::string connectAddr;
  std::string workerName;  ///< name in the daemon's telemetry ("": pid)
};

/// Outcome of one exploration run.
struct ExploreResult {
  std::vector<VariantResult> results;  ///< sequence order
  std::size_t generated = 0;           ///< programs MicroCreator emitted
  std::size_t cacheHits = 0;           ///< variants served from the cache
  std::size_t measured = 0;            ///< variants actually executed
  std::size_t skipped = 0;  ///< resumed from a CSV or verify-strict skipped
  std::size_t failures = 0;            ///< status error/timeout
  KernelRequest request;               ///< the request every variant ran
  std::string backendId;               ///< resolved backend identity

  /// Variant-measurement work actually executed: the sum of outer
  /// repetitions over fresh (non-cached, non-resumed) measurements. This is
  /// the denominator-compatible metric the halving planner's "<= 50% of the
  /// exhaustive work" contract is verified against.
  long long workRepetitions = 0;

  /// Measurement-cache access counters for this run (all zero when the
  /// cache is disabled): hits, misses, corrupt records, record-file reads.
  CacheTelemetry cacheTelemetry;

  // -- halving search only ---------------------------------------------------
  std::vector<RoundSummary> rounds;  ///< per-round planner accounting
  bool budgetExhausted = false;      ///< stopped early on --budget
  std::string stopReason;            ///< planner verdict ("" for full sweeps)
  std::size_t fullFidelityVariants = 0;  ///< variants in the final round
};

/// The end-to-end pipeline (§3 + §4 fused): parse the description, generate
/// every variant in memory, resolve cache hits, measure only what is new,
/// and stream rows into `sink` as they complete. No intermediate .s files
/// ever touch the filesystem.
ExploreResult runExplore(const ExploreOptions& options,
                         CampaignCsvSink* sink = nullptr);

/// Renders the ranked report: the `k` best status-ok variants by minimum
/// cycles/iteration (the paper's plotted metric), with CV, convergence and
/// cache provenance columns. k <= 0 ranks everything.
csv::Table topKReport(const std::vector<VariantResult>& results, int k);

}  // namespace microtools::launcher
