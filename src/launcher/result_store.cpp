#include "launcher/result_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"

namespace microtools::launcher {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMagic = "microtools-cache";
constexpr const char* kPackName = "index.pack";
constexpr const char* kRecordExt = ".mtres";

// Line-oriented record format shares the wire protocol's escaping (strings::
// escapeLineBreaks / unescapeLineBreaks).
std::string escape(const std::string& s) {
  return strings::escapeLineBreaks(s);
}

std::string unescape(const std::string& s) {
  return strings::unescapeLineBreaks(s);
}

std::string fmtDouble(double v) { return strings::format("%.17g", v); }

/// One journal frame: "entry <key> <nbytes> <fnv64hex>\n<payload>\n".
/// The length makes payloads with embedded newlines unambiguous; the
/// checksum rejects interleaved or torn appends.
std::string packFrame(const std::string& key, const std::string& payload) {
  std::string frame = "entry " + key + ' ' +
                      std::to_string(payload.size()) + ' ' +
                      hash::Fnv1a().str(payload).hex() + '\n';
  frame += payload;
  frame += '\n';
  return frame;
}

/// Parses the journal, stopping at the first malformed frame (a crash-torn
/// tail or a foreign write). Later entries for the same key win.
std::unordered_map<std::string, std::string> readPack(
    const std::string& path) {
  std::unordered_map<std::string, std::string> entries;
  std::ifstream in(path, std::ios::binary);
  if (!in) return entries;
  std::ostringstream oss;
  oss << in.rdbuf();
  std::string text = oss.str();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) break;
    std::vector<std::string> head =
        strings::splitWhitespace(text.substr(pos, eol - pos));
    if (head.size() != 4 || head[0] != "entry") break;
    auto nbytes = strings::parseInt(head[2]);
    if (!nbytes || *nbytes < 0) break;
    std::size_t start = eol + 1;
    std::size_t n = static_cast<std::size_t>(*nbytes);
    if (start + n >= text.size()) break;  // torn tail (payload + '\n' short)
    if (text[start + n] != '\n') break;
    std::string payload = text.substr(start, n);
    if (hash::Fnv1a().str(payload).hex() != head[3]) break;
    entries[head[1]] = std::move(payload);
    pos = start + n + 1;
  }
  return entries;
}

}  // namespace

MeasurementCache::MeasurementCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) throw McError("measurement cache requires a directory");
  packPath_ = (fs::path(dir_) / kPackName).string();
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw McError("cannot create cache directory '" + dir_ +
                  "': " + ec.message());
  }
  openIndex();
}

std::string MeasurementCache::recordPath(const std::string& key) const {
  // Two-level key-prefix shards; keys shorter than the prefix (tests) land
  // in "_" buckets, which hex digests can never occupy.
  std::string s1 = key.size() >= 2 ? key.substr(0, 2) : std::string("_");
  std::string s2 = key.size() >= 4 ? key.substr(2, 2) : std::string("_");
  return (fs::path(dir_) / s1 / s2 / (key + kRecordExt)).string();
}

void MeasurementCache::openIndex() {
  std::error_code ec;

  // 1. Migrate flat records from pre-shard caches into their shard. The
  //    listing is collected before any rename so the iterator never walks a
  //    directory being mutated.
  std::vector<fs::path> flat;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != kRecordExt) continue;
    flat.push_back(entry.path());
  }
  for (const fs::path& path : flat) {
    std::string target = recordPath(path.stem().string());
    fs::create_directories(fs::path(target).parent_path(), ec);
    fs::rename(path, target, ec);  // failure = one re-measure, never an error
  }

  // 2. One scan of the shard tree: key -> record file size.
  std::unordered_map<std::string, std::uintmax_t> scanned;
  for (const fs::directory_entry& l1 : fs::directory_iterator(dir_, ec)) {
    if (!l1.is_directory(ec)) continue;
    for (const fs::directory_entry& l2 :
         fs::directory_iterator(l1.path(), ec)) {
      if (!l2.is_directory(ec)) continue;
      for (const fs::directory_entry& f :
           fs::directory_iterator(l2.path(), ec)) {
        if (!f.is_regular_file(ec)) continue;
        if (f.path().extension() != kRecordExt) continue;
        std::uintmax_t size = f.file_size(ec);
        if (ec) continue;
        scanned.emplace(f.path().stem().string(), size);
      }
    }
  }

  // 3. Journal entries whose size matches the scanned file are trusted; a
  //    mismatch (or a missing frame) sends us to the file once. Frames
  //    without a backing file are dropped — files stay authoritative.
  std::unordered_map<std::string, std::string> packed = readPack(packPath_);
  for (auto& [key, size] : scanned) {
    auto it = packed.find(key);
    if (it != packed.end() && it->second.size() == size) {
      index_.emplace(key, std::move(it->second));
      continue;
    }
    std::ifstream in(recordPath(key), std::ios::binary);
    ++telemetry_.recordFileReads;
    if (!in) continue;
    std::ostringstream oss;
    oss << in.rdbuf();
    index_[key] = oss.str();
    appendToPack(key, index_[key]);
  }
}

void MeasurementCache::appendToPack(const std::string& key,
                                    const std::string& payload) {
  // Advisory flock + one write(2): worker processes sharing this cache
  // directory (campaign-service fleets) append concurrently, and while
  // O_APPEND makes each write atomic enough on local filesystems, the lock
  // also covers NFS-style filesystems and partial writes split by signals.
  // Failures never propagate — the journal is an optimization; readPack's
  // checksum catches anything torn and merely re-reads one record file.
  int fd = ::open(packPath_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                  0644);
  if (fd < 0) return;
  if (::flock(fd, LOCK_EX) != 0) {
    ::close(fd);
    return;
  }
  std::string frame = packFrame(key, payload);
  const char* data = frame.data();
  std::size_t remaining = frame.size();
  while (remaining > 0) {
    ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  ::flock(fd, LOCK_UN);
  ::close(fd);
}

std::optional<VariantResult> MeasurementCache::load(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++telemetry_.misses;
    return std::nullopt;
  }
  std::optional<VariantResult> result = deserialize(key, it->second);
  if (!result) {
    // Present but undecodable: a corrupt record is also a miss, counted in
    // both columns.
    ++telemetry_.corrupt;
    ++telemetry_.misses;
    return std::nullopt;
  }
  ++telemetry_.hits;
  return result;
}

void MeasurementCache::store(const std::string& key,
                             const VariantResult& result) {
  if (result.status != "ok") return;  // errors and timeouts must be retried
  std::string payload = serialize(key, result);
  std::string path = recordPath(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) throw McError("cannot create cache shard for: " + path);
  // Unique temp name per writer: campaign workers store concurrently, and
  // two variants with identical content share a key. The counter alone is
  // NOT enough — it is process-local, so two processes sharing one cache
  // dir would both start at 0, write the same "<key>.tmp0", and publish a
  // torn record. The pid makes the suffix unique across processes too.
  static std::atomic<std::uint64_t> counter{0};
  std::string tmp =
      path + ".tmp" + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw McError("cannot write cache record: " + tmp);
    out << payload;
  }
  fs::rename(tmp, path, ec);  // atomic publish on POSIX
  if (ec) {
    fs::remove(tmp, ec);
    throw McError("cannot publish cache record: " + path);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  appendToPack(key, payload);
  index_[key] = std::move(payload);
}

CacheTelemetry MeasurementCache::telemetry() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return telemetry_;
}

std::string MeasurementCache::serialize(const std::string& key,
                                        const VariantResult& r) {
  std::ostringstream oss;
  oss << kMagic << ' ' << kFormatVersion << '\n';
  oss << "key " << key << '\n';
  oss << "name " << escape(r.name) << '\n';
  oss << "status " << r.status << '\n';
  oss << "error " << escape(r.error) << '\n';
  oss << "note " << escape(r.note) << '\n';
  oss << "iterations_per_call " << r.measurement.iterationsPerCall << '\n';
  oss << "total_cycles " << fmtDouble(r.measurement.totalCycles) << '\n';
  const stats::Summary& s = r.measurement.cyclesPerIteration;
  oss << "count " << s.count << '\n';
  oss << "min " << fmtDouble(s.min) << '\n';
  oss << "max " << fmtDouble(s.max) << '\n';
  oss << "mean " << fmtDouble(s.mean) << '\n';
  oss << "median " << fmtDouble(s.median) << '\n';
  oss << "stddev " << fmtDouble(s.stddev) << '\n';
  oss << "cv " << fmtDouble(s.cv) << '\n';
  oss << "repetitions " << r.repetitions << '\n';
  oss << "final_cv " << fmtDouble(r.finalCv) << '\n';
  oss << "converged " << (r.converged ? 1 : 0) << '\n';
  oss << "attempts " << r.attempts << '\n';
  // Counter metrics are OPTIONAL fields: absent in records written before
  // counters existed (and for rdtsc-only measurements), which deserialize
  // tolerates without a format-version bump — missing simply means invalid.
  const CounterMetrics& c = r.measurement.counters;
  if (c.valid) {
    oss << "pc_valid 1\n";
    oss << "pc_instructions_per_iteration "
        << fmtDouble(c.instructionsPerIteration) << '\n';
    oss << "pc_ipc " << fmtDouble(c.ipc) << '\n';
    oss << "pc_l1_miss_rate " << fmtDouble(c.l1MissRate) << '\n';
    oss << "pc_llc_miss_rate " << fmtDouble(c.llcMissRate) << '\n';
    oss << "pc_stall_ratio " << fmtDouble(c.stallRatio) << '\n';
  }
  return oss.str();
}

std::optional<VariantResult> MeasurementCache::deserialize(
    const std::string& key, const std::string& text) {
  std::vector<std::string> lines = strings::split(text, '\n');
  if (lines.empty()) return std::nullopt;

  // Versioned header: records from other format versions are misses.
  std::vector<std::string> head = strings::splitWhitespace(lines.front());
  if (head.size() != 2 || head[0] != kMagic) return std::nullopt;
  auto version = strings::parseInt(head[1]);
  if (!version || *version != kFormatVersion) return std::nullopt;

  std::map<std::string, std::string> fields;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    std::size_t space = lines[i].find(' ');
    std::string field =
        space == std::string::npos ? lines[i] : lines[i].substr(0, space);
    std::string value =
        space == std::string::npos ? "" : lines[i].substr(space + 1);
    fields.emplace(std::move(field), std::move(value));
  }

  auto getStr = [&fields](const char* f) -> std::optional<std::string> {
    auto it = fields.find(f);
    if (it == fields.end()) return std::nullopt;
    return it->second;
  };
  auto getInt = [&getStr](const char* f) -> std::optional<std::int64_t> {
    auto v = getStr(f);
    if (!v) return std::nullopt;
    return strings::parseInt(*v);
  };
  auto getDouble = [&getStr](const char* f) -> std::optional<double> {
    auto v = getStr(f);
    if (!v) return std::nullopt;
    return strings::parseDouble(*v);
  };

  // A record stored under a different key (hand-renamed file) is a miss.
  auto storedKey = getStr("key");
  if (!storedKey || *storedKey != key) return std::nullopt;

  auto name = getStr("name");
  auto status = getStr("status");
  auto iterations = getInt("iterations_per_call");
  auto totalCycles = getDouble("total_cycles");
  auto count = getInt("count");
  auto minV = getDouble("min");
  auto maxV = getDouble("max");
  auto mean = getDouble("mean");
  auto median = getDouble("median");
  auto stddev = getDouble("stddev");
  auto cv = getDouble("cv");
  auto repetitions = getInt("repetitions");
  auto finalCv = getDouble("final_cv");
  auto converged = getInt("converged");
  auto attempts = getInt("attempts");
  bool complete = name && status && iterations && totalCycles && count &&
                  minV && maxV && mean && median && stddev && cv &&
                  repetitions && finalCv && converged && attempts;
  if (!complete) return std::nullopt;
  // Only successful measurements are cacheable; anything else is corrupt.
  if (*status != "ok" || *iterations < 0 || *count < 0) return std::nullopt;

  VariantResult r;
  r.name = unescape(*name);
  r.status = *status;
  r.error = unescape(getStr("error").value_or(""));
  r.note = unescape(getStr("note").value_or(""));
  r.measurement.iterationsPerCall = static_cast<std::uint64_t>(*iterations);
  r.measurement.totalCycles = *totalCycles;
  r.measurement.cyclesPerIteration.count = static_cast<std::size_t>(*count);
  r.measurement.cyclesPerIteration.min = *minV;
  r.measurement.cyclesPerIteration.max = *maxV;
  r.measurement.cyclesPerIteration.mean = *mean;
  r.measurement.cyclesPerIteration.median = *median;
  r.measurement.cyclesPerIteration.stddev = *stddev;
  r.measurement.cyclesPerIteration.cv = *cv;
  r.repetitions = static_cast<int>(*repetitions);
  r.finalCv = *finalCv;
  r.converged = *converged != 0;
  r.attempts = static_cast<int>(*attempts);
  if (getInt("pc_valid").value_or(0) != 0) {
    CounterMetrics& c = r.measurement.counters;
    c.valid = true;  // individual fields default to NaN when absent
    auto setMetric = [&getDouble](double& dst, const char* field) {
      if (auto v = getDouble(field)) dst = *v;
    };
    setMetric(c.instructionsPerIteration, "pc_instructions_per_iteration");
    setMetric(c.ipc, "pc_ipc");
    setMetric(c.l1MissRate, "pc_l1_miss_rate");
    setMetric(c.llcMissRate, "pc_llc_miss_rate");
    setMetric(c.stallRatio, "pc_stall_ratio");
  }
  return r;
}

}  // namespace microtools::launcher
