#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "launcher/result_store.hpp"
#include "launcher/wire.hpp"
#include "support/socket.hpp"

namespace microtools::launcher {

/// Client-side knobs of one worker's connection to a `microtools serve`
/// daemon.
struct RemoteOptions {
  std::string worker;  ///< name reported in the daemon's telemetry ("": pid)
  int jobs = 1;        ///< this worker's measurement threads (sizes the
                       ///< daemon's per-worker lease backpressure window)
  int pollMs = 20;     ///< floor for wait/defer retry sleeps
};

/// `ResultStore` over the wire: the client half of the campaign service.
/// load/store satisfy the plain interface (cache probe / cache write); the
/// campaign API (begin/acquire/publish/forwardRow) adds the lease protocol
/// sharded workers use to dedupe work against the shared store.
///
/// Thread-safety: one socket, one in-flight request — every round trip is
/// serialized on an internal mutex, which is never held while sleeping
/// between acquire polls, so pool threads publish results while the
/// campaign thread waits for backpressure to clear.
class RemoteResultStore : public ResultStore {
 public:
  /// Connects and performs the hello/welcome version handshake; throws
  /// McError on connection failure or version mismatch.
  explicit RemoteResultStore(const std::string& address,
                             RemoteOptions options = {});
  ~RemoteResultStore() override;

  const std::string& workerName() const { return options_.worker; }

  /// Plain ResultStore: a probe never takes a lease.
  std::optional<VariantResult> load(const std::string& key) override;
  void store(const std::string& key, const VariantResult& result) override;

  /// Announces a campaign: its deterministic id (hash of backend identity +
  /// ordered variant keys) and the variant count the daemon should expect
  /// before it can finalize the canonical CSV/report.
  void begin(const std::string& campaignId, std::size_t variantCount);

  /// This worker's 0-based joining order for the announced campaign, as
  /// assigned by the daemon. Clients use it to stagger their traversal so
  /// fleet members lease disjoint stretches of the variant space.
  std::size_t ordinal() const { return ordinal_; }

  /// Resolves `key` to either a terminal result (returns true, `out`
  /// filled — a cache hit or another worker's completed row) or a lease
  /// owned by this worker (returns false: measure it, then publish +
  /// forwardRow). Blocks politely while the variant is leased elsewhere
  /// (`wait`) or while this worker is at its lease cap (`defer`).
  bool acquire(const std::string& key, VariantResult& out);

  /// Publishes a measured result against the lease acquire() took.
  void publish(const std::string& key, const VariantResult& result);

  /// Forwards one canonical campaign row (every terminal row, failures
  /// included — this is also what releases a lease held on `key` when the
  /// measurement could not produce a cacheable result).
  void forwardRow(const std::string& key, const VariantResult& row);

  /// Client-side view: hits = acquires answered inline, misses = leases
  /// this worker had to measure.
  CacheTelemetry telemetry() const;

 private:
  wire::Message call(const wire::Message& request);

  RemoteOptions options_;
  std::string campaignId_;
  std::size_t ordinal_ = 0;
  mutable std::mutex mutex_;
  net::Socket socket_;
  std::map<std::string, std::string> leases_;  ///< key -> lease id
  CacheTelemetry telemetry_;
};

/// Deterministic campaign identity: FNV-1a over the backend id and the
/// ordered variant keys. Workers sharding one campaign compute identical
/// ids because generation itself is bit-identical across processes.
std::string campaignIdFor(const std::string& backendId,
                          const std::vector<std::string>& keys);

/// Where worker `ordinal` should start its rotated traversal of `count`
/// variants. Van der Corput (bit-reversal) staggering spreads any fleet
/// size across the variant space without the fleet size being known up
/// front, so workers lease disjoint stretches instead of colliding in
/// lockstep; a power-of-two fleet partitions the space exactly evenly.
std::size_t shardOffset(std::size_t ordinal, std::size_t count);

/// Binds an unmodified CampaignRunner to a serve daemon: computes every
/// variant's cache key, announces the campaign, and installs the remote
/// lookup (acquire) / store (publish) hooks plus the row observer that
/// streams every terminal row to the daemon's canonical merge. Returns the
/// connected store so the caller can read telemetry after the run.
std::shared_ptr<RemoteResultStore> bindRemoteCampaign(
    const std::string& address, const RemoteOptions& options,
    const std::vector<CampaignVariant>& variants,
    const std::string& backendId, const KernelRequest& request,
    CampaignOptions& campaign);

}  // namespace microtools::launcher
