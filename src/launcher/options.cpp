#include "launcher/options.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::launcher {

int LauncherOptions::effectiveTripCount() const {
  if (tripCount) return *tripCount;
  if (elementBytes == 0) throw McError("--element-bytes must be > 0");
  std::uint64_t bytes = arrayBytesPerVector.empty()
                            ? arrayBytes
                            : arrayBytesPerVector.front();
  std::uint64_t elements = bytes / elementBytes;
  if (elements == 0 || elements > 0x7fffffffull) {
    throw McError("array size yields an invalid trip count");
  }
  return static_cast<int>(elements);
}

KernelRequest LauncherOptions::toRequest() const {
  KernelRequest request;
  request.n = effectiveTripCount();
  request.core = pinCore;
  request.chunkStrideBytes = elementBytes;
  for (int i = 0; i < nbVectors; ++i) {
    ArraySpec spec;
    spec.bytes = static_cast<std::size_t>(i) < arrayBytesPerVector.size()
                     ? arrayBytesPerVector[static_cast<std::size_t>(i)]
                     : arrayBytes;
    spec.alignment = alignment;
    spec.offset = alignOffset;
    request.arrays.push_back(spec);
  }
  return request;
}

ProtocolOptions LauncherOptions::toProtocol() const {
  ProtocolOptions p;
  p.innerRepetitions = innerRepetitions;
  p.outerRepetitions = outerRepetitions;
  p.warmup = !noWarmup;
  p.subtractOverhead = !noOverheadSubtraction;
  return p;
}

cli::Parser makeLauncherParser() {
  cli::Parser parser(
      "microlauncher",
      "Executes microbenchmark kernels in a stable, controlled environment "
      "and reports cycles per iteration as CSV.");
  parser.addString("input", "Kernel file (assembly, C, or shared object)");
  parser.addString("input-kind", "Input kind: auto|asm|c|so", "auto");
  parser.addString("function", "Kernel entry-point symbol", "microkernel");
  parser.addString("standalone", "Fork and time a stand-alone program");
  parser.addInt("nbvectors", "Number of arrays passed to the kernel", 1);
  parser.addInt("array-bytes", "Size of each array in bytes", 1 << 20);
  parser.addRepeated("array-bytes-n", "Per-array size override (repeatable)");
  parser.addInt("alignment", "Array base alignment in bytes", 4096);
  parser.addInt("align-offset", "Extra offset added to each array base", 0);
  parser.addInt("element-bytes",
                "Bytes per array element (4 = float, 8 = double)", 4);
  parser.addFlag("sweep-alignment", "Sweep array alignment offsets");
  parser.addInt("align-min", "Sweep: first offset", 0);
  parser.addInt("align-max", "Sweep: last offset (exclusive)", 4096);
  parser.addInt("align-step", "Sweep: offset step", 64);
  parser.addInt("max-align-configs", "Sweep: configuration cap", 2500);
  parser.addInt("n", "Kernel trip count (default: first array's elements)");
  parser.addInt("inner", "Inner repetitions per timed experiment", 8);
  parser.addInt("outer", "Outer (stability) repetitions", 10);
  parser.addFlag("no-warmup", "Skip the cache warm-up call");
  parser.addFlag("no-overhead", "Do not subtract timer overhead");
  parser.addFlag("full-time", "Report full kernel time, not cycles/iteration");
  parser.addInt("pin", "Core to pin the kernel to", 0);
  parser.addInt("cores", "Fork mode: number of processes/cores", 1);
  parser.addString("pin-policy", "Fork pinning: scatter|compact", "scatter");
  parser.addInt("fork-calls", "Fork mode: kernel calls per process", 4);
  parser.addFlag("openmp", "Run the kernel as an OpenMP parallel-for");
  parser.addInt("threads", "OpenMP threads", 4);
  parser.addInt("omp-repetitions", "OpenMP parallel regions to time", 10);
  parser.addString("campaign",
                   "Run every .s/.c kernel in this directory as a campaign");
  parser.addInt("jobs", "Campaign: parallel worker threads", 1);
  parser.addDouble("max-cv",
                   "Campaign: re-run a variant while its cycles/iteration CV "
                   "exceeds this (0 disables)",
                   0.05);
  parser.addInt("max-repetitions",
                "Campaign: total outer-repetition budget per variant", 40);
  parser.addInt("variant-timeout-ms",
                "Campaign: per-variant wall-clock budget (0 = none)", 0);
  parser.addInt("compile-jobs",
                "Campaign: compile-pipeline producer threads that batch-"
                "compile variants ahead of the measurement workers (0 = "
                "compile inline)",
                0);
  parser.addInt("compile-batch",
                "Campaign: variants grouped into one compiler invocation", 8);
  parser.addString("compile-cache-dir",
                   "Content-addressed cache of compiled .so artifacts "
                   "(native backend; empty = no cache)");
  parser.addString("verify",
                   "Campaign: static pre-flight verification of assembly "
                   "variants — strict skips variants with error-level "
                   "diagnostics (ABI clobbers, provable out-of-bounds) "
                   "before they can crash the campaign; warn only annotates "
                   "the CSV; off disables the check",
                   "strict");
  parser.addString("search",
                   "Campaign: variant-space walk — full measures every "
                   "variant at the baseline protocol; halving screens "
                   "everything cheaply, keeps the best half per round, and "
                   "finishes the survivors at full fidelity",
                   "full");
  parser.addString("budget",
                   "Campaign halving budget: '<seconds>s' wall-clock (e.g. "
                   "30s) or a count of fresh variant measurements; on "
                   "exhaustion the best-so-far ranking is reported");
  parser.addInt("screen-reps",
                "Campaign halving: outer repetitions of the round-0 "
                "screening pass",
                1);
  parser.addInt("stable-screen-reps",
                "Campaign halving: screening repetitions for variants the "
                "static stability analysis proves tight; only applies when "
                "below --screen-reps",
                1);
  parser.addFlag("no-predict",
                 "Disable the static cost model: no pred_cpi_lo/pred_bound "
                 "CSV columns, no predicted screening order, no "
                 "stability-reduced screening repetitions");
  parser.addString("connect",
                   "Campaign: shard against a `microtools serve` daemon at "
                   "host:port or unix:/path — the daemon owns the "
                   "measurement cache and hands out work leases (full "
                   "sweeps only)");
  parser.addString("worker-name",
                   "Name reported in the serve daemon's telemetry "
                   "(default: the worker's pid)");
  parser.addString("backend", "Execution backend: sim|native", "sim");
  parser.addFlag("no-perf-counters",
                 "Do not open perf_event counter groups around native "
                 "kernel calls (rdtsc timing only; counter-derived CSV "
                 "columns stay empty)");
  parser.addString("arch", "Simulated machine (see --list-arch)",
                   "nehalem_x5650_2s");
  parser.addDouble("core-ghz", "Override the core frequency (DVFS study)");
  parser.addInt("seed", "Deterministic seed", 1);
  parser.addString("csv", "Write CSV to this file instead of stdout");
  parser.addFlag("verbose", "Enable info logging");
  parser.addFlag("list-arch", "List the Table-1 architectures and exit");
  return parser;
}

LauncherOptions optionsFromParser(const cli::Parser& parser) {
  LauncherOptions o;
  if (parser.has("input")) o.inputFile = parser.getString("input");
  o.inputKind = parser.getString("input-kind");
  o.function = parser.getString("function");
  if (parser.has("standalone")) {
    o.standaloneProgram = parser.getString("standalone");
  }
  o.nbVectors = static_cast<int>(parser.getInt("nbvectors"));
  o.arrayBytes = static_cast<std::uint64_t>(parser.getInt("array-bytes"));
  for (const std::string& v : parser.getRepeated("array-bytes-n")) {
    auto parsed = strings::parseInt(v);
    if (!parsed || *parsed <= 0) {
      throw ParseError("--array-bytes-n expects a positive integer");
    }
    o.arrayBytesPerVector.push_back(static_cast<std::uint64_t>(*parsed));
  }
  o.alignment = static_cast<std::uint64_t>(parser.getInt("alignment"));
  o.alignOffset = static_cast<std::uint64_t>(parser.getInt("align-offset"));
  o.elementBytes = static_cast<std::uint64_t>(parser.getInt("element-bytes"));
  o.sweepAlignment = parser.getFlag("sweep-alignment");
  o.alignMin = static_cast<std::uint64_t>(parser.getInt("align-min"));
  o.alignMax = static_cast<std::uint64_t>(parser.getInt("align-max"));
  o.alignStep = static_cast<std::uint64_t>(parser.getInt("align-step"));
  o.maxAlignConfigs =
      static_cast<std::uint64_t>(parser.getInt("max-align-configs"));
  if (parser.has("n")) o.tripCount = static_cast<int>(parser.getInt("n"));
  o.innerRepetitions = static_cast<int>(parser.getInt("inner"));
  o.outerRepetitions = static_cast<int>(parser.getInt("outer"));
  o.noWarmup = parser.getFlag("no-warmup");
  o.noOverheadSubtraction = parser.getFlag("no-overhead");
  o.reportFullKernelTime = parser.getFlag("full-time");
  o.pinCore = static_cast<int>(parser.getInt("pin"));
  o.processes = static_cast<int>(parser.getInt("cores"));
  o.pinPolicy = parser.getString("pin-policy");
  o.forkCalls = static_cast<int>(parser.getInt("fork-calls"));
  o.useOpenMp = parser.getFlag("openmp");
  o.threads = static_cast<int>(parser.getInt("threads"));
  o.ompRepetitions = static_cast<int>(parser.getInt("omp-repetitions"));
  if (parser.has("campaign")) o.campaignDir = parser.getString("campaign");
  o.jobs = static_cast<int>(parser.getInt("jobs"));
  o.maxCv = parser.getDouble("max-cv");
  o.maxRepetitions = static_cast<int>(parser.getInt("max-repetitions"));
  o.variantTimeoutMs = static_cast<int>(parser.getInt("variant-timeout-ms"));
  o.compileJobs = static_cast<int>(parser.getInt("compile-jobs"));
  o.compileBatch = static_cast<int>(parser.getInt("compile-batch"));
  if (parser.has("compile-cache-dir")) {
    o.compileCacheDir = parser.getString("compile-cache-dir");
  }
  o.verifyMode = parser.getString("verify");
  o.searchMode = parser.getString("search");
  if (parser.has("budget")) o.budget = parser.getString("budget");
  o.screenRepetitions = static_cast<int>(parser.getInt("screen-reps"));
  o.stableScreenRepetitions =
      static_cast<int>(parser.getInt("stable-screen-reps"));
  o.predict = !parser.getFlag("no-predict");
  if (parser.has("connect")) o.connectAddr = parser.getString("connect");
  if (parser.has("worker-name")) o.workerName = parser.getString("worker-name");
  o.backend = parser.getString("backend");
  o.perfCounters = !parser.getFlag("no-perf-counters");
  o.arch = parser.getString("arch");
  if (parser.has("core-ghz")) o.coreGHz = parser.getDouble("core-ghz");
  o.seed = static_cast<std::uint64_t>(parser.getInt("seed"));
  if (parser.has("csv")) o.csvOutput = parser.getString("csv");
  o.verbose = parser.getFlag("verbose");
  o.listArch = parser.getFlag("list-arch");

  if (o.nbVectors < 0 || o.nbVectors > 5) {
    throw ParseError("--nbvectors must be between 0 and 5");
  }
  if (o.pinPolicy != "scatter" && o.pinPolicy != "compact") {
    throw ParseError("--pin-policy must be scatter or compact");
  }
  if (o.backend != "sim" && o.backend != "native") {
    throw ParseError("--backend must be sim or native");
  }
  if (o.elementBytes == 0) {
    throw ParseError("--element-bytes must be > 0");
  }
  if (o.jobs < 1) {
    throw ParseError("--jobs must be >= 1");
  }
  if (o.variantTimeoutMs < 0) {
    throw ParseError("--variant-timeout-ms must be >= 0");
  }
  if (o.compileJobs < 0) {
    throw ParseError("--compile-jobs must be >= 0");
  }
  if (o.compileBatch < 1) {
    throw ParseError("--compile-batch must be >= 1");
  }
  if (o.verifyMode != "off" && o.verifyMode != "warn" &&
      o.verifyMode != "strict") {
    throw ParseError("--verify must be off, warn, or strict");
  }
  if (o.searchMode != "full" && o.searchMode != "halving") {
    throw ParseError("--search must be full or halving");
  }
  if (o.screenRepetitions < 1) {
    throw ParseError("--screen-reps must be >= 1");
  }
  if (o.stableScreenRepetitions < 1) {
    throw ParseError("--stable-screen-reps must be >= 1");
  }
  return o;
}

}  // namespace microtools::launcher
