#pragma once

#include <memory>
#include <string>
#include <vector>

#include "launcher/backend.hpp"
#include "launcher/protocol.hpp"
#include "support/csv.hpp"

namespace microtools::launcher {

/// Specification of an array-alignment sweep (§5.2.2: "MicroLauncher tests
/// a variety of alignment settings for each allocated array").
struct AlignmentSweepSpec {
  std::uint64_t minOffset = 0;
  std::uint64_t maxOffset = 4096;  ///< exclusive
  std::uint64_t step = 64;
  std::size_t maxConfigs = 2500;   ///< the paper tests "upwards of 2500"
};

/// One point of an alignment sweep.
struct AlignmentSample {
  std::vector<std::uint64_t> offsets;  ///< per-array byte offsets
  Measurement measurement;
};

/// Enumerates per-array offset tuples for a sweep. When the full cartesian
/// product exceeds maxConfigs the space is sampled deterministically and
/// uniformly (stride-decoded mixed-radix walk), so every array's offset
/// varies across the returned configurations.
std::vector<std::vector<std::uint64_t>> alignmentConfigurations(
    std::size_t arrayCount, const AlignmentSweepSpec& spec);

/// MicroLauncher facade: "executes a benchmark program in a contained and
/// controlled environment" (§4). Owns a backend and exposes the study types
/// the paper's evaluation uses: single measurements, alignment sweeps,
/// fork-based multi-core runs and OpenMP runs, all reporting
/// cycles-per-iteration CSV rows (§4.3).
class MicroLauncher {
 public:
  explicit MicroLauncher(std::unique_ptr<Backend> backend);

  Backend& backend() { return *backend_; }

  std::unique_ptr<KernelHandle> load(const std::string& asmText,
                                     const std::string& functionName);
  std::unique_ptr<KernelHandle> load(const creator::GeneratedProgram& p);

  /// Single-kernel measurement with the Figure-10 protocol.
  Measurement measure(KernelHandle& kernel, const KernelRequest& request,
                      const ProtocolOptions& options = {});

  /// Alignment sweep: measures every configuration from
  /// alignmentConfigurations() applied to the request's arrays.
  std::vector<AlignmentSample> alignmentSweep(
      KernelHandle& kernel, const KernelRequest& request,
      const AlignmentSweepSpec& spec, const ProtocolOptions& options = {});

  /// Fork mode (§4.6): per-process aggregate results.
  std::vector<InvokeResult> fork(KernelHandle& kernel,
                                 const KernelRequest& request, int processes,
                                 int calls, PinPolicy policy);

  /// OpenMP mode (§5.2.3).
  InvokeResult openmp(KernelHandle& kernel, const KernelRequest& request,
                      int threads, int repetitions);

  /// Renders measurements into the launcher's CSV output format (§4.3):
  /// one row per configuration with min/mean/median/max cycles/iteration.
  static csv::Table toCsv(
      const std::vector<std::pair<std::string, Measurement>>& rows);

 private:
  std::unique_ptr<Backend> backend_;
};

}  // namespace microtools::launcher
