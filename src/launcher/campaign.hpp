#pragma once

#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "launcher/backend.hpp"
#include "launcher/protocol.hpp"
#include "support/csv.hpp"

namespace microtools::verify {
struct VerifyOptions;
}  // namespace microtools::verify

namespace microtools::launcher {

/// One benchmark variant of a campaign: a MicroCreator-generated program or
/// a source file picked up from a campaign directory.
struct CampaignVariant {
  std::string name;                      ///< unique label (file stem)
  std::string kind = "asm";              ///< asm|c (Backend::loadSource)
  std::string source;                    ///< kernel source text
  std::string functionName = "microkernel";
  std::string contentId;  ///< creator content digest ("" for file variants)
};

/// Outcome of one variant, in input order (`sequence`).
struct VariantResult {
  std::size_t sequence = 0;  ///< index of the variant in the input batch
  int round = 0;  ///< planner round that produced this row (0: plain sweep)
  std::string name;
  std::string status = "ok";  ///< ok|error|timeout|skipped
  std::string error;          ///< message when status != ok
  Measurement measurement;    ///< valid only when status == ok
  int repetitions = 0;        ///< final outer-repetition count
  double finalCv = 0.0;       ///< CV of the final sample set (NaN: undefined)
  bool converged = true;      ///< finalCv <= maxCv (when adaptive is on)
  int attempts = 1;           ///< 1, or 2 after a retry on ExecutionError
  bool cached = false;        ///< served from the measurement cache
  std::string note;           ///< diagnostic annotation (degenerate CV, resume)
  std::string verify;  ///< pre-flight verdict ("ok", "E:.../W:...", or "")

  /// Static cost-model annotation (CampaignOptions::predict): lower bound on
  /// cycles/iteration and the binding constraint ("frontend", "latency", or
  /// a port pool). NaN/"" when no predictor ran or the kernel's shape is
  /// outside the model. Recomputed per run — never stored in the
  /// measurement cache, so cached rows pick up model improvements for free.
  double predCpiLo = std::numeric_limits<double>::quiet_NaN();
  std::string predBound;
};

/// Pre-measurement hook: return true and fill `out` to satisfy a variant
/// from the measurement cache instead of running it (`sequence`, `name` and
/// `cached` are overwritten by the runner).
using CacheLookup =
    std::function<bool(const CampaignVariant& variant, VariantResult& out)>;

/// Post-measurement hook: persist a completed (status == "ok") result.
using CacheStore = std::function<void(const CampaignVariant& variant,
                                      const VariantResult& result)>;

/// Static-prediction hook: annotate `out` (predCpiLo/predBound) for a
/// variant. Called once per variant on the campaign thread before any
/// measurement or cache decision, on every path that appends a row.
using Predictor =
    std::function<void(const CampaignVariant& variant, VariantResult& out)>;

/// Per-variant screening-repetition override: returns a cap applied to both
/// the protocol's outer repetitions and the adaptive budget for this
/// variant, or 0 to keep the campaign protocol untouched. The measurement
/// cache key incorporates the effective (capped) protocol, so overridden
/// rows never alias full-fidelity entries.
using RepetitionOverride = std::function<int(const CampaignVariant& variant)>;

/// Row hook: fires once per terminal row exactly where the CSV sink would
/// append it (cache hits, verify-strict skips, measured rows, pipeline
/// phantom rows — but NOT resume skips, whose rows already exist in the file
/// being resumed). Campaign-service workers use it to forward every row to
/// the daemon's canonical merge. Called from worker threads; must be
/// thread-safe.
using RowObserver = std::function<void(const CampaignVariant& variant,
                                       const VariantResult& row)>;

/// Pre-flight static verification policy for "asm" variants (verify::).
/// Off keeps the pre-PR-5 behavior bit-identical; Warn annotates the CSV
/// `verify` column but still measures everything; Strict skips variants
/// whose verification reports an error (ABI clobber, provable OOB, ...)
/// before any compile or dlopen can crash the campaign.
enum class VerifyMode { Off, Warn, Strict };

/// Parses a --verify value ("off"|"warn"|"strict"); throws McError on
/// anything else.
VerifyMode verifyModeFromName(const std::string& name);

/// Campaign execution knobs.
struct CampaignOptions {
  int jobs = 1;                ///< worker threads, each owning one Backend
  ProtocolOptions protocol;    ///< baseline Figure-10 protocol per variant
  double maxCv = 0.05;         ///< adaptive-repetition CV target (<=0: off)
  int maxRepetitions = 40;     ///< total outer-repetition budget per variant
  int variantTimeoutMs = 0;    ///< cooperative per-variant timeout (0: none)
  bool pinWorkers = false;     ///< pin worker w's requests to core w (native)

  /// Pipelined compilation: `compileJobs` producer threads call
  /// Backend::prepareBatch() on groups of `compileBatch` variants and feed a
  /// bounded queue ahead of the measurement workers, so compiling variant
  /// N+k overlaps measuring variant N and pinned workers never block on the
  /// compiler. 0 disables the pipeline (each worker compiles inline, the
  /// pre-PR-4 behavior). Results are bit-identical either way: preparation
  /// only transforms sources, never measures.
  int compileJobs = 0;
  int compileBatch = 8;  ///< variants per prepareBatch() call (>= 1)

  /// Static pre-flight verification of "asm" variants. Library default is
  /// Off (bit-compatible with earlier campaigns); the CLIs default to
  /// Strict. Skipped variants get a CSV row with status "skipped" and the
  /// rule summary in `verify`/`error`.
  VerifyMode verify = VerifyMode::Off;

  CacheLookup cacheLookup;     ///< pre-measurement cache probe (optional)
  CacheStore cacheStore;       ///< post-measurement cache write (optional)
  RowObserver rowObserver;     ///< per-terminal-row hook (optional)
  Predictor predict;           ///< static cost-model annotation (optional)

  /// Per-variant repetition cap for stability-directed screening
  /// (optional). Applied inside runOne and inside explore's cacheKey.
  RepetitionOverride repOverride;

  /// Stamped onto every VariantResult (and its CSV row) this run produces.
  /// The successive-halving planner runs one campaign per round and bumps
  /// this so rows from different fidelity levels stay distinguishable in a
  /// single streamed CSV; a plain exhaustive sweep leaves it at 0.
  int round = 0;

  /// (sequence, name) pairs already terminal in a previous run (CSV
  /// resume; see readCompletedVariants): these variants are marked
  /// "skipped" without touching a backend, and are NOT re-appended to the
  /// sink — their rows already exist in the file being resumed.
  std::set<std::pair<std::size_t, std::string>> completed;
};

/// Pull-based variant producer for streaming campaigns: returns the next
/// variant, or nullopt when the stream is exhausted. Called only from the
/// campaign thread, so implementations need no internal locking beyond
/// whatever feeds them.
using VariantSource = std::function<std::optional<CampaignVariant>()>;

/// Creates the Backend a given worker owns for the whole campaign. Workers
/// 0..jobs-1 are measurement workers; when the compile pipeline is on
/// (CampaignOptions::compileJobs > 0), workers jobs..jobs+compileJobs-1 are
/// compile producers that only ever call prepareBatch() on their backend.
using BackendFactory = std::function<std::unique_ptr<Backend>(int worker)>;

/// Streams finished variant rows to a CSV file or stream as they complete,
/// so a crashed campaign loses nothing. Rows are appended in completion
/// order and carry their `sequence` column; one flush per row. When opened
/// on a path, the header is only written if the file is new or empty, so
/// resumed campaigns append cleanly. Resuming an existing file is hardened
/// two ways: a file whose header differs from the current csvHeader() is
/// rejected (McError) instead of silently mixing schemas, and a file whose
/// last row was truncated by a crash gets a newline before the first new
/// row so the next append cannot concatenate onto the torn line.
class CampaignCsvSink {
 public:
  /// Opens `path` for appending. For a new or empty file, `preamble`
  /// (typically env::toCsvComments output — "#"-prefixed lines) is written
  /// before the header; an existing file keeps its original preamble.
  explicit CampaignCsvSink(const std::string& path,
                           const std::string& preamble = "");
  explicit CampaignCsvSink(std::ostream& os);
  ~CampaignCsvSink();

  void append(const VariantResult& result);

 private:
  void writeLine(const std::vector<std::string>& cells);

  std::mutex mutex_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_ = nullptr;
  bool headerWritten_ = false;
};

/// Dispatches a batch of variants across `jobs` worker threads. Each worker
/// owns the Backend the factory built for it; every variant gets a freshly
/// reset backend, a cooperative timeout, one retry on ExecutionError, and
/// adaptive repetition until its CV target or budget is reached — so results
/// are bit-identical regardless of job count or completion order (on
/// deterministic backends).
class CampaignRunner {
 public:
  CampaignRunner(BackendFactory factory, CampaignOptions options);

  /// Runs every variant against `request`; optionally streams rows into
  /// `sink` as they complete. Returns results ordered by sequence.
  std::vector<VariantResult> run(const std::vector<CampaignVariant>& variants,
                                 const KernelRequest& request,
                                 CampaignCsvSink* sink = nullptr);

  /// Streaming run: pulls variants from `source` as they become available
  /// (sequence = arrival order) and dispatches cache misses to the worker
  /// pool immediately, so measurement overlaps whatever produces the
  /// variants. The pool and each worker's Backend are created lazily on the
  /// first miss — a fully cached stream still constructs zero backends.
  /// Resume skips, verification and cache hooks behave exactly as in run();
  /// on deterministic backends the results are bit-identical to batching
  /// the same variants through run(). The compile pipeline is not used
  /// (compileJobs is ignored with a warning): batching compiles would
  /// re-serialize the stream.
  std::vector<VariantResult> runStream(const VariantSource& source,
                                       const KernelRequest& request,
                                       CampaignCsvSink* sink = nullptr);

  static std::vector<std::string> csvHeader();
  static std::vector<std::string> csvRow(const VariantResult& result);

  /// Renders results (in sequence order) as a CSV table.
  static csv::Table toCsv(const std::vector<VariantResult>& results);

 private:
  VariantResult runOne(Backend& backend, const CampaignVariant& variant,
                       std::size_t sequence, const KernelRequest& request);

  /// Shared upfront resolution: resume skip -> verify pre-flight -> cache
  /// probe. Returns true when the variant is terminal without measurement
  /// (r filled, row appended to sink where due); false leaves `r` primed
  /// (sequence/round/name/verify) for measurement.
  bool resolveUpfront(const CampaignVariant& variant, std::size_t sequence,
                      const verify::VerifyOptions& verifyOptions,
                      VariantResult& r, CampaignCsvSink* sink);

  BackendFactory factory_;
  CampaignOptions options_;
};

/// Scans `dir` (non-recursively) for `.s` and `.c` kernels, sorted by file
/// name for a deterministic sequence. Throws McError when the directory is
/// missing or holds no kernels.
std::vector<CampaignVariant> loadCampaignDirectory(
    const std::string& dir, const std::string& functionName = "microkernel");

/// Reads a campaign CSV written by CampaignCsvSink and returns the
/// (sequence, name) pairs of rows with a TERMINAL status — ok, error,
/// timeout, or skipped — i.e. the set a resumed campaign can skip. Every
/// status the runner writes is terminal (a failed variant already got its
/// retry; a verify-strict skip is a verdict, not a transient), so re-running
/// such a variant on resume would only duplicate its row. Missing files
/// yield an empty set; "#" comment lines are skipped, and rows narrower
/// than the schema — the runner always writes full-width rows — are treated
/// as crash-torn remnants: ignored here so the variant is re-measured.
std::set<std::pair<std::size_t, std::string>> readCompletedVariants(
    const std::string& csvPath);

/// Round-aware overload for resuming a successive-halving CSV: only rows
/// whose `round` column equals `round` are returned. Files written before
/// the round column existed are rejected by CampaignCsvSink anyway, but for
/// robustness a missing round column here counts every row as round 0.
std::set<std::pair<std::size_t, std::string>> readCompletedVariants(
    const std::string& csvPath, int round);

/// Wraps a MicroCreator batch as campaign variants.
std::vector<CampaignVariant> variantsFromPrograms(
    const std::vector<creator::GeneratedProgram>& programs);

}  // namespace microtools::launcher
