#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace microtools::launcher {

/// Knobs of the campaign-CSV comparison (`microtools bench-diff`).
struct BenchDiffOptions {
  /// Campaign CSV column compared per variant. Any numeric column works;
  /// the default is the median cycles/iteration (robust to outlier rows).
  std::string metric = "cycles_per_iteration_median";

  /// Minimum relative delta worth flagging at all (5% default).
  double relThreshold = 0.05;

  /// Noise multiplier: the effective threshold per variant is
  /// max(relThreshold, cvMultiplier * pooledCv) where pooledCv =
  /// sqrt(cvOld^2 + cvNew^2) — the μOpTime-style rule that a delta inside
  /// the combined measurement noise proves nothing.
  double cvMultiplier = 3.0;
};

/// Per-variant rollup of one CSV file: all status-ok rows for the variant
/// collapsed into robust statistics of the chosen metric.
struct VariantRollup {
  std::size_t samples = 0;  ///< ok rows contributing
  double median = std::numeric_limits<double>::quiet_NaN();
  double p95 = std::numeric_limits<double>::quiet_NaN();
  /// Noise estimate: max of the across-row CV of the metric and the median
  /// of the rows' own `cv` column (within-measurement noise) — whichever
  /// source of noise is larger bounds what a delta can prove.
  double cv = 0.0;
};

/// One variant present in both files, with its verdict.
struct BenchDiffEntry {
  std::string name;
  VariantRollup before;
  VariantRollup after;
  double delta = 0.0;    ///< (after.median - before.median) / before.median
  double allowed = 0.0;  ///< effective threshold for this variant
  std::string verdict;   ///< "ok" | "improved" | "regression"
};

/// The full comparison of two campaign CSVs.
struct BenchDiffReport {
  std::string metric;
  std::vector<BenchDiffEntry> entries;    ///< common variants, input order
  std::vector<std::string> onlyOld;       ///< variants missing from new.csv
  std::vector<std::string> onlyNew;       ///< variants missing from old.csv
  std::vector<std::string> envChanges;    ///< "key: old-value -> new-value"
  std::size_t regressions = 0;
  std::size_t improvements = 0;
};

/// Joins two campaign CSV files by variant name and applies the noise-aware
/// threshold to each common variant. Throws McError when a file cannot be
/// read, has no recognizable campaign header, lacks the metric column, or
/// when the two files share no variant with ok rows (a vacuous comparison
/// must not pass silently).
BenchDiffReport benchDiff(const std::string& oldPath,
                          const std::string& newPath,
                          const BenchDiffOptions& options = {});

/// Human-readable table (one line per variant plus a summary footer).
std::string renderBenchDiffTable(const BenchDiffReport& report);

/// Machine-readable JSON rendering of the same report.
std::string renderBenchDiffJson(const BenchDiffReport& report);

}  // namespace microtools::launcher
