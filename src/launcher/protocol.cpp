#include "launcher/protocol.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace microtools::launcher {

namespace {

void checkDeadline(const DeadlineCheck& outOfTime) {
  if (outOfTime && outOfTime()) {
    throw TimeoutError("measurement exceeded its wall-clock budget");
  }
}

}  // namespace

Measurement measureKernel(Backend& backend, KernelHandle& kernel,
                          const KernelRequest& request,
                          const ProtocolOptions& options) {
  return measureKernelAdaptive(backend, kernel, request, options,
                               AdaptivePolicy{})
      .measurement;
}

AdaptiveMeasurement measureKernelAdaptive(Backend& backend,
                                          KernelHandle& kernel,
                                          const KernelRequest& request,
                                          const ProtocolOptions& options,
                                          const AdaptivePolicy& policy,
                                          const DeadlineCheck& outOfTime) {
  if (options.innerRepetitions < 1 || options.outerRepetitions < 1) {
    throw McError("protocol repetitions must be >= 1");
  }

  // Figure 10: "the instruction and data caches are filled with the
  // kernel's data by calling the benchmark function once".
  std::uint64_t iterationsPerCall = 0;
  if (options.warmup) {
    checkDeadline(outOfTime);
    iterationsPerCall = backend.invoke(kernel, request).iterations;
  }

  double overhead =
      options.subtractOverhead ? backend.timerOverheadCycles() : 0.0;

  std::vector<double> samples;
  double totalCycles = 0.0;
  bool clampWarned = false;

  // Counter aggregation over every timed invoke whose window was valid.
  // Plain sums: an event dropped from the PMU group contributes NaN, which
  // propagates into exactly the metrics derived from it and no others.
  InvokeCounters counterSum;
  std::uint64_t counterIterations = 0;

  auto runOuterExperiment = [&] {
    double elapsed = 0.0;
    std::uint64_t iterations = 0;
    for (int inner = 0; inner < options.innerRepetitions; ++inner) {
      checkDeadline(outOfTime);
      InvokeResult r = backend.invoke(kernel, request);
      elapsed += r.tscCycles;
      iterations += r.iterations;
      if (r.counters.valid) {
        if (!counterSum.valid) {
          counterSum = r.counters;
        } else {
          counterSum.cycles += r.counters.cycles;
          counterSum.instructions += r.counters.instructions;
          counterSum.l1dAccesses += r.counters.l1dAccesses;
          counterSum.l1dMisses += r.counters.l1dMisses;
          counterSum.llcAccesses += r.counters.llcAccesses;
          counterSum.llcMisses += r.counters.llcMisses;
          counterSum.stalledCycles += r.counters.stalledCycles;
        }
        counterIterations += r.iterations;
      }
    }
    if (iterations == 0) {
      throw ExecutionError(
          "kernel returned zero iterations; cannot normalize (is the %eax "
          "iteration-count contract satisfied?)");
    }
    iterationsPerCall = iterations /
                        static_cast<std::uint64_t>(options.innerRepetitions);
    double sample =
        (elapsed - overhead * options.innerRepetitions) /
        static_cast<double>(iterations);
    if (sample < 0.0) {
      if (!clampWarned) {
        log::warn(strings::format(
            "cycles/iteration sample %.4f is negative after overhead "
            "subtraction (overhead %.1f cycles x %d calls > elapsed %.1f); "
            "clamping to 0",
            sample, overhead, options.innerRepetitions, elapsed));
        clampWarned = true;
      }
      sample = 0.0;
    }
    samples.push_back(sample);
    totalCycles += elapsed;
  };

  for (int outer = 0; outer < options.outerRepetitions; ++outer) {
    runOuterExperiment();
  }

  // Stability is judged over the most recent `outerRepetitions` samples: a
  // noisy prefix must not force hundreds of extra runs after the machine
  // settles, and the reported statistics describe the stable window rather
  // than the transient that preceded it.
  const std::size_t window =
      static_cast<std::size_t>(options.outerRepetitions);
  auto windowSummary = [&] {
    std::vector<double> tail(
        samples.end() -
            static_cast<std::ptrdiff_t>(std::min(window, samples.size())),
        samples.end());
    return stats::summarize(tail);
  };
  stats::Summary summary = windowSummary();
  bool adaptive = policy.maxCv > 0.0;
  while (adaptive && summary.cv > policy.maxCv &&
         static_cast<int>(samples.size()) < policy.maxRepetitions) {
    runOuterExperiment();
    summary = windowSummary();
  }

  AdaptiveMeasurement out;
  out.measurement.cyclesPerIteration = summary;
  out.measurement.iterationsPerCall = iterationsPerCall;
  out.measurement.totalCycles = totalCycles;
  if (counterSum.valid && counterIterations > 0) {
    CounterMetrics& m = out.measurement.counters;
    m.valid = true;
    m.instructionsPerIteration =
        counterSum.instructions / static_cast<double>(counterIterations);
    m.ipc = counterSum.instructions / counterSum.cycles;
    m.l1MissRate = counterSum.l1dMisses / counterSum.l1dAccesses;
    m.llcMissRate = counterSum.llcMisses / counterSum.llcAccesses;
    m.stallRatio = counterSum.stalledCycles / counterSum.cycles;
  }
  out.repetitions = static_cast<int>(samples.size());
  out.converged = !adaptive || summary.cv <= policy.maxCv;
  return out;
}

}  // namespace microtools::launcher
