#include "launcher/protocol.hpp"

#include "support/error.hpp"

namespace microtools::launcher {

Measurement measureKernel(Backend& backend, KernelHandle& kernel,
                          const KernelRequest& request,
                          const ProtocolOptions& options) {
  if (options.innerRepetitions < 1 || options.outerRepetitions < 1) {
    throw McError("protocol repetitions must be >= 1");
  }

  // Figure 10: "the instruction and data caches are filled with the
  // kernel's data by calling the benchmark function once".
  std::uint64_t iterationsPerCall = 0;
  if (options.warmup) {
    iterationsPerCall = backend.invoke(kernel, request).iterations;
  }

  double overhead =
      options.subtractOverhead ? backend.timerOverheadCycles() : 0.0;

  std::vector<double> samples;
  double totalCycles = 0.0;
  for (int outer = 0; outer < options.outerRepetitions; ++outer) {
    double elapsed = 0.0;
    std::uint64_t iterations = 0;
    for (int inner = 0; inner < options.innerRepetitions; ++inner) {
      InvokeResult r = backend.invoke(kernel, request);
      elapsed += r.tscCycles;
      iterations += r.iterations;
    }
    if (iterations == 0) {
      throw ExecutionError(
          "kernel returned zero iterations; cannot normalize (is the %eax "
          "iteration-count contract satisfied?)");
    }
    iterationsPerCall = iterations /
                        static_cast<std::uint64_t>(options.innerRepetitions);
    double sample =
        (elapsed - overhead * options.innerRepetitions) /
        static_cast<double>(iterations);
    samples.push_back(sample);
    totalCycles += elapsed;
  }

  Measurement m;
  m.cyclesPerIteration = stats::summarize(samples);
  m.iterationsPerCall = iterationsPerCall;
  m.totalCycles = totalCycles;
  return m;
}

}  // namespace microtools::launcher
