#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "asmparse/program_cache.hpp"
#include "launcher/backend.hpp"
#include "sim/machine.hpp"
#include "sim/memsys.hpp"

namespace microtools::launcher {

/// Performance knobs of the simulated backend. Both default on; the
/// `--sim-exact` escape hatch turns them off to force full cycle-by-cycle
/// simulation of every invoke. Results are bit-identical either way — the
/// options only trade simulation time (see DESIGN.md "Steady-state model").
struct SimBackendOptions {
  /// In-loop steady-state extrapolation inside CoreSim.
  bool steadyState = true;

  /// Warm-invoke memoization: every simulated invoke is recorded together
  /// with a snapshot of the machine state it produced; an identical invoke
  /// starting from a fingerprint-equal machine state replays the recorded
  /// result and restores the snapshot instead of re-simulating.
  bool memoize = true;
};

/// Simulator-backed execution: kernels run on the micro-architecture model
/// of `src/sim`, against one persistent MemorySystem whose clock only moves
/// forward — so the warm-up + repetition protocol behaves exactly like on
/// hardware (first call cold, later calls warm).
class SimBackend final : public Backend {
 public:
  explicit SimBackend(sim::MachineConfig config,
                      SimBackendOptions options = {});

  std::string name() const override { return "sim:" + config_.name; }

  const sim::MachineConfig& machine() const { return config_; }

  /// Re-parameterizes the simulated machine (e.g. the frequency sweep of
  /// Figure 13). Resets all warm state, including memoized results.
  void setMachine(sim::MachineConfig config);

  std::unique_ptr<KernelHandle> load(const std::string& asmText,
                                     const std::string& functionName) override;
  using Backend::load;

  InvokeResult invoke(KernelHandle& kernel,
                      const KernelRequest& request) override;

  double timerOverheadCycles() const override { return kTimerOverhead; }

  std::vector<InvokeResult> invokeFork(KernelHandle& kernel,
                                       const KernelRequest& request,
                                       int processes, int calls,
                                       PinPolicy policy) override;

  InvokeResult invokeOpenMp(KernelHandle& kernel,
                            const KernelRequest& request, int threads,
                            int repetitions) override;

  void reset() override;

  /// Access to the shared memory system (tests and cache-statistics
  /// benches).
  sim::MemorySystem& memory() { return *memsys_; }

  /// Number of invokes served from the warm-invoke memo since construction
  /// or the last reset()/setMachine() (observability for tests and bench).
  std::uint64_t replayedInvokes() const { return replayedInvokes_; }

  /// Simulated cost constants, exposed for tests of the protocol's
  /// overhead subtraction.
  static constexpr double kCallOverhead = 40.0;   // call/ret + launcher glue
  static constexpr double kTimerOverhead = 24.0;  // rdtsc read-read

 private:
  struct SimKernel final : public KernelHandle {
    std::shared_ptr<const asmparse::Program> program;
    std::uint64_t contentId = 0;  // ProgramCache content hash
  };

  /// One memoized invoke, keyed by (program content, request, pre-state
  /// fingerprint). Because simulation is deterministic and translation-
  /// invariant, hitting the same key from a fingerprint-equal machine
  /// state must reproduce this result bit for bit — so replay returns
  /// `result` and restores the recorded post-state snapshot, shifted
  /// forward by the elapsed clock difference. Warm protocols commonly
  /// settle into short state cycles (period 1 or 2), so a small table
  /// rather than a single slot.
  struct MemoEntry {
    std::uint64_t coreCycles = 0;
    std::uint64_t preClock = 0;     // clock_ when the invoke started
    std::uint64_t preLevels[5] = {0, 0, 0, 0, 0};
    std::uint64_t prePrefetches = 0;
    std::uint64_t postStateKey = 0;  // fingerprint of postState at its clock
    sim::MemorySystem postState;     // full machine snapshot after the run
    InvokeResult result;
  };

  /// Validates origin and downcasts without RTTI (the handle was created by
  /// this backend's load(), so it is a SimKernel by construction).
  SimKernel& checkedHandle(KernelHandle& kernel) const;

  /// Lays out the request's arrays in the simulated address space (stable
  /// per (arrays, process) so repeated invocations hit the same addresses).
  std::vector<std::uint64_t> planAddresses(const KernelRequest& request,
                                           int processIndex);

  std::uint64_t invokeKey(const SimKernel& handle,
                          const KernelRequest& request) const;
  std::uint64_t stateKey();

  sim::MachineConfig config_;
  SimBackendOptions options_;
  std::unique_ptr<sim::MemorySystem> memsys_;
  std::uint64_t clock_ = 0;

  /// hash(invoke key, pre-state fingerprint) -> recorded invoke. Bounded:
  /// warm protocols need only transient + cycle length entries (a handful);
  /// the cap just guards against adversarial request streams filling RAM
  /// with machine snapshots.
  static constexpr std::size_t kMaxMemoEntries = 32;
  std::map<std::uint64_t, MemoEntry> memo_;
  /// Cached memsys fingerprint at clock_; reset whenever simulation mutates
  /// the machine, set to the recorded post fingerprint on replays (which
  /// restore a snapshotted state whose fingerprint is known).
  std::optional<std::uint64_t> stateKeyCache_;
  /// Fork and OpenMP runs use fresh runners — pure functions of
  /// (config, program, request) — so their memo needs no fingerprint.
  std::map<std::uint64_t, std::vector<InvokeResult>> forkMemo_;
  std::map<std::uint64_t, InvokeResult> ompMemo_;
  std::uint64_t replayedInvokes_ = 0;
};

}  // namespace microtools::launcher
