#pragma once

#include <map>

#include "asmparse/asmparse.hpp"
#include "launcher/backend.hpp"
#include "sim/machine.hpp"
#include "sim/memsys.hpp"

namespace microtools::launcher {

/// Simulator-backed execution: kernels run on the micro-architecture model
/// of `src/sim`, against one persistent MemorySystem whose clock only moves
/// forward — so the warm-up + repetition protocol behaves exactly like on
/// hardware (first call cold, later calls warm).
class SimBackend final : public Backend {
 public:
  explicit SimBackend(sim::MachineConfig config);

  std::string name() const override { return "sim:" + config_.name; }

  const sim::MachineConfig& machine() const { return config_; }

  /// Re-parameterizes the simulated machine (e.g. the frequency sweep of
  /// Figure 13). Resets all warm state.
  void setMachine(sim::MachineConfig config);

  std::unique_ptr<KernelHandle> load(const std::string& asmText,
                                     const std::string& functionName) override;
  using Backend::load;

  InvokeResult invoke(KernelHandle& kernel,
                      const KernelRequest& request) override;

  double timerOverheadCycles() const override { return kTimerOverhead; }

  std::vector<InvokeResult> invokeFork(KernelHandle& kernel,
                                       const KernelRequest& request,
                                       int processes, int calls,
                                       PinPolicy policy) override;

  InvokeResult invokeOpenMp(KernelHandle& kernel,
                            const KernelRequest& request, int threads,
                            int repetitions) override;

  void reset() override;

  /// Access to the shared memory system (tests and cache-statistics
  /// benches).
  sim::MemorySystem& memory() { return *memsys_; }

  /// Simulated cost constants, exposed for tests of the protocol's
  /// overhead subtraction.
  static constexpr double kCallOverhead = 40.0;   // call/ret + launcher glue
  static constexpr double kTimerOverhead = 24.0;  // rdtsc read-read

 private:
  struct SimKernel final : public KernelHandle {
    asmparse::Program program;
  };

  /// Lays out the request's arrays in the simulated address space (stable
  /// per (arrays, process) so repeated invocations hit the same addresses).
  std::vector<std::uint64_t> planAddresses(const KernelRequest& request,
                                           int processIndex);

  sim::MachineConfig config_;
  std::unique_ptr<sim::MemorySystem> memsys_;
  std::uint64_t clock_ = 0;
};

}  // namespace microtools::launcher
