#include "launcher/remote_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "launcher/explore.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace microtools::launcher {

RemoteResultStore::RemoteResultStore(const std::string& address,
                                     RemoteOptions options)
    : options_(std::move(options)) {
  if (options_.worker.empty()) {
    options_.worker = "w" + std::to_string(::getpid());
  }
  if (options_.jobs < 1) options_.jobs = 1;
  if (options_.pollMs < 1) options_.pollMs = 1;
  socket_ = net::connectTo(address);
  wire::Message hello;
  hello.verb = "hello";
  hello.fields["version"] = std::to_string(wire::kVersion);
  hello.fields["worker"] = options_.worker;
  hello.fields["jobs"] = std::to_string(options_.jobs);
  wire::sendMessage(socket_, hello);
  std::optional<wire::Message> welcome = wire::recvMessage(socket_);
  if (!welcome) throw McError("serve daemon closed during handshake");
  if (welcome->verb == "error") {
    throw McError("serve daemon rejected handshake: " +
                  welcome->get("message"));
  }
  if (welcome->verb != "welcome" ||
      welcome->getInt("version") != wire::kVersion) {
    throw McError("serve daemon spoke an unexpected handshake");
  }
}

RemoteResultStore::~RemoteResultStore() = default;

wire::Message RemoteResultStore::call(const wire::Message& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  wire::sendMessage(socket_, request);
  std::optional<wire::Message> response = wire::recvMessage(socket_);
  if (!response) {
    throw McError("serve daemon closed the connection (request '" +
                  request.verb + "')");
  }
  if (response->verb == "error") {
    throw McError("serve daemon: " + response->get("message"));
  }
  return std::move(*response);
}

std::optional<VariantResult> RemoteResultStore::load(const std::string& key) {
  wire::Message probe;
  probe.verb = "probe";
  probe.fields["key"] = key;
  wire::Message response = call(probe);
  std::lock_guard<std::mutex> lock(mutex_);
  if (response.verb != "hit") {
    ++telemetry_.misses;
    return std::nullopt;
  }
  ++telemetry_.hits;
  return wire::decodeResult(response.get("result"));
}

void RemoteResultStore::store(const std::string& key,
                              const VariantResult& result) {
  if (result.status != "ok") return;  // same contract as MeasurementCache
  wire::Message message;
  message.verb = "store";
  message.fields["key"] = key;
  message.fields["result"] = wire::encodeResult(result);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = leases_.find(key);
    if (it != leases_.end()) {
      message.fields["lease"] = it->second;
      leases_.erase(it);
    }
  }
  call(message);
}

void RemoteResultStore::begin(const std::string& campaignId,
                              std::size_t variantCount) {
  wire::Message message;
  message.verb = "begin";
  message.fields["campaign"] = campaignId;
  message.fields["variants"] = std::to_string(variantCount);
  message.fields["worker"] = options_.worker;
  message.fields["jobs"] = std::to_string(options_.jobs);
  wire::Message response = call(message);
  campaignId_ = campaignId;
  ordinal_ = response.has("ordinal")
                 ? static_cast<std::size_t>(
                       std::max<std::int64_t>(0, response.getInt("ordinal")))
                 : 0;
}

bool RemoteResultStore::acquire(const std::string& key, VariantResult& out) {
  wire::Message message;
  message.verb = "acquire";
  message.fields["campaign"] = campaignId_;
  message.fields["key"] = key;
  message.fields["sequence"] = std::to_string(out.sequence);
  message.fields["round"] = std::to_string(out.round);
  message.fields["name"] = out.name;
  for (;;) {
    wire::Message response = call(message);
    if (response.verb == "hit") {
      VariantResult decoded = wire::decodeResult(response.get("result"));
      std::lock_guard<std::mutex> lock(mutex_);
      ++telemetry_.hits;
      out = std::move(decoded);
      return true;
    }
    if (response.verb == "lease") {
      std::lock_guard<std::mutex> lock(mutex_);
      ++telemetry_.misses;
      leases_[key] = response.get("lease");
      return false;
    }
    if (response.verb != "wait" && response.verb != "defer") {
      throw McError("serve daemon answered acquire with '" + response.verb +
                    "'");
    }
    // Leased to a live peer (wait) or this worker is at its lease cap
    // (defer): sleep WITHOUT the socket mutex so pool threads can publish
    // the results that will unblock us.
    int retryMs = options_.pollMs;
    if (response.has("retry_ms")) {
      retryMs = std::max(retryMs, static_cast<int>(
                                      response.getInt("retry_ms")));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(retryMs));
  }
}

void RemoteResultStore::publish(const std::string& key,
                                const VariantResult& result) {
  store(key, result);
}

void RemoteResultStore::forwardRow(const std::string& key,
                                   const VariantResult& row) {
  wire::Message message;
  message.verb = "row";
  message.fields["campaign"] = campaignId_;
  message.fields["key"] = key;
  message.fields["result"] = wire::encodeResult(row);
  {
    // A failed measurement never goes through store(), so the lease (if
    // any) rides along with the row and is released server-side there.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = leases_.find(key);
    if (it != leases_.end()) {
      message.fields["lease"] = it->second;
      leases_.erase(it);
    }
  }
  call(message);
}

CacheTelemetry RemoteResultStore::telemetry() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return telemetry_;
}

std::size_t shardOffset(std::size_t ordinal, std::size_t count) {
  if (count == 0) return 0;
  // Van der Corput (bit-reversal) staggering: ordinal k maps to the binary
  // fraction 0.b0b1b2... of k's reversed bits, so successive workers start
  // at 0, 1/2, 1/4, 3/4, 1/8, ... of the variant space — each new ordinal
  // bisects the largest untouched gap, whatever the fleet size turns out
  // to be (and a 2^k fleet partitions the space exactly evenly).
  std::uint32_t bits = static_cast<std::uint32_t>(ordinal);
  bits = ((bits & 0x55555555u) << 1) | ((bits >> 1) & 0x55555555u);
  bits = ((bits & 0x33333333u) << 2) | ((bits >> 2) & 0x33333333u);
  bits = ((bits & 0x0f0f0f0fu) << 4) | ((bits >> 4) & 0x0f0f0f0fu);
  bits = ((bits & 0x00ff00ffu) << 8) | ((bits >> 8) & 0x00ff00ffu);
  bits = (bits << 16) | (bits >> 16);
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(bits) * count) >> 32);
}

std::string campaignIdFor(const std::string& backendId,
                          const std::vector<std::string>& keys) {
  hash::Fnv1a h;
  h.str(backendId);
  h.u64(keys.size());
  for (const std::string& key : keys) h.str(key);
  return h.hex();
}

std::shared_ptr<RemoteResultStore> bindRemoteCampaign(
    const std::string& address, const RemoteOptions& options,
    const std::vector<CampaignVariant>& variants,
    const std::string& backendId, const KernelRequest& request,
    CampaignOptions& campaign) {
  // Key fields only: the hook-free copy both avoids self-capture and keeps
  // the keys identical to a local MeasurementCache run, so a daemon cache
  // directory and a single-process cache directory are interchangeable.
  CampaignOptions keyOptions = campaign;
  keyOptions.cacheLookup = nullptr;
  keyOptions.cacheStore = nullptr;
  keyOptions.rowObserver = nullptr;
  keyOptions.completed.clear();

  auto keyByName = std::make_shared<std::map<std::string, std::string>>();
  auto seqByName = std::make_shared<std::map<std::string, std::size_t>>();
  std::vector<std::string> orderedKeys;
  orderedKeys.reserve(variants.size());
  for (const CampaignVariant& v : variants) {
    std::string key = cacheKey(v, keyOptions, backendId, request);
    orderedKeys.push_back(key);
    (*seqByName)[v.name] = orderedKeys.size() - 1;
    (*keyByName)[v.name] = std::move(key);
  }

  auto store = std::make_shared<RemoteResultStore>(address, options);
  store->begin(campaignIdFor(backendId, orderedKeys), variants.size());

  auto keyOf = [keyByName](const CampaignVariant& v) -> const std::string& {
    auto it = keyByName->find(v.name);
    if (it == keyByName->end()) {
      throw McError("variant '" + v.name +
                    "' was not announced to the serve daemon");
    }
    return it->second;
  };
  campaign.cacheLookup = [store, keyOf](const CampaignVariant& v,
                                        VariantResult& out) {
    return store->acquire(keyOf(v), out);
  };
  campaign.cacheStore = [store, keyOf](const CampaignVariant& v,
                                       const VariantResult& result) {
    store->publish(keyOf(v), result);
  };
  campaign.rowObserver = [store, keyOf, seqByName](const CampaignVariant& v,
                                                   const VariantResult& row) {
    // The worker's local sequence is its arrival order, which a staggered
    // traversal permutes; the canonical merge needs the campaign-wide
    // index, so rewrite it before the row goes over the wire.
    VariantResult canonical = row;
    auto it = seqByName->find(v.name);
    if (it != seqByName->end()) canonical.sequence = it->second;
    store->forwardRow(keyOf(v), canonical);
  };
  return store;
}

}  // namespace microtools::launcher
