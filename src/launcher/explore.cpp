#include "launcher/explore.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "creator/creator.hpp"
#include "launcher/arch_registry.hpp"
#include "launcher/sim_backend.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"

namespace microtools::launcher {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Cache key
// ---------------------------------------------------------------------------

std::string cacheKey(const CampaignVariant& variant,
                     const CampaignOptions& options,
                     const std::string& backendId,
                     const KernelRequest& request) {
  hash::Fnv1a h;
  h.u64(MeasurementCache::kFormatVersion);
  // What runs: the kernel source is hashed directly (not via contentId) so
  // the same program gets the same key whether it arrived in memory from
  // MicroCreator or from a .s file written to a campaign directory.
  h.str(variant.kind).str(variant.functionName).str(variant.source);
  // How it is measured.
  const ProtocolOptions& p = options.protocol;
  h.i64(p.innerRepetitions).i64(p.outerRepetitions);
  h.boolean(p.warmup).boolean(p.subtractOverhead);
  h.f64(options.maxCv).i64(options.maxRepetitions);
  // Where it runs. request.core is excluded on purpose: campaign workers
  // pin to different cores, and per-core keys would fragment the cache.
  h.str(backendId);
  h.i64(request.n).u64(request.chunkStrideBytes);
  h.u64(request.arrays.size());
  for (const ArraySpec& a : request.arrays) {
    h.u64(a.bytes).u64(a.alignment).u64(a.offset);
  }
  return h.hex();
}

// ---------------------------------------------------------------------------
// MeasurementCache
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kMagic = "microtools-cache";

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    char next = s[++i];
    if (next == 'n') {
      out += '\n';
    } else if (next == 'r') {
      out += '\r';
    } else {
      out += next;
    }
  }
  return out;
}

std::string fmtDouble(double v) { return strings::format("%.17g", v); }

}  // namespace

MeasurementCache::MeasurementCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) throw McError("measurement cache requires a directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw McError("cannot create cache directory '" + dir_ +
                  "': " + ec.message());
  }
}

std::string MeasurementCache::recordPath(const std::string& key) const {
  return (fs::path(dir_) / (key + ".mtres")).string();
}

std::string MeasurementCache::serialize(const std::string& key,
                                        const VariantResult& r) {
  std::ostringstream oss;
  oss << kMagic << ' ' << kFormatVersion << '\n';
  oss << "key " << key << '\n';
  oss << "name " << escape(r.name) << '\n';
  oss << "status " << r.status << '\n';
  oss << "error " << escape(r.error) << '\n';
  oss << "note " << escape(r.note) << '\n';
  oss << "iterations_per_call " << r.measurement.iterationsPerCall << '\n';
  oss << "total_cycles " << fmtDouble(r.measurement.totalCycles) << '\n';
  const stats::Summary& s = r.measurement.cyclesPerIteration;
  oss << "count " << s.count << '\n';
  oss << "min " << fmtDouble(s.min) << '\n';
  oss << "max " << fmtDouble(s.max) << '\n';
  oss << "mean " << fmtDouble(s.mean) << '\n';
  oss << "median " << fmtDouble(s.median) << '\n';
  oss << "stddev " << fmtDouble(s.stddev) << '\n';
  oss << "cv " << fmtDouble(s.cv) << '\n';
  oss << "repetitions " << r.repetitions << '\n';
  oss << "final_cv " << fmtDouble(r.finalCv) << '\n';
  oss << "converged " << (r.converged ? 1 : 0) << '\n';
  oss << "attempts " << r.attempts << '\n';
  // Counter metrics are OPTIONAL fields: absent in records written before
  // counters existed (and for rdtsc-only measurements), which deserialize
  // tolerates without a format-version bump — missing simply means invalid.
  const CounterMetrics& c = r.measurement.counters;
  if (c.valid) {
    oss << "pc_valid 1\n";
    oss << "pc_instructions_per_iteration "
        << fmtDouble(c.instructionsPerIteration) << '\n';
    oss << "pc_ipc " << fmtDouble(c.ipc) << '\n';
    oss << "pc_l1_miss_rate " << fmtDouble(c.l1MissRate) << '\n';
    oss << "pc_llc_miss_rate " << fmtDouble(c.llcMissRate) << '\n';
    oss << "pc_stall_ratio " << fmtDouble(c.stallRatio) << '\n';
  }
  return oss.str();
}

std::optional<VariantResult> MeasurementCache::deserialize(
    const std::string& key, const std::string& text) {
  std::vector<std::string> lines = strings::split(text, '\n');
  if (lines.empty()) return std::nullopt;

  // Versioned header: records from other format versions are misses.
  std::vector<std::string> head = strings::splitWhitespace(lines.front());
  if (head.size() != 2 || head[0] != kMagic) return std::nullopt;
  auto version = strings::parseInt(head[1]);
  if (!version || *version != kFormatVersion) return std::nullopt;

  std::map<std::string, std::string> fields;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    std::size_t space = lines[i].find(' ');
    std::string field =
        space == std::string::npos ? lines[i] : lines[i].substr(0, space);
    std::string value =
        space == std::string::npos ? "" : lines[i].substr(space + 1);
    fields.emplace(std::move(field), std::move(value));
  }

  auto getStr = [&fields](const char* f) -> std::optional<std::string> {
    auto it = fields.find(f);
    if (it == fields.end()) return std::nullopt;
    return it->second;
  };
  auto getInt = [&getStr](const char* f) -> std::optional<std::int64_t> {
    auto v = getStr(f);
    if (!v) return std::nullopt;
    return strings::parseInt(*v);
  };
  auto getDouble = [&getStr](const char* f) -> std::optional<double> {
    auto v = getStr(f);
    if (!v) return std::nullopt;
    return strings::parseDouble(*v);
  };

  // A record stored under a different key (hand-renamed file) is a miss.
  auto storedKey = getStr("key");
  if (!storedKey || *storedKey != key) return std::nullopt;

  auto name = getStr("name");
  auto status = getStr("status");
  auto iterations = getInt("iterations_per_call");
  auto totalCycles = getDouble("total_cycles");
  auto count = getInt("count");
  auto minV = getDouble("min");
  auto maxV = getDouble("max");
  auto mean = getDouble("mean");
  auto median = getDouble("median");
  auto stddev = getDouble("stddev");
  auto cv = getDouble("cv");
  auto repetitions = getInt("repetitions");
  auto finalCv = getDouble("final_cv");
  auto converged = getInt("converged");
  auto attempts = getInt("attempts");
  bool complete = name && status && iterations && totalCycles && count &&
                  minV && maxV && mean && median && stddev && cv &&
                  repetitions && finalCv && converged && attempts;
  if (!complete) return std::nullopt;
  // Only successful measurements are cacheable; anything else is corrupt.
  if (*status != "ok" || *iterations < 0 || *count < 0) return std::nullopt;

  VariantResult r;
  r.name = unescape(*name);
  r.status = *status;
  r.error = unescape(getStr("error").value_or(""));
  r.note = unescape(getStr("note").value_or(""));
  r.measurement.iterationsPerCall = static_cast<std::uint64_t>(*iterations);
  r.measurement.totalCycles = *totalCycles;
  r.measurement.cyclesPerIteration.count = static_cast<std::size_t>(*count);
  r.measurement.cyclesPerIteration.min = *minV;
  r.measurement.cyclesPerIteration.max = *maxV;
  r.measurement.cyclesPerIteration.mean = *mean;
  r.measurement.cyclesPerIteration.median = *median;
  r.measurement.cyclesPerIteration.stddev = *stddev;
  r.measurement.cyclesPerIteration.cv = *cv;
  r.repetitions = static_cast<int>(*repetitions);
  r.finalCv = *finalCv;
  r.converged = *converged != 0;
  r.attempts = static_cast<int>(*attempts);
  if (getInt("pc_valid").value_or(0) != 0) {
    CounterMetrics& c = r.measurement.counters;
    c.valid = true;  // individual fields default to NaN when absent
    auto setMetric = [&getDouble](double& dst, const char* field) {
      if (auto v = getDouble(field)) dst = *v;
    };
    setMetric(c.instructionsPerIteration, "pc_instructions_per_iteration");
    setMetric(c.ipc, "pc_ipc");
    setMetric(c.l1MissRate, "pc_l1_miss_rate");
    setMetric(c.llcMissRate, "pc_llc_miss_rate");
    setMetric(c.stallRatio, "pc_stall_ratio");
  }
  return r;
}

std::optional<VariantResult> MeasurementCache::load(
    const std::string& key) const {
  std::ifstream in(recordPath(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream oss;
  oss << in.rdbuf();
  return deserialize(key, oss.str());
}

void MeasurementCache::store(const std::string& key,
                             const VariantResult& result) const {
  if (result.status != "ok") return;  // errors and timeouts must be retried
  std::string path = recordPath(key);
  // Unique temp name per writer: campaign workers store concurrently, and
  // two variants with identical content share a key. The counter alone is
  // NOT enough — it is process-local, so two processes sharing one cache
  // dir would both start at 0, write the same "<key>.tmp0", and publish a
  // torn record. The pid makes the suffix unique across processes too.
  static std::atomic<std::uint64_t> counter{0};
  std::string tmp =
      path + ".tmp" + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw McError("cannot write cache record: " + tmp);
    out << serialize(key, result);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);  // atomic publish on POSIX
  if (ec) {
    fs::remove(tmp, ec);
    throw McError("cannot publish cache record: " + path);
  }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

ExploreResult runExplore(const ExploreOptions& options,
                         CampaignCsvSink* sink) {
  creator::Description description =
      options.descriptionFile.empty()
          ? creator::parseDescriptionText(options.descriptionText)
          : creator::parseDescriptionFile(options.descriptionFile);
  if (options.maxVariants) {
    description.maximumBenchmarks = *options.maxVariants;
  }
  if (options.seed) description.seed = *options.seed;

  // §3 in memory: the whole variant set goes straight into the campaign,
  // no .s round-trip through the filesystem.
  creator::MicroCreator creator;
  std::vector<creator::GeneratedProgram> programs =
      creator.generate(description);
  if (programs.empty()) {
    throw McError("description generated no benchmark programs");
  }
  std::vector<CampaignVariant> variants = variantsFromPrograms(programs);

  int nbVectors = options.nbVectors;
  if (nbVectors <= 0) {
    // Derive the array count the kernels actually dereference.
    nbVectors = 1;
    for (const creator::GeneratedProgram& p : programs) {
      nbVectors = std::max(nbVectors, p.arrayCount);
    }
  }

  KernelRequest request;
  request.chunkStrideBytes = options.elementBytes;
  if (options.tripCount) {
    request.n = *options.tripCount;
  } else {
    if (options.elementBytes == 0) throw McError("element bytes must be > 0");
    std::uint64_t elements = options.arrayBytes / options.elementBytes;
    if (elements == 0 || elements > 0x7fffffffull) {
      throw McError("array size yields an invalid trip count");
    }
    request.n = static_cast<int>(elements);
  }
  for (int i = 0; i < nbVectors; ++i) {
    request.arrays.push_back(
        ArraySpec{options.arrayBytes, options.alignment, options.alignOffset});
  }

  BackendFactory factory = options.backendFactory;
  std::string backendId = options.backendId;
  if (!factory) {
    if (options.backend != "sim") {
      throw McError("explore backend '" + options.backend +
                    "' requires an explicit backend factory");
    }
    sim::MachineConfig config = archByName(options.arch).config;
    if (options.coreGHz) config.coreGHz = *options.coreGHz;
    SimBackendOptions simOptions;
    if (options.simExact) {
      simOptions.steadyState = false;
      simOptions.memoize = false;
    }
    factory = [config, simOptions](int) {
      return std::make_unique<SimBackend>(config, simOptions);
    };
  }
  if (backendId.empty()) {
    backendId = options.backend == "sim" ? "sim:" + options.arch
                                         : options.backend;
    if (options.coreGHz) {
      backendId += strings::format("@%.3fGHz", *options.coreGHz);
    }
    // Exact-mode results are bit-identical to fast-mode ones, but sharing a
    // cache identity would let one serve the other's entries and make any
    // fast-vs-exact comparison vacuous. Keep them separate.
    if (options.backend == "sim" && options.simExact) backendId += ":exact";
  }

  // The cache binder installs lookup/store hooks keyed on the options of
  // whatever campaign it is applied to. The full sweep applies it once to
  // the baseline options; the halving planner re-applies it every round,
  // because cacheKey() hashes the round's protocol — screening entries and
  // full-fidelity entries must never serve each other, while the final
  // round's keys are identical to an exhaustive sweep's.
  CacheBinder bindCache;
  if (options.useCache) {
    auto cache = std::make_shared<MeasurementCache>(options.cacheDir);
    bindCache = [cache, backendId, request](CampaignOptions& roundOptions) {
      // Key fields only — the hook-free copy avoids self-capture.
      CampaignOptions keyOptions = roundOptions;
      keyOptions.cacheLookup = nullptr;
      keyOptions.cacheStore = nullptr;
      keyOptions.completed.clear();
      roundOptions.cacheLookup = [cache, keyOptions, backendId, request](
                                     const CampaignVariant& v,
                                     VariantResult& out) {
        std::optional<VariantResult> hit =
            cache->load(cacheKey(v, keyOptions, backendId, request));
        if (!hit) return false;
        out = std::move(*hit);
        return true;
      };
      roundOptions.cacheStore = [cache, keyOptions, backendId, request](
                                    const CampaignVariant& v,
                                    const VariantResult& result) {
        cache->store(cacheKey(v, keyOptions, backendId, request), result);
      };
    };
  }

  ExploreResult out;
  out.generated = programs.size();
  out.request = request;
  out.backendId = backendId;

  if (options.search == SearchMode::Halving) {
    PlannerResult planned =
        runSuccessiveHalving(variants, request, factory, options.campaign,
                             options.planner, bindCache, sink);
    out.results = std::move(planned.results);
    out.rounds = std::move(planned.rounds);
    out.budgetExhausted = planned.budgetExhausted;
    out.stopReason = std::move(planned.stopReason);
    out.fullFidelityVariants = planned.fullFidelityVariants;
    out.workRepetitions = planned.workRepetitions;
    out.measured = planned.measured;
    out.cacheHits = planned.cacheHits;
    out.skipped = planned.resumed;
    out.failures = planned.failures;
    return out;
  }

  CampaignOptions campaign = options.campaign;
  if (bindCache) bindCache(campaign);
  CampaignRunner runner(std::move(factory), campaign);
  out.results = runner.run(variants, request, sink);
  for (const VariantResult& r : out.results) {
    if (r.cached) {
      ++out.cacheHits;
    } else if (r.status != "skipped") {
      ++out.measured;
      out.workRepetitions += r.repetitions;
    } else {
      ++out.skipped;
    }
    if (r.status == "error" || r.status == "timeout") ++out.failures;
  }
  return out;
}

csv::Table topKReport(const std::vector<VariantResult>& results, int k) {
  std::vector<const VariantResult*> ranked;
  for (const VariantResult& r : results) {
    if (r.status == "ok") ranked.push_back(&r);
  }
  // NaN-last comparisons throughout: `am != bm ? am < bm : ...` is not a
  // strict weak order once a NaN min/mean appears (possible after
  // overhead-clamped measurements) — NaN compares false both ways, breaking
  // transitivity of equivalence, which is UB in std::stable_sort.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const VariantResult* a, const VariantResult* b) {
                     double am = a->measurement.cyclesPerIteration.min;
                     double bm = b->measurement.cyclesPerIteration.min;
                     if (stats::nanLastLess(am, bm)) return true;
                     if (stats::nanLastLess(bm, am)) return false;
                     double aMean = a->measurement.cyclesPerIteration.mean;
                     double bMean = b->measurement.cyclesPerIteration.mean;
                     if (stats::nanLastLess(aMean, bMean)) return true;
                     if (stats::nanLastLess(bMean, aMean)) return false;
                     return a->name < b->name;
                   });
  if (k > 0 && ranked.size() > static_cast<std::size_t>(k)) {
    ranked.resize(static_cast<std::size_t>(k));
  }
  csv::Table table({"rank", "variant", "cycles_per_iteration_min",
                    "cycles_per_iteration_mean", "cv", "converged",
                    "repetitions", "cached"});
  int rank = 1;
  for (const VariantResult* r : ranked) {
    const stats::Summary& s = r->measurement.cyclesPerIteration;
    table.beginRow()
        .add(rank++)
        .add(r->name)
        .add(s.min)
        .add(s.mean)
        .add(strings::format("%.6f", r->finalCv))
        .add(r->converged ? "1" : "0")
        .add(r->repetitions)
        .add(r->cached ? "1" : "0")
        .commit();
  }
  return table;
}

}  // namespace microtools::launcher
