#include "launcher/explore.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "creator/creator.hpp"
#include "launcher/arch_registry.hpp"
#include "launcher/predict.hpp"
#include "launcher/remote_store.hpp"
#include "launcher/sim_backend.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"

namespace microtools::launcher {

// ---------------------------------------------------------------------------
// Cache key
// ---------------------------------------------------------------------------

std::string cacheKey(const CampaignVariant& variant,
                     const CampaignOptions& options,
                     const std::string& backendId,
                     const KernelRequest& request) {
  hash::Fnv1a h;
  h.u64(MeasurementCache::kFormatVersion);
  // What runs: the kernel source is hashed directly (not via contentId) so
  // the same program gets the same key whether it arrived in memory from
  // MicroCreator or from a .s file written to a campaign directory.
  h.str(variant.kind).str(variant.functionName).str(variant.source);
  // How it is measured. A per-variant repetition override changes what
  // actually runs, so the key hashes the EFFECTIVE protocol — a
  // stability-capped screening row can never serve (or be served by) a
  // full-fidelity probe of the same variant.
  const ProtocolOptions& p = options.protocol;
  int outerRepetitions = p.outerRepetitions;
  int maxRepetitions = options.maxRepetitions;
  if (options.repOverride) {
    int cap = options.repOverride(variant);
    if (cap > 0) {
      outerRepetitions = std::min(outerRepetitions, cap);
      maxRepetitions = std::min(maxRepetitions, cap);
    }
  }
  h.i64(p.innerRepetitions).i64(outerRepetitions);
  h.boolean(p.warmup).boolean(p.subtractOverhead);
  h.f64(options.maxCv).i64(maxRepetitions);
  // Where it runs. request.core is excluded on purpose: campaign workers
  // pin to different cores, and per-core keys would fragment the cache.
  h.str(backendId);
  h.i64(request.n).u64(request.chunkStrideBytes);
  h.u64(request.arrays.size());
  for (const ArraySpec& a : request.arrays) {
    h.u64(a.bytes).u64(a.alignment).u64(a.offset);
  }
  return h.hex();
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

namespace {

/// Bounded handoff between the generation producer thread and the campaign
/// loop in streaming mode. The producer pushes verified variants (plus the
/// one-shot StreamInfo); the campaign thread pulls them in order.
/// `abandoned` releases a blocked producer when the consumer unwinds early.
struct StreamChannel {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<CampaignVariant> queue;
  std::size_t capacity = 0;
  creator::PassManager::StreamInfo info;
  bool infoSet = false;
  bool closed = false;
  bool abandoned = false;
  std::exception_ptr error;
};

CampaignVariant variantFromProgram(creator::GeneratedProgram&& p) {
  CampaignVariant v;
  v.name = std::move(p.name);
  v.kind = "asm";
  v.source = std::move(p.asmText);
  v.functionName = std::move(p.functionName);
  v.contentId = std::move(p.contentId);
  return v;
}

KernelRequest buildRequest(const ExploreOptions& options, int nbVectors) {
  KernelRequest request;
  request.chunkStrideBytes = options.elementBytes;
  if (options.tripCount) {
    request.n = *options.tripCount;
  } else {
    if (options.elementBytes == 0) throw McError("element bytes must be > 0");
    std::uint64_t elements = options.arrayBytes / options.elementBytes;
    if (elements == 0 || elements > 0x7fffffffull) {
      throw McError("array size yields an invalid trip count");
    }
    request.n = static_cast<int>(elements);
  }
  for (int i = 0; i < nbVectors; ++i) {
    request.arrays.push_back(
        ArraySpec{options.arrayBytes, options.alignment, options.alignOffset});
  }
  return request;
}

/// Builds the cache binder over an open cache. The binder installs
/// lookup/store hooks keyed on the options of whatever campaign it is
/// applied to. The full sweep applies it once to the baseline options; the
/// halving planner re-applies it every round, because cacheKey() hashes the
/// round's protocol — screening entries and full-fidelity entries must
/// never serve each other, while the final round's keys are identical to an
/// exhaustive sweep's.
CacheBinder makeCacheBinder(std::shared_ptr<MeasurementCache> cache,
                            const std::string& backendId,
                            const KernelRequest& request) {
  return [cache, backendId, request](CampaignOptions& roundOptions) {
    // Key fields only — the hook-free copy avoids self-capture. repOverride
    // stays: cacheKey() folds the per-variant cap into the effective
    // protocol it hashes.
    CampaignOptions keyOptions = roundOptions;
    keyOptions.cacheLookup = nullptr;
    keyOptions.cacheStore = nullptr;
    keyOptions.rowObserver = nullptr;
    keyOptions.predict = nullptr;
    keyOptions.completed.clear();
    roundOptions.cacheLookup = [cache, keyOptions, backendId, request](
                                   const CampaignVariant& v,
                                   VariantResult& out) {
      std::optional<VariantResult> hit =
          cache->load(cacheKey(v, keyOptions, backendId, request));
      if (!hit) return false;
      out = std::move(*hit);
      return true;
    };
    roundOptions.cacheStore = [cache, keyOptions, backendId, request](
                                  const CampaignVariant& v,
                                  const VariantResult& result) {
      cache->store(cacheKey(v, keyOptions, backendId, request), result);
    };
  };
}

/// Builds the run's StaticAnnotator (nullptr when prediction is off); see
/// launcher/predict.hpp for what it feeds.
std::shared_ptr<StaticAnnotator> makeAnnotator(const ExploreOptions& options,
                                               const KernelRequest& request) {
  if (!options.predict) return nullptr;
  return makeStaticAnnotator(options.arch, request);
}

void tallyFullSweep(ExploreResult& out) {
  for (const VariantResult& r : out.results) {
    if (r.cached) {
      ++out.cacheHits;
    } else if (r.status != "skipped") {
      ++out.measured;
      out.workRepetitions += r.repetitions;
    } else {
      ++out.skipped;
    }
    if (r.status == "error" || r.status == "timeout") ++out.failures;
  }
}

}  // namespace

ExploreResult runExplore(const ExploreOptions& options,
                         CampaignCsvSink* sink) {
  creator::Description description =
      options.descriptionFile.empty()
          ? creator::parseDescriptionText(options.descriptionText)
          : creator::parseDescriptionFile(options.descriptionFile);
  if (options.maxVariants) {
    description.maximumBenchmarks = *options.maxVariants;
  }
  if (options.seed) description.seed = *options.seed;

  if (options.stream && options.search == SearchMode::Halving) {
    throw McError(
        "--stream requires the full sweep: the halving planner needs the "
        "complete variant set before its first round");
  }
  bool connectMode = !options.connectAddr.empty();
  if (connectMode && options.search == SearchMode::Halving) {
    throw McError(
        "--connect requires the full sweep: the halving planner adapts the "
        "protocol per round, which sharded workers cannot coordinate");
  }
  if (connectMode && options.stream) {
    // The campaign (its id and variant count) must be announced to the
    // daemon before the first acquire, so connect mode generates in batch;
    // dispatch itself still streams per variant.
    log::warn("--connect announces the campaign upfront; --stream's "
              "generation overlap is ignored");
  }

  creator::MicroCreator creator;
  creator.setGenerateJobs(options.generateJobs);

  // Backend resolution is independent of the generated programs, so both
  // the batch and the streaming path share it up front.
  BackendFactory factory = options.backendFactory;
  std::string backendId = options.backendId;
  if (!factory) {
    if (options.backend != "sim") {
      throw McError("explore backend '" + options.backend +
                    "' requires an explicit backend factory");
    }
    sim::MachineConfig config = archByName(options.arch).config;
    if (options.coreGHz) config.coreGHz = *options.coreGHz;
    SimBackendOptions simOptions;
    if (options.simExact) {
      simOptions.steadyState = false;
      simOptions.memoize = false;
    }
    factory = [config, simOptions](int) {
      return std::make_unique<SimBackend>(config, simOptions);
    };
  }
  if (backendId.empty()) {
    backendId = options.backend == "sim" ? "sim:" + options.arch
                                         : options.backend;
    if (options.coreGHz) {
      backendId += strings::format("@%.3fGHz", *options.coreGHz);
    }
    // Exact-mode results are bit-identical to fast-mode ones, but sharing a
    // cache identity would let one serve the other's entries and make any
    // fast-vs-exact comparison vacuous. Keep them separate.
    if (options.backend == "sim" && options.simExact) backendId += ":exact";
  }

  std::shared_ptr<MeasurementCache> cache;
  if (options.useCache && !connectMode) {
    // In connect mode the serve daemon owns the one shared cache; a local
    // cache would shadow it and desynchronize the workers' hit accounting.
    cache = std::make_shared<MeasurementCache>(options.cacheDir);
  }

  ExploreResult out;
  out.backendId = backendId;

  if (options.stream && !connectMode) {
    // §3 as a producer: generation runs on its own thread, handing verified
    // variants through a bounded channel into a streaming campaign, so the
    // first measurement starts as soon as the first variant is emitted.
    StreamChannel channel;
    channel.capacity =
        std::max<std::size_t>(64, static_cast<std::size_t>(
                                      options.campaign.jobs) * 8);
    std::thread producer([&creator, &description, &channel] {
      try {
        creator.generateStream(
            description,
            [&channel](const creator::PassManager::StreamInfo& info) {
              std::lock_guard<std::mutex> lock(channel.mutex);
              channel.info = info;
              channel.infoSet = true;
              channel.cv.notify_all();
            },
            [&channel](creator::GeneratedProgram&& p) {
              CampaignVariant v = variantFromProgram(std::move(p));
              std::unique_lock<std::mutex> lock(channel.mutex);
              channel.cv.wait(lock, [&channel] {
                return channel.queue.size() < channel.capacity ||
                       channel.abandoned;
              });
              if (channel.abandoned) return;  // consumer unwound; discard
              channel.queue.push_back(std::move(v));
              channel.cv.notify_all();
            });
      } catch (...) {
        std::lock_guard<std::mutex> lock(channel.mutex);
        channel.error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(channel.mutex);
      channel.closed = true;
      channel.cv.notify_all();
    });
    // Covers every exit (including exceptions below): release a blocked
    // producer, then join it before the channel leaves scope.
    struct ProducerGuard {
      StreamChannel& channel;
      std::thread& producer;
      ~ProducerGuard() {
        {
          std::lock_guard<std::mutex> lock(channel.mutex);
          channel.abandoned = true;
        }
        channel.cv.notify_all();
        if (producer.joinable()) producer.join();
      }
    } guard{channel, producer};

    creator::PassManager::StreamInfo info;
    {
      std::unique_lock<std::mutex> lock(channel.mutex);
      channel.cv.wait(lock,
                      [&channel] { return channel.infoSet || channel.closed; });
      if (!channel.infoSet) {
        if (channel.error) std::rethrow_exception(channel.error);
        throw McError("description generated no benchmark programs");
      }
      info = channel.info;
    }
    if (info.kernelCount == 0) {
      std::unique_lock<std::mutex> lock(channel.mutex);
      channel.cv.wait(lock, [&channel] { return channel.closed; });
      if (channel.error) std::rethrow_exception(channel.error);
      throw McError("description generated no benchmark programs");
    }

    // nbVectors comes from the pre-verification kernel shape (the emitted
    // kernels' maximum arrayCount) — available before the first program
    // finishes, unlike the batch path's post-verification maximum. The two
    // can only differ when verification rejects every widest variant, in
    // which case the surviving kernels simply get one array more than they
    // dereference.
    int nbVectors = options.nbVectors > 0
                        ? options.nbVectors
                        : std::max(1, info.maxArrayCount);
    KernelRequest request = buildRequest(options, nbVectors);
    out.request = request;

    CampaignOptions campaign = options.campaign;
    installPredict(campaign, makeAnnotator(options, request));
    if (cache) makeCacheBinder(cache, backendId, request)(campaign);
    CampaignRunner runner(std::move(factory), campaign);
    std::size_t streamed = 0;
    out.results = runner.runStream(
        [&channel, &streamed]() -> std::optional<CampaignVariant> {
          std::unique_lock<std::mutex> lock(channel.mutex);
          channel.cv.wait(lock, [&channel] {
            return !channel.queue.empty() || channel.closed;
          });
          if (channel.queue.empty()) return std::nullopt;
          CampaignVariant v = std::move(channel.queue.front());
          channel.queue.pop_front();
          channel.cv.notify_all();
          ++streamed;
          return v;
        },
        request, sink);
    {
      // Batch parity: a generation failure fails the run, even when it
      // struck after some variants were already measured.
      std::lock_guard<std::mutex> lock(channel.mutex);
      if (channel.error) std::rethrow_exception(channel.error);
    }
    out.generated = streamed;
    tallyFullSweep(out);
    if (cache) out.cacheTelemetry = cache->telemetry();
    return out;
  }

  // §3 in memory: the whole variant set goes straight into the campaign,
  // no .s round-trip through the filesystem.
  std::vector<creator::GeneratedProgram> programs =
      creator.generate(description);
  if (programs.empty()) {
    throw McError("description generated no benchmark programs");
  }
  std::vector<CampaignVariant> variants = variantsFromPrograms(programs);

  int nbVectors = options.nbVectors;
  if (nbVectors <= 0) {
    // Derive the array count the kernels actually dereference.
    nbVectors = 1;
    for (const creator::GeneratedProgram& p : programs) {
      nbVectors = std::max(nbVectors, p.arrayCount);
    }
  }
  KernelRequest request = buildRequest(options, nbVectors);

  CacheBinder bindCache;
  if (cache) bindCache = makeCacheBinder(cache, backendId, request);

  std::shared_ptr<StaticAnnotator> annotator = makeAnnotator(options, request);

  out.generated = programs.size();
  out.request = request;

  if (connectMode) {
    // Sharded worker: the daemon resolves every variant (cache probe or
    // lease). Dispatch MUST stream per variant — the batch path resolves
    // every variant before its pool starts, so a worker at its lease cap
    // would sleep in `defer` with nothing draining its queue.
    CampaignOptions campaign = options.campaign;
    installPredict(campaign, annotator);
    RemoteOptions remote;
    remote.worker = options.workerName;
    remote.jobs = campaign.jobs;
    std::shared_ptr<RemoteResultStore> store = bindRemoteCampaign(
        options.connectAddr, remote, variants, backendId, request, campaign);
    CampaignRunner runner(std::move(factory), campaign);
    // Rotated traversal: start where the daemon's joining ordinal points,
    // so fleet members lease disjoint stretches of the variant space
    // instead of colliding on the same keys in lockstep. The row observer
    // rewrites sequences back to the canonical order, so the daemon's
    // merged CSV/report is identical whatever the local order was.
    std::size_t offset = shardOffset(store->ordinal(), variants.size());
    std::size_t next = 0;
    out.results = runner.runStream(
        [&variants, &next, offset]() -> std::optional<CampaignVariant> {
          if (next >= variants.size()) return std::nullopt;
          return variants[(offset + next++) % variants.size()];
        },
        request, sink);
    tallyFullSweep(out);
    out.cacheTelemetry = store->telemetry();
    return out;
  }

  if (options.search == SearchMode::Halving) {
    CampaignOptions campaign = options.campaign;
    PlannerOptions planner = options.planner;
    installPredict(campaign, annotator);
    installPlannerHooks(planner, annotator);
    PlannerResult planned = runSuccessiveHalving(
        variants, request, factory, campaign, planner, bindCache, sink);
    out.results = std::move(planned.results);
    out.rounds = std::move(planned.rounds);
    out.budgetExhausted = planned.budgetExhausted;
    out.stopReason = std::move(planned.stopReason);
    out.fullFidelityVariants = planned.fullFidelityVariants;
    out.workRepetitions = planned.workRepetitions;
    out.measured = planned.measured;
    out.cacheHits = planned.cacheHits;
    out.skipped = planned.resumed;
    out.failures = planned.failures;
    if (cache) out.cacheTelemetry = cache->telemetry();
    return out;
  }

  CampaignOptions campaign = options.campaign;
  installPredict(campaign, annotator);
  if (bindCache) bindCache(campaign);
  CampaignRunner runner(std::move(factory), campaign);
  out.results = runner.run(variants, request, sink);
  tallyFullSweep(out);
  if (cache) out.cacheTelemetry = cache->telemetry();
  return out;
}

csv::Table topKReport(const std::vector<VariantResult>& results, int k) {
  std::vector<const VariantResult*> ranked;
  for (const VariantResult& r : results) {
    if (r.status == "ok") ranked.push_back(&r);
  }
  // NaN-last comparisons throughout: `am != bm ? am < bm : ...` is not a
  // strict weak order once a NaN min/mean appears (possible after
  // overhead-clamped measurements) — NaN compares false both ways, breaking
  // transitivity of equivalence, which is UB in std::stable_sort.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const VariantResult* a, const VariantResult* b) {
                     double am = a->measurement.cyclesPerIteration.min;
                     double bm = b->measurement.cyclesPerIteration.min;
                     if (stats::nanLastLess(am, bm)) return true;
                     if (stats::nanLastLess(bm, am)) return false;
                     double aMean = a->measurement.cyclesPerIteration.mean;
                     double bMean = b->measurement.cyclesPerIteration.mean;
                     if (stats::nanLastLess(aMean, bMean)) return true;
                     if (stats::nanLastLess(bMean, aMean)) return false;
                     return a->name < b->name;
                   });
  if (k > 0 && ranked.size() > static_cast<std::size_t>(k)) {
    ranked.resize(static_cast<std::size_t>(k));
  }
  csv::Table table({"rank", "variant", "cycles_per_iteration_min",
                    "cycles_per_iteration_mean", "cv", "converged",
                    "repetitions", "cached"});
  int rank = 1;
  for (const VariantResult* r : ranked) {
    const stats::Summary& s = r->measurement.cyclesPerIteration;
    table.beginRow()
        .add(rank++)
        .add(r->name)
        .add(s.min)
        .add(s.mean)
        .add(strings::format("%.6f", r->finalCv))
        .add(r->converged ? "1" : "0")
        .add(r->repetitions)
        .add(r->cached ? "1" : "0")
        .commit();
  }
  return table;
}

}  // namespace microtools::launcher
