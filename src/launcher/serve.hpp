#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "launcher/result_store.hpp"
#include "launcher/wire.hpp"
#include "support/socket.hpp"

namespace microtools::launcher {

/// Knobs of one `microtools serve` daemon.
struct ServeOptions {
  std::string listen = "127.0.0.1:0";  ///< host:port (0 = ephemeral) or
                                       ///< unix:/path
  std::string cacheDir = ".microtools-cache";  ///< shared MeasurementCache
  std::string csvPath;     ///< canonical merged campaign CSV ("" = none)
  std::string reportPath;  ///< canonical ranked report ("" = none)
  int topK = 0;            ///< ranked-report size (0 = all)

  /// A lease not acked (store/row) within this window is considered dead:
  /// the next acquire for its key gets a fresh lease (re-issue).
  int leaseDeadlineMs = 30000;

  /// Backpressure: outstanding leases one connection may hold. 0 = auto
  /// (twice the worker's announced measurement jobs, at least 2), so one
  /// worker's resolve loop can never drain the whole campaign into its own
  /// queue while its peers starve.
  int maxLeasesPerWorker = 0;

  /// requestStop() waits this long for in-flight leases to be acked before
  /// cutting the remaining connections.
  int drainTimeoutMs = 10000;
};

/// Per-worker accounting reported in the shutdown summary.
struct WorkerTelemetry {
  std::uint64_t hits = 0;    ///< acquires/probes answered inline
  std::uint64_t misses = 0;  ///< leases granted (work this worker measured)
  std::uint64_t rows = 0;    ///< canonical rows forwarded
};

/// Aggregate daemon accounting (summary() / the CLI's final line).
struct ServeSummary {
  CacheTelemetry cache;  ///< the shared MeasurementCache's own telemetry
  std::uint64_t acquires = 0;
  std::uint64_t hits = 0;     ///< acquires answered without a lease
  std::uint64_t leases = 0;   ///< leases granted
  std::uint64_t reissues = 0; ///< leases re-granted after a worker died or
                              ///< missed the ack deadline
  std::uint64_t rowsMerged = 0;
  std::uint64_t campaignsFinalized = 0;
  std::map<std::string, WorkerTelemetry> workers;  ///< by announced name
};

/// The campaign-service daemon: owns the shared MeasurementCache, hands out
/// idempotent work leases over the wire protocol (launcher/wire.hpp), and
/// merges every worker's rows into the canonical campaign CSV + ranked
/// report. Runs an accept thread plus one thread per connection; all state
/// transitions happen under one mutex (the expensive work — measuring —
/// happens in the workers, never here).
///
/// Scheduling is cache-first: an acquire probes the store before anything
/// else, so warm variants are answered inline with zero backend work and
/// only cache misses ever consume a lease.
class ServeServer {
 public:
  explicit ServeServer(ServeOptions options);
  ~ServeServer();

  /// Binds, listens and starts the accept thread; throws McError when the
  /// address cannot be bound.
  void start();

  /// The listen spec with any ephemeral port resolved — what workers pass
  /// to --connect.
  const std::string& boundAddress() const { return boundAddress_; }

  /// Begins a graceful shutdown: stop accepting, refuse new leases, drain
  /// in-flight ones (bounded by drainTimeoutMs). Idempotent; safe from a
  /// signal-driven thread.
  void requestStop();

  /// Blocks until the daemon has fully stopped (requestStop() finished
  /// draining, every connection thread joined, unfinished campaigns
  /// finalized). Calling wait() without requestStop() blocks until another
  /// thread requests the stop.
  void wait();

  ServeSummary summary() const;

 private:
  struct Lease {
    std::uint64_t id = 0;
    int connId = -1;
    std::string worker;
    std::chrono::steady_clock::time_point deadline;
  };

  /// Rows are keyed (round, sequence, name) — the identity of one CSV row —
  /// so racing duplicate forwards merge instead of duplicating.
  using RowId = std::tuple<int, std::size_t, std::string>;

  /// One merged row plus the cache key it was measured under (needed for
  /// the finalize-time cached-flag normalization).
  struct MergedRow {
    std::string key;
    VariantResult row;
  };

  struct CampaignState {
    std::size_t expected = 0;
    std::size_t beginCount = 0;  ///< workers that joined (ordinal source)
    std::map<RowId, MergedRow> rows;
    std::map<std::string, VariantResult> failResults;  ///< key -> terminal
                                                       ///< non-ok result
    std::set<std::string> leasedKeys;  ///< keys measured fresh this campaign
    bool finalized = false;
  };

  struct ConnInfo {
    std::string worker;
    int jobs = 1;
    int outstandingLeases = 0;
  };

  void acceptLoop();
  void serveConnection(int connId, net::Socket* socket);
  void handleConnection(int connId, net::Socket* socket);
  wire::Message dispatch(int connId, const wire::Message& request);
  void releaseLease(const std::string& key, const std::string& leaseId,
                    int connId);
  void releaseConnectionLeases(int connId);
  void finalizeCampaign(const std::string& id, CampaignState& campaign);
  void finalizeRemaining();

  ServeOptions options_;
  std::unique_ptr<MeasurementCache> cache_;
  net::Listener listener_;
  std::string boundAddress_;

  mutable std::mutex mutex_;
  std::map<std::string, CampaignState> campaigns_;
  std::map<std::string, Lease> leases_;  ///< by cache key
  std::map<int, ConnInfo> connections_;
  ServeSummary summary_;
  std::uint64_t nextLeaseId_ = 1;
  bool stopping_ = false;

  std::thread acceptThread_;
  std::mutex threadsMutex_;
  int nextConnId_ = 0;
  std::vector<std::thread> connectionThreads_;
  std::map<int, std::unique_ptr<net::Socket>> sockets_;
  bool stopped_ = false;
};

/// The `microtools serve` entry: starts the daemon, prints the bound
/// address, and runs until SIGINT/SIGTERM, then drains and prints the
/// aggregate + per-worker telemetry summary. Returns the process exit code.
int serveMain(const ServeOptions& options);

}  // namespace microtools::launcher
