#include "launcher/arch_registry.hpp"

#include "support/error.hpp"

namespace microtools::launcher {

const std::vector<ArchEntry>& table1() {
  static const std::vector<ArchEntry> entries = [] {
    std::vector<ArchEntry> v;
    v.push_back({sim::sandyBridgeE31240(),
                 "Sandy Bridge, Intel Xeon E31240 - 3.30 GHz, "
                 "(1 x 4GB) + (2 x 2GB)",
                 {17, 18}});
    v.push_back({sim::nehalemX5650DualSocket(),
                 "Dual-Socket Nehalem, Intel Xeon X5650 - 2.67 GHz, 8 GB",
                 {2, 3, 4, 5, 11, 12, 13, 14}});
    v.push_back({sim::nehalemX7550QuadSocket(),
                 "Quad-Socket Nehalem, Intel Xeon X7550, 128 GB",
                 {15, 16}});
    return v;
  }();
  return entries;
}

const ArchEntry& archByName(const std::string& name) {
  for (const ArchEntry& entry : table1()) {
    if (entry.config.name == name) return entry;
  }
  throw McError("unknown architecture '" + name + "'");
}

}  // namespace microtools::launcher
