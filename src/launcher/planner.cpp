#include "launcher/planner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>

#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"

namespace microtools::launcher {

SearchMode searchModeFromName(const std::string& name) {
  if (name == "full") return SearchMode::Full;
  if (name == "halving") return SearchMode::Halving;
  throw McError("--search must be full or halving (got '" + name + "')");
}

Budget parseBudget(const std::string& text) {
  Budget budget;
  if (text.empty()) return budget;
  if (text.back() == 's') {
    auto seconds = strings::parseDouble(text.substr(0, text.size() - 1));
    if (!seconds || !(*seconds > 0.0)) {
      throw McError("--budget seconds must be a positive number, e.g. '30s' "
                    "(got '" + text + "')");
    }
    budget.kind = Budget::Kind::Seconds;
    budget.seconds = *seconds;
    return budget;
  }
  auto variants = strings::parseInt(text);
  if (!variants || *variants <= 0) {
    throw McError("--budget must be '<seconds>s' or a positive variant-"
                  "measurement count (got '" + text + "')");
  }
  budget.kind = Budget::Kind::Variants;
  budget.variants = *variants;
  return budget;
}

std::vector<int> halvingBudgets(int screenRepetitions, int fullOuter) {
  std::vector<int> budgets;
  for (int b = screenRepetitions; b < fullOuter; b *= 2) budgets.push_back(b);
  return budgets;
}

std::vector<std::size_t> selectSurvivors(
    const std::vector<VariantResult>& rows, double tieCvMultiplier) {
  std::vector<std::size_t> ranked;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].status == "ok") ranked.push_back(i);
  }
  std::stable_sort(
      ranked.begin(), ranked.end(), [&rows](std::size_t a, std::size_t b) {
        const stats::Summary& sa = rows[a].measurement.cyclesPerIteration;
        const stats::Summary& sb = rows[b].measurement.cyclesPerIteration;
        if (stats::nanLastLess(sa.median, sb.median)) return true;
        if (stats::nanLastLess(sb.median, sa.median)) return false;
        if (stats::nanLastLess(sa.mean, sb.mean)) return true;
        if (stats::nanLastLess(sb.mean, sa.mean)) return false;
        return rows[a].name < rows[b].name;
      });
  if (ranked.empty()) return ranked;

  std::size_t keep = std::max<std::size_t>(1, ranked.size() / 2);
  if (keep < ranked.size()) {
    // CV tie guard: a variant just past the cut whose median is inside the
    // combined noise envelope of the last kept one is statistically
    // indistinguishable — eliminating it would be a coin flip, so it
    // survives too. A NaN CV makes the comparison undecidable: survive.
    const VariantResult& edge = rows[ranked[keep - 1]];
    double edgeMedian = edge.measurement.cyclesPerIteration.median;
    while (keep < ranked.size()) {
      const VariantResult& next = rows[ranked[keep]];
      if (!stats::withinNoise(edgeMedian, edge.finalCv,
                              next.measurement.cyclesPerIteration.median,
                              next.finalCv, tieCvMultiplier)) {
        break;
      }
      ++keep;
    }
  }
  ranked.resize(keep);
  return ranked;
}

namespace {

/// Column lookup helper over a parsed CSV header.
std::ptrdiff_t columnOf(const std::vector<std::string>& header,
                        const std::string& name) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

}  // namespace

std::map<std::string, VariantResult> readRoundResults(
    const std::string& csvPath, int round) {
  std::map<std::string, VariantResult> rows;
  std::ifstream in(csvPath, std::ios::binary);
  if (!in) return rows;

  std::string line;
  std::vector<std::string> header;
  while (std::getline(in, line)) {
    if (strings::startsWith(strings::trim(line), "#")) continue;
    header = csv::parseLine(line);
    break;
  }
  if (header.empty()) return rows;
  std::ptrdiff_t seqCol = columnOf(header, "sequence");
  std::ptrdiff_t roundCol = columnOf(header, "round");
  std::ptrdiff_t nameCol = columnOf(header, "variant");
  std::ptrdiff_t statusCol = columnOf(header, "status");
  std::ptrdiff_t minCol = columnOf(header, "cycles_per_iteration_min");
  std::ptrdiff_t meanCol = columnOf(header, "cycles_per_iteration_mean");
  std::ptrdiff_t medianCol = columnOf(header, "cycles_per_iteration_median");
  std::ptrdiff_t maxCol = columnOf(header, "cycles_per_iteration_max");
  std::ptrdiff_t cvCol = columnOf(header, "cv");
  std::ptrdiff_t repsCol = columnOf(header, "repetitions");
  std::ptrdiff_t convergedCol = columnOf(header, "converged");
  std::ptrdiff_t cachedCol = columnOf(header, "cached");
  std::ptrdiff_t errorCol = columnOf(header, "error");
  std::ptrdiff_t predCpiCol = columnOf(header, "pred_cpi_lo");
  std::ptrdiff_t predBoundCol = columnOf(header, "pred_bound");
  if (seqCol < 0 || roundCol < 0 || nameCol < 0 || statusCol < 0) return rows;

  auto cell = [](const std::vector<std::string>& cells, std::ptrdiff_t col) {
    return col >= 0 ? cells[static_cast<std::size_t>(col)] : std::string();
  };
  auto numeric = [&cell](const std::vector<std::string>& cells,
                         std::ptrdiff_t col) {
    auto parsed = strings::parseDouble(cell(cells, col));
    return parsed ? *parsed : std::numeric_limits<double>::quiet_NaN();
  };

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (strings::startsWith(strings::trim(line), "#")) continue;
    std::vector<std::string> cells = csv::parseLine(line);
    if (cells.size() < header.size()) continue;  // crash-torn remnant
    auto rowRound = strings::parseInt(cell(cells, roundCol));
    if (!rowRound || *rowRound != round) continue;
    auto seq = strings::parseInt(cell(cells, seqCol));
    if (!seq || *seq < 0) continue;
    const std::string& status = cell(cells, statusCol);
    if (status != "ok" && status != "error" && status != "timeout" &&
        status != "skipped") {
      continue;
    }
    VariantResult r;
    r.sequence = static_cast<std::size_t>(*seq);
    r.round = round;
    r.name = cell(cells, nameCol);
    r.status = status;
    r.error = cell(cells, errorCol);
    if (status == "ok") {
      stats::Summary& s = r.measurement.cyclesPerIteration;
      s.min = numeric(cells, minCol);
      s.mean = numeric(cells, meanCol);
      s.median = numeric(cells, medianCol);
      s.max = numeric(cells, maxCol);
      s.cv = numeric(cells, cvCol);
      r.finalCv = s.cv;
    }
    if (auto reps = strings::parseInt(cell(cells, repsCol))) {
      r.repetitions = static_cast<int>(*reps);
    }
    r.converged = cell(cells, convergedCol) == "1";
    r.cached = cell(cells, cachedCol) == "1";
    // Static cost-model columns are optional (older CSVs lack them);
    // backfilled rows keep whatever the interrupted run predicted.
    r.predCpiLo = numeric(cells, predCpiCol);
    r.predBound = cell(cells, predBoundCol);
    rows[r.name] = std::move(r);
  }
  return rows;
}

namespace {

bool isFreshMeasurement(const VariantResult& r) {
  return !r.cached && r.status != "skipped";
}

}  // namespace

PlannerResult runSuccessiveHalving(const std::vector<CampaignVariant>& variants,
                                   const KernelRequest& request,
                                   const BackendFactory& factory,
                                   const CampaignOptions& base,
                                   const PlannerOptions& planner,
                                   const CacheBinder& bindCache,
                                   CampaignCsvSink* sink) {
  if (variants.empty()) {
    throw McError("successive halving requires at least one variant");
  }
  if (planner.screenRepetitions < 1) {
    throw McError("successive halving requires --screen-reps >= 1");
  }
  int fullOuter = std::max(1, base.protocol.outerRepetitions);

  auto start = std::chrono::steady_clock::now();
  auto elapsedSeconds = [start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  PlannerResult out;
  std::vector<CampaignVariant> survivors = variants;
  if (planner.predictedCpi) {
    // Seed the screening round in ascending predicted cycles/iteration
    // (NaN-unboundable variants last, original order preserved within
    // ties). Ranking past round 0 is measured, so this only decides which
    // variants a --budget truncation drops: the predicted-slow tail.
    std::vector<double> predicted(survivors.size());
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      predicted[i] = planner.predictedCpi(survivors[i]);
    }
    std::vector<std::size_t> order(survivors.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&predicted](std::size_t a, std::size_t b) {
                       return stats::nanLastLess(predicted[a], predicted[b]);
                     });
    std::vector<CampaignVariant> seeded;
    seeded.reserve(order.size());
    for (std::size_t idx : order) seeded.push_back(survivors[idx]);
    survivors = std::move(seeded);
  }
  long long freshMeasured = 0;  // fresh variant measurements, all rounds
  int budget = planner.screenRepetitions;
  int round = 0;

  while (true) {
    // A one-variant survivor set refines nothing at intermediate fidelity:
    // jump straight to the final full-budget round.
    bool finalRound = budget >= fullOuter || survivors.size() <= 1;

    // Budget preflight. Round 0 always runs (a planner that measures
    // nothing has no best-so-far to report); later rounds stop cleanly on
    // an exhausted budget, keeping the previous round's rows as the answer.
    if (round > 0 && planner.budget.kind == Budget::Kind::Seconds &&
        elapsedSeconds() >= planner.budget.seconds) {
      out.budgetExhausted = true;
      out.stopReason = "budget exhausted (time)";
      break;
    }
    CampaignOptions roundOptions = base;
    if (!finalRound) {
      // Screening/refinement fidelity: the adaptive budget IS the round
      // budget, and the protocol cannot ask for more outer reps than that.
      roundOptions.protocol.outerRepetitions = std::min(fullOuter, budget);
      roundOptions.maxRepetitions = budget;
    }
    roundOptions.round = round;
    if (round == 0 && !finalRound && planner.stable &&
        planner.stableScreenRepetitions >= 1 &&
        planner.stableScreenRepetitions <
            roundOptions.protocol.outerRepetitions) {
      // Stability-directed screening: provably-stable variants need fewer
      // repetitions to produce the same median, so round 0 caps them at
      // stableScreenRepetitions. Installed before bindCache so the cache
      // key hashes the effective (capped) protocol — a stable variant's
      // screening row must never alias an uncapped entry.
      roundOptions.repOverride = [stable = planner.stable,
                                  cap = planner.stableScreenRepetitions](
                                     const CampaignVariant& v) {
        return stable(v) ? cap : 0;
      };
    }
    if (!planner.resumeCsv.empty()) {
      roundOptions.completed = readCompletedVariants(planner.resumeCsv, round);
    }
    if (bindCache) bindCache(roundOptions);

    bool truncated = false;
    std::vector<CampaignVariant> scheduled = survivors;
    if (planner.budget.kind == Budget::Kind::Variants) {
      long long remaining = planner.budget.variants - freshMeasured;
      if (round > 0 && remaining <= 0) {
        out.budgetExhausted = true;
        out.stopReason = "budget exhausted (variants)";
        break;
      }
      // Only fresh measurements consume the budget: rows already terminal
      // in the resumed CSV and cache hits are free, so probe both before
      // deciding anything is out of contract. Truncation keeps the longest
      // best-ranked prefix whose fresh work fits the allowance — a fully
      // warm rerun probes entirely free and is never truncated.
      long long fresh = 0;
      std::size_t fit = scheduled.size();
      for (std::size_t i = 0; i < scheduled.size(); ++i) {
        bool free = roundOptions.completed.count({i, scheduled[i].name}) > 0;
        if (!free && roundOptions.cacheLookup) {
          VariantResult probe;
          free = roundOptions.cacheLookup(scheduled[i], probe);
        }
        if (!free && ++fresh > remaining) {
          fit = i;
          break;
        }
      }
      if (fit < scheduled.size()) {
        scheduled.resize(fit);
        truncated = true;
      }
    }

    CampaignRunner runner(factory, roundOptions);
    std::vector<VariantResult> rows = runner.run(scheduled, request, sink);

    RoundSummary summary;
    summary.round = round;
    summary.outerRepetitions = roundOptions.protocol.outerRepetitions;
    summary.maxRepetitions =
        std::max(roundOptions.maxRepetitions,
                 roundOptions.protocol.outerRepetitions);
    summary.scheduled = rows.size();
    summary.finalRound = finalRound;
    summary.truncated = truncated;

    // Backfill rows the campaign skipped because the resumed CSV already
    // holds them: their metrics come from the file, so ranking (and the
    // final report) treat them exactly like freshly measured rows.
    if (!roundOptions.completed.empty()) {
      std::map<std::string, VariantResult> recorded =
          readRoundResults(planner.resumeCsv, round);
      for (VariantResult& r : rows) {
        if (r.status != "skipped" ||
            !roundOptions.completed.count({r.sequence, r.name})) {
          continue;
        }
        auto it = recorded.find(r.name);
        if (it == recorded.end()) continue;
        std::size_t sequence = r.sequence;
        r = it->second;
        r.sequence = sequence;
        r.note = "resumed from halving CSV";
        ++summary.resumed;
      }
    }

    for (const VariantResult& r : rows) {
      if (r.note == "resumed from halving CSV") continue;  // counted above
      if (r.cached) {
        ++summary.cacheHits;
      } else if (isFreshMeasurement(r)) {
        ++summary.measured;
        summary.workRepetitions += r.repetitions;
      }
      if (r.status == "error" || r.status == "timeout") ++summary.failures;
    }

    freshMeasured += static_cast<long long>(summary.measured);
    out.workRepetitions += summary.workRepetitions;
    out.measured += summary.measured;
    out.cacheHits += summary.cacheHits;
    out.resumed += summary.resumed;
    out.failures += summary.failures;
    out.rounds.push_back(summary);
    out.results = rows;  // best-so-far: the latest (highest-fidelity) rows

    if (finalRound) {
      out.finalRound = round;
      out.fullFidelityVariants = rows.size();
    }
    if (truncated) {
      out.budgetExhausted = true;
      out.stopReason = "budget exhausted (variants)";
      break;
    }
    if (finalRound) {
      out.stopReason = "complete";
      break;
    }

    std::vector<std::size_t> keep = selectSurvivors(rows, planner.tieCvMultiplier);
    if (keep.empty()) {
      out.stopReason = "all variants failed";
      break;
    }
    std::vector<CampaignVariant> next;
    next.reserve(keep.size());
    for (std::size_t idx : keep) next.push_back(scheduled[idx]);
    survivors = std::move(next);
    budget *= 2;
    ++round;
  }
  return out;
}

}  // namespace microtools::launcher
