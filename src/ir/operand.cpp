#include "ir/operand.hpp"

#include "support/error.hpp"

namespace microtools::ir {

RegOperand RegOperand::logical(std::string name) {
  RegOperand op;
  op.logicalName = std::move(name);
  return op;
}

RegOperand RegOperand::physical(isa::PhysReg reg) {
  RegOperand op;
  op.phys = reg;
  return op;
}

RegOperand RegOperand::rotating(std::string prefix, int min, int max) {
  if (min < 0 || max <= min) {
    throw DescriptionError("rotating register range must satisfy 0 <= min < max");
  }
  RegOperand op;
  op.rotatePrefix = std::move(prefix);
  op.rotateMin = min;
  op.rotateMax = max;
  return op;
}

std::string RegOperand::render() const {
  if (phys) return isa::registerName(*phys);
  if (isRotating()) {
    throw McError("rotating register operand '" + rotatePrefix +
                  "' rendered before RegisterRotation ran");
  }
  throw McError("logical register '" + logicalName +
                "' rendered before RegisterAllocation ran");
}

std::string MemOperand::render() const {
  std::string out;
  if (offset != 0) out += std::to_string(offset);
  out += '(';
  out += base.render();
  if (index) {
    out += ',';
    out += index->render();
    out += ',';
    out += std::to_string(scale);
  }
  out += ')';
  return out;
}

std::string ImmOperand::render() const {
  if (!choices.empty()) {
    throw McError("immediate with unresolved choices rendered before "
                  "ImmediateSelection ran");
  }
  return "$" + std::to_string(value);
}

std::string renderOperand(const Operand& op) {
  return std::visit([](const auto& o) { return o.render(); }, op);
}

bool isRegister(const Operand& op) {
  return std::holds_alternative<RegOperand>(op);
}
bool isMemory(const Operand& op) {
  return std::holds_alternative<MemOperand>(op);
}
bool isImmediate(const Operand& op) {
  return std::holds_alternative<ImmOperand>(op);
}
bool isLabel(const Operand& op) {
  return std::holds_alternative<LabelOperand>(op);
}

}  // namespace microtools::ir
