#include "ir/instruction.hpp"

#include "support/error.hpp"

namespace microtools::ir {

bool Instruction::isFullyResolved() const {
  if (operation.empty() || !operationChoices.empty() || semantics) return false;
  if (repeatMin != 1 || repeatMax != 1) return false;
  for (const Operand& op : operands) {
    if (const auto* reg = std::get_if<RegOperand>(&op)) {
      if (!reg->isBound()) return false;
    } else if (const auto* mem = std::get_if<MemOperand>(&op)) {
      if (!mem->base.isBound()) return false;
      if (mem->index && !mem->index->isBound()) return false;
    } else if (const auto* imm = std::get_if<ImmOperand>(&op)) {
      if (!imm->choices.empty()) return false;
    }
  }
  return true;
}

bool Instruction::isLoad() const {
  if (operands.size() < 2) return false;
  for (std::size_t i = 0; i + 1 < operands.size(); ++i) {
    if (isMemory(operands[i])) return true;
  }
  return false;
}

bool Instruction::isStore() const {
  return !operands.empty() && isMemory(operands.back());
}

std::string Instruction::render() const {
  if (operation.empty()) {
    throw McError("instruction rendered before its operation was resolved");
  }
  std::string out = operation;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    out += (i == 0) ? " " : ", ";
    out += renderOperand(operands[i]);
  }
  return out;
}

Instruction swappedOperands(const Instruction& instr) {
  if (instr.operands.size() < 2) {
    throw DescriptionError(
        "operand swap requires at least two operands on '" +
        (instr.operation.empty() ? std::string("<unresolved>")
                                 : instr.operation) +
        "'");
  }
  Instruction out = instr;
  std::swap(out.operands[0], out.operands[1]);
  return out;
}

}  // namespace microtools::ir
