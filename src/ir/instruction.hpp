#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/operand.hpp"

namespace microtools::ir {

/// "Move semantics" (§3.1): the description asks for a transfer of N bytes
/// without naming the instruction; the MoveSemanticExpansion pass fans the
/// request out into concrete mnemonics (aligned vs unaligned, ps vs pd).
struct MoveSemantics {
  int bytes = 0;               // 4, 8 or 16
  bool tryAligned = true;      // consider movaps/movapd for 16-byte moves
  bool tryUnaligned = false;   // consider movups/movupd for 16-byte moves
  bool allowDouble = true;     // include the pd/sd spellings

  bool operator==(const MoveSemantics&) const = default;
};

/// One instruction of a kernel template. Until the generation pipeline has
/// finished, an instruction may still carry unresolved degrees of freedom
/// (operation choices, move semantics, immediate choices, swap requests,
/// repetition ranges) — each fan-out pass removes one kind of freedom.
struct Instruction {
  /// Resolved mnemonic; empty while `operationChoices` or `semantics` are
  /// still pending.
  std::string operation;

  /// Candidate mnemonics the InstructionRepetition/RandomSelection passes
  /// choose from; empty once resolved.
  std::vector<std::string> operationChoices;

  /// Pending move-semantics request; nullopt once expanded.
  std::optional<MoveSemantics> semantics;

  /// Operands in AT&T order (source first, destination last).
  std::vector<Operand> operands;

  /// Operand-swap requests (§3.2: two swap passes, before and after
  /// unrolling, to generate load<->store variant sets).
  bool swapBeforeUnroll = false;
  bool swapAfterUnroll = false;

  /// Repetition range: the InstructionRepetition pass clones this
  /// instruction min..max times (one variant per count).
  int repeatMin = 1;
  int repeatMax = 1;

  /// When several operationChoices exist and this is set, RandomSelection
  /// picks one at random instead of fanning out every choice.
  bool chooseRandomly = false;

  /// Which unrolled copy this instruction belongs to (set by the Unrolling
  /// pass; used by RegisterRotation and the per-copy operand swap).
  int unrollCopy = 0;

  bool operator==(const Instruction&) const = default;

  /// True when every degree of freedom has been resolved and all register
  /// operands are bound to physical registers.
  bool isFullyResolved() const;

  /// True when the instruction reads from memory (memory operand in source
  /// position, i.e. not the last operand) / writes memory (memory operand in
  /// destination position). Valid on resolved instructions.
  bool isLoad() const;
  bool isStore() const;

  /// Renders the instruction in AT&T syntax ("op src, dst").
  std::string render() const;
};

/// Swaps the first two operands (the load<->store flip of §3.2). Throws
/// DescriptionError when the instruction has fewer than two operands.
Instruction swappedOperands(const Instruction& instr);

}  // namespace microtools::ir
