#include "ir/kernel.hpp"

#include "support/strings.hpp"

namespace microtools::ir {

std::string Kernel::variantName() const {
  std::string out = baseName;
  for (const std::string& t : tags) {
    out += '_';
    out += t;
  }
  return out;
}

const InductionVar* Kernel::inductionFor(const std::string& logicalName) const {
  for (const InductionVar& iv : inductions) {
    if (iv.reg.logicalName == logicalName) return &iv;
  }
  return nullptr;
}

InductionVar* Kernel::inductionFor(const std::string& logicalName) {
  for (InductionVar& iv : inductions) {
    if (iv.reg.logicalName == logicalName) return &iv;
  }
  return nullptr;
}

const InductionVar* Kernel::lastInduction() const {
  for (const InductionVar& iv : inductions) {
    if (iv.lastInduction) return &iv;
  }
  return nullptr;
}

int Kernel::loadCount() const {
  int n = 0;
  for (const Instruction& instr : body) n += instr.isLoad() ? 1 : 0;
  return n;
}

int Kernel::storeCount() const {
  int n = 0;
  for (const Instruction& instr : body) n += instr.isStore() ? 1 : 0;
  return n;
}

}  // namespace microtools::ir
