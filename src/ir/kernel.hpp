#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace microtools::ir {

/// An induction variable of the kernel loop (§3.1).
///
/// Semantics implemented here (documented because Figure 8 of the paper only
/// shows one worked example):
///  * `increment`  — advance per original (pre-unroll) loop iteration.
///  * `offsetStep` — address offset added per unrolled copy to memory
///    operands based on this register (16 in Figure 6: copy k accesses
///    16k(%rsi)).
///  * After unrolling by factor u the loop-level increment becomes
///    increment * u, except when `notAffectedByUnroll` is set (Figure 9's
///    iteration counter).
///  * A `linkedTo` induction additionally scales by the *elements consumed
///    per unroll step* of the linked register, elementsPerStep =
///    linked.offsetStep / elementSize. Figure 6/8: r0 has increment -1
///    linked to r1 (offsetStep 16, elementSize 4) and unroll 3 gives
///    -1 * 3 * (16/4) = -12, matching `sub $12, %rdi`.
struct InductionVar {
  RegOperand reg;
  std::int64_t increment = 0;
  std::vector<std::int64_t> strideChoices;  // StrideSelection candidates
  std::int64_t offsetStep = 0;
  std::optional<std::string> linkedTo;  // logical name of linked register
  bool lastInduction = false;       // drives the loop-exit test
  bool notAffectedByUnroll = false; // e.g. the %eax iteration counter
  std::int64_t elementSize = 4;     // bytes per counted element for links

  /// Per-loop-iteration increment after unroll/link scaling; set by the
  /// InductionLinking pass (nullopt until then).
  std::optional<std::int64_t> scaledIncrement;

  /// The increment InductionInsertion must materialize.
  std::int64_t effectiveIncrement() const {
    return scaledIncrement.value_or(increment);
  }

  bool operator==(const InductionVar&) const = default;
};

/// Loop branch description (label + conditional jump mnemonic).
struct BranchInfo {
  std::string label = "L1";
  std::string test = "jge";

  bool operator==(const BranchInfo&) const = default;
};

/// A kernel: the unit the whole MicroCreator pipeline transforms.
///
/// Passes consume and produce vectors of kernels; variant-producing passes
/// return several output kernels per input (the paper's "thousands of
/// variations from a single file"). `tags` records every decision taken so
/// each generated benchmark has a self-describing name.
struct Kernel {
  std::string baseName = "kernel";

  /// Loop body (the instructions between the label and the branch).
  std::vector<Instruction> body;

  /// Loop-maintenance instructions appended by InductionInsertion.
  std::vector<Instruction> loopMaintenance;

  /// Function prologue/epilogue built by the PrologueEpilogue pass.
  std::vector<Instruction> prologue;
  std::vector<Instruction> epilogue;

  /// Logical-to-physical register bindings chosen by RegisterAllocation,
  /// in allocation order.
  std::vector<std::pair<std::string, isa::PhysReg>> regMap;

  /// Number of array pointer arguments the generated function expects after
  /// the trip count (MicroLauncher's --nbvectors, §4.4).
  int arrayCount = 0;

  std::vector<InductionVar> inductions;
  BranchInfo branch;

  /// Unroll bounds requested by the description; the Unrolling pass fans
  /// out one kernel per factor in [unrollMin, unrollMax].
  int unrollMin = 1;
  int unrollMax = 1;

  /// Factor actually applied (1 until the Unrolling pass runs).
  int unrollFactor = 1;

  /// Requested code alignment for the loop label (bytes, power of two).
  int loopAlignment = 16;

  /// Decision log: "unroll=3", "op0=store", "imm1=8", ...
  std::vector<std::string> tags;

  /// Adds a decision tag.
  void tag(const std::string& t) { tags.push_back(t); }

  /// Variant name: baseName plus all tags joined with '_'.
  std::string variantName() const;

  /// Finds the induction variable driving a logical register; nullptr when
  /// absent.
  const InductionVar* inductionFor(const std::string& logicalName) const;
  InductionVar* inductionFor(const std::string& logicalName);

  /// The induction flagged `last_induction` (the loop counter); nullptr
  /// when the description did not flag one.
  const InductionVar* lastInduction() const;

  /// Number of memory-reading / memory-writing instructions in the body.
  int loadCount() const;
  int storeCount() const;
};

}  // namespace microtools::ir
