#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "isa/registers.hpp"

namespace microtools::ir {

/// A register operand.
///
/// MicroCreator works on *logical* registers ("r0", "r1", ... in the XML of
/// §3.1) that the RegisterAllocation pass later binds to physical registers
/// following the SysV ABI. An operand may alternatively name a physical
/// register directly (`<phyName>%eax</phyName>`, Figure 9), or a *rotating*
/// physical register class (`<phyName>%xmm</phyName>` with min/max, §3.1)
/// that the RegisterRotation pass resolves to a distinct register per
/// unrolled copy to reduce register dependencies.
struct RegOperand {
  /// Logical name from the description ("r0", "r1"); empty when the operand
  /// was given physically.
  std::string logicalName;

  /// Bound physical register (set directly by the description, or by
  /// RegisterRotation / RegisterAllocation).
  std::optional<isa::PhysReg> phys;

  /// Rotating register class: prefix such as "%xmm" plus [min, max) range.
  std::string rotatePrefix;
  int rotateMin = 0;
  int rotateMax = 0;

  bool isRotating() const { return !rotatePrefix.empty(); }
  bool isBound() const { return phys.has_value(); }

  bool operator==(const RegOperand&) const = default;

  /// Renders the operand in AT&T syntax; throws McError when still unbound.
  std::string render() const;

  static RegOperand logical(std::string name);
  static RegOperand physical(isa::PhysReg reg);
  static RegOperand rotating(std::string prefix, int min, int max);
};

/// A memory operand `offset(base, index, scale)` in AT&T syntax.
struct MemOperand {
  RegOperand base;
  std::optional<RegOperand> index;
  int scale = 1;
  std::int64_t offset = 0;

  bool operator==(const MemOperand&) const = default;

  std::string render() const;
};

/// An immediate operand; may carry several candidate values that the
/// ImmediateSelection pass fans out into separate benchmark variants.
struct ImmOperand {
  std::int64_t value = 0;
  std::vector<std::int64_t> choices;  // empty = fixed value

  bool operator==(const ImmOperand&) const = default;

  std::string render() const;
};

/// A branch target label.
struct LabelOperand {
  std::string label;

  bool operator==(const LabelOperand&) const = default;

  std::string render() const { return label; }
};

using Operand = std::variant<RegOperand, MemOperand, ImmOperand, LabelOperand>;

/// Renders any operand in AT&T syntax.
std::string renderOperand(const Operand& op);

/// Type queries used throughout the pass pipeline.
bool isRegister(const Operand& op);
bool isMemory(const Operand& op);
bool isImmediate(const Operand& op);
bool isLabel(const Operand& op);

}  // namespace microtools::ir
