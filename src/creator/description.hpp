#pragma once

#include <cstdint>
#include <string>

#include "ir/kernel.hpp"
#include "xml/xml.hpp"

namespace microtools::creator {

/// A parsed MicroCreator input file: generation options plus the kernel
/// template whose unresolved degrees of freedom the pass pipeline fans out
/// into concrete benchmark programs (§3.1 of the paper).
struct Description {
  /// Base name used for every generated variant.
  std::string benchmarkName = "kernel";

  /// Name of the emitted function (the MicroLauncher entry point, §4.4).
  std::string functionName = "microkernel";

  /// Upper bound on the number of generated benchmark programs ("The user
  /// can limit the number of benchmark programs if it is superfluous").
  std::size_t maximumBenchmarks = 10000;

  /// Seed for the RandomSelection pass.
  std::uint64_t seed = 1;

  /// Emit C source next to the assembly (§3: "generated programs are either
  /// in assembly format or in C source code").
  bool emitC = false;

  /// Scheduling mode requested by <schedule>: "none" (keep program order)
  /// or "interleave" (alternate loads and stores).
  std::string schedule = "none";

  /// The kernel template.
  ir::Kernel kernel;
};

/// Parses a description from an XML document. Throws DescriptionError /
/// ParseError with precise messages on invalid input.
///
/// Schema (all of §3.1's constructs):
///
///   <description>                        (or a bare <kernel> root)
///     <benchmark_name>..</benchmark_name>
///     <function_name>..</function_name>
///     <maximum_benchmarks>..</maximum_benchmarks>
///     <seed>..</seed>
///     <emit_c/>
///     <schedule>none|interleave</schedule>
///     <kernel>
///       <instruction>
///         <operation>movaps</operation>           (repeatable: choice set)
///         <random_choice/>                        (pick one at random)
///         <move_semantic>                         (instead of <operation>)
///           <bytes>16</bytes> <aligned/> <unaligned/> <no_double/>
///         </move_semantic>
///         <memory>                                (operand, AT&T order)
///           <register><name>r1</name></register>
///           <offset>0</offset>
///           <index><name>r2</name></index> <scale>8</scale>
///         </memory>
///         <register>                              (operand)
///           <name>r3</name>                       (logical), or
///           <phyName>%xmm</phyName><min>0</min><max>8</max>  (rotating), or
///           <phyName>%eax</phyName>               (fixed physical)
///         </register>
///         <immediate>                             (operand)
///           <value>8</value>                      (repeatable: choice set)
///           <min>0</min><max>32</max><step>8</step>
///         </immediate>
///         <swap_before_unroll/> <swap_after_unroll/>
///         <repeat><min>1</min><max>4</max></repeat>
///       </instruction>
///       <unrolling><min>1</min><max>8</max></unrolling>
///       <induction>
///         <register><name>r1</name></register>    (or <phyName>%eax</phyName>)
///         <increment>16</increment>               (repeatable: stride choices)
///         <stride><min>..</min><max>..</max><step>..</step></stride>
///         <offset>16</offset>
///         <element_size>4</element_size>
///         <linked><register><name>r1</name></register></linked>
///         <last_induction/> <not_affected_unroll/>
///       </induction>
///       <branch_information><label>L6</label><test>jge</test></branch_information>
///       <alignment>16</alignment>
///     </kernel>
///   </description>
Description parseDescription(const xml::Document& doc);

/// Convenience: parse from XML text / from a file path.
Description parseDescriptionText(const std::string& xmlText);
Description parseDescriptionFile(const std::string& path);

}  // namespace microtools::creator
