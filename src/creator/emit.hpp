#pragma once

#include <string>

#include "ir/kernel.hpp"

namespace microtools::creator {

/// Renders a fully lowered kernel as a complete AT&T assembly translation
/// unit: function symbol, prologue, aligned loop label, body, induction
/// maintenance, conditional branch, epilogue (§3.4; Figure 8 shows the loop
/// portion). The result assembles with `cc -c` and is what MicroLauncher
/// executes.
std::string emitAssembly(const ir::Kernel& kernel,
                         const std::string& functionName);

/// Renders a fully lowered kernel as a C translation unit with the same
/// memory access pattern (the paper's "assembly format or C source code"
/// output option). Loads and stores go through volatile-qualified pointers
/// of the exact access width so an optimizing compiler preserves them.
/// Supports the move/FP-arithmetic subset; throws DescriptionError on
/// kernels it cannot express.
std::string emitCSource(const ir::Kernel& kernel,
                        const std::string& functionName);

}  // namespace microtools::creator
