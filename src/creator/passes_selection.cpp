// Passes 1-6: validation plus the variant fan-out passes that resolve the
// description's "what instruction / what constant / what stride" freedoms
// (the paper's instruction-selection stage, §3.2).

#include <atomic>
#include <bit>

#include "creator/passes.hpp"
#include "isa/instructions.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::creator::passes {

namespace {

using ir::Instruction;
using ir::Kernel;

// ---------------------------------------------------------------------------
// 1. ValidateDescription
// ---------------------------------------------------------------------------

class ValidateDescription final : public Pass {
 public:
  ValidateDescription() : Pass("ValidateDescription") {}

  void run(GenerationState& state) override {
    for (Kernel& kernel : state.kernels) validate(kernel);
  }

 private:
  static void validate(Kernel& kernel) {
    checkDescription(!kernel.body.empty(),
                     "kernel has no instructions");
    checkDescription(kernel.unrollMin >= 1,
                     "unrolling <min> must be at least 1");
    checkDescription(kernel.unrollMax >= kernel.unrollMin,
                     "unrolling <max> must be >= <min>");
    const isa::InstrDesc* branch = isa::findInstruction(kernel.branch.test);
    checkDescription(branch != nullptr &&
                         branch->kind == isa::InstrKind::CondBranch,
                     "branch test '" + kernel.branch.test +
                         "' is not a conditional jump");
    checkDescription(std::has_single_bit(
                         static_cast<unsigned>(kernel.loopAlignment)),
                     "loop alignment must be a power of two");

    int lastCount = 0;
    for (const ir::InductionVar& iv : kernel.inductions) {
      lastCount += iv.lastInduction ? 1 : 0;
      if (iv.linkedTo) {
        checkDescription(kernel.inductionFor(*iv.linkedTo) != nullptr,
                         "induction linked to unknown register '" +
                             *iv.linkedTo + "'");
        checkDescription(*iv.linkedTo != iv.reg.logicalName,
                         "induction cannot be linked to itself");
      }
    }
    checkDescription(lastCount <= 1,
                     "at most one induction may be <last_induction/>");
    // Default: the final declared induction drives the loop exit, matching
    // Figure 6 where <last_induction/> appears on the last node.
    if (lastCount == 0 && !kernel.inductions.empty()) {
      kernel.inductions.back().lastInduction = true;
    }

    for (const Instruction& instr : kernel.body) {
      if (!instr.operation.empty()) {
        checkDescription(isa::findInstruction(instr.operation) != nullptr,
                         "unknown operation '" + instr.operation + "'");
      }
      for (const std::string& choice : instr.operationChoices) {
        checkDescription(isa::findInstruction(choice) != nullptr,
                         "unknown operation '" + choice + "'");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// 2. InstructionRepetition
// ---------------------------------------------------------------------------

class InstructionRepetition final : public Pass {
 public:
  InstructionRepetition() : Pass("InstructionRepetition") {}

  void run(GenerationState& state) override {
    // Iterate until no instruction carries a pending repetition range; each
    // round resolves the first pending instruction in every kernel. The
    // flag is atomic because concurrent expansions may all set it.
    std::atomic<bool> changed{true};
    while (changed.load(std::memory_order_relaxed)) {
      changed.store(false, std::memory_order_relaxed);
      fanOut(
          state,
          [&changed](const Kernel& kernel) {
            return expandFirstRepeat(kernel, changed);
          },
          ExpandPurity::Pure);
    }
  }

 private:
  static std::vector<Kernel> expandFirstRepeat(const Kernel& kernel,
                                               std::atomic<bool>& changed) {
    for (std::size_t i = 0; i < kernel.body.size(); ++i) {
      const Instruction& instr = kernel.body[i];
      if (instr.repeatMin == 1 && instr.repeatMax == 1) continue;
      changed.store(true, std::memory_order_relaxed);
      std::vector<Kernel> out;
      for (int count = instr.repeatMin; count <= instr.repeatMax; ++count) {
        Kernel variant = kernel;
        Instruction resolved = instr;
        resolved.repeatMin = resolved.repeatMax = 1;
        variant.body.erase(variant.body.begin() +
                           static_cast<std::ptrdiff_t>(i));
        for (int c = 0; c < count; ++c) {
          variant.body.insert(
              variant.body.begin() + static_cast<std::ptrdiff_t>(i),
              resolved);
        }
        variant.tag(strings::format("rep%zux%d", i, count));
        out.push_back(std::move(variant));
      }
      return out;
    }
    return {kernel};
  }
};

// ---------------------------------------------------------------------------
// 3. RandomSelection (and exhaustive operation-choice fan-out)
// ---------------------------------------------------------------------------

class RandomSelection final : public Pass {
 public:
  RandomSelection() : Pass("RandomSelection") {}

  void run(GenerationState& state) override {
    // Random choices draw from the single shared Rng, whose draw order is
    // part of the deterministic output — stay serial whenever any kernel
    // would consult it. The exhaustive (non-random) fan-out is pure.
    bool usesRng = false;
    for (const Kernel& kernel : state.kernels) {
      for (const Instruction& instr : kernel.body) {
        if (instr.chooseRandomly && !instr.operationChoices.empty()) {
          usesRng = true;
        }
      }
    }
    Rng& rng = state.rng;
    fanOut(
        state,
        [&rng](const Kernel& kernel) { return expand(kernel, rng); },
        usesRng ? ExpandPurity::Impure : ExpandPurity::Pure);
  }

 private:
  static std::vector<Kernel> expand(const Kernel& kernel, Rng& rng) {
    std::vector<Kernel> work{kernel};
    for (std::size_t i = 0; i < kernel.body.size(); ++i) {
      if (kernel.body[i].operationChoices.empty()) continue;
      std::vector<Kernel> next;
      for (const Kernel& k : work) {
        const Instruction& instr = k.body[i];
        if (instr.chooseRandomly) {
          Kernel variant = k;
          std::size_t pick = static_cast<std::size_t>(
              rng.nextBelow(instr.operationChoices.size()));
          resolve(variant, i, instr.operationChoices[pick]);
          next.push_back(std::move(variant));
        } else {
          for (const std::string& choice : instr.operationChoices) {
            Kernel variant = k;
            resolve(variant, i, choice);
            next.push_back(std::move(variant));
          }
        }
      }
      work = std::move(next);
    }
    return work;
  }

  static void resolve(Kernel& kernel, std::size_t index,
                      const std::string& operation) {
    Instruction& instr = kernel.body[index];
    instr.operation = operation;
    instr.operationChoices.clear();
    instr.chooseRandomly = false;
    kernel.tag(strings::format("op%zu_%s", index, operation.c_str()));
  }
};

// ---------------------------------------------------------------------------
// 4. MoveSemanticExpansion
// ---------------------------------------------------------------------------

class MoveSemanticExpansion final : public Pass {
 public:
  MoveSemanticExpansion() : Pass("MoveSemanticExpansion") {}

  void run(GenerationState& state) override {
    fanOut(state, [](const Kernel& kernel) { return expand(kernel); },
           ExpandPurity::Pure);
  }

 private:
  static std::vector<Kernel> expand(const Kernel& kernel) {
    std::vector<Kernel> work{kernel};
    for (std::size_t i = 0; i < kernel.body.size(); ++i) {
      if (!kernel.body[i].semantics) continue;
      const ir::MoveSemantics sem = *kernel.body[i].semantics;
      std::vector<std::string> candidates;
      if (sem.bytes < 16) {
        candidates = isa::moveCandidates(sem.bytes, true, sem.allowDouble);
      } else {
        if (sem.tryAligned) {
          for (auto& m : isa::moveCandidates(16, true, sem.allowDouble)) {
            candidates.push_back(std::move(m));
          }
        }
        if (sem.tryUnaligned) {
          for (auto& m : isa::moveCandidates(16, false, sem.allowDouble)) {
            candidates.push_back(std::move(m));
          }
        }
      }
      checkDescription(!candidates.empty(),
                       "move semantics produced no candidate instructions");
      std::vector<Kernel> next;
      for (const Kernel& k : work) {
        for (const std::string& mnemonic : candidates) {
          Kernel variant = k;
          Instruction& instr = variant.body[i];
          instr.operation = mnemonic;
          instr.semantics.reset();
          variant.tag(strings::format("mv%zu_%s", i, mnemonic.c_str()));
          next.push_back(std::move(variant));
        }
      }
      work = std::move(next);
    }
    return work;
  }
};

// ---------------------------------------------------------------------------
// 5. ImmediateSelection
// ---------------------------------------------------------------------------

class ImmediateSelection final : public Pass {
 public:
  ImmediateSelection() : Pass("ImmediateSelection") {}

  void run(GenerationState& state) override {
    fanOut(state, [](const Kernel& kernel) { return expand(kernel); },
           ExpandPurity::Pure);
  }

 private:
  static std::vector<Kernel> expand(const Kernel& kernel) {
    std::vector<Kernel> work{kernel};
    for (std::size_t i = 0; i < kernel.body.size(); ++i) {
      for (std::size_t o = 0; o < kernel.body[i].operands.size(); ++o) {
        const auto* imm = std::get_if<ir::ImmOperand>(&kernel.body[i].operands[o]);
        if (!imm || imm->choices.empty()) continue;
        std::vector<Kernel> next;
        for (const Kernel& k : work) {
          const auto& pending =
              std::get<ir::ImmOperand>(k.body[i].operands[o]);
          for (std::int64_t value : pending.choices) {
            Kernel variant = k;
            auto& target =
                std::get<ir::ImmOperand>(variant.body[i].operands[o]);
            target.value = value;
            target.choices.clear();
            variant.tag(strings::format("imm%zu_%lld", i,
                                        static_cast<long long>(value)));
            next.push_back(std::move(variant));
          }
        }
        work = std::move(next);
      }
    }
    return work;
  }
};

// ---------------------------------------------------------------------------
// 6. StrideSelection
// ---------------------------------------------------------------------------

class StrideSelection final : public Pass {
 public:
  StrideSelection() : Pass("StrideSelection") {}

  void run(GenerationState& state) override {
    fanOut(state, [](const Kernel& kernel) { return expand(kernel); },
           ExpandPurity::Pure);
  }

 private:
  static std::vector<Kernel> expand(const Kernel& kernel) {
    std::vector<Kernel> work{kernel};
    for (std::size_t i = 0; i < kernel.inductions.size(); ++i) {
      if (kernel.inductions[i].strideChoices.empty()) continue;
      std::vector<Kernel> next;
      for (const Kernel& k : work) {
        for (std::int64_t stride : k.inductions[i].strideChoices) {
          Kernel variant = k;
          ir::InductionVar& iv = variant.inductions[i];
          iv.increment = stride;
          iv.strideChoices.clear();
          std::string regName = iv.reg.logicalName.empty()
                                    ? "phys"
                                    : iv.reg.logicalName;
          variant.tag(strings::format("stride_%s_%lld", regName.c_str(),
                                      static_cast<long long>(stride)));
          next.push_back(std::move(variant));
        }
      }
      work = std::move(next);
    }
    return work;
  }
};

}  // namespace

std::unique_ptr<Pass> makeValidateDescription() {
  return std::make_unique<ValidateDescription>();
}
std::unique_ptr<Pass> makeInstructionRepetition() {
  return std::make_unique<InstructionRepetition>();
}
std::unique_ptr<Pass> makeRandomSelection() {
  return std::make_unique<RandomSelection>();
}
std::unique_ptr<Pass> makeMoveSemanticExpansion() {
  return std::make_unique<MoveSemanticExpansion>();
}
std::unique_ptr<Pass> makeImmediateSelection() {
  return std::make_unique<ImmediateSelection>();
}
std::unique_ptr<Pass> makeStrideSelection() {
  return std::make_unique<StrideSelection>();
}

}  // namespace microtools::creator::passes
