#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "creator/description.hpp"
#include "ir/kernel.hpp"
#include "support/rng.hpp"

namespace microtools::threads {
class ThreadPool;
}  // namespace microtools::threads

namespace microtools::creator {

/// A generated benchmark program: the CodeEmission pass's output unit.
struct GeneratedProgram {
  std::string name;          ///< unique variant name (baseName + tags)
  std::string functionName;  ///< MicroLauncher entry point symbol
  std::string asmText;       ///< full AT&T assembly translation unit
  std::string cText;         ///< C translation unit ("" unless emit_c)
  int arrayCount = 0;        ///< pointer arguments after the trip count
  ir::Kernel kernel;         ///< final IR, kept for inspection/tests

  /// Stable content identity: 16-hex-digit FNV-1a digest over the emitted
  /// sources and entry point, independent of the variant *name*. Two
  /// variants with identical generated code share a contentId; renaming a
  /// variant does not change it. The measurement cache and exploration
  /// reports key on content, not labels.
  std::string contentId;
};

/// Mutable state threaded through the pass pipeline.
struct GenerationState {
  explicit GenerationState(Description desc)
      : description(std::move(desc)), rng(description.seed) {
    kernels.push_back(description.kernel);
  }

  Description description;
  std::vector<ir::Kernel> kernels;
  Rng rng;
  std::vector<GeneratedProgram> programs;  ///< filled by CodeEmission

  /// Worker pool for per-kernel stages (fanOut / CodeEmission /
  /// Verification). nullptr — the default — keeps every pass strictly
  /// serial, so plugins that never opt in see the historical behavior.
  /// Owned by the caller (MicroCreator), never by the state.
  threads::ThreadPool* pool = nullptr;
};

/// One pass of the MicroCreator source-to-source compiler (§3.2).
///
/// Unlike general compiler passes, MicroCreator passes are entirely
/// independent: each consumes the current kernel set and produces a new one.
/// Every pass has a *gate* — "the function returning a boolean deciding
/// whether or not to execute the pass" (§3.3) — which plugins may override
/// without recompiling the tool.
class Pass {
 public:
  explicit Pass(std::string name) : name_(std::move(name)) {}
  virtual ~Pass() = default;

  Pass(const Pass&) = delete;
  Pass& operator=(const Pass&) = delete;

  const std::string& name() const { return name_; }

  /// Returns whether the pass should run. Honors a plugin gate override
  /// first, then the pass's own defaultGate().
  bool gate(const GenerationState& state) const {
    if (gateOverride_) return gateOverride_(state);
    return defaultGate(state);
  }

  /// Plugin hook: replaces the gate function (§3.3).
  void setGateOverride(std::function<bool(const GenerationState&)> gate) {
    gateOverride_ = std::move(gate);
  }

  /// Transforms the kernel set in place.
  virtual void run(GenerationState& state) = 0;

 protected:
  /// Default gate: most internal passes always execute (§3.3).
  virtual bool defaultGate(const GenerationState&) const { return true; }

 private:
  std::string name_;
  std::function<bool(const GenerationState&)> gateOverride_;
};

/// Convenience adaptor for plugin-provided passes written as plain
/// functions.
class LambdaPass final : public Pass {
 public:
  LambdaPass(std::string name, std::function<void(GenerationState&)> body)
      : Pass(std::move(name)), body_(std::move(body)) {}

  void run(GenerationState& state) override { body_(state); }

 private:
  std::function<void(GenerationState&)> body_;
};

/// Whether a fanOut expand callback may be invoked concurrently from pool
/// workers. `Pure` promises the callback reads only its kernel argument (or
/// touches shared state through atomics) — it must not draw from a shared
/// Rng or mutate captured plain variables. Impure is the default so plugin
/// passes written against the serial contract stay correct unchanged.
enum class ExpandPurity { Impure, Pure };

/// Helper for variant-producing passes: applies `expand` to every kernel and
/// concatenates the results in kernel order, enforcing the description's
/// benchmark limit. With `ExpandPurity::Pure` and a multi-worker
/// `state.pool`, kernels are expanded concurrently; the concatenated (and
/// limit-truncated) kernel set is bit-identical to the serial result. The
/// one observable difference: the parallel path expands kernels the serial
/// loop would have skipped once the limit was reached, so an exception from
/// such a kernel surfaces here but not serially.
void fanOut(GenerationState& state,
            const std::function<std::vector<ir::Kernel>(const ir::Kernel&)>&
                expand,
            ExpandPurity purity = ExpandPurity::Impure);

/// Stable naming contract for emitted variants: the i-th program's name
/// depends only on the sequence of base names (kernel.variantName() in
/// kernel order), never on map iteration or emission schedule. The first
/// occurrence of a base name keeps it bare; the N-th occurrence (N >= 2)
/// becomes `<base>_vN`.
std::vector<std::string> assignVariantNames(
    const std::vector<std::string>& baseNames);

}  // namespace microtools::creator
