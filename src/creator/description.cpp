#include "creator/description.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::creator {

namespace {

using xml::Node;

ir::RegOperand parseRegisterSpec(const Node& node) {
  if (auto name = node.childText("name"); name && !name->empty()) {
    return ir::RegOperand::logical(*name);
  }
  if (auto phy = node.childText("phyName"); phy && !phy->empty()) {
    auto min = node.childInt("min");
    auto max = node.childInt("max");
    if (min || max) {
      checkDescription(min && max,
                       "rotating register needs both <min> and <max>");
      return ir::RegOperand::rotating(*phy, static_cast<int>(*min),
                                      static_cast<int>(*max));
    }
    auto reg = isa::parseRegister(*phy);
    checkDescription(reg.has_value(), "unknown physical register: " + *phy);
    return ir::RegOperand::physical(*reg);
  }
  throw DescriptionError("<" + node.name() +
                         "> requires a <name> or <phyName> child");
}

ir::MemOperand parseMemoryOperand(const Node& node) {
  ir::MemOperand mem;
  const Node* base = node.child("register");
  checkDescription(base != nullptr, "<memory> requires a <register> base");
  mem.base = parseRegisterSpec(*base);
  if (auto off = node.childInt("offset")) mem.offset = *off;
  if (const Node* index = node.child("index")) {
    mem.index = parseRegisterSpec(*index);
    mem.scale = static_cast<int>(node.childInt("scale").value_or(1));
    checkDescription(mem.scale == 1 || mem.scale == 2 || mem.scale == 4 ||
                         mem.scale == 8,
                     "memory scale must be 1, 2, 4 or 8");
  }
  return mem;
}

ir::ImmOperand parseImmediateOperand(const Node& node) {
  ir::ImmOperand imm;
  auto values = node.childrenNamed("value");
  if (!values.empty()) {
    for (const Node* v : values) {
      auto parsed = strings::parseInt(v->trimmedText());
      checkDescription(parsed.has_value(),
                       "<value> is not an integer: " + v->trimmedText());
      imm.choices.push_back(*parsed);
    }
  } else if (node.childInt("min")) {
    std::int64_t min = node.requiredInt("min");
    std::int64_t max = node.requiredInt("max");
    std::int64_t step = node.childInt("step").value_or(1);
    checkDescription(step > 0, "<immediate> step must be positive");
    checkDescription(min <= max, "<immediate> requires min <= max");
    for (std::int64_t v = min; v <= max; v += step) imm.choices.push_back(v);
  } else {
    throw DescriptionError("<immediate> requires <value> or <min>/<max>");
  }
  checkDescription(!imm.choices.empty(), "<immediate> has no candidates");
  if (imm.choices.size() == 1) {
    imm.value = imm.choices.front();
    imm.choices.clear();
  }
  return imm;
}

ir::MoveSemantics parseMoveSemantics(const Node& node) {
  ir::MoveSemantics sem;
  sem.bytes = static_cast<int>(node.requiredInt("bytes"));
  checkDescription(sem.bytes == 4 || sem.bytes == 8 || sem.bytes == 16,
                   "<move_semantic> bytes must be 4, 8 or 16");
  bool aligned = node.hasChild("aligned");
  bool unaligned = node.hasChild("unaligned");
  if (aligned || unaligned) {
    sem.tryAligned = aligned;
    sem.tryUnaligned = unaligned;
  }
  if (node.hasChild("no_double")) sem.allowDouble = false;
  return sem;
}

ir::Instruction parseInstruction(const Node& node) {
  ir::Instruction instr;
  auto operations = node.childrenNamed("operation");
  const Node* semantic = node.child("move_semantic");
  checkDescription(!operations.empty() || semantic != nullptr,
                   "<instruction> requires <operation> or <move_semantic>");
  checkDescription(operations.empty() || semantic == nullptr,
                   "<instruction> cannot mix <operation> and <move_semantic>");
  if (semantic) {
    instr.semantics = parseMoveSemantics(*semantic);
  } else if (operations.size() == 1) {
    instr.operation = operations.front()->trimmedText();
  } else {
    for (const Node* op : operations) {
      instr.operationChoices.push_back(op->trimmedText());
    }
  }
  instr.chooseRandomly = node.hasChild("random_choice");
  instr.swapBeforeUnroll = node.hasChild("swap_before_unroll");
  instr.swapAfterUnroll = node.hasChild("swap_after_unroll");
  checkDescription(!(instr.swapBeforeUnroll && instr.swapAfterUnroll),
                   "<instruction> cannot request both swap passes");

  if (const Node* repeat = node.child("repeat")) {
    instr.repeatMin = static_cast<int>(repeat->requiredInt("min"));
    instr.repeatMax = static_cast<int>(repeat->requiredInt("max"));
    checkDescription(instr.repeatMin >= 1 &&
                         instr.repeatMax >= instr.repeatMin,
                     "<repeat> requires 1 <= min <= max");
  }

  // Operand children in document order define the AT&T operand order.
  for (const auto& child : node.children()) {
    const std::string& n = child->name();
    if (n == "memory") {
      instr.operands.emplace_back(parseMemoryOperand(*child));
    } else if (n == "register") {
      instr.operands.emplace_back(parseRegisterSpec(*child));
    } else if (n == "immediate") {
      instr.operands.emplace_back(parseImmediateOperand(*child));
    }
  }
  return instr;
}

ir::InductionVar parseInduction(const Node& node) {
  ir::InductionVar iv;
  const Node* reg = node.child("register");
  checkDescription(reg != nullptr, "<induction> requires a <register>");
  iv.reg = parseRegisterSpec(*reg);
  checkDescription(!iv.reg.isRotating(),
                   "<induction> register cannot be a rotating class");

  auto increments = node.childrenNamed("increment");
  const Node* stride = node.child("stride");
  checkDescription(!increments.empty() || stride != nullptr,
                   "<induction> requires <increment> or <stride>");
  for (const Node* inc : increments) {
    auto parsed = strings::parseInt(inc->trimmedText());
    checkDescription(parsed.has_value(),
                     "<increment> is not an integer: " + inc->trimmedText());
    iv.strideChoices.push_back(*parsed);
  }
  if (stride) {
    std::int64_t min = stride->requiredInt("min");
    std::int64_t max = stride->requiredInt("max");
    std::int64_t step = stride->childInt("step").value_or(1);
    checkDescription(step > 0, "<stride> step must be positive");
    checkDescription(min <= max, "<stride> requires min <= max");
    for (std::int64_t v = min; v <= max; v += step) {
      iv.strideChoices.push_back(v);
    }
  }
  checkDescription(!iv.strideChoices.empty(), "<induction> has no strides");
  if (iv.strideChoices.size() == 1) {
    iv.increment = iv.strideChoices.front();
    iv.strideChoices.clear();
  }

  if (auto off = node.childInt("offset")) iv.offsetStep = *off;
  if (auto es = node.childInt("element_size")) {
    checkDescription(*es > 0, "<element_size> must be positive");
    iv.elementSize = *es;
  }
  if (const Node* linked = node.child("linked")) {
    const Node* linkedReg = linked->child("register");
    checkDescription(linkedReg != nullptr,
                     "<linked> requires a <register> child");
    auto name = linkedReg->childText("name");
    checkDescription(name.has_value() && !name->empty(),
                     "<linked> register must be a logical <name>");
    iv.linkedTo = *name;
  }
  iv.lastInduction = node.hasChild("last_induction");
  iv.notAffectedByUnroll = node.hasChild("not_affected_unroll");
  return iv;
}

void parseKernel(const Node& node, ir::Kernel& kernel) {
  for (const auto& child : node.children()) {
    const std::string& n = child->name();
    if (n == "instruction") {
      kernel.body.push_back(parseInstruction(*child));
    } else if (n == "induction") {
      kernel.inductions.push_back(parseInduction(*child));
    } else if (n == "unrolling") {
      kernel.unrollMin = static_cast<int>(child->requiredInt("min"));
      kernel.unrollMax = static_cast<int>(child->requiredInt("max"));
    } else if (n == "branch_information") {
      kernel.branch.label = child->requiredText("label");
      kernel.branch.test = child->requiredText("test");
    } else if (n == "alignment") {
      auto parsed = strings::parseInt(child->trimmedText());
      checkDescription(parsed.has_value() && *parsed > 0,
                       "<alignment> must be a positive integer");
      kernel.loopAlignment = static_cast<int>(*parsed);
    }
  }
}

}  // namespace

Description parseDescription(const xml::Document& doc) {
  Description desc;
  const Node& root = doc.root();
  const Node* kernelNode = nullptr;
  if (root.name() == "kernel") {
    kernelNode = &root;
  } else if (root.name() == "description") {
    if (auto v = root.childText("benchmark_name")) desc.benchmarkName = *v;
    if (auto v = root.childText("function_name")) desc.functionName = *v;
    if (auto v = root.childInt("maximum_benchmarks")) {
      checkDescription(*v > 0, "<maximum_benchmarks> must be positive");
      desc.maximumBenchmarks = static_cast<std::size_t>(*v);
    }
    if (auto v = root.childInt("seed")) {
      desc.seed = static_cast<std::uint64_t>(*v);
    }
    desc.emitC = root.hasChild("emit_c");
    if (auto v = root.childText("schedule")) {
      checkDescription(*v == "none" || *v == "interleave",
                       "<schedule> must be 'none' or 'interleave'");
      desc.schedule = *v;
    }
    kernelNode = root.child("kernel");
    checkDescription(kernelNode != nullptr,
                     "<description> requires a <kernel> child");
  } else {
    throw DescriptionError("root element must be <description> or <kernel>, "
                           "got <" + root.name() + ">");
  }
  desc.kernel.baseName = desc.benchmarkName;
  parseKernel(*kernelNode, desc.kernel);
  return desc;
}

Description parseDescriptionText(const std::string& xmlText) {
  return parseDescription(xml::parse(xmlText));
}

Description parseDescriptionFile(const std::string& path) {
  return parseDescription(xml::parseFile(path));
}

}  // namespace microtools::creator
