#include "creator/pass_manager.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>

#include "creator/emit.hpp"
#include "creator/passes.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/thread_pool.hpp"
#include "verify/verify.hpp"

namespace microtools::creator {

namespace {

/// Concatenates per-kernel expansions in kernel order with the same
/// limit/log semantics as the historical serial loop: `limited` is raised
/// when a kernel (even an empty-expanding one) or an item remains after the
/// limit fills.
void concatenateExpanded(GenerationState& state,
                         std::vector<std::vector<ir::Kernel>>& expanded) {
  const std::size_t limit = state.description.maximumBenchmarks;
  std::vector<ir::Kernel> out;
  bool limited = false;
  for (std::vector<ir::Kernel>& group : expanded) {
    if (out.size() >= limit) {
      limited = true;
      break;
    }
    for (ir::Kernel& k : group) {
      if (out.size() >= limit) {
        limited = true;
        break;
      }
      out.push_back(std::move(k));
    }
  }
  if (limited) {
    log::info("benchmark limit of " + std::to_string(limit) +
              " reached; dropping additional variants");
  }
  state.kernels = std::move(out);
}

}  // namespace

void fanOut(GenerationState& state,
            const std::function<std::vector<ir::Kernel>(const ir::Kernel&)>&
                expand,
            ExpandPurity purity) {
  const std::size_t limit = state.description.maximumBenchmarks;
  const bool parallel = purity == ExpandPurity::Pure &&
                        state.pool != nullptr && state.pool->workers() > 1 &&
                        state.kernels.size() > 1;
  if (parallel) {
    std::vector<std::vector<ir::Kernel>> expanded(state.kernels.size());
    threads::parallelFor(state.pool, state.kernels.size(),
                         [&state, &expand, &expanded](std::size_t i) {
                           expanded[i] = expand(state.kernels[i]);
                         });
    concatenateExpanded(state, expanded);
    return;
  }
  std::vector<ir::Kernel> out;
  bool limited = false;
  for (const ir::Kernel& kernel : state.kernels) {
    if (out.size() >= limit) {
      limited = true;
      break;
    }
    std::vector<ir::Kernel> expanded = expand(kernel);
    for (ir::Kernel& k : expanded) {
      if (out.size() >= limit) {
        limited = true;
        break;
      }
      out.push_back(std::move(k));
    }
  }
  if (limited) {
    log::info("benchmark limit of " + std::to_string(limit) +
              " reached; dropping additional variants");
  }
  state.kernels = std::move(out);
}

std::vector<std::string> assignVariantNames(
    const std::vector<std::string>& baseNames) {
  std::vector<std::string> names;
  names.reserve(baseNames.size());
  std::map<std::string, int> seen;
  for (const std::string& base : baseNames) {
    int& count = seen[base];
    ++count;
    if (count > 1) {
      names.push_back(base + "_v" + std::to_string(count));
    } else {
      names.push_back(base);
    }
  }
  return names;
}

namespace {

/// Renders one kernel into its GeneratedProgram under an already-assigned
/// variant name. Pure: reads only the kernel and the description, so it is
/// safe to call concurrently for distinct kernels.
GeneratedProgram renderProgram(const GenerationState& state,
                               const ir::Kernel& kernel,
                               const std::string& name) {
  GeneratedProgram program;
  program.name = name;
  program.functionName = state.description.functionName;
  program.asmText = emitAssembly(kernel, program.functionName);
  if (state.description.emitC) {
    program.cText = emitCSource(kernel, program.functionName);
  }
  program.arrayCount = kernel.arrayCount;
  program.kernel = kernel;
  program.contentId = hash::Fnv1a()
                          .str(program.functionName)
                          .str(program.asmText)
                          .str(program.cText)
                          .hex();
  return program;
}

/// Variant names for the current kernel set, per the stable naming
/// contract (assignVariantNames over kernel.variantName() in kernel order).
std::vector<std::string> emittedNames(const GenerationState& state) {
  std::vector<std::string> baseNames;
  baseNames.reserve(state.kernels.size());
  for (const ir::Kernel& kernel : state.kernels) {
    baseNames.push_back(kernel.variantName());
  }
  return assignVariantNames(baseNames);
}

verify::VerifyReport verifyProgram(const GeneratedProgram& program) {
  verify::VerifyOptions options;
  options.arrayCount = program.arrayCount;
  return verify::verifyAssembly(program.asmText, options);
}

void logRejection(const GeneratedProgram& program,
                  const verify::VerifyReport& report) {
  log::warn("variant '" + program.name +
            "' rejected by verification: " + report.shortSummary());
  for (const verify::Diagnostic& d : report.diagnostics) {
    if (d.severity == verify::Severity::Error) {
      log::warn("  [" + d.rule + "] " + d.message);
    }
  }
}

constexpr const char* kAllRejected =
    "verification rejected every generated variant; see warnings "
    "above (disable the Verification pass gate to bypass)";

/// Pass 19: renders every kernel into a GeneratedProgram.
class CodeEmission final : public Pass {
 public:
  CodeEmission() : Pass("CodeEmission") {}

  void run(GenerationState& state) override {
    // Names are assigned serially up front (the stable naming contract:
    // position among equal base names decides the _vN suffix), so the
    // per-kernel rendering below is embarrassingly parallel.
    std::vector<std::string> names = emittedNames(state);
    state.programs.clear();
    state.programs.resize(state.kernels.size());
    threads::parallelFor(
        state.pool, state.kernels.size(), [&state, &names](std::size_t i) {
          state.programs[i] =
              renderProgram(state, state.kernels[i], names[i]);
        });
  }
};

/// Pass 20: static verification of every emitted program. A variant whose
/// assembly carries an error-level diagnostic (ABI clobber, provable
/// non-termination, uninitialized address register, ...) is dropped with a
/// warning; warnings-only reports pass. Plugins can disable the pass via
/// its gate ("Verification").
class Verification final : public Pass {
 public:
  Verification() : Pass("Verification") {}

  void run(GenerationState& state) override {
    if (state.programs.empty()) return;
    // Verify in parallel (verifyAssembly is re-entrant; the shared asm
    // parse cache is mutex-protected), then log and compact serially so
    // warnings appear in program order exactly as the serial pass printed
    // them.
    std::vector<verify::VerifyReport> reports(state.programs.size());
    threads::parallelFor(state.pool, state.programs.size(),
                         [&state, &reports](std::size_t i) {
                           reports[i] = verifyProgram(state.programs[i]);
                         });
    std::vector<GeneratedProgram> kept;
    kept.reserve(state.programs.size());
    for (std::size_t i = 0; i < state.programs.size(); ++i) {
      GeneratedProgram& program = state.programs[i];
      if (reports[i].ok()) {
        kept.push_back(std::move(program));
        continue;
      }
      logRejection(program, reports[i]);
    }
    if (kept.empty()) throw McError(kAllRejected);
    state.programs = std::move(kept);
  }
};

}  // namespace

namespace passes {
std::unique_ptr<Pass> makeCodeEmission() {
  return std::make_unique<CodeEmission>();
}
std::unique_ptr<Pass> makeVerification() {
  return std::make_unique<Verification>();
}
}  // namespace passes

PassManager PassManager::standardPipeline() {
  PassManager pm;
  pm.addPass(passes::makeValidateDescription());
  pm.addPass(passes::makeInstructionRepetition());
  pm.addPass(passes::makeRandomSelection());
  pm.addPass(passes::makeMoveSemanticExpansion());
  pm.addPass(passes::makeImmediateSelection());
  pm.addPass(passes::makeStrideSelection());
  pm.addPass(passes::makeOperandSwapBeforeUnroll());
  pm.addPass(passes::makeUnrolling());
  pm.addPass(passes::makeOperandSwapAfterUnroll());
  pm.addPass(passes::makeRegisterRotation());
  pm.addPass(passes::makeRegisterAllocation());
  pm.addPass(passes::makeLoopCounterSetup());
  pm.addPass(passes::makeInductionLinking());
  pm.addPass(passes::makeInductionInsertion());
  pm.addPass(passes::makeAlignmentDirectives());
  pm.addPass(passes::makePrologueEpilogue());
  pm.addPass(passes::makeScheduling());
  pm.addPass(passes::makePeephole());
  pm.addPass(passes::makeCodeEmission());
  pm.addPass(passes::makeVerification());
  return pm;
}

void PassManager::addPass(std::unique_ptr<Pass> pass) {
  if (find(pass->name())) {
    throw McError("pass '" + pass->name() + "' already registered");
  }
  passes_.push_back(std::move(pass));
}

std::size_t PassManager::indexOf(const std::string& name) const {
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    if (passes_[i]->name() == name) return i;
  }
  throw McError("no pass named '" + name + "'");
}

void PassManager::addPassBefore(const std::string& anchor,
                                std::unique_ptr<Pass> pass) {
  if (find(pass->name())) {
    throw McError("pass '" + pass->name() + "' already registered");
  }
  std::size_t i = indexOf(anchor);
  passes_.insert(passes_.begin() + static_cast<std::ptrdiff_t>(i),
                 std::move(pass));
}

void PassManager::addPassAfter(const std::string& anchor,
                               std::unique_ptr<Pass> pass) {
  if (find(pass->name())) {
    throw McError("pass '" + pass->name() + "' already registered");
  }
  std::size_t i = indexOf(anchor);
  passes_.insert(passes_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                 std::move(pass));
}

void PassManager::removePass(const std::string& name) {
  std::size_t i = indexOf(name);
  passes_.erase(passes_.begin() + static_cast<std::ptrdiff_t>(i));
}

void PassManager::replacePass(const std::string& name,
                              std::unique_ptr<Pass> pass) {
  std::size_t i = indexOf(name);
  passes_[i] = std::move(pass);
}

void PassManager::setGate(const std::string& name,
                          std::function<bool(const GenerationState&)> gate) {
  passes_[indexOf(name)]->setGateOverride(std::move(gate));
}

Pass* PassManager::find(const std::string& name) {
  for (auto& p : passes_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

const Pass* PassManager::find(const std::string& name) const {
  for (const auto& p : passes_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

std::vector<std::string> PassManager::passNames() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& p : passes_) names.push_back(p->name());
  return names;
}

void PassManager::run(GenerationState& state) const {
  for (const auto& pass : passes_) {
    if (!pass->gate(state)) {
      log::debug("pass " + pass->name() + " gated off");
      continue;
    }
    log::debug("running pass " + pass->name());
    pass->run(state);
    if (state.kernels.size() > state.description.maximumBenchmarks) {
      state.kernels.resize(state.description.maximumBenchmarks);
    }
  }
}

bool PassManager::runStreaming(
    GenerationState& state,
    const std::function<void(const StreamInfo&)>& onReady,
    const std::function<void(GeneratedProgram&&)>& consume) const {
  // Streaming re-implements only the built-in emission/verification tail;
  // a plugin-replaced tail keeps its own semantics via run().
  if (passes_.size() < 2) return false;
  if (dynamic_cast<const CodeEmission*>(
          passes_[passes_.size() - 2].get()) == nullptr ||
      dynamic_cast<const Verification*>(passes_.back().get()) == nullptr) {
    return false;
  }
  for (std::size_t p = 0; p + 2 < passes_.size(); ++p) {
    const auto& pass = passes_[p];
    if (!pass->gate(state)) {
      log::debug("pass " + pass->name() + " gated off");
      continue;
    }
    log::debug("running pass " + pass->name());
    pass->run(state);
    if (state.kernels.size() > state.description.maximumBenchmarks) {
      state.kernels.resize(state.description.maximumBenchmarks);
    }
  }
  const bool doEmit = passes_[passes_.size() - 2]->gate(state);
  const bool doVerify = passes_.back()->gate(state);
  StreamInfo info;
  if (doEmit) {
    info.kernelCount = state.kernels.size();
    for (const ir::Kernel& kernel : state.kernels) {
      info.maxArrayCount = std::max(info.maxArrayCount, kernel.arrayCount);
    }
  }
  onReady(info);
  if (!doEmit || state.kernels.empty()) return true;

  const std::vector<std::string> names = emittedNames(state);
  const std::size_t n = state.kernels.size();
  struct Slot {
    GeneratedProgram program;
    verify::VerifyReport report;
    std::exception_ptr error;
  };
  std::vector<Slot> slots(n);
  std::size_t kept = 0;
  // Releases slot i on the calling thread: rejection warnings therefore
  // appear in program order, exactly as the batch Verification pass prints
  // them, and `consume` never runs concurrently with itself.
  auto release = [&](std::size_t i) {
    Slot& slot = slots[i];
    if (slot.error) std::rethrow_exception(slot.error);
    if (doVerify && !slot.report.ok()) {
      logRejection(slot.program, slot.report);
      slot = Slot{};
      return;
    }
    ++kept;
    consume(std::move(slot.program));
    slot = Slot{};
  };
  if (state.pool != nullptr && state.pool->workers() > 1 && n > 1) {
    std::mutex mutex;
    std::condition_variable slotDone;
    std::vector<char> ready(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      state.pool->submit([&state, &names, &slots, &ready, &mutex, &slotDone,
                          doVerify, i](int) {
        Slot local;
        try {
          local.program = renderProgram(state, state.kernels[i], names[i]);
          if (doVerify) local.report = verifyProgram(local.program);
        } catch (...) {
          local.error = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lock(mutex);
          slots[i] = std::move(local);
          ready[i] = 1;
        }
        slotDone.notify_all();
      });
    }
    // Wait for EVERY slot before letting any exception unwind: pending
    // tasks reference the locals above.
    std::exception_ptr failure;
    for (std::size_t i = 0; i < n; ++i) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        slotDone.wait(lock, [&ready, i] { return ready[i] != 0; });
      }
      if (failure) continue;
      try {
        release(i);
      } catch (...) {
        failure = std::current_exception();
      }
    }
    if (failure) std::rethrow_exception(failure);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      slots[i].program = renderProgram(state, state.kernels[i], names[i]);
      if (doVerify) slots[i].report = verifyProgram(slots[i].program);
      release(i);
    }
  }
  if (doVerify && kept == 0) throw McError(kAllRejected);
  return true;
}

}  // namespace microtools::creator
