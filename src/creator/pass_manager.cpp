#include "creator/pass_manager.hpp"

#include "creator/emit.hpp"
#include "creator/passes.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "verify/verify.hpp"

namespace microtools::creator {

void fanOut(GenerationState& state,
            const std::function<std::vector<ir::Kernel>(const ir::Kernel&)>&
                expand) {
  const std::size_t limit = state.description.maximumBenchmarks;
  std::vector<ir::Kernel> out;
  bool limited = false;
  for (const ir::Kernel& kernel : state.kernels) {
    if (out.size() >= limit) {
      limited = true;
      break;
    }
    std::vector<ir::Kernel> expanded = expand(kernel);
    for (ir::Kernel& k : expanded) {
      if (out.size() >= limit) {
        limited = true;
        break;
      }
      out.push_back(std::move(k));
    }
  }
  if (limited) {
    log::info("benchmark limit of " + std::to_string(limit) +
              " reached; dropping additional variants");
  }
  state.kernels = std::move(out);
}

namespace {

/// Pass 19: renders every kernel into a GeneratedProgram.
class CodeEmission final : public Pass {
 public:
  CodeEmission() : Pass("CodeEmission") {}

  void run(GenerationState& state) override {
    std::map<std::string, int> seen;
    state.programs.clear();
    state.programs.reserve(state.kernels.size());
    for (const ir::Kernel& kernel : state.kernels) {
      GeneratedProgram program;
      program.name = kernel.variantName();
      int& count = seen[program.name];
      ++count;
      if (count > 1) program.name += "_v" + std::to_string(count);
      program.functionName = state.description.functionName;
      program.asmText = emitAssembly(kernel, program.functionName);
      if (state.description.emitC) {
        program.cText = emitCSource(kernel, program.functionName);
      }
      program.arrayCount = kernel.arrayCount;
      program.kernel = kernel;
      program.contentId = hash::Fnv1a()
                              .str(program.functionName)
                              .str(program.asmText)
                              .str(program.cText)
                              .hex();
      state.programs.push_back(std::move(program));
    }
  }
};

/// Pass 20: static verification of every emitted program. A variant whose
/// assembly carries an error-level diagnostic (ABI clobber, provable
/// non-termination, uninitialized address register, ...) is dropped with a
/// warning; warnings-only reports pass. Plugins can disable the pass via
/// its gate ("Verification").
class Verification final : public Pass {
 public:
  Verification() : Pass("Verification") {}

  void run(GenerationState& state) override {
    if (state.programs.empty()) return;
    std::vector<GeneratedProgram> kept;
    kept.reserve(state.programs.size());
    for (GeneratedProgram& program : state.programs) {
      verify::VerifyOptions options;
      options.arrayCount = program.arrayCount;
      verify::VerifyReport report =
          verify::verifyAssembly(program.asmText, options);
      if (report.ok()) {
        kept.push_back(std::move(program));
        continue;
      }
      log::warn("variant '" + program.name +
                "' rejected by verification: " + report.shortSummary());
      for (const verify::Diagnostic& d : report.diagnostics) {
        if (d.severity == verify::Severity::Error) {
          log::warn("  [" + d.rule + "] " + d.message);
        }
      }
    }
    if (kept.empty()) {
      throw McError(
          "verification rejected every generated variant; see warnings "
          "above (disable the Verification pass gate to bypass)");
    }
    state.programs = std::move(kept);
  }
};

}  // namespace

namespace passes {
std::unique_ptr<Pass> makeCodeEmission() {
  return std::make_unique<CodeEmission>();
}
std::unique_ptr<Pass> makeVerification() {
  return std::make_unique<Verification>();
}
}  // namespace passes

PassManager PassManager::standardPipeline() {
  PassManager pm;
  pm.addPass(passes::makeValidateDescription());
  pm.addPass(passes::makeInstructionRepetition());
  pm.addPass(passes::makeRandomSelection());
  pm.addPass(passes::makeMoveSemanticExpansion());
  pm.addPass(passes::makeImmediateSelection());
  pm.addPass(passes::makeStrideSelection());
  pm.addPass(passes::makeOperandSwapBeforeUnroll());
  pm.addPass(passes::makeUnrolling());
  pm.addPass(passes::makeOperandSwapAfterUnroll());
  pm.addPass(passes::makeRegisterRotation());
  pm.addPass(passes::makeRegisterAllocation());
  pm.addPass(passes::makeLoopCounterSetup());
  pm.addPass(passes::makeInductionLinking());
  pm.addPass(passes::makeInductionInsertion());
  pm.addPass(passes::makeAlignmentDirectives());
  pm.addPass(passes::makePrologueEpilogue());
  pm.addPass(passes::makeScheduling());
  pm.addPass(passes::makePeephole());
  pm.addPass(passes::makeCodeEmission());
  pm.addPass(passes::makeVerification());
  return pm;
}

void PassManager::addPass(std::unique_ptr<Pass> pass) {
  if (find(pass->name())) {
    throw McError("pass '" + pass->name() + "' already registered");
  }
  passes_.push_back(std::move(pass));
}

std::size_t PassManager::indexOf(const std::string& name) const {
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    if (passes_[i]->name() == name) return i;
  }
  throw McError("no pass named '" + name + "'");
}

void PassManager::addPassBefore(const std::string& anchor,
                                std::unique_ptr<Pass> pass) {
  if (find(pass->name())) {
    throw McError("pass '" + pass->name() + "' already registered");
  }
  std::size_t i = indexOf(anchor);
  passes_.insert(passes_.begin() + static_cast<std::ptrdiff_t>(i),
                 std::move(pass));
}

void PassManager::addPassAfter(const std::string& anchor,
                               std::unique_ptr<Pass> pass) {
  if (find(pass->name())) {
    throw McError("pass '" + pass->name() + "' already registered");
  }
  std::size_t i = indexOf(anchor);
  passes_.insert(passes_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                 std::move(pass));
}

void PassManager::removePass(const std::string& name) {
  std::size_t i = indexOf(name);
  passes_.erase(passes_.begin() + static_cast<std::ptrdiff_t>(i));
}

void PassManager::replacePass(const std::string& name,
                              std::unique_ptr<Pass> pass) {
  std::size_t i = indexOf(name);
  passes_[i] = std::move(pass);
}

void PassManager::setGate(const std::string& name,
                          std::function<bool(const GenerationState&)> gate) {
  passes_[indexOf(name)]->setGateOverride(std::move(gate));
}

Pass* PassManager::find(const std::string& name) {
  for (auto& p : passes_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

const Pass* PassManager::find(const std::string& name) const {
  for (const auto& p : passes_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

std::vector<std::string> PassManager::passNames() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& p : passes_) names.push_back(p->name());
  return names;
}

void PassManager::run(GenerationState& state) const {
  for (const auto& pass : passes_) {
    if (!pass->gate(state)) {
      log::debug("pass " + pass->name() + " gated off");
      continue;
    }
    log::debug("running pass " + pass->name());
    pass->run(state);
    if (state.kernels.size() > state.description.maximumBenchmarks) {
      state.kernels.resize(state.description.maximumBenchmarks);
    }
  }
}

}  // namespace microtools::creator
