#include "creator/plugin.hpp"

#include <dlfcn.h>

#include "support/error.hpp"

namespace microtools::creator {

PluginLoader::~PluginLoader() {
  // Intentionally keep libraries loaded until process exit: PassManager
  // objects may outlive the loader and still hold plugin-defined passes.
  // dlclose here would leave dangling vtables.
}

void PluginLoader::load(const std::string& path, PassManager& pm) {
  void* handle = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) {
    const char* err = dlerror();
    throw McError("cannot load plugin '" + path + "': " +
                  (err ? err : "unknown dlopen error"));
  }
  dlerror();  // clear any stale error
  void* sym = dlsym(handle, kPluginInitSymbol);
  const char* err = dlerror();
  if (err || !sym) {
    dlclose(handle);
    throw McError("plugin '" + path + "' does not export " +
                  std::string(kPluginInitSymbol));
  }
  handles_.push_back(handle);
  paths_.push_back(path);
  reinterpret_cast<PluginInitFn>(sym)(pm);
}

}  // namespace microtools::creator
