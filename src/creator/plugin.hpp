#pragma once

#include <string>
#include <vector>

#include "creator/pass_manager.hpp"

namespace microtools::creator {

/// MicroCreator's plugin system (§3.3), modeled on the GCC plugin technique:
/// users provide a dynamic library exporting
///
///   extern "C" void pluginInit(microtools::creator::PassManager& pm);
///
/// which may add, remove or replace passes and override pass gates through
/// the fully exposed PassManager API — without recompiling the tool.
class PluginLoader {
 public:
  PluginLoader() = default;
  ~PluginLoader();

  PluginLoader(const PluginLoader&) = delete;
  PluginLoader& operator=(const PluginLoader&) = delete;

  /// Loads the shared library at `path` and invokes its pluginInit against
  /// `pm`. Throws McError when the library cannot be loaded or lacks the
  /// entry point. The library stays loaded for the loader's lifetime
  /// (plugin-registered passes may reference its code).
  void load(const std::string& path, PassManager& pm);

  /// Paths of all loaded plugins, in load order.
  const std::vector<std::string>& loadedPlugins() const { return paths_; }

 private:
  std::vector<void*> handles_;
  std::vector<std::string> paths_;
};

/// Signature of the plugin entry point.
using PluginInitFn = void (*)(PassManager&);

/// Name of the entry point symbol each plugin must export.
inline constexpr const char* kPluginInitSymbol = "pluginInit";

}  // namespace microtools::creator
