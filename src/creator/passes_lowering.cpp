// Passes 11-18: lowering to executable form — register allocation, the
// iteration-count contract with MicroLauncher (§4.4), induction scaling and
// materialization, alignment, ABI prologue/epilogue, optional scheduling and
// a small peephole cleanup.

#include <algorithm>
#include <bit>
#include <set>

#include "creator/passes.hpp"
#include "isa/instructions.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace microtools::creator::passes {

namespace {

using ir::Instruction;
using ir::Kernel;

// ---------------------------------------------------------------------------
// 11. RegisterAllocation
// ---------------------------------------------------------------------------

class RegisterAllocation final : public Pass {
 public:
  RegisterAllocation() : Pass("RegisterAllocation") {}

  void run(GenerationState& state) override {
    for (Kernel& kernel : state.kernels) allocate(kernel);
  }

 private:
  static void allocate(Kernel& kernel) {
    std::vector<std::pair<std::string, isa::PhysReg>> bindings;
    auto bound = [&bindings](const std::string& name) -> const isa::PhysReg* {
      for (const auto& [n, r] : bindings) {
        if (n == name) return &r;
      }
      return nullptr;
    };

    // The loop counter is the trip-count argument: bind it to %rdi.
    for (ir::InductionVar& iv : kernel.inductions) {
      if (iv.lastInduction && !iv.reg.logicalName.empty()) {
        bindings.emplace_back(iv.reg.logicalName, isa::gpr(isa::kRdi, 64));
      }
    }

    // Memory base/index registers are array pointers: bind them to the
    // SysV argument registers after the trip count, in appearance order.
    int nextArg = 1;
    auto bindPointer = [&](const ir::RegOperand& reg) {
      if (reg.logicalName.empty() || bound(reg.logicalName)) return;
      checkDescription(nextArg < isa::kNumArgumentRegisters,
                       "too many distinct array pointer registers (max " +
                           std::to_string(isa::kNumArgumentRegisters - 1) +
                           ")");
      bindings.emplace_back(reg.logicalName,
                            isa::argumentRegister(nextArg++));
    };
    for (const Instruction& instr : kernel.body) {
      for (const ir::Operand& op : instr.operands) {
        if (const auto* mem = std::get_if<ir::MemOperand>(&op)) {
          bindPointer(mem->base);
          if (mem->index) bindPointer(*mem->index);
        }
      }
    }
    kernel.arrayCount = nextArg - 1;

    // Any remaining logical registers get caller-saved scratch registers.
    int nextScratch = 0;
    auto bindScratch = [&](const ir::RegOperand& reg) {
      if (reg.logicalName.empty() || bound(reg.logicalName)) return;
      checkDescription(nextScratch < isa::kNumScratchRegisters,
                       "too many distinct logical registers; no scratch "
                       "registers left");
      bindings.emplace_back(reg.logicalName,
                            isa::scratchRegister(nextScratch++));
    };
    for (const Instruction& instr : kernel.body) {
      for (const ir::Operand& op : instr.operands) {
        if (const auto* reg = std::get_if<ir::RegOperand>(&op)) {
          bindScratch(*reg);
        }
      }
    }
    for (const ir::InductionVar& iv : kernel.inductions) {
      bindScratch(iv.reg);
    }

    // Apply the binding everywhere.
    auto apply = [&bound](ir::RegOperand& reg) {
      if (reg.logicalName.empty() || reg.isBound()) return;
      const isa::PhysReg* phys = bound(reg.logicalName);
      checkDescription(phys != nullptr, "logical register '" +
                                            reg.logicalName +
                                            "' was never allocated");
      reg.phys = *phys;
    };
    for (Instruction& instr : kernel.body) {
      for (ir::Operand& op : instr.operands) {
        if (auto* reg = std::get_if<ir::RegOperand>(&op)) {
          apply(*reg);
        } else if (auto* mem = std::get_if<ir::MemOperand>(&op)) {
          apply(mem->base);
          if (mem->index) apply(*mem->index);
        }
      }
    }
    for (ir::InductionVar& iv : kernel.inductions) apply(iv.reg);
    kernel.regMap = std::move(bindings);
  }
};

// ---------------------------------------------------------------------------
// 12. LoopCounterSetup
// ---------------------------------------------------------------------------

class LoopCounterSetup final : public Pass {
 public:
  LoopCounterSetup() : Pass("LoopCounterSetup") {}

  void run(GenerationState& state) override {
    for (Kernel& kernel : state.kernels) {
      bool hasEaxCounter = false;
      for (const ir::InductionVar& iv : kernel.inductions) {
        if (iv.reg.phys && iv.reg.phys->cls == isa::RegClass::Gpr &&
            iv.reg.phys->index == isa::kRax) {
          hasEaxCounter = true;
        }
      }
      // §4.4: the kernel must return the executed iteration count in %eax.
      // When the description did not set up the Figure 9 counter itself,
      // synthesize it.
      if (!hasEaxCounter) {
        ir::InductionVar counter;
        counter.reg = ir::RegOperand::physical(isa::gpr(isa::kRax, 32));
        counter.increment = 1;
        counter.notAffectedByUnroll = true;
        kernel.inductions.push_back(std::move(counter));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// 13. InductionLinking
// ---------------------------------------------------------------------------

class InductionLinking final : public Pass {
 public:
  InductionLinking() : Pass("InductionLinking") {}

  void run(GenerationState& state) override {
    for (Kernel& kernel : state.kernels) {
      for (ir::InductionVar& iv : kernel.inductions) {
        std::int64_t scaled = iv.increment;
        if (!iv.notAffectedByUnroll) scaled *= kernel.unrollFactor;
        if (iv.linkedTo) {
          const ir::InductionVar* linked = kernel.inductionFor(*iv.linkedTo);
          checkDescription(linked != nullptr,
                           "linked induction '" + *iv.linkedTo +
                               "' not found");
          if (linked->offsetStep != 0) {
            checkDescription(linked->offsetStep % iv.elementSize == 0,
                             "linked induction offset is not a multiple of "
                             "the element size");
            scaled *= linked->offsetStep / iv.elementSize;
          }
        }
        iv.scaledIncrement = scaled;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// 14. InductionInsertion
// ---------------------------------------------------------------------------

class InductionInsertion final : public Pass {
 public:
  InductionInsertion() : Pass("InductionInsertion") {}

  void run(GenerationState& state) override {
    for (Kernel& kernel : state.kernels) {
      kernel.loopMaintenance.clear();
      // Non-exit inductions first, the loop counter last so the branch
      // tests its flags (Figure 8: add $48,%rsi / sub $12,%rdi / jge).
      for (const ir::InductionVar& iv : kernel.inductions) {
        if (!iv.lastInduction) emit(kernel, iv);
      }
      const ir::InductionVar* last = kernel.lastInduction();
      checkDescription(last != nullptr,
                       "kernel has no loop-exit induction");
      emit(kernel, *last);
    }
  }

 private:
  static void emit(Kernel& kernel, const ir::InductionVar& iv) {
    std::int64_t inc = iv.effectiveIncrement();
    Instruction instr;
    instr.operation = inc < 0 ? "sub" : "add";
    ir::ImmOperand imm;
    imm.value = inc < 0 ? -inc : inc;
    instr.operands.emplace_back(imm);
    instr.operands.emplace_back(iv.reg);
    kernel.loopMaintenance.push_back(std::move(instr));
  }
};

// ---------------------------------------------------------------------------
// 15. AlignmentDirectives
// ---------------------------------------------------------------------------

class AlignmentDirectives final : public Pass {
 public:
  AlignmentDirectives() : Pass("AlignmentDirectives") {}

  void run(GenerationState& state) override {
    for (Kernel& kernel : state.kernels) {
      unsigned align = static_cast<unsigned>(std::max(kernel.loopAlignment, 1));
      kernel.loopAlignment = static_cast<int>(std::bit_ceil(align));
    }
  }
};

// ---------------------------------------------------------------------------
// 16. PrologueEpilogue
// ---------------------------------------------------------------------------

class PrologueEpilogue final : public Pass {
 public:
  PrologueEpilogue() : Pass("PrologueEpilogue") {}

  void run(GenerationState& state) override {
    for (Kernel& kernel : state.kernels) build(kernel);
  }

 private:
  static void build(Kernel& kernel) {
    kernel.prologue.clear();
    kernel.epilogue.clear();

    // Sign-extend the int trip count when the loop counter lives in %rdi
    // (the SysV first argument is 32-bit %edi).
    const ir::InductionVar* last = kernel.lastInduction();
    if (last && last->reg.phys &&
        last->reg.phys->cls == isa::RegClass::Gpr &&
        last->reg.phys->index == isa::kRdi &&
        last->reg.phys->widthBits == 64) {
      Instruction ext;
      ext.operation = "movslq";
      ext.operands.emplace_back(
          ir::RegOperand::physical(isa::gpr(isa::kRdi, 32)));
      ext.operands.emplace_back(
          ir::RegOperand::physical(isa::gpr(isa::kRdi, 64)));
      kernel.prologue.push_back(std::move(ext));
    }

    // Zero the %eax iteration counter when one exists.
    for (const ir::InductionVar& iv : kernel.inductions) {
      if (iv.reg.phys && iv.reg.phys->cls == isa::RegClass::Gpr &&
          iv.reg.phys->index == isa::kRax) {
        Instruction zero;
        zero.operation = "xor";
        zero.operands.emplace_back(
            ir::RegOperand::physical(isa::gpr(isa::kRax, 32)));
        zero.operands.emplace_back(
            ir::RegOperand::physical(isa::gpr(isa::kRax, 32)));
        kernel.prologue.push_back(std::move(zero));
        break;
      }
    }

    Instruction ret;
    ret.operation = "ret";
    kernel.epilogue.push_back(std::move(ret));
  }
};

// ---------------------------------------------------------------------------
// 17. Scheduling
// ---------------------------------------------------------------------------

class Scheduling final : public Pass {
 public:
  Scheduling() : Pass("Scheduling") {}

  void run(GenerationState& state) override {
    if (state.description.schedule != "interleave") return;
    for (Kernel& kernel : state.kernels) interleave(kernel);
  }

 private:
  // Alternates loads and stores while preserving relative order inside each
  // group. Only safe for move-only kernels (no cross-instruction register
  // dependencies beyond the rotation scheme); bail out otherwise.
  static void interleave(Kernel& kernel) {
    for (const Instruction& instr : kernel.body) {
      const isa::InstrDesc* desc = isa::findInstruction(instr.operation);
      if (!desc || desc->kind != isa::InstrKind::Move) {
        log::warn("Scheduling: kernel '" + kernel.variantName() +
                  "' contains non-move instructions; keeping program order");
        return;
      }
    }
    std::vector<Instruction> loads, stores, rest;
    for (Instruction& instr : kernel.body) {
      if (instr.isLoad()) {
        loads.push_back(std::move(instr));
      } else if (instr.isStore()) {
        stores.push_back(std::move(instr));
      } else {
        rest.push_back(std::move(instr));
      }
    }
    std::vector<Instruction> result;
    std::size_t li = 0, si = 0;
    while (li < loads.size() || si < stores.size()) {
      if (li < loads.size()) result.push_back(std::move(loads[li++]));
      if (si < stores.size()) result.push_back(std::move(stores[si++]));
    }
    for (Instruction& instr : rest) result.push_back(std::move(instr));
    kernel.body = std::move(result);
    kernel.tag("sched_il");
  }
};

// ---------------------------------------------------------------------------
// 18. Peephole
// ---------------------------------------------------------------------------

class Peephole final : public Pass {
 public:
  Peephole() : Pass("Peephole") {}

  void run(GenerationState& state) override {
    for (Kernel& kernel : state.kernels) {
      clean(kernel.body);
      clean(kernel.loopMaintenance);
    }
  }

 private:
  static bool isNoop(const Instruction& instr) {
    // add/sub of immediate zero.
    if ((instr.operation == "add" || instr.operation == "sub") &&
        instr.operands.size() == 2) {
      if (const auto* imm =
              std::get_if<ir::ImmOperand>(&instr.operands[0])) {
        if (imm->choices.empty() && imm->value == 0) return true;
      }
    }
    // Register-to-itself moves.
    if (instr.operation == "mov" && instr.operands.size() == 2) {
      const auto* src = std::get_if<ir::RegOperand>(&instr.operands[0]);
      const auto* dst = std::get_if<ir::RegOperand>(&instr.operands[1]);
      if (src && dst && src->phys && dst->phys && *src->phys == *dst->phys) {
        return true;
      }
    }
    if (instr.operation == "nop") return true;
    return false;
  }

  static void clean(std::vector<Instruction>& body) {
    body.erase(std::remove_if(body.begin(), body.end(), isNoop), body.end());
  }
};

}  // namespace

std::unique_ptr<Pass> makeRegisterAllocation() {
  return std::make_unique<RegisterAllocation>();
}
std::unique_ptr<Pass> makeLoopCounterSetup() {
  return std::make_unique<LoopCounterSetup>();
}
std::unique_ptr<Pass> makeInductionLinking() {
  return std::make_unique<InductionLinking>();
}
std::unique_ptr<Pass> makeInductionInsertion() {
  return std::make_unique<InductionInsertion>();
}
std::unique_ptr<Pass> makeAlignmentDirectives() {
  return std::make_unique<AlignmentDirectives>();
}
std::unique_ptr<Pass> makePrologueEpilogue() {
  return std::make_unique<PrologueEpilogue>();
}
std::unique_ptr<Pass> makeScheduling() {
  return std::make_unique<Scheduling>();
}
std::unique_ptr<Pass> makePeephole() {
  return std::make_unique<Peephole>();
}

}  // namespace microtools::creator::passes
