#include "creator/creator.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>

#include "creator/plugin.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace microtools::creator {

MicroCreator::MicroCreator()
    : passManager_(PassManager::standardPipeline()),
      pluginLoader_(std::make_unique<PluginLoader>()) {}

void MicroCreator::loadPlugin(const std::string& path) {
  pluginLoader_->load(path, passManager_);
}

void MicroCreator::setGenerateJobs(int jobs) {
  if (jobs < 1) throw McError("generate jobs must be >= 1");
  generateJobs_ = jobs;
}

std::vector<GeneratedProgram> MicroCreator::generate(
    const Description& description) const {
  GenerationState state(description);
  std::unique_ptr<threads::ThreadPool> pool;
  if (generateJobs_ > 1) {
    pool = std::make_unique<threads::ThreadPool>(generateJobs_);
    state.pool = pool.get();
  }
  passManager_.run(state);
  return std::move(state.programs);
}

void MicroCreator::generateStream(
    const Description& description,
    const std::function<void(const PassManager::StreamInfo&)>& onReady,
    const std::function<void(GeneratedProgram&&)>& consume) const {
  GenerationState state(description);
  std::unique_ptr<threads::ThreadPool> pool;
  if (generateJobs_ > 1) {
    pool = std::make_unique<threads::ThreadPool>(generateJobs_);
    state.pool = pool.get();
  }
  if (passManager_.runStreaming(state, onReady, consume)) return;
  // Plugin-customized tail: batch-generate, then deliver in order.
  passManager_.run(state);
  PassManager::StreamInfo info;
  info.kernelCount = state.programs.size();
  for (const GeneratedProgram& program : state.programs) {
    info.maxArrayCount = std::max(info.maxArrayCount, program.arrayCount);
  }
  onReady(info);
  for (GeneratedProgram& program : state.programs) {
    consume(std::move(program));
  }
}

std::vector<GeneratedProgram> MicroCreator::generateFromText(
    const std::string& xmlText) const {
  return generate(parseDescriptionText(xmlText));
}

std::vector<GeneratedProgram> MicroCreator::generateFromFile(
    const std::string& path) const {
  return generate(parseDescriptionFile(path));
}

std::string sanitizeFileStem(const std::string& name) {
  std::string stem;
  stem.reserve(name.size());
  for (char c : name) {
    bool unsafe = c == '/' || c == '\\' ||
                  static_cast<unsigned char>(c) < 0x20 || c == 0x7f;
    stem += unsafe ? '_' : c;
  }
  // "." and ".." are directory references, not file stems.
  if (stem.empty() || stem == "." || stem == "..") stem = "variant";
  return stem;
}

std::vector<std::string> writePrograms(
    const std::vector<GeneratedProgram>& programs,
    const std::string& outputDir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(outputDir, ec);
  if (ec) {
    throw McError("cannot create output directory '" + outputDir +
                  "': " + ec.message());
  }
  std::map<std::string, std::string> stemOwner;  // stem -> variant name
  std::vector<std::string> written;
  auto writeFile = [&](const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw McError("cannot write file: " + path);
    out << content;
    written.push_back(path);
  };
  for (const GeneratedProgram& program : programs) {
    std::string stem = sanitizeFileStem(program.name);
    auto [it, inserted] = stemOwner.emplace(stem, program.name);
    if (!inserted) {
      throw McError("duplicate program file stem '" + stem + "': variant '" +
                    program.name + "' would overwrite '" + it->second + "'");
    }
    writeFile((fs::path(outputDir) / (stem + ".s")).string(),
              program.asmText);
    if (!program.cText.empty()) {
      writeFile((fs::path(outputDir) / (stem + ".c")).string(),
                program.cText);
    }
  }
  return written;
}

}  // namespace microtools::creator
