#include "creator/creator.hpp"

#include <filesystem>
#include <fstream>

#include "creator/plugin.hpp"
#include "support/error.hpp"

namespace microtools::creator {

MicroCreator::MicroCreator()
    : passManager_(PassManager::standardPipeline()),
      pluginLoader_(std::make_unique<PluginLoader>()) {}

void MicroCreator::loadPlugin(const std::string& path) {
  pluginLoader_->load(path, passManager_);
}

std::vector<GeneratedProgram> MicroCreator::generate(
    const Description& description) const {
  GenerationState state(description);
  passManager_.run(state);
  return std::move(state.programs);
}

std::vector<GeneratedProgram> MicroCreator::generateFromText(
    const std::string& xmlText) const {
  return generate(parseDescriptionText(xmlText));
}

std::vector<GeneratedProgram> MicroCreator::generateFromFile(
    const std::string& path) const {
  return generate(parseDescriptionFile(path));
}

std::vector<std::string> writePrograms(
    const std::vector<GeneratedProgram>& programs,
    const std::string& outputDir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(outputDir, ec);
  if (ec) {
    throw McError("cannot create output directory '" + outputDir +
                  "': " + ec.message());
  }
  std::vector<std::string> written;
  auto writeFile = [&](const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw McError("cannot write file: " + path);
    out << content;
    written.push_back(path);
  };
  for (const GeneratedProgram& program : programs) {
    writeFile((fs::path(outputDir) / (program.name + ".s")).string(),
              program.asmText);
    if (!program.cText.empty()) {
      writeFile((fs::path(outputDir) / (program.name + ".c")).string(),
                program.cText);
    }
  }
  return written;
}

}  // namespace microtools::creator
