#include <set>
#include <sstream>

#include "creator/emit.hpp"
#include "isa/instructions.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::creator {

namespace {

using ir::Instruction;
using ir::Kernel;

[[noreturn]] void unsupported(const std::string& what) {
  throw DescriptionError("C emitter: unsupported " + what);
}

std::string gprVar(const isa::PhysReg& reg) {
  return "r_" + isa::registerName(isa::gpr(reg.index, 64)).substr(1);
}

std::string xmmVar(const isa::PhysReg& reg) {
  return "x" + std::to_string(reg.index);
}

std::string regVar(const ir::RegOperand& reg) {
  if (!reg.phys) unsupported("unbound register operand");
  if (reg.phys->cls == isa::RegClass::Xmm) return xmmVar(*reg.phys);
  if (reg.phys->cls == isa::RegClass::Gpr) return gprVar(*reg.phys);
  unsupported("register class");
}

/// Renders the byte address of a memory operand as a C expression of type
/// long (register variables hold byte addresses).
std::string addressExpr(const ir::MemOperand& mem) {
  std::string out = regVar(mem.base);
  if (mem.index) {
    out += " + " + regVar(*mem.index) + " * " + std::to_string(mem.scale);
  }
  if (mem.offset != 0) {
    out += " + (" + std::to_string(mem.offset) + "L)";
  }
  return out;
}

/// Scalar C type for an access width.
const char* scalarType(int bytes) {
  switch (bytes) {
    case 4: return "float";
    case 8: return "double";
    default: unsupported("scalar access width");
  }
}

void collectRegisters(const Kernel& kernel, std::set<int>& gprs,
                      std::set<int>& xmms) {
  auto visitReg = [&](const ir::RegOperand& reg) {
    if (!reg.phys) unsupported("unbound register");
    if (reg.phys->cls == isa::RegClass::Xmm) {
      xmms.insert(reg.phys->index);
    } else if (reg.phys->cls == isa::RegClass::Gpr) {
      gprs.insert(reg.phys->index);
    }
  };
  auto visitInstr = [&](const Instruction& instr) {
    for (const ir::Operand& op : instr.operands) {
      if (const auto* reg = std::get_if<ir::RegOperand>(&op)) {
        visitReg(*reg);
      } else if (const auto* mem = std::get_if<ir::MemOperand>(&op)) {
        visitReg(mem->base);
        if (mem->index) visitReg(*mem->index);
      }
    }
  };
  for (const Instruction& i : kernel.body) visitInstr(i);
  for (const Instruction& i : kernel.loopMaintenance) visitInstr(i);
  for (const ir::InductionVar& iv : kernel.inductions) {
    if (iv.reg.phys) visitReg(iv.reg);
  }
}

/// Translates one kernel-body instruction into a C statement.
std::string translate(const Instruction& instr) {
  const isa::InstrDesc* desc = isa::findInstruction(instr.operation);
  if (!desc) unsupported("operation '" + instr.operation + "'");
  const auto& ops = instr.operands;

  switch (desc->kind) {
    case isa::InstrKind::Move: {
      if (ops.size() != 2) unsupported("move operand count");
      const auto* srcMem = std::get_if<ir::MemOperand>(&ops[0]);
      const auto* dstMem = std::get_if<ir::MemOperand>(&ops[1]);
      const auto* srcReg = std::get_if<ir::RegOperand>(&ops[0]);
      const auto* dstReg = std::get_if<ir::RegOperand>(&ops[1]);
      const auto* srcImm = std::get_if<ir::ImmOperand>(&ops[0]);
      if (srcMem && dstReg) {  // load
        if (desc->memBytes == 16) {
          return "mc_load16(&" + regVar(*dstReg) + ", (const void*)(" +
                 addressExpr(*srcMem) + "));";
        }
        if (desc->isFp) {
          const char* ty = scalarType(desc->memBytes);
          const char* fld = desc->memBytes == 4 ? "f[0]" : "d[0]";
          return regVar(*dstReg) + "." + fld + " = *(volatile const " + ty +
                 "*)(" + addressExpr(*srcMem) + ");";
        }
        return regVar(*dstReg) + " = *(volatile const long*)(" +
               addressExpr(*srcMem) + ");";
      }
      if (srcReg && dstMem) {  // store
        if (desc->memBytes == 16) {
          return "mc_store16((void*)(" + addressExpr(*dstMem) + "), &" +
                 regVar(*srcReg) + ");";
        }
        if (desc->isFp) {
          const char* ty = scalarType(desc->memBytes);
          const char* fld = desc->memBytes == 4 ? "f[0]" : "d[0]";
          return "*(volatile " + std::string(ty) + "*)(" +
                 addressExpr(*dstMem) + ") = " + regVar(*srcReg) + "." + fld +
                 ";";
        }
        return "*(volatile long*)(" + addressExpr(*dstMem) + ") = " +
               regVar(*srcReg) + ";";
      }
      if (srcReg && dstReg) {
        if (srcReg->phys->cls != dstReg->phys->cls) {
          unsupported("cross-class register move");
        }
        return regVar(*dstReg) + " = " + regVar(*srcReg) + ";";
      }
      if (srcImm && dstReg) {
        return regVar(*dstReg) + " = " + std::to_string(srcImm->value) + ";";
      }
      unsupported("move operand combination");
    }
    case isa::InstrKind::IntAlu: {
      if (ops.size() != 2) unsupported("ALU operand count");
      const auto* dstReg = std::get_if<ir::RegOperand>(&ops[1]);
      if (!dstReg) unsupported("ALU destination");
      std::string src;
      if (const auto* imm = std::get_if<ir::ImmOperand>(&ops[0])) {
        src = std::to_string(imm->value) + "L";
      } else if (const auto* reg = std::get_if<ir::RegOperand>(&ops[0])) {
        src = regVar(*reg);
      } else {
        unsupported("ALU source");
      }
      std::string dst = regVar(*dstReg);
      if (instr.operation.starts_with("add")) return dst + " += " + src + ";";
      if (instr.operation.starts_with("sub")) return dst + " -= " + src + ";";
      if (instr.operation.starts_with("and")) return dst + " &= " + src + ";";
      if (instr.operation.starts_with("or")) return dst + " |= " + src + ";";
      if (instr.operation.starts_with("xor")) {
        if (src == dst) return dst + " = 0;";
        return dst + " ^= " + src + ";";
      }
      if (instr.operation.starts_with("shl")) return dst + " <<= " + src + ";";
      if (instr.operation.starts_with("shr") ||
          instr.operation.starts_with("sar")) {
        return dst + " >>= " + src + ";";
      }
      unsupported("ALU operation '" + instr.operation + "'");
    }
    case isa::InstrKind::Lea: {
      if (ops.size() != 2) unsupported("lea operand count");
      const auto* mem = std::get_if<ir::MemOperand>(&ops[0]);
      const auto* dst = std::get_if<ir::RegOperand>(&ops[1]);
      if (!mem || !dst) unsupported("lea operands");
      return regVar(*dst) + " = " + addressExpr(*mem) + ";";
    }
    case isa::InstrKind::FpAdd:
    case isa::InstrKind::FpMul: {
      if (ops.size() != 2) unsupported("FP operand count");
      const auto* dst = std::get_if<ir::RegOperand>(&ops[1]);
      if (!dst || dst->phys->cls != isa::RegClass::Xmm) {
        unsupported("FP destination");
      }
      bool isDouble = strings::endsWith(instr.operation, "sd") ||
                      strings::endsWith(instr.operation, "pd");
      const char* fld = isDouble ? "d[0]" : "f[0]";
      std::string src;
      if (const auto* mem = std::get_if<ir::MemOperand>(&ops[0])) {
        src = std::string("*(volatile const ") +
              (isDouble ? "double" : "float") + "*)(" + addressExpr(*mem) +
              ")";
      } else if (const auto* reg = std::get_if<ir::RegOperand>(&ops[0])) {
        src = regVar(*reg) + "." + fld;
      } else {
        unsupported("FP source");
      }
      const char* op = desc->kind == isa::InstrKind::FpAdd ? "+=" : "*=";
      return regVar(*dst) + "." + fld + " " + op + " " + src + ";";
    }
    case isa::InstrKind::FpLogic: {
      if (ops.size() != 2) unsupported("FP logic operand count");
      const auto* src = std::get_if<ir::RegOperand>(&ops[0]);
      const auto* dst = std::get_if<ir::RegOperand>(&ops[1]);
      if (!src || !dst) unsupported("FP logic operands");
      std::string d = regVar(*dst), s = regVar(*src);
      if (d == s) return d + ".q[0] = 0; " + d + ".q[1] = 0;";
      return d + ".q[0] ^= " + s + ".q[0]; " + d + ".q[1] ^= " + s + ".q[1];";
    }
    case isa::InstrKind::Nop:
      return ";";
    default:
      unsupported("instruction kind of '" + instr.operation + "'");
  }
}

/// Maps the loop branch mnemonic to the C continuation condition on the
/// counter variable (flags come from the final sub/add on the counter).
std::string loopCondition(const std::string& test, const std::string& var) {
  if (test == "jge" || test == "jns") return var + " >= 0";
  if (test == "jg") return var + " > 0";
  if (test == "jle") return var + " <= 0";
  if (test == "jl" || test == "js") return var + " < 0";
  if (test == "jne" || test == "jnz") return var + " != 0";
  if (test == "je" || test == "jz") return var + " == 0";
  if (test == "ja") return "(unsigned long)" + var + " > 0";
  if (test == "jae") return "1";  // unsigned >= 0 is always true
  unsupported("loop branch '" + test + "'");
}

}  // namespace

std::string emitCSource(const Kernel& kernel,
                        const std::string& functionName) {
  const ir::InductionVar* last = kernel.lastInduction();
  checkDescription(last != nullptr, "C emitter requires a loop counter");
  if (!last->reg.phys) unsupported("unbound loop counter");
  std::string counterVar = regVar(last->reg);

  std::set<int> gprs, xmms;
  collectRegisters(kernel, gprs, xmms);

  std::ostringstream out;
  out << "/* Generated by MicroCreator (C output) */\n";
  out << "/* variant: " << kernel.variantName() << " */\n";
  out << "typedef float mc_v4sf __attribute__((vector_size(16)));\n";
  out << "typedef union { float f[4]; double d[2]; unsigned long long q[2]; "
         "mc_v4sf v; } mc_xmm;\n";
  out << "static inline void mc_load16(mc_xmm* x, const void* p) "
         "{ x->v = *(volatile const mc_v4sf*)p; }\n";
  out << "static inline void mc_store16(void* p, const mc_xmm* x) "
         "{ *(volatile mc_v4sf*)p = x->v; }\n\n";

  out << "int " << functionName << "(int n";
  for (int i = 0; i < kernel.arrayCount; ++i) {
    out << ", void* a" << i;
  }
  out << ")\n{\n";

  // Register variables. Array pointer registers are initialized from the
  // arguments following the allocation order (%rsi, %rdx, %rcx, %r8, %r9).
  for (int g : gprs) {
    std::string var = gprVar(isa::gpr(g, 64));
    std::string init = "0";
    if (g == isa::kRdi) init = "n";
    if (g == isa::kRax) init = "0";
    for (int arg = 1; arg < isa::kNumArgumentRegisters; ++arg) {
      if (isa::argumentRegister(arg).index == g && arg - 1 < kernel.arrayCount) {
        init = "(long)a" + std::to_string(arg - 1);
      }
    }
    out << "  long " << var << " = " << init << ";\n";
  }
  for (int x : xmms) {
    out << "  mc_xmm x" << x << " = {{0, 0, 0, 0}};\n";
  }

  out << "  do {\n";
  for (const Instruction& instr : kernel.body) {
    out << "    " << translate(instr) << "\n";
  }
  for (const Instruction& instr : kernel.loopMaintenance) {
    out << "    " << translate(instr) << "\n";
  }
  out << "  } while (" << loopCondition(kernel.branch.test, counterVar)
      << ");\n";
  out << "  return (int)r_rax;\n";
  out << "}\n";
  return out.str();
}

}  // namespace microtools::creator
