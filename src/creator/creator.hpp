#pragma once

#include <string>
#include <vector>

#include "creator/description.hpp"
#include "creator/pass.hpp"
#include "creator/pass_manager.hpp"
#include "creator/plugin.hpp"

namespace microtools::creator {

/// MicroCreator facade: the "single description file in, set of benchmark
/// programs out" entry point (§3).
class MicroCreator {
 public:
  /// Constructs with the standard twenty-pass pipeline.
  MicroCreator();

  /// Direct access to the pipeline for programmatic customization (the same
  /// surface the plugin system exposes).
  PassManager& passManager() { return passManager_; }
  const PassManager& passManager() const { return passManager_; }

  /// Loads a plugin shared library (§3.3); see PluginLoader.
  void loadPlugin(const std::string& path);

  /// Runs the pipeline over a parsed description and returns the generated
  /// benchmark programs.
  std::vector<GeneratedProgram> generate(const Description& description) const;

  /// Convenience: parse XML text / a file, then generate.
  std::vector<GeneratedProgram> generateFromText(
      const std::string& xmlText) const;
  std::vector<GeneratedProgram> generateFromFile(
      const std::string& path) const;

 private:
  PassManager passManager_;
  std::unique_ptr<PluginLoader> pluginLoader_;
};

/// Maps a variant name onto a safe file stem: path separators and control
/// characters become '_', and an empty name becomes "variant". Variant
/// names come from user-supplied <benchmark_name> text, so they must never
/// be able to escape the output directory.
std::string sanitizeFileStem(const std::string& name);

/// Writes each program's assembly (and C source when present) into
/// `outputDir` as <stem>.s / <stem>.c, where stem = sanitizeFileStem(name).
/// Throws McError when two programs map to the same stem — one variant must
/// never silently overwrite another's output. Returns the written paths.
std::vector<std::string> writePrograms(
    const std::vector<GeneratedProgram>& programs,
    const std::string& outputDir);

}  // namespace microtools::creator
