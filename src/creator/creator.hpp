#pragma once

#include <string>
#include <vector>

#include "creator/description.hpp"
#include "creator/pass.hpp"
#include "creator/pass_manager.hpp"
#include "creator/plugin.hpp"

namespace microtools::creator {

/// MicroCreator facade: the "single description file in, set of benchmark
/// programs out" entry point (§3).
class MicroCreator {
 public:
  /// Constructs with the standard twenty-pass pipeline.
  MicroCreator();

  /// Direct access to the pipeline for programmatic customization (the same
  /// surface the plugin system exposes).
  PassManager& passManager() { return passManager_; }
  const PassManager& passManager() const { return passManager_; }

  /// Loads a plugin shared library (§3.3); see PluginLoader.
  void loadPlugin(const std::string& path);

  /// Worker threads for the per-kernel pipeline stages (fanOut expansion,
  /// CodeEmission, Verification). 1 — the default — runs fully serial.
  /// Output is bit-identical across job counts; throws McError when
  /// jobs < 1.
  void setGenerateJobs(int jobs);
  int generateJobs() const { return generateJobs_; }

  /// Runs the pipeline over a parsed description and returns the generated
  /// benchmark programs.
  std::vector<GeneratedProgram> generate(const Description& description) const;

  /// Streaming generation: `onReady` fires once with the emitted kernel-set
  /// shape, then each verified program is handed to `consume` in kernel
  /// order as soon as it is available — measurement can start before
  /// generation finishes. Names, contentIds, and diagnostics match
  /// generate() exactly. Pipelines whose tail was replaced by a plugin
  /// fall back to batch generation followed by in-order delivery.
  void generateStream(
      const Description& description,
      const std::function<void(const PassManager::StreamInfo&)>& onReady,
      const std::function<void(GeneratedProgram&&)>& consume) const;

  /// Convenience: parse XML text / a file, then generate.
  std::vector<GeneratedProgram> generateFromText(
      const std::string& xmlText) const;
  std::vector<GeneratedProgram> generateFromFile(
      const std::string& path) const;

 private:
  PassManager passManager_;
  std::unique_ptr<PluginLoader> pluginLoader_;
  int generateJobs_ = 1;
};

/// Maps a variant name onto a safe file stem: path separators and control
/// characters become '_', and an empty name becomes "variant". Variant
/// names come from user-supplied <benchmark_name> text, so they must never
/// be able to escape the output directory.
std::string sanitizeFileStem(const std::string& name);

/// Writes each program's assembly (and C source when present) into
/// `outputDir` as <stem>.s / <stem>.c, where stem = sanitizeFileStem(name).
/// Throws McError when two programs map to the same stem — one variant must
/// never silently overwrite another's output. Returns the written paths.
std::vector<std::string> writePrograms(
    const std::vector<GeneratedProgram>& programs,
    const std::string& outputDir);

}  // namespace microtools::creator
