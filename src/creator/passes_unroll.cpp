// Passes 7-10: the unrolling group. The two operand-swap passes bracket the
// Unrolling pass exactly as §3.2 describes: swapping before unrolling yields
// homogeneous (all-load or all-store) unrolled kernels, swapping after
// unrolling yields every mixed load/store sequence — for the (Load|Store)+
// study of §5.1 this produces sum(2^u for u in 1..8) = 510 variants.

#include "creator/passes.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::creator::passes {

namespace {

using ir::Instruction;
using ir::Kernel;

char loadStoreLetter(const Instruction& instr) {
  if (instr.isLoad()) return 'L';
  if (instr.isStore()) return 'S';
  return 'X';
}

// ---------------------------------------------------------------------------
// 7. OperandSwapBeforeUnroll
// ---------------------------------------------------------------------------

class OperandSwapBeforeUnroll final : public Pass {
 public:
  OperandSwapBeforeUnroll() : Pass("OperandSwapBeforeUnroll") {}

  void run(GenerationState& state) override {
    fanOut(state, [](const Kernel& kernel) { return expand(kernel); },
           ExpandPurity::Pure);
  }

 private:
  static std::vector<Kernel> expand(const Kernel& kernel) {
    std::vector<Kernel> work{kernel};
    for (std::size_t i = 0; i < kernel.body.size(); ++i) {
      if (!kernel.body[i].swapBeforeUnroll) continue;
      std::vector<Kernel> next;
      for (const Kernel& k : work) {
        for (bool swap : {false, true}) {
          Kernel variant = k;
          Instruction& instr = variant.body[i];
          if (swap) instr = ir::swappedOperands(instr);
          instr.swapBeforeUnroll = false;
          variant.tag(strings::format("pre%zu_%c", i,
                                      loadStoreLetter(instr)));
          next.push_back(std::move(variant));
        }
      }
      work = std::move(next);
    }
    return work;
  }
};

// ---------------------------------------------------------------------------
// 8. Unrolling
// ---------------------------------------------------------------------------

class Unrolling final : public Pass {
 public:
  Unrolling() : Pass("Unrolling") {}

  void run(GenerationState& state) override {
    fanOut(state, [](const Kernel& kernel) { return expand(kernel); },
           ExpandPurity::Pure);
  }

 private:
  static std::vector<Kernel> expand(const Kernel& kernel) {
    std::vector<Kernel> out;
    for (int factor = kernel.unrollMin; factor <= kernel.unrollMax; ++factor) {
      out.push_back(unrollBy(kernel, factor));
    }
    return out;
  }

  static Kernel unrollBy(const Kernel& kernel, int factor) {
    Kernel variant = kernel;
    variant.body.clear();
    for (int copy = 0; copy < factor; ++copy) {
      for (const Instruction& original : kernel.body) {
        Instruction instr = original;
        instr.unrollCopy = copy;
        // Advance memory operands by the per-copy offset of the base
        // register's induction (Figure 6's <offset>16</offset> produces
        // 0(%rsi), 16(%rsi), 32(%rsi) for an unroll of 3).
        for (ir::Operand& op : instr.operands) {
          auto* mem = std::get_if<ir::MemOperand>(&op);
          if (!mem) continue;
          const ir::InductionVar* iv =
              kernel.inductionFor(mem->base.logicalName);
          if (iv) mem->offset += copy * iv->offsetStep;
        }
        variant.body.push_back(std::move(instr));
      }
    }
    variant.unrollFactor = factor;
    variant.unrollMin = variant.unrollMax = factor;
    variant.tag(strings::format("u%d", factor));
    return variant;
  }
};

// ---------------------------------------------------------------------------
// 9. OperandSwapAfterUnroll
// ---------------------------------------------------------------------------

class OperandSwapAfterUnroll final : public Pass {
 public:
  OperandSwapAfterUnroll() : Pass("OperandSwapAfterUnroll") {}

  void run(GenerationState& state) override {
    fanOut(state, [](const Kernel& kernel) { return expand(kernel); },
           ExpandPurity::Pure);
  }

 private:
  static std::vector<Kernel> expand(const Kernel& kernel) {
    std::vector<std::size_t> swappable;
    for (std::size_t i = 0; i < kernel.body.size(); ++i) {
      if (kernel.body[i].swapAfterUnroll) swappable.push_back(i);
    }
    if (swappable.empty()) return {kernel};
    checkDescription(swappable.size() <= 20,
                     "swap_after_unroll on " +
                         std::to_string(swappable.size()) +
                         " instructions would generate more than 2^20 "
                         "variants; lower the unroll factor or use "
                         "swap_before_unroll");
    std::vector<Kernel> out;
    std::size_t combinations = std::size_t{1} << swappable.size();
    for (std::size_t mask = 0; mask < combinations; ++mask) {
      Kernel variant = kernel;
      std::string sequence;
      for (std::size_t bit = 0; bit < swappable.size(); ++bit) {
        Instruction& instr = variant.body[swappable[bit]];
        if (mask & (std::size_t{1} << bit)) {
          instr = ir::swappedOperands(instr);
        }
        instr.swapAfterUnroll = false;
        sequence += loadStoreLetter(instr);
      }
      variant.tag("seq" + sequence);
      out.push_back(std::move(variant));
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// 10. RegisterRotation
// ---------------------------------------------------------------------------

class RegisterRotation final : public Pass {
 public:
  RegisterRotation() : Pass("RegisterRotation") {}

  void run(GenerationState& state) override {
    for (Kernel& kernel : state.kernels) {
      for (Instruction& instr : kernel.body) {
        for (ir::Operand& op : instr.operands) {
          if (auto* reg = std::get_if<ir::RegOperand>(&op)) {
            rotate(*reg, instr.unrollCopy);
          } else if (auto* mem = std::get_if<ir::MemOperand>(&op)) {
            rotate(mem->base, instr.unrollCopy);
            if (mem->index) rotate(*mem->index, instr.unrollCopy);
          }
        }
      }
    }
  }

 private:
  static void rotate(ir::RegOperand& reg, int unrollCopy) {
    if (!reg.isRotating()) return;
    std::string prefix = reg.rotatePrefix;
    if (!prefix.empty() && prefix.front() == '%') prefix.erase(0, 1);
    checkDescription(prefix == "xmm",
                     "rotating register class '" + reg.rotatePrefix +
                         "' is not supported (only %xmm)");
    int span = reg.rotateMax - reg.rotateMin;
    int index = reg.rotateMin + (unrollCopy % span);
    checkDescription(index >= 0 && index <= 15,
                     "rotating register index out of the xmm0-15 range");
    reg.phys = isa::xmm(index);
    reg.rotatePrefix.clear();
    reg.rotateMin = reg.rotateMax = 0;
  }
};

}  // namespace

std::unique_ptr<Pass> makeOperandSwapBeforeUnroll() {
  return std::make_unique<OperandSwapBeforeUnroll>();
}
std::unique_ptr<Pass> makeUnrolling() {
  return std::make_unique<Unrolling>();
}
std::unique_ptr<Pass> makeOperandSwapAfterUnroll() {
  return std::make_unique<OperandSwapAfterUnroll>();
}
std::unique_ptr<Pass> makeRegisterRotation() {
  return std::make_unique<RegisterRotation>();
}

}  // namespace microtools::creator::passes
