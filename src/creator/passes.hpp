#pragma once

#include <memory>

#include "creator/pass.hpp"

namespace microtools::creator::passes {

/// Factories for the standard passes, in pipeline order: the nineteen of
/// §3.2 plus the static Verification pass.
/// PassManager::standardPipeline() assembles them; plugins may construct
/// individual passes to re-insert after removal or replacement.

std::unique_ptr<Pass> makeValidateDescription();     // 1
std::unique_ptr<Pass> makeInstructionRepetition();   // 2
std::unique_ptr<Pass> makeRandomSelection();         // 3
std::unique_ptr<Pass> makeMoveSemanticExpansion();   // 4
std::unique_ptr<Pass> makeImmediateSelection();      // 5
std::unique_ptr<Pass> makeStrideSelection();         // 6
std::unique_ptr<Pass> makeOperandSwapBeforeUnroll(); // 7
std::unique_ptr<Pass> makeUnrolling();               // 8
std::unique_ptr<Pass> makeOperandSwapAfterUnroll();  // 9
std::unique_ptr<Pass> makeRegisterRotation();        // 10
std::unique_ptr<Pass> makeRegisterAllocation();      // 11
std::unique_ptr<Pass> makeLoopCounterSetup();        // 12
std::unique_ptr<Pass> makeInductionLinking();        // 13
std::unique_ptr<Pass> makeInductionInsertion();      // 14
std::unique_ptr<Pass> makeAlignmentDirectives();     // 15
std::unique_ptr<Pass> makePrologueEpilogue();        // 16
std::unique_ptr<Pass> makeScheduling();              // 17
std::unique_ptr<Pass> makePeephole();                // 18
std::unique_ptr<Pass> makeCodeEmission();            // 19
std::unique_ptr<Pass> makeVerification();            // 20

}  // namespace microtools::creator::passes
