#pragma once

#include <memory>
#include <string>
#include <vector>

#include "creator/pass.hpp"

namespace microtools::creator {

/// Ordered pipeline of MicroCreator passes with the plugin-facing
/// manipulation API of §3.3: passes can be added, removed, replaced or
/// re-gated without recompiling the tool.
class PassManager {
 public:
  /// Builds the default twenty-pass pipeline: the nineteen passes of §3.2 plus the final Verification pass.
  static PassManager standardPipeline();

  PassManager() = default;
  PassManager(PassManager&&) = default;
  PassManager& operator=(PassManager&&) = default;

  /// Appends a pass at the end of the pipeline.
  void addPass(std::unique_ptr<Pass> pass);

  /// Inserts a pass before/after the named pass; throws McError when the
  /// anchor does not exist.
  void addPassBefore(const std::string& anchor, std::unique_ptr<Pass> pass);
  void addPassAfter(const std::string& anchor, std::unique_ptr<Pass> pass);

  /// Removes the named pass; throws McError when absent.
  void removePass(const std::string& name);

  /// Replaces the named pass in place, keeping its pipeline position.
  void replacePass(const std::string& name, std::unique_ptr<Pass> pass);

  /// Overrides the gate of the named pass (§3.3).
  void setGate(const std::string& name,
               std::function<bool(const GenerationState&)> gate);

  /// Pass lookup; nullptr when absent.
  Pass* find(const std::string& name);
  const Pass* find(const std::string& name) const;

  /// Names in pipeline order.
  std::vector<std::string> passNames() const;

  std::size_t size() const { return passes_.size(); }

  /// Runs every gated-on pass in order, enforcing the benchmark limit after
  /// each pass.
  void run(GenerationState& state) const;

  /// Pipeline shape summary handed to streaming consumers before the first
  /// program is released: how many kernels will be emitted and the largest
  /// arrayCount among them (computed pre-verification, so it can exceed the
  /// post-verification maximum when the widest variant is rejected).
  struct StreamInfo {
    std::size_t kernelCount = 0;
    int maxArrayCount = 0;
  };

  /// Streaming run: executes the pre-emission passes as run() would, calls
  /// `onReady` once with the finalized kernel-set shape, then emits and
  /// verifies kernels (concurrently when state.pool is set) and hands each
  /// surviving program to `consume` in kernel order as soon as it and all
  /// its predecessors are verified. Program names, contentIds, rejection
  /// warnings and the all-rejected error match run() exactly. Returns false
  /// without touching `state` when the pipeline does not end with the
  /// built-in CodeEmission + Verification passes (plugin-replaced tails
  /// must use run()).
  bool runStreaming(
      GenerationState& state,
      const std::function<void(const StreamInfo&)>& onReady,
      const std::function<void(GeneratedProgram&&)>& consume) const;

 private:
  std::size_t indexOf(const std::string& name) const;

  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace microtools::creator
