#include "kernels/matmul.hpp"

#include <sstream>

#include "asmparse/asmparse.hpp"
#include "sim/core.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::kernels {

void naiveMatmul(int n, const double* b, const double* c, double* a) {
  for (int i = 0; i < n; ++i) {
    const double* second = b + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      double* res = a + static_cast<std::ptrdiff_t>(i) * n + j;
      *res = 0;
      for (int k = 0; k < n; ++k) {
        const double* third = c + static_cast<std::ptrdiff_t>(k) * n;
        *res += second[k] * third[j];
      }
    }
  }
}

std::string naiveMatmulCSource() {
  // Figure 1, with the paper's pointer style kept intact.
  return R"(/* Naive matrix multiply (paper Figure 1) */
int multiplySingle(int iter, void* va, void* vb, void* vc)
{
  double* A = (double*)va;
  double* B = (double*)vb;
  double* C = (double*)vc;
  int i, j, k;
  for (i = 0; i < iter; i++) {
    double* first = A + i * iter;
    double* second = B + i * iter;
    for (j = 0; j < iter; j++) {
      double* res = first + j;
      *res = 0;
      for (k = 0; k < iter; k++) {
        double* third = C + k * iter;
        *res += second[k] * third[j];
      }
    }
  }
  return iter;
}
)";
}

std::string matmulInnerKernelAsm(int unroll, std::int64_t cStrideBytes) {
  if (unroll < 1 || unroll > 7) {
    throw McError("matmul kernel unroll must be in [1, 7] (one accumulator "
                  "register per copy, xmm1..xmm7)");
  }
  std::ostringstream out;
  out << "# Figure-2 style matmul inner kernel, unroll " << unroll << "\n";
  out << "\t.text\n";
  out << "\t.globl matmul_kernel\n";
  out << "\t.type matmul_kernel, @function\n";
  out << "matmul_kernel:\n";
  out << "\tmovslq %edi, %rdi\n";
  out << "\txor %eax, %eax\n";
  for (int u = 0; u < unroll; ++u) {
    out << "\txorps %xmm" << (1 + u) << ", %xmm" << (1 + u) << "\n";
  }
  out << "\t.p2align 4\n";
  out << ".L3:\n";
  for (int u = 0; u < unroll; ++u) {
    int acc = 1 + u;
    out << "\tmovsd " << (8 * u) << "(%rsi), %xmm0\n";
    out << "\tmulsd " << (cStrideBytes * u) << "(%rdx), %xmm0\n";
    out << "\taddsd %xmm0, %xmm" << acc << "\n";
    out << "\tmovsd %xmm" << acc << ", (%rcx)\n";
  }
  out << "\tadd $" << (8 * unroll) << ", %rsi\n";
  out << "\tadd $" << (cStrideBytes * unroll) << ", %rdx\n";
  out << "\tadd $" << unroll << ", %eax\n";
  out << "\tsub $" << unroll << ", %rdi\n";
  out << "\tjg .L3\n";
  out << "\tret\n";
  out << "\t.size matmul_kernel, .-matmul_kernel\n";
  out << "\t.section .note.GNU-stack,\"\",@progbits\n";
  return out.str();
}

std::string matmulInnerKernelXml(int unrollMin, int unrollMax,
                                 std::int64_t cStrideBytes) {
  // The MicroCreator abstraction of the same kernel: load, multiply with a
  // memory operand, accumulate into a rotated register, store.
  return strings::format(R"(<description>
  <benchmark_name>matmul_kernel</benchmark_name>
  <function_name>matmul_kernel</function_name>
  <kernel>
    <instruction>
      <operation>movsd</operation>
      <memory><register><name>r1</name></register><offset>0</offset></memory>
      <register><phyName>%%xmm</phyName><min>0</min><max>1</max></register>
    </instruction>
    <instruction>
      <operation>mulsd</operation>
      <memory><register><name>r2</name></register><offset>0</offset></memory>
      <register><phyName>%%xmm</phyName><min>0</min><max>1</max></register>
    </instruction>
    <instruction>
      <operation>addsd</operation>
      <register><phyName>%%xmm</phyName><min>0</min><max>1</max></register>
      <register><phyName>%%xmm</phyName><min>1</min><max>8</max></register>
    </instruction>
    <instruction>
      <operation>movsd</operation>
      <register><phyName>%%xmm</phyName><min>1</min><max>8</max></register>
      <memory><register><name>r3</name></register><offset>0</offset></memory>
    </instruction>
    <unrolling><min>%d</min><max>%d</max></unrolling>
    <induction>
      <register><name>r1</name></register>
      <increment>8</increment><offset>8</offset>
    </induction>
    <induction>
      <register><name>r2</name></register>
      <increment>%lld</increment><offset>%lld</offset>
    </induction>
    <induction>
      <register><name>r3</name></register>
      <increment>0</increment><offset>0</offset>
    </induction>
    <induction>
      <register><phyName>%%eax</phyName></register>
      <increment>1</increment>
    </induction>
    <induction>
      <register><name>r0</name></register>
      <increment>-1</increment>
      <linked><register><name>r1</name></register></linked>
      <element_size>8</element_size>
      <last_induction/>
    </induction>
    <branch_information><label>L3</label><test>jg</test></branch_information>
  </kernel>
</description>
)",
                         unrollMin, unrollMax,
                         static_cast<long long>(cStrideBytes),
                         static_cast<long long>(cStrideBytes));
}

MatmulStudyResult runMatmulStudy(const sim::MachineConfig& config,
                                 const MatmulStudyOptions& options) {
  const int n = options.n;
  if (n < 8) throw McError("matmul study requires n >= 8");
  const std::uint64_t aBase = options.bases[0];
  const std::uint64_t bBase = options.bases[1];
  const std::uint64_t cBase = options.bases[2];
  const std::uint64_t rowBytes = static_cast<std::uint64_t>(n) * 8;

  sim::MemorySystem memsys(config);
  std::uint64_t clock = 0;

  // Functional warm pass: the access stream of `warmRows` full i-rows.
  for (int i = 0; i < options.warmRows; ++i) {
    for (int j = 0; j < n; ++j) {
      std::uint64_t res = aBase + (static_cast<std::uint64_t>(i) * n + j) * 8;
      for (int k = 0; k < n; ++k) {
        memsys.load(0, bBase + (static_cast<std::uint64_t>(i) * n + k) * 8, 8,
                    clock);
        memsys.load(0, cBase + (static_cast<std::uint64_t>(k) * n + j) * 8, 8,
                    clock);
        memsys.store(0, res, 8, clock);
        clock += 3;
      }
    }
  }

  // Timed pass: the Figure-2 kernel (or a caller-provided equivalent) on
  // the core model, sampled (i, j).
  asmparse::Program ownProgram;
  const asmparse::Program* program = options.programOverride;
  if (!program) {
    ownProgram = asmparse::parseAssembly(
        matmulInnerKernelAsm(options.unroll, static_cast<std::int64_t>(rowBytes)));
    program = &ownProgram;
  }

  MatmulStudyResult out;
  std::uint64_t l1Before = memsys.levelCount(sim::MemLevel::L1);
  std::uint64_t l2Before = memsys.levelCount(sim::MemLevel::L2);
  std::uint64_t l3Before = memsys.levelCount(sim::MemLevel::L3);
  std::uint64_t ramBefore = memsys.levelCount(sim::MemLevel::Ram);

  std::uint64_t measuredCycles = 0;
  int blocks = std::max(1, options.jBlocks);
  int blockSize = std::max(1, options.jBlockSize);
  for (int row = 0; row < options.sampleRows; ++row) {
    int i = options.warmRows + row;
    for (int block = 0; block < blocks; ++block) {
      int jStart = static_cast<int>(
          static_cast<std::int64_t>(block) * n / blocks);
      for (int dj = 0; dj < blockSize && jStart + dj < n; ++dj) {
        int j = jStart + dj;
        std::uint64_t bRow = bBase + static_cast<std::uint64_t>(i) * rowBytes;
        std::uint64_t cCol = cBase + static_cast<std::uint64_t>(j) * 8;
        std::uint64_t res =
            aBase + (static_cast<std::uint64_t>(i) * n + j) * 8;
        sim::CoreSim core(config, memsys, 0);
        sim::RunResult r = core.run(*program, n, {bRow, cCol, res}, clock);
        clock += r.coreCycles;
        measuredCycles += r.coreCycles;
        out.measuredIterations += r.iterations;
      }
    }
  }
  if (out.measuredIterations == 0) {
    throw McError("matmul study measured no iterations");
  }
  out.cyclesPerKIteration = static_cast<double>(measuredCycles) /
                            static_cast<double>(out.measuredIterations);
  out.l1 = memsys.levelCount(sim::MemLevel::L1) - l1Before;
  out.l2 = memsys.levelCount(sim::MemLevel::L2) - l2Before;
  out.l3 = memsys.levelCount(sim::MemLevel::L3) - l3Before;
  out.ram = memsys.levelCount(sim::MemLevel::Ram) - ramBefore;
  return out;
}

}  // namespace microtools::kernels
