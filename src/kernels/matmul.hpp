#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "asmparse/asmparse.hpp"
#include "sim/arch.hpp"
#include "sim/memsys.hpp"

namespace microtools::kernels {

/// Reference implementation of the paper's Figure 1 naive matrix multiply:
/// A[i][j] = sum_k B[i][k] * C[k][j], all three as single n*n arrays.
/// Used by the native examples and to validate the assembly replicas.
void naiveMatmul(int n, const double* b, const double* c, double* a);

/// C source of the naive matmul (Figure 1), compilable by the native
/// backend; entry point `multiplySingle(int n, void* a, void* b, void* c)`.
std::string naiveMatmulCSource();

/// AT&T assembly replica of Figure 2's inner (k-loop) kernel:
///
///   int matmul_kernel(int n, void* bRow, void* cCol, void* res)
///
/// per iteration: load B[k], multiply by C[k][j] (memory operand, row
/// stride `cStrideBytes`), accumulate, store the running sum to *res —
/// exactly the load / mul+load / add / store structure GCC -O3 produced in
/// the paper. `unroll` replicates the body with rotated accumulator
/// registers (xmm1..xmm7) to break the addsd dependency chain.
std::string matmulInnerKernelAsm(int unroll, std::int64_t cStrideBytes);

/// MicroCreator XML description of the same kernel (the "MicroTools
/// version" series of Figure 5), with unrolling bounds to fan out.
std::string matmulInnerKernelXml(int unrollMin, int unrollMax,
                                 std::int64_t cStrideBytes);

/// Options for the simulated matrix-multiply study (Figures 3-5).
struct MatmulStudyOptions {
  int n = 200;           ///< matrix dimension
  int unroll = 1;        ///< k-loop unroll factor
  /// Base addresses of A (result), B, C in the simulated address space;
  /// varied by the Figure-4 alignment study.
  std::array<std::uint64_t, 3> bases = {0x100000000ull, 0x140000000ull,
                                        0x180000000ull};
  int warmRows = 1;      ///< i-rows executed functionally to warm caches
  int sampleRows = 1;    ///< i-rows measured with the core model
  int jBlocks = 16;      ///< sampled contiguous j-blocks per measured row
  int jBlockSize = 32;   ///< j values per block

  /// When set, this kernel is executed instead of the built-in Figure-2
  /// replica (it must follow the same f(n, bRow, cCol, res) contract) —
  /// used by the Figure-5 bench to run the MicroCreator-generated
  /// equivalent through the identical study.
  const asmparse::Program* programOverride = nullptr;
};

/// Result of a matmul study run.
struct MatmulStudyResult {
  double cyclesPerKIteration = 0.0;  ///< average over all measured k-iters
  std::uint64_t measuredIterations = 0;
  std::uint64_t l1 = 0, l2 = 0, l3 = 0, ram = 0;  ///< demand access counts
};

/// Runs the sampled matmul study on the simulator: caches are warmed with a
/// functional pass over `warmRows` rows, then the Figure-2 kernel is
/// executed on the core model for sampled (i, j) positions with a
/// monotonically advancing clock. Sampling keeps Figure 3's size sweep
/// tractable while preserving the cache-residency behaviour that drives it.
MatmulStudyResult runMatmulStudy(const sim::MachineConfig& config,
                                 const MatmulStudyOptions& options);

}  // namespace microtools::kernels
