#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace microtools::xml {

/// One element of an XML document tree.
///
/// MicroCreator's entire input language (§3.1 of the paper) is XML; this is a
/// small dependency-free DOM holding exactly what the kernel-description
/// schema needs: element names, attributes, child elements and text content.
class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Concatenated character data directly inside this element (entities
  /// decoded, surrounding whitespace preserved).
  const std::string& text() const { return text_; }
  void appendText(std::string_view t) { text_ += t; }

  /// text() with surrounding ASCII whitespace removed.
  std::string trimmedText() const;

  // -- attributes -----------------------------------------------------------
  const std::map<std::string, std::string>& attributes() const {
    return attributes_;
  }
  void setAttribute(const std::string& key, std::string value);
  std::optional<std::string> attribute(const std::string& key) const;

  // -- children -------------------------------------------------------------
  Node& addChild(std::string childName);

  /// Takes ownership of an already-built subtree.
  Node& adoptChild(std::unique_ptr<Node> childNode);

  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }

  /// First child element with the given name; nullptr when absent.
  const Node* child(std::string_view childName) const;

  /// All child elements with the given name, in document order.
  std::vector<const Node*> childrenNamed(std::string_view childName) const;

  /// True when a child element with the given name exists (the paper's
  /// schema uses empty elements such as <swap_after_unroll/> as flags).
  bool hasChild(std::string_view childName) const {
    return child(childName) != nullptr;
  }

  /// Trimmed text of the named child; nullopt when the child is absent.
  std::optional<std::string> childText(std::string_view childName) const;

  /// Integer content of the named child; nullopt when absent; throws
  /// ParseError when present but not an integer.
  std::optional<std::int64_t> childInt(std::string_view childName) const;

  /// Integer content of a required child; throws DescriptionError when the
  /// child is missing (message names the parent and child).
  std::int64_t requiredInt(std::string_view childName) const;

  /// Trimmed text of a required child; throws DescriptionError when missing.
  std::string requiredText(std::string_view childName) const;

  /// Serializes this subtree as indented XML.
  std::string toString(int indent = 0) const;

 private:
  std::string name_;
  std::string text_;
  std::map<std::string, std::string> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// A parsed document: owns the root element.
class Document {
 public:
  explicit Document(std::unique_ptr<Node> root) : root_(std::move(root)) {}
  const Node& root() const { return *root_; }
  Node& root() { return *root_; }

 private:
  std::unique_ptr<Node> root_;
};

/// Parses an XML document from text. Supports elements, attributes with
/// single or double quotes, character data, comments, CDATA sections, the
/// XML declaration, processing instructions (skipped), and the five named
/// entities plus numeric character references. Throws ParseError with a line
/// number on malformed input.
Document parse(std::string_view text);

/// Parses the file at `path`; throws McError when it cannot be read.
Document parseFile(const std::string& path);

/// Escapes `text` for use as XML character data.
std::string escape(std::string_view text);

}  // namespace microtools::xml
