#include "xml/xml.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::xml {

std::string Node::trimmedText() const {
  return std::string(strings::trim(text_));
}

void Node::setAttribute(const std::string& key, std::string value) {
  attributes_[key] = std::move(value);
}

std::optional<std::string> Node::attribute(const std::string& key) const {
  auto it = attributes_.find(key);
  if (it == attributes_.end()) return std::nullopt;
  return it->second;
}

Node& Node::addChild(std::string childName) {
  children_.push_back(std::make_unique<Node>(std::move(childName)));
  return *children_.back();
}

Node& Node::adoptChild(std::unique_ptr<Node> childNode) {
  children_.push_back(std::move(childNode));
  return *children_.back();
}

const Node* Node::child(std::string_view childName) const {
  for (const auto& c : children_) {
    if (c->name() == childName) return c.get();
  }
  return nullptr;
}

std::vector<const Node*> Node::childrenNamed(std::string_view childName) const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->name() == childName) out.push_back(c.get());
  }
  return out;
}

std::optional<std::string> Node::childText(std::string_view childName) const {
  const Node* c = child(childName);
  if (!c) return std::nullopt;
  return c->trimmedText();
}

std::optional<std::int64_t> Node::childInt(std::string_view childName) const {
  const Node* c = child(childName);
  if (!c) return std::nullopt;
  auto v = strings::parseInt(c->trimmedText());
  if (!v) {
    throw ParseError("element <" + std::string(childName) +
                     "> inside <" + name_ + "> is not an integer: '" +
                     c->trimmedText() + "'");
  }
  return v;
}

std::int64_t Node::requiredInt(std::string_view childName) const {
  auto v = childInt(childName);
  if (!v) {
    throw DescriptionError("element <" + name_ + "> requires a <" +
                           std::string(childName) + "> child");
  }
  return *v;
}

std::string Node::requiredText(std::string_view childName) const {
  auto v = childText(childName);
  if (!v) {
    throw DescriptionError("element <" + name_ + "> requires a <" +
                           std::string(childName) + "> child");
  }
  return *v;
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Node::toString(int indent) const {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::ostringstream oss;
  oss << pad << '<' << name_;
  for (const auto& [k, v] : attributes_) {
    oss << ' ' << k << "=\"" << escape(v) << '"';
  }
  std::string body = trimmedText();
  if (children_.empty() && body.empty()) {
    oss << "/>\n";
    return oss.str();
  }
  oss << '>';
  if (children_.empty()) {
    oss << escape(body) << "</" << name_ << ">\n";
    return oss.str();
  }
  oss << '\n';
  if (!body.empty()) {
    oss << pad << "  " << escape(body) << '\n';
  }
  for (const auto& c : children_) oss << c->toString(indent + 1);
  oss << pad << "</" << name_ << ">\n";
  return oss.str();
}

namespace {

/// Recursive-descent XML parser over a string_view with line tracking.
class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  Document run() {
    skipProlog();
    auto root = parseElement();
    skipMisc();
    if (pos_ != text_.size()) {
      fail("content after document root element");
    }
    return Document(std::move(root));
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, line_);
  }

  bool eof() const { return pos_ >= text_.size(); }

  char peek() const {
    if (eof()) fail("unexpected end of document");
    return text_[pos_];
  }

  char get() {
    char c = peek();
    ++pos_;
    if (c == '\n') ++line_;
    return c;
  }

  bool consume(std::string_view token) {
    if (text_.substr(pos_).substr(0, token.size()) != token) return false;
    for (std::size_t i = 0; i < token.size(); ++i) get();
    return true;
  }

  void expect(std::string_view token) {
    if (!consume(token)) {
      fail("expected '" + std::string(token) + "'");
    }
  }

  static bool isSpace(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }

  static bool isNameStart(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  }

  static bool isNameChar(char c) {
    return isNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
  }

  void skipSpace() {
    while (!eof() && isSpace(text_[pos_])) get();
  }

  void skipComment() {
    // positioned just after "<!--"
    while (!consume("-->")) {
      if (eof()) fail("unterminated comment");
      get();
    }
  }

  void skipProcessingInstruction() {
    // positioned just after "<?"
    while (!consume("?>")) {
      if (eof()) fail("unterminated processing instruction");
      get();
    }
  }

  void skipDoctype() {
    // positioned just after "<!DOCTYPE"; tolerate nested [] internal subset.
    int depth = 0;
    for (;;) {
      if (eof()) fail("unterminated DOCTYPE");
      char c = get();
      if (c == '[') ++depth;
      if (c == ']') --depth;
      if (c == '>' && depth <= 0) return;
    }
  }

  void skipMisc() {
    for (;;) {
      skipSpace();
      if (consume("<!--")) {
        skipComment();
      } else if (consume("<?")) {
        skipProcessingInstruction();
      } else {
        return;
      }
    }
  }

  void skipProlog() {
    for (;;) {
      skipSpace();
      if (consume("<?")) {
        skipProcessingInstruction();
      } else if (consume("<!--")) {
        skipComment();
      } else if (consume("<!DOCTYPE")) {
        skipDoctype();
      } else {
        return;
      }
    }
  }

  std::string parseName() {
    if (eof() || !isNameStart(peek())) fail("expected a name");
    std::string name;
    name += get();
    while (!eof() && isNameChar(text_[pos_])) name += get();
    return name;
  }

  std::string decodeEntity() {
    // positioned just after '&'
    std::string ent;
    while (!eof() && peek() != ';') {
      ent += get();
      if (ent.size() > 10) fail("unterminated entity reference");
    }
    expect(";");
    if (ent == "lt") return "<";
    if (ent == "gt") return ">";
    if (ent == "amp") return "&";
    if (ent == "quot") return "\"";
    if (ent == "apos") return "'";
    if (!ent.empty() && ent[0] == '#') {
      int base = 10;
      std::string digits = ent.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      char* end = nullptr;
      unsigned long code = std::strtoul(digits.c_str(), &end, base);
      if (end != digits.c_str() + digits.size() || code == 0 || code > 0x10ffff) {
        fail("invalid character reference &" + ent + ";");
      }
      // Encode as UTF-8.
      std::string out;
      if (code < 0x80) {
        out += static_cast<char>(code);
      } else if (code < 0x800) {
        out += static_cast<char>(0xc0 | (code >> 6));
        out += static_cast<char>(0x80 | (code & 0x3f));
      } else if (code < 0x10000) {
        out += static_cast<char>(0xe0 | (code >> 12));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (code & 0x3f));
      } else {
        out += static_cast<char>(0xf0 | (code >> 18));
        out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (code & 0x3f));
      }
      return out;
    }
    fail("unknown entity &" + ent + ";");
  }

  std::string parseAttributeValue() {
    char quote = get();
    if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
    std::string value;
    for (;;) {
      if (eof()) fail("unterminated attribute value");
      char c = get();
      if (c == quote) break;
      if (c == '&') {
        value += decodeEntity();
      } else {
        value += c;
      }
    }
    return value;
  }

  std::unique_ptr<Node> parseElement() {
    expect("<");
    auto node = std::make_unique<Node>(parseName());
    // Attributes.
    for (;;) {
      skipSpace();
      if (consume("/>")) return node;
      if (consume(">")) break;
      std::string key = parseName();
      skipSpace();
      expect("=");
      skipSpace();
      if (node->attribute(key)) fail("duplicate attribute '" + key + "'");
      node->setAttribute(key, parseAttributeValue());
    }
    // Content.
    for (;;) {
      if (eof()) fail("unterminated element <" + node->name() + ">");
      if (consume("<!--")) {
        skipComment();
        continue;
      }
      if (consume("<![CDATA[")) {
        std::string data;
        while (!consume("]]>")) {
          if (eof()) fail("unterminated CDATA section");
          data += get();
        }
        node->appendText(data);
        continue;
      }
      if (consume("</")) {
        std::string closing = parseName();
        if (closing != node->name()) {
          fail("mismatched closing tag </" + closing + "> for <" +
               node->name() + ">");
        }
        skipSpace();
        expect(">");
        return node;
      }
      if (consume("<?")) {
        skipProcessingInstruction();
        continue;
      }
      if (peek() == '<') {
        node->adoptChild(parseElement());
        continue;
      }
      char c = get();
      if (c == '&') {
        node->appendText(decodeEntity());
      } else {
        char buf[1] = {c};
        node->appendText(std::string_view(buf, 1));
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

Document parse(std::string_view text) { return XmlParser(text).run(); }

Document parseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw McError("cannot open XML file: " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return parse(oss.str());
}

}  // namespace microtools::xml
