#include "isa/registers.hpp"

#include <array>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::isa {

namespace {

// Canonical GPR names by index, per width.
constexpr std::array<const char*, 16> kNames64 = {
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
constexpr std::array<const char*, 16> kNames32 = {
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d"};
constexpr std::array<const char*, 16> kNames16 = {
    "ax",  "cx",  "dx",  "bx",  "sp",  "bp",  "si",  "di",
    "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w"};
constexpr std::array<const char*, 16> kNames8 = {
    "al",  "cl",  "dl",  "bl",  "spl", "bpl", "sil", "dil",
    "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b"};

std::optional<PhysReg> lookupGpr(std::string_view name) {
  for (int i = 0; i < 16; ++i) {
    if (name == kNames64[static_cast<std::size_t>(i)]) return gpr(i, 64);
    if (name == kNames32[static_cast<std::size_t>(i)]) return gpr(i, 32);
    if (name == kNames16[static_cast<std::size_t>(i)]) return gpr(i, 16);
    if (name == kNames8[static_cast<std::size_t>(i)]) return gpr(i, 8);
  }
  return std::nullopt;
}

}  // namespace

std::optional<PhysReg> parseRegister(std::string_view token) {
  if (!token.empty() && token.front() == '%') token.remove_prefix(1);
  if (token.empty()) return std::nullopt;
  if (token == "rip") return PhysReg{RegClass::Rip, 0, 64};
  if (strings::startsWith(token, "xmm")) {
    auto idx = strings::parseInt(token.substr(3));
    if (!idx || *idx < 0 || *idx > 15) return std::nullopt;
    return xmm(static_cast<int>(*idx));
  }
  return lookupGpr(token);
}

std::string registerName(const PhysReg& reg) {
  if (reg.cls == RegClass::Rip) return "%rip";
  if (reg.cls == RegClass::Xmm) return "%xmm" + std::to_string(reg.index);
  if (reg.index < 0 || reg.index > 15) {
    throw McError("GPR index out of range: " + std::to_string(reg.index));
  }
  auto i = static_cast<std::size_t>(reg.index);
  switch (reg.widthBits) {
    case 64: return std::string("%") + kNames64[i];
    case 32: return std::string("%") + kNames32[i];
    case 16: return std::string("%") + kNames16[i];
    case 8: return std::string("%") + kNames8[i];
    default:
      throw McError("unsupported GPR width: " +
                    std::to_string(reg.widthBits));
  }
}

PhysReg gpr(int index, int widthBits) {
  if (index < 0 || index > 15) {
    throw McError("GPR index out of range: " + std::to_string(index));
  }
  return PhysReg{RegClass::Gpr, index, widthBits};
}

PhysReg xmm(int index) {
  if (index < 0 || index > 15) {
    throw McError("XMM index out of range: " + std::to_string(index));
  }
  return PhysReg{RegClass::Xmm, index, 128};
}

PhysReg argumentRegister(int argIndex) {
  static constexpr std::array<int, 6> kArgOrder = {kRdi, kRsi, kRdx,
                                                   kRcx, kR8,  kR9};
  if (argIndex < 0 || argIndex >= kNumArgumentRegisters) {
    throw McError("argument register index out of range: " +
                  std::to_string(argIndex));
  }
  return gpr(kArgOrder[static_cast<std::size_t>(argIndex)], 64);
}

PhysReg scratchRegister(int scratchIndex) {
  static constexpr std::array<int, 2> kScratchOrder = {kR10, kR11};
  if (scratchIndex < 0 || scratchIndex >= kNumScratchRegisters) {
    throw McError("scratch register index out of range: " +
                  std::to_string(scratchIndex));
  }
  return gpr(kScratchOrder[static_cast<std::size_t>(scratchIndex)], 64);
}

}  // namespace microtools::isa
