#include "isa/instructions.hpp"

#include "support/error.hpp"

namespace microtools::isa {

namespace {

std::vector<InstrDesc> buildTable() {
  std::vector<InstrDesc> t;
  auto add = [&t](InstrDesc d) { t.push_back(d); };

  // -- data movement --------------------------------------------------------
  add({.mnemonic = "mov", .kind = InstrKind::Move, .latency = 1,
       .suffixable = true});
  add({.mnemonic = "movslq", .kind = InstrKind::Move, .latency = 1});
  add({.mnemonic = "movzbl", .kind = InstrKind::Move, .latency = 1});
  add({.mnemonic = "movsbl", .kind = InstrKind::Move, .latency = 1});
  add({.mnemonic = "movss", .kind = InstrKind::Move, .memBytes = 4,
       .isFp = true, .latency = 1});
  add({.mnemonic = "movsd", .kind = InstrKind::Move, .memBytes = 8,
       .isFp = true, .latency = 1});
  add({.mnemonic = "movaps", .kind = InstrKind::Move, .memBytes = 16,
       .requiresAlignment = true, .isVector = true, .isFp = true,
       .latency = 1});
  add({.mnemonic = "movapd", .kind = InstrKind::Move, .memBytes = 16,
       .requiresAlignment = true, .isVector = true, .isFp = true,
       .latency = 1});
  add({.mnemonic = "movups", .kind = InstrKind::Move, .memBytes = 16,
       .isVector = true, .isFp = true, .latency = 1});
  add({.mnemonic = "movupd", .kind = InstrKind::Move, .memBytes = 16,
       .isVector = true, .isFp = true, .latency = 1});
  add({.mnemonic = "movdqa", .kind = InstrKind::Move, .memBytes = 16,
       .requiresAlignment = true, .isVector = true, .isFp = true,
       .latency = 1});
  add({.mnemonic = "movdqu", .kind = InstrKind::Move, .memBytes = 16,
       .isVector = true, .isFp = true, .latency = 1});

  // -- integer ALU ----------------------------------------------------------
  // Binary and unary forms share the read-modify-write destination; `not`
  // is the only ALU op in the subset that leaves the flags untouched.
  for (const char* m : {"add", "sub", "and", "or", "xor", "neg", "inc",
                        "dec", "shl", "shr", "sar"}) {
    add({.mnemonic = m, .kind = InstrKind::IntAlu, .latency = 1,
         .suffixable = true, .readsDest = true, .writesFlags = true});
  }
  add({.mnemonic = "not", .kind = InstrKind::IntAlu, .latency = 1,
       .suffixable = true, .readsDest = true});
  add({.mnemonic = "imul", .kind = InstrKind::IntMul, .latency = 3,
       .suffixable = true, .readsDest = true, .writesFlags = true});
  add({.mnemonic = "lea", .kind = InstrKind::Lea, .latency = 1,
       .suffixable = true});

  // -- comparisons ----------------------------------------------------------
  add({.mnemonic = "cmp", .kind = InstrKind::Compare, .latency = 1,
       .suffixable = true, .writesDest = false, .writesFlags = true});
  add({.mnemonic = "test", .kind = InstrKind::Compare, .latency = 1,
       .suffixable = true, .writesDest = false, .writesFlags = true});

  // -- SSE floating point ---------------------------------------------------
  add({.mnemonic = "addss", .kind = InstrKind::FpAdd, .memBytes = 4,
       .isFp = true, .latency = 3, .readsDest = true,
       .unit = ExecUnit::FpAdd});
  add({.mnemonic = "addsd", .kind = InstrKind::FpAdd, .memBytes = 8,
       .isFp = true, .latency = 3, .readsDest = true,
       .unit = ExecUnit::FpAdd});
  add({.mnemonic = "addps", .kind = InstrKind::FpAdd, .memBytes = 16,
       .requiresAlignment = true, .isVector = true, .isFp = true,
       .latency = 3, .readsDest = true, .unit = ExecUnit::FpAdd});
  add({.mnemonic = "addpd", .kind = InstrKind::FpAdd, .memBytes = 16,
       .requiresAlignment = true, .isVector = true, .isFp = true,
       .latency = 3, .readsDest = true, .unit = ExecUnit::FpAdd});
  add({.mnemonic = "mulss", .kind = InstrKind::FpMul, .memBytes = 4,
       .isFp = true, .latency = 4, .readsDest = true,
       .unit = ExecUnit::FpMul});
  add({.mnemonic = "mulsd", .kind = InstrKind::FpMul, .memBytes = 8,
       .isFp = true, .latency = 5, .readsDest = true,
       .unit = ExecUnit::FpMul});
  add({.mnemonic = "mulps", .kind = InstrKind::FpMul, .memBytes = 16,
       .requiresAlignment = true, .isVector = true, .isFp = true,
       .latency = 4, .readsDest = true, .unit = ExecUnit::FpMul});
  add({.mnemonic = "mulpd", .kind = InstrKind::FpMul, .memBytes = 16,
       .requiresAlignment = true, .isVector = true, .isFp = true,
       .latency = 5, .readsDest = true, .unit = ExecUnit::FpMul});
  // The divider is unpipelined: each micro-op occupies the shared FpMul
  // port for the full latency (the simulator keeps the port busy for
  // `latency` cycles).
  add({.mnemonic = "divss", .kind = InstrKind::FpDiv, .memBytes = 4,
       .isFp = true, .latency = 14, .readsDest = true,
       .unit = ExecUnit::FpDiv, .recipThroughput = 14.0});
  add({.mnemonic = "divsd", .kind = InstrKind::FpDiv, .memBytes = 8,
       .isFp = true, .latency = 22, .readsDest = true,
       .unit = ExecUnit::FpDiv, .recipThroughput = 22.0});
  add({.mnemonic = "xorps", .kind = InstrKind::FpLogic, .memBytes = 16,
       .isVector = true, .isFp = true, .latency = 1, .readsDest = true});
  add({.mnemonic = "xorpd", .kind = InstrKind::FpLogic, .memBytes = 16,
       .isVector = true, .isFp = true, .latency = 1, .readsDest = true});
  add({.mnemonic = "pxor", .kind = InstrKind::FpLogic, .memBytes = 16,
       .isVector = true, .isFp = true, .latency = 1, .readsDest = true});

  // -- control flow ---------------------------------------------------------
  add({.mnemonic = "jmp", .kind = InstrKind::Jump, .writesDest = false,
       .unit = ExecUnit::Branch});
  auto branch = [&add](const char* m, Condition c) {
    add({.mnemonic = m, .kind = InstrKind::CondBranch, .condition = c,
         .writesDest = false, .readsFlags = true,
         .unit = ExecUnit::Branch});
  };
  branch("je", Condition::E);
  branch("jz", Condition::E);
  branch("jne", Condition::NE);
  branch("jnz", Condition::NE);
  branch("jl", Condition::L);
  branch("jle", Condition::LE);
  branch("jg", Condition::G);
  branch("jge", Condition::GE);
  branch("jb", Condition::B);
  branch("jbe", Condition::BE);
  branch("ja", Condition::A);
  branch("jae", Condition::AE);
  branch("js", Condition::S);
  branch("jns", Condition::NS);

  // ret ends dispatch without a micro-op; nop consumes a dispatch slot
  // but never reaches an execution port.
  add({.mnemonic = "ret", .kind = InstrKind::Ret, .writesDest = false,
       .unit = ExecUnit::None, .uops = 0});
  add({.mnemonic = "nop", .kind = InstrKind::Nop, .writesDest = false,
       .unit = ExecUnit::None, .uops = 0});
  return t;
}

}  // namespace

std::string_view execUnitName(ExecUnit unit) {
  switch (unit) {
    case ExecUnit::None: return "none";
    case ExecUnit::Alu: return "alu";
    case ExecUnit::FpAdd: return "fp-add";
    case ExecUnit::FpMul: return "fp-mul";
    case ExecUnit::FpDiv: return "fp-div";
    case ExecUnit::Branch: return "branch";
  }
  return "unknown";
}

const std::vector<InstrDesc>& instructionTable() {
  static const std::vector<InstrDesc> table = buildTable();
  return table;
}

const InstrDesc* findInstructionExact(std::string_view mnemonic) {
  for (const auto& d : instructionTable()) {
    if (d.mnemonic == mnemonic) return &d;
  }
  return nullptr;
}

const InstrDesc* findInstruction(std::string_view mnemonic) {
  if (const InstrDesc* d = findInstructionExact(mnemonic)) return d;
  // AT&T size suffix: addq, subl, movq, cmpl, ...
  if (mnemonic.size() >= 2) {
    char suffix = mnemonic.back();
    if (suffix == 'b' || suffix == 'w' || suffix == 'l' || suffix == 'q') {
      const InstrDesc* d =
          findInstructionExact(mnemonic.substr(0, mnemonic.size() - 1));
      if (d && d->suffixable) return d;
    }
  }
  return nullptr;
}

bool kindIsBranch(InstrKind kind) {
  return kind == InstrKind::CondBranch || kind == InstrKind::Jump ||
         kind == InstrKind::Ret;
}

std::vector<std::string> moveCandidates(int bytes, bool aligned,
                                        bool allowDouble) {
  switch (bytes) {
    case 4:
      return {"movss"};
    case 8:
      return allowDouble ? std::vector<std::string>{"movsd"}
                         : std::vector<std::string>{};
    case 16:
      if (aligned) {
        return allowDouble
                   ? std::vector<std::string>{"movaps", "movapd"}
                   : std::vector<std::string>{"movaps"};
      }
      return allowDouble ? std::vector<std::string>{"movups", "movupd"}
                         : std::vector<std::string>{"movups"};
    default:
      throw McError("no move instruction for " + std::to_string(bytes) +
                    " bytes (supported: 4, 8, 16)");
  }
}

}  // namespace microtools::isa
