#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace microtools::isa {

/// Register classes of the x86-64 subset MicroTools generates.
enum class RegClass : std::uint8_t {
  Gpr,  ///< general purpose (%rax ... %r15 and their sub-views)
  Xmm,  ///< SSE vector registers (%xmm0 ... %xmm15)
  Rip,  ///< instruction pointer (only as a memory base)
};

/// A physical register reference: class, index, and access width in bits.
///
/// The same architectural register is identified by (cls, index) regardless
/// of width, so %eax and %rax compare equal for dependency tracking through
/// sameArchReg().
struct PhysReg {
  RegClass cls = RegClass::Gpr;
  int index = 0;       // 0..15
  int widthBits = 64;  // 8, 16, 32, 64 for GPR; 128 for XMM

  bool operator==(const PhysReg&) const = default;

  /// True when `other` names the same architectural register (ignoring
  /// width), i.e. writes to one clobber the other.
  bool sameArchReg(const PhysReg& other) const {
    return cls == other.cls && index == other.index;
  }
};

/// Parses an AT&T register token such as "%rax", "%r10d" or "%xmm3".
/// The leading '%' is optional. Returns nullopt for unknown names.
std::optional<PhysReg> parseRegister(std::string_view token);

/// Renders a PhysReg back to its canonical AT&T name (with leading '%').
std::string registerName(const PhysReg& reg);

/// GPR index constants following the SysV AMD64 numbering used by the
/// instruction encoder (rax=0, rcx=1, rdx=2, rbx=3, rsp=4, rbp=5, rsi=6,
/// rdi=7, r8..r15 = 8..15).
inline constexpr int kRax = 0, kRcx = 1, kRdx = 2, kRbx = 3, kRsp = 4,
                     kRbp = 5, kRsi = 6, kRdi = 7, kR8 = 8, kR9 = 9,
                     kR10 = 10, kR11 = 11, kR12 = 12, kR13 = 13, kR14 = 14,
                     kR15 = 15;

/// Constructs a GPR of the given width.
PhysReg gpr(int index, int widthBits = 64);

/// Constructs an XMM register.
PhysReg xmm(int index);

/// SysV AMD64 integer argument registers in call order
/// (%rdi, %rsi, %rdx, %rcx, %r8, %r9).
PhysReg argumentRegister(int argIndex);

/// Number of integer argument registers in the SysV calling convention.
inline constexpr int kNumArgumentRegisters = 6;

/// Caller-saved scratch GPRs that MicroCreator's register allocator may hand
/// out beyond the argument registers, in preference order. %rax is excluded
/// (reserved for the iteration-count return value, §4.4) and callee-saved
/// registers are excluded so generated kernels never need a stack frame.
PhysReg scratchRegister(int scratchIndex);
inline constexpr int kNumScratchRegisters = 2;  // %r10, %r11

}  // namespace microtools::isa
