#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace microtools::isa {

/// Functional/timing category of an instruction. The simulator maps each
/// kind to an execution unit; the creator uses kinds to reason about
/// loads/stores when swapping operands.
enum class InstrKind : std::uint8_t {
  Move,     ///< data movement (GPR or XMM; load/store depends on operands)
  IntAlu,   ///< add/sub/logic/shift on GPRs, 1-cycle class
  IntMul,   ///< imul, 3-cycle class
  Lea,      ///< address generation
  FpAdd,    ///< addss/addsd/addps/addpd
  FpMul,    ///< mulss/mulsd/mulps/mulpd
  FpDiv,    ///< divss/divsd (unpipelined, long latency)
  FpLogic,  ///< xorps/pxor and friends, 1-cycle vector logic
  Compare,  ///< cmp/test (sets flags)
  CondBranch,  ///< jcc family
  Jump,     ///< unconditional jmp
  Ret,
  Nop,
};

/// Execution-port class of an instruction's compute micro-op, mirroring
/// the simulator's port model: loads and stores are split into separate
/// micro-ops by operand shape (not by mnemonic), and the FP divider shares
/// the FP multiply port.
enum class ExecUnit : std::uint8_t {
  None,    ///< no compute micro-op (ret, nop)
  Alu,     ///< integer ALU / move / lea / compare / vector logic
  FpAdd,
  FpMul,
  FpDiv,   ///< issues on the FpMul port, occupies it for `latency` cycles
  Branch,
};

std::string_view execUnitName(ExecUnit unit);

/// Branch condition codes for the jcc family.
enum class Condition : std::uint8_t {
  None,  // not a conditional branch
  E, NE, L, LE, G, GE, B, BE, A, AE, S, NS,
};

/// Static description of one mnemonic in the supported x86-64 subset.
///
/// Latencies follow the Nehalem-class numbers the paper's machines used
/// (register-to-register producer latency; memory adds the cache latency
/// resolved by the simulator at run time).
struct InstrDesc {
  std::string_view mnemonic;   // canonical AT&T mnemonic without size suffix
  InstrKind kind;
  Condition condition = Condition::None;
  int memBytes = 0;            // bytes touched by a memory operand (0: by width)
  bool requiresAlignment = false;  // movaps/movapd fault on unaligned access
  bool isVector = false;       // 16-byte SSE operation
  bool isFp = false;           // writes an XMM register
  int latency = 1;             // producer latency in core cycles
  bool suffixable = false;     // accepts AT&T b/w/l/q size suffixes

  // -- def/use metadata (static verification & dependency analyses) ---------
  // AT&T operand order: the last operand is the destination. `readsDest`
  // marks read-modify-write destinations (add/sub/addss/...); pure moves and
  // lea overwrite the destination without reading it. `writesDest` is false
  // for instructions that only produce flags (cmp/test) or none at all
  // (branches, ret, nop).
  bool readsDest = false;      // destination operand is also a source
  bool writesDest = true;      // destination operand is written
  bool writesFlags = false;    // updates the status flags (SF/ZF/OF/CF)
  bool readsFlags = false;     // consumes the status flags (jcc family)

  // -- port-level cost metadata (static performance analysis) ---------------
  // Describes the compute micro-op that remains after the operand-driven
  // load/store split (memory micro-ops are derived from the operands, not
  // stored here). `unit` is the execution-port class, `uops` the number of
  // compute micro-ops (0 for dispatch-slot-only instructions like nop),
  // and `recipThroughput` the cycles each micro-op occupies its port (1.0
  // for fully pipelined units; the unpipelined divider blocks the shared
  // FP multiply port for its full latency). `unmodeled` flags entries whose
  // cost metadata is not trustworthy: the cost model declines to predict
  // and warns once instead of guessing.
  ExecUnit unit = ExecUnit::Alu;
  int uops = 1;                // compute micro-ops dispatched
  double recipThroughput = 1.0;  // port occupancy per micro-op, in cycles
  bool unmodeled = false;      // metadata incomplete: skip cost predictions
};

/// Looks up a mnemonic, accepting AT&T size suffixes for the suffixable
/// entries (e.g. "addq" resolves to "add"). Returns nullptr when unknown.
const InstrDesc* findInstruction(std::string_view mnemonic);

/// Looks up a mnemonic without suffix stripping; nullptr when unknown.
const InstrDesc* findInstructionExact(std::string_view mnemonic);

/// All descriptions in the table (for tests and documentation dumps).
const std::vector<InstrDesc>& instructionTable();

/// True for kinds that can never take a memory operand in this subset.
bool kindIsBranch(InstrKind kind);

/// The "move semantics" selection of §3.1: given a requested transfer size
/// in bytes and variant flags, returns candidate move mnemonics
/// (e.g. 4 bytes -> movss; 16 bytes aligned -> movaps/movapd,
/// 16 bytes unaligned -> movups/movupd).
std::vector<std::string> moveCandidates(int bytes, bool aligned,
                                        bool allowDouble = true);

}  // namespace microtools::isa
