// Figure 4: cycles per iteration of the 200x200 matrix multiply under
// different alignments of the three matrices. On the paper's machine the
// variation is below 3% for any alignment configuration at this size.

#include "bench_common.hpp"
#include "kernels/matmul.hpp"
#include "support/csv.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig machine = sim::nehalemX5650DualSocket();
  bench::header(
      "Figure 4 - matmul cycles/iteration vs matrix alignments (200^2)",
      machine.name,
      "at 200^2 the chosen alignment does not impact the multiply: "
      "variation below ~3% across configurations");

  launcher::AlignmentSweepSpec spec;
  spec.minOffset = 0;
  spec.maxOffset = 4096;
  spec.step = 512;  // 8 offsets per matrix
  spec.maxConfigs = 24;
  auto configs = launcher::alignmentConfigurations(3, spec);

  csv::Table table({"config", "offsetA", "offsetB", "offsetC",
                    "cycles_per_iteration"});
  double lo = 1e18, hi = 0.0;
  int index = 0;
  for (const auto& offsets : configs) {
    kernels::MatmulStudyOptions options;
    options.n = 200;
    options.bases = {0x100000000ull + offsets[0],
                     0x140000000ull + offsets[1],
                     0x180000000ull + offsets[2]};
    kernels::MatmulStudyResult r = kernels::runMatmulStudy(machine, options);
    lo = std::min(lo, r.cyclesPerKIteration);
    hi = std::max(hi, r.cyclesPerKIteration);
    table.beginRow()
        .add(index++)
        .add(static_cast<std::uint64_t>(offsets[0]))
        .add(static_cast<std::uint64_t>(offsets[1]))
        .add(static_cast<std::uint64_t>(offsets[2]))
        .add(r.cyclesPerKIteration)
        .commit();
  }
  table.write(std::cout);

  double variation = (hi - lo) / lo;
  std::printf("min=%.3f max=%.3f variation=%.2f%%\n", lo, hi,
              variation * 100.0);
  bench::expectShape(variation < 0.05,
                     "alignment variation at 200^2 stays below ~5% "
                     "(paper: <3%)");
  return bench::finish();
}
