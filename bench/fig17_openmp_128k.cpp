// Figure 17: cycles per iteration for unrolled movss load kernels, the
// sequential version vs the OpenMP parallel-for version, over a 128k-float
// array on the 4-core Sandy Bridge (§5.2.3). Min/max of ten runs shows the
// stability of the results; the OpenMP figure uses a log scale because the
// parallel-region overhead dominates the small array.

#include "bench_common.hpp"
#include "launcher/protocol.hpp"
#include "support/csv.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig machine = sim::sandyBridgeE31240();
  bench::header(
      "Figure 17 - seq vs OpenMP cycles/iteration, 128k floats",
      machine.name,
      "unrolling helps the sequential version; OpenMP carries a visible "
      "fork/join overhead on this small array, and min/max over ten runs "
      "nearly coincide (stability)");

  const std::uint64_t arrayBytes = 128 * 1024 * 4;  // 128k floats
  const int runs = 10;

  csv::Table table({"unroll", "seq_min", "seq_max", "omp_min", "omp_max"});
  double seqU1 = 0, seqU8 = 0, ompU1 = 0, ompU8 = 0;
  for (int unroll = 1; unroll <= 8; ++unroll) {
    auto program = bench::generateOne(
        bench::loadStoreKernelXml("movss", unroll, unroll));

    launcher::SimBackend backend(machine);
    auto kernel = backend.load(program.asmText, program.functionName);
    launcher::KernelRequest request;
    request.arrays.push_back(launcher::ArraySpec{arrayBytes, 4096, 0});
    request.n = static_cast<int>(arrayBytes / 4);

    // Sequential: the Figure-10 protocol with ten outer runs. The kernel
    // returns loop trips; dividing by the unroll factor normalizes to
    // cycles per element (the figure's "iteration").
    launcher::ProtocolOptions protocol;
    protocol.innerRepetitions = 1;
    protocol.outerRepetitions = runs;
    launcher::Measurement seq =
        launcher::measureKernel(backend, *kernel, request, protocol);
    double seqMin = seq.cyclesPerIteration.min / unroll;
    double seqMax = seq.cyclesPerIteration.max / unroll;

    // OpenMP: ten timed parallel regions (per-region cycles/iteration).
    double ompMin = 1e300, ompMax = 0;
    for (int run = 0; run < runs; ++run) {
      launcher::InvokeResult r =
          backend.invokeOpenMp(*kernel, request, machine.totalCores(), 1);
      double per = r.tscCycles / static_cast<double>(r.iterations) / unroll;
      ompMin = std::min(ompMin, per);
      ompMax = std::max(ompMax, per);
    }

    if (unroll == 1) {
      seqU1 = seqMin;
      ompU1 = ompMin;
    }
    if (unroll == 8) {
      seqU8 = seqMin;
      ompU8 = ompMin;
    }
    table.beginRow()
        .add(unroll)
        .add(seqMin)
        .add(seqMax)
        .add(ompMin)
        .add(ompMax)
        .commit();
  }
  table.write(std::cout);

  bench::expectShape(seqU8 < seqU1,
                     "unrolling achieves a gain for the sequential version");
  bench::expectShape(ompU1 < seqU1,
                     "OpenMP beats sequential per iteration (Table 2: 9.42s "
                     "vs 18.30s) ...");
  bench::expectShape(seqU1 / ompU1 < machine.totalCores(),
                     "... but the speedup stays below the core count "
                     "(parallel setup overhead; paper: 1.94x on 4 cores)");
  double ompGain = (ompU1 - ompU8) / ompU1;
  double seqGain = (seqU1 - seqU8) / seqU1;
  bench::expectShape(ompGain < seqGain,
                     "unroll gains are muted under OpenMP (overhead "
                     "dominates, paper Table 2)");
  return bench::finish();
}
