// Table 2: execution time of the OpenMP and the sequential versions of a
// movss unrolled kernel, unroll factors 1..8, on the 4-core Sandy Bridge.
// Paper values (seconds): sequential 18.30 -> 14.60 (improving with unroll,
// flattening past ~4), OpenMP 9.42 -> 9.31 (essentially flat: the parallel
// setup overhead and shared bandwidth swallow the unrolling gain).
//
// Substitution note: wall seconds come from simulated TSC cycles divided by
// the nominal frequency. The workload (array size x repetitions) is scaled
// down ~100x from the paper's multi-second runs to keep simulation time
// sane, so times are milliseconds; the *shape* (which column improves, and
// by what relative factor) is the reproduced object.

#include "bench_common.hpp"
#include "launcher/protocol.hpp"
#include "support/csv.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig machine = sim::sandyBridgeE31240();
  bench::header(
      "Table 2 - OpenMP vs sequential execution time per unroll factor",
      machine.name,
      "sequential time improves with unrolling (paper 18.30s -> ~14.5s, "
      "flattening by unroll 4-6); OpenMP time is flat (paper 9.42s -> 9.31s)"
      " because the parallel overhead hides the gain");

  // A RAM-resident workload (the paper's multi-second run is scaled down
  // ~1000x): twice the Sandy Bridge 8 MiB L3, so the OpenMP version is
  // memory-bandwidth bound — the mechanism behind its flat column. The
  // simulator is deterministic, so a single cold traversal per column is a
  // complete measurement.
  const std::uint64_t arrayBytes = 16ull * 1024 * 1024;

  csv::Table table({"unroll", "openmp_ms", "sequential_ms"});
  std::vector<double> seqSeries, ompSeries;
  for (int unroll = 1; unroll <= 8; ++unroll) {
    auto program = bench::generateOne(
        bench::loadStoreKernelXml("movss", unroll, unroll));
    launcher::SimBackend backend(machine);
    auto kernel = backend.load(program.asmText, program.functionName);
    launcher::KernelRequest request;
    request.arrays.push_back(launcher::ArraySpec{arrayBytes, 4096, 0});
    request.n = static_cast<int>(arrayBytes / 4);

    // Sequential: one cold traversal (total elapsed time).
    double seqCycles = backend.invoke(*kernel, request).tscCycles;
    // OpenMP: one cold parallel region over the same trip count.
    launcher::InvokeResult omp = backend.invokeOpenMp(
        *kernel, request, machine.totalCores(), 1);

    double seqMs = seqCycles / (machine.nominalGHz * 1e6);
    double ompMs = omp.tscCycles / (machine.nominalGHz * 1e6);
    seqSeries.push_back(seqMs);
    ompSeries.push_back(ompMs);
    table.beginRow().add(unroll).add(ompMs, 3).add(seqMs, 3).commit();
  }
  table.write(std::cout);

  double seqImprovement = (seqSeries.front() - seqSeries.back()) /
                          seqSeries.front();
  double ompImprovement = (ompSeries.front() - ompSeries.back()) /
                          ompSeries.front();
  std::printf("sequential improvement: %.1f%% (paper: 20.2%%), "
              "openmp improvement: %.1f%% (paper: 1.2%%)\n",
              seqImprovement * 100, ompImprovement * 100);
  bench::expectShape(seqImprovement > 0.10,
                     "unrolling achieves a significant sequential gain");
  bench::expectShape(ompImprovement < seqImprovement / 2,
                     "the OpenMP column is much flatter than the "
                     "sequential one");
  bench::expectShape(ompSeries.front() < seqSeries.front(),
                     "OpenMP is faster than sequential in absolute time "
                     "(paper: 9.42s vs 18.30s)");
  // Flattening: the last three sequential entries are within a few percent.
  double tail = std::abs(seqSeries[7] - seqSeries[5]) / seqSeries[5];
  bench::expectShape(tail < 0.05,
                     "sequential times flatten by unroll 6-8");
  return bench::finish();
}
