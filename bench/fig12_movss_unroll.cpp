// Figure 12: average cycles per load and store using the scalar movss
// instruction, sweeping unroll 1..8 and the hierarchy level (§5.1). The
// paper's companion claim: four movss match one movaps's workload, so at
// one cycle per movss load in L3 the vectorized version wins.

#include "bench_unroll_levels.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig machine = sim::nehalemX5650DualSocket();
  bench::header(
      "Figure 12 - cycles per movss load/store vs unroll and hierarchy",
      machine.name,
      "scalar moves show lower per-instruction latency than movaps but move "
      "4x less data: per byte, the vectorized version wins in L3/RAM");

  bench::UnrollLevelResult movss =
      bench::runUnrollLevelStudy("movss", machine);
  bench::printUnrollLevelCsv(movss);
  // Scalar 4-byte moves touch a new line only every 16 loads, so the L1-L3
  // lines collapse toward the load-port limit; the paper's explicit claim
  // is one cycle per movss load in L3 at unroll 8, with RAM above it.
  bench::expectShape(std::abs(movss.loads.at("L3").at(8) - 1.0) < 0.15,
                     "movss runs at ~one cycle per load in L3 at unroll 8 "
                     "(paper's stated value)");
  bench::expectShape(movss.loads.at("RAM").at(8) >
                         movss.loads.at("L3").at(8),
                     "RAM costs more per movss load than L3");
  bench::expectShape(movss.loads.at("L1").at(8) < movss.loads.at("L1").at(1),
                     "unrolling is advantageous in L1 (movss)");

  bench::UnrollLevelResult movaps =
      bench::runUnrollLevelStudy("movaps", machine, 8);

  // Per-byte comparison at unroll 8 in L3 (the paper's §5.1 example):
  // movaps moves 16B per op, movss 4B per op.
  double movssPerByte = movss.loads.at("L3").at(8) / 4.0;
  double movapsPerByte = movaps.loads.at("L3").at(8) / 16.0;
  std::printf("L3 per-byte cost: movss %.3f cyc/B, movaps %.3f cyc/B\n",
              movssPerByte, movapsPerByte);
  bench::expectShape(movapsPerByte < movssPerByte,
                     "the vectorized version is better per byte in L3");

  // movsd sits slightly above movss per access (higher data rate).
  bench::UnrollLevelResult movsd =
      bench::runUnrollLevelStudy("movsd", machine, 4);
  bench::expectShape(
      movsd.loads.at("RAM").at(4) >= movss.loads.at("RAM").at(4),
      "movsd is at or above movss per access in RAM (more data moved)");
  return bench::finish();
}
