// google-benchmark micro-costs of the MicroTools substrates themselves:
// XML parsing, the 19-pass generation pipeline, assembly parsing, cache
// lookups and simulated kernel execution. These guard the tool's own
// performance (a generator that takes minutes for 510 variants would be
// useless for the paper's workflow).

#include <benchmark/benchmark.h>

#include "asmparse/asmparse.hpp"
#include "bench_common.hpp"
#include "sim/cache.hpp"
#include "sim/core.hpp"

using namespace microtools;

namespace {

const std::string& fig6Xml() {
  static const std::string xml =
      bench::loadStoreKernelXml("movaps", 1, 8, 1, false, true);
  return xml;
}

void BM_XmlParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::parse(fig6Xml()));
  }
}
BENCHMARK(BM_XmlParse);

void BM_Generate510Variants(benchmark::State& state) {
  creator::MicroCreator mc;
  creator::Description description =
      creator::parseDescriptionText(fig6Xml());
  for (auto _ : state) {
    auto programs = mc.generate(description);
    if (programs.size() != 510) state.SkipWithError("wrong variant count");
    benchmark::DoNotOptimize(programs);
  }
  state.SetItemsProcessed(state.iterations() * 510);
}
BENCHMARK(BM_Generate510Variants);

void BM_AsmParse(benchmark::State& state) {
  auto program = bench::generateOne(
      bench::loadStoreKernelXml("movaps", 8, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(asmparse::parseAssembly(program.asmText));
  }
}
BENCHMARK(BM_AsmParse);

void BM_CacheLookup(benchmark::State& state) {
  sim::CacheLevel cache(32 * 1024, 8, 64);
  for (std::uint64_t line = 0; line < 512; ++line) cache.insert(line);
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(line));
    line = (line + 1) % 512;
  }
}
BENCHMARK(BM_CacheLookup);

void BM_SimulatedKernelIteration(benchmark::State& state) {
  auto program = bench::generateOne(
      bench::loadStoreKernelXml("movaps", 8, 8));
  asmparse::Program parsed = asmparse::parseAssembly(program.asmText);
  sim::MachineConfig machine = sim::nehalemX5650DualSocket();
  sim::MemorySystem memsys(machine);
  memsys.touch(0, 0x100000, 1 << 14);
  std::uint64_t clock = 0;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    sim::CoreSim core(machine, memsys, 0);
    sim::RunResult r = core.run(parsed, 1 << 12, {0x100000}, clock);
    clock += r.coreCycles;
    iterations += r.iterations;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iterations));
}
BENCHMARK(BM_SimulatedKernelIteration);

void BM_AlignmentConfigGeneration(benchmark::State& state) {
  launcher::AlignmentSweepSpec spec;
  spec.maxConfigs = 2500;
  spec.step = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(launcher::alignmentConfigurations(4, spec));
  }
}
BENCHMARK(BM_AlignmentConfigGeneration);

}  // namespace

BENCHMARK_MAIN();
