#pragma once

// Shared implementation of Figures 11 and 12: average cycles per load (and
// per store) for a (Load|Store)+ kernel, sweeping the unroll factor 1..8
// and the memory-hierarchy level of the array (§5.1). Figure 11 uses the
// vectorized movaps, Figure 12 the scalar movss; the paper reports movapd
// identical to movaps, and movsd slightly above movss.

#include <map>

#include "bench_common.hpp"
#include "launcher/protocol.hpp"
#include "support/csv.hpp"

namespace microtools::bench {

struct UnrollLevelResult {
  // [level name][unroll] -> cycles per memory operation.
  std::map<std::string, std::map<int, double>> loads;
  std::map<std::string, std::map<int, double>> stores;
};

inline UnrollLevelResult runUnrollLevelStudy(const std::string& mnemonic,
                                             const sim::MachineConfig& machine,
                                             int maxUnroll = 8) {
  UnrollLevelResult out;
  int bytes = mnemonic == "movss" ? 4 : mnemonic == "movsd" ? 8 : 16;
  for (bool stores : {false, true}) {
    for (int unroll = 1; unroll <= maxUnroll; ++unroll) {
      auto program = generateOne(
          loadStoreKernelXml(mnemonic, unroll, unroll, 1, stores));
      for (const HierarchyLevel& level : hierarchyLevels(machine)) {
        launcher::SimBackend backend(machine);
        auto kernel = backend.load(program.asmText, program.functionName);
        launcher::KernelRequest request;
        request.arrays.push_back(
            launcher::ArraySpec{level.bytes, 4096, 0});
        bool isRam = std::string(level.name) == "RAM";
        // RAM: a single cold traversal is the RAM-resident measurement (a
        // warm pass would promote the prefix into the caches); capping the
        // trip count keeps the sweep fast without changing the residency.
        std::uint64_t traverse =
            isRam ? std::min<std::uint64_t>(level.bytes, 4 * 1024 * 1024)
                  : level.bytes;
        request.n = static_cast<int>(traverse /
                                     static_cast<std::uint64_t>(bytes));
        launcher::ProtocolOptions protocol;
        protocol.innerRepetitions = 1;
        protocol.outerRepetitions = 1;
        protocol.warmup = !isRam;
        launcher::Measurement m =
            launcher::measureKernel(backend, *kernel, request, protocol);
        double perOp = m.cyclesPerIteration.min / unroll;
        (stores ? out.stores : out.loads)[level.name][unroll] = perOp;
      }
    }
  }
  return out;
}

inline void printUnrollLevelCsv(const UnrollLevelResult& result) {
  csv::Table table({"kind", "level", "unroll", "cycles_per_op"});
  for (const auto& [kind, data] :
       {std::pair{std::string("load"), &result.loads},
        std::pair{std::string("store"), &result.stores}}) {
    for (const auto& [level, series] : *data) {
      for (const auto& [unroll, value] : series) {
        table.beginRow().add(kind).add(level).add(unroll).add(value).commit();
      }
    }
  }
  table.write(std::cout);
}

inline void checkUnrollLevelShape(const UnrollLevelResult& r,
                                  const std::string& mnemonic) {
  const auto& l = r.loads;
  expectShape(l.at("L1").at(8) < l.at("L2").at(8) &&
                  l.at("L2").at(8) < l.at("RAM").at(8),
              "per-load cost ordered L1 < L2 < RAM at unroll 8");
  expectShape(l.at("L3").at(8) < l.at("RAM").at(8),
              "RAM costs more per load than L3");
  expectShape(l.at("L1").at(8) < l.at("L1").at(1),
              "unrolling is advantageous in L1 (" + mnemonic + ")");
  expectShape(l.at("RAM").at(8) <= l.at("RAM").at(1) * 1.1,
              "unrolling never hurts in RAM");
}

}  // namespace microtools::bench
