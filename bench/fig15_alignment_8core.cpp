// Figure 15: cycles per iteration of a four-array strided movss traversal
// on the 32-core quad-socket Nehalem, using eight of the cores, across a
// large set of array-alignment configurations (§5.2.2). The paper sweeps
// upwards of 2500 configurations and sees 20-33 cycles/iteration — the
// claim is the wide alignment-dependent spread, "significantly dependent"
// on the arrays' placement.
//
// Substitution note: the full 2500-configuration sweep with 8 forked cores
// per point is hours of simulation; the sweep is subsampled uniformly
// (stride-decoded, every array offset still varies) and the array size is
// scaled down. EXPERIMENTS.md records the scaling.

#include "bench_common.hpp"
#include "support/csv.hpp"
#include "support/stats.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig machine = sim::nehalemX7550QuadSocket();
  bench::header(
      "Figure 15 - alignment sweep, 4-array movss traversal on 8 of 32 cores",
      machine.name,
      "cycles/iteration vary widely (paper: 20 to 33) across alignment "
      "configurations: performance is significantly dependent on the "
      "arrays' alignment");

  // §5.2.2's text: "there are four arrays accessed with a stride one and
  // movss instructions" (the figure caption's "8-array" conflicts with the
  // body; four is also the SysV pointer-argument limit). Alternating
  // loads and stores forms a copy-style traversal.
  auto program = bench::generateOne(bench::loadStoreKernelXml(
      "movss", 2, 2, /*arrays=*/4, /*stores=*/false, /*swapAfter=*/false,
      /*alternate=*/true));

  launcher::AlignmentSweepSpec spec;
  spec.minOffset = 0;
  spec.maxOffset = 4096;
  spec.step = 256;
  spec.maxConfigs = 24;  // subsampled from the paper's 2500
  auto configs = launcher::alignmentConfigurations(4, spec);

  const std::uint64_t arrayBytes = 192 * 1024;  // scaled-down working set
  launcher::SimBackend backend(machine);
  auto kernel = backend.load(program.asmText, program.functionName);

  csv::Table table({"config", "off0", "off1", "off2", "off3",
                    "worst_cycles_per_iteration"});  // first four offsets shown
  std::vector<double> series;
  int index = 0;
  for (const auto& offsets : configs) {
    launcher::KernelRequest request;
    for (std::uint64_t off : offsets) {
      request.arrays.push_back(launcher::ArraySpec{arrayBytes, 4096, off});
    }
    request.n = static_cast<int>(arrayBytes / 4);
    auto results = backend.invokeFork(*kernel, request, 8, 1,
                                      launcher::PinPolicy::Scatter);
    double worst = 0;
    for (const auto& r : results) {
      worst = std::max(worst, r.tscCycles / static_cast<double>(r.iterations));
    }
    series.push_back(worst);
    table.beginRow()
        .add(index++)
        .add(static_cast<std::uint64_t>(offsets[0]))
        .add(static_cast<std::uint64_t>(offsets[1]))
        .add(static_cast<std::uint64_t>(offsets[2]))
        .add(static_cast<std::uint64_t>(offsets[3]))
        .add(worst)
        .commit();
  }
  table.write(std::cout);

  stats::Summary s = stats::summarize(series);
  std::printf("min=%.2f max=%.2f spread=%.1f%%\n", s.min, s.max,
              (s.max - s.min) / s.min * 100.0);
  bench::expectShape((s.max - s.min) / s.min > 0.10,
                     "alignment produces a clear cycles/iteration spread "
                     "(paper: 20 -> 33, i.e. ~65%)");
  bench::expectShape(s.min > 1.0, "the 8-core traversal is memory-bound");
  return bench::finish();
}
