// Throughput bench of the simulated backend's fast path: runs the same
// cold-cache exploration twice — once with steady-state extrapolation and
// warm-invoke memoization (the default), once with `--sim-exact` full
// cycle simulation — and reports wall-clock seconds, variants/second, the
// speedup, and whether the two runs were bit-identical (they must be; the
// fast path is an exactness-preserving optimization, see DESIGN.md
// "Steady-state model").
//
// Emits BENCH_sim_backend.json next to the working directory for CI's
// regression gate, and exits non-zero if bit-identity is violated.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "launcher/explore.hpp"

using namespace microtools;

namespace {

double secondsOf(launcher::ExploreResult& out,
                 const launcher::ExploreOptions& options) {
  auto t0 = std::chrono::steady_clock::now();
  out = launcher::runExplore(options);
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool bitIdentical(const launcher::ExploreResult& a,
                  const launcher::ExploreResult& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const launcher::VariantResult& x = a.results[i];
    const launcher::VariantResult& y = b.results[i];
    if (x.name != y.name || x.status != y.status) return false;
    if (x.repetitions != y.repetitions || x.converged != y.converged) {
      return false;
    }
    // Exact floating-point comparison on purpose: the fast path promises
    // the same bits, not "close enough".
    if (x.measurement.cyclesPerIteration.min !=
            y.measurement.cyclesPerIteration.min ||
        x.measurement.cyclesPerIteration.mean !=
            y.measurement.cyclesPerIteration.mean ||
        x.measurement.cyclesPerIteration.cv !=
            y.measurement.cyclesPerIteration.cv ||
        x.measurement.totalCycles != y.measurement.totalCycles ||
        x.measurement.iterationsPerCall != y.measurement.iterationsPerCall) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string description = argc > 1
                                ? argv[1]
                                : "examples/descriptions/loadstore_small.xml";
  std::string jsonPath = argc > 2 ? argv[2] : "BENCH_sim_backend.json";

  launcher::ExploreOptions options;
  options.descriptionFile = description;
  options.useCache = false;  // cold end-to-end cost is what we measure

  bench::header("sim backend throughput (fast vs --sim-exact)", options.arch,
                "steady-state extrapolation + warm-invoke memoization give a "
                ">= 10x cold-cache speedup with bit-identical results");

  launcher::ExploreResult fast, exact;
  options.simExact = false;
  double fastSeconds = secondsOf(fast, options);
  options.simExact = true;
  double exactSeconds = secondsOf(exact, options);

  std::size_t variants = fast.results.size();
  double speedup = fastSeconds > 0 ? exactSeconds / fastSeconds : 0.0;
  bool identical = bitIdentical(fast, exact);

  std::printf("variants: %zu\n", variants);
  std::printf("fast:  %.3f s  (%.2f variants/s)\n", fastSeconds,
              fastSeconds > 0 ? variants / fastSeconds : 0.0);
  std::printf("exact: %.3f s  (%.2f variants/s)\n", exactSeconds,
              exactSeconds > 0 ? variants / exactSeconds : 0.0);
  std::printf("speedup: %.2fx\n", speedup);
  bench::expectShape(identical, "fast-path results bit-identical to exact");
  bench::expectShape(speedup >= 10.0, "fast path >= 10x faster than exact");

  // Successive-halving search on the same description: same winner as the
  // exhaustive sweep for a fraction of the variant-measurement work.
  launcher::ExploreResult halved;
  options.simExact = false;
  options.search = launcher::SearchMode::Halving;
  double halvingSeconds = secondsOf(halved, options);
  double workRatio =
      fast.workRepetitions > 0
          ? static_cast<double>(halved.workRepetitions) /
                static_cast<double>(fast.workRepetitions)
          : 0.0;
  csv::Table fullTop = launcher::topKReport(fast.results, 1);
  csv::Table halvedTop = launcher::topKReport(halved.results, 1);
  bool sameWinner = fullTop.rowCount() == 1 && halvedTop.rowCount() == 1 &&
                    fullTop.row(0)[1] == halvedTop.row(0)[1];

  std::printf("halving: %.3f s, %lld of %lld work repetitions (%.0f%%), "
              "stop: %s\n",
              halvingSeconds, halved.workRepetitions, fast.workRepetitions,
              workRatio * 100.0, halved.stopReason.c_str());
  bench::expectShape(sameWinner, "halving selects the exhaustive top-1");
  bench::expectShape(workRatio <= 0.5,
                     "halving does <= 50% of the exhaustive work");

  std::ofstream json(jsonPath, std::ios::binary);
  json.setf(std::ios::fixed);
  json.precision(6);
  json << "{\n"
       << "  \"description\": \"" << description << "\",\n"
       << "  \"variants\": " << variants << ",\n"
       << "  \"fast_seconds\": " << fastSeconds << ",\n"
       << "  \"exact_seconds\": " << exactSeconds << ",\n"
       << "  \"fast_variants_per_sec\": "
       << (fastSeconds > 0 ? variants / fastSeconds : 0.0) << ",\n"
       << "  \"exact_variants_per_sec\": "
       << (exactSeconds > 0 ? variants / exactSeconds : 0.0) << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"halving_seconds\": " << halvingSeconds << ",\n"
       << "  \"halving_work_repetitions\": " << halved.workRepetitions
       << ",\n"
       << "  \"exhaustive_work_repetitions\": " << fast.workRepetitions
       << ",\n"
       << "  \"halving_work_ratio\": " << workRatio << ",\n"
       << "  \"halving_same_winner\": " << (sameWinner ? "true" : "false")
       << ",\n"
       << "  \"env\": " << bench::envJsonObject() << "\n"
       << "}\n";
  std::printf("wrote %s\n", jsonPath.c_str());

  bench::finish();
  // Bit-identity is a hard contract, not a shape expectation: fail the run.
  return identical ? 0 : 1;
}
