// Figure 5: cycles per iteration of the 200x200 matrix multiply for unroll
// factors 1..8, comparing the actual (compiler-style, Figure-2) kernel with
// the MicroCreator-generated equivalent. The paper measured a 9% gain at
// unroll 8 on the real code and predicted 8.2% with the microbenchmark —
// the two series agreeing closely is the claim being reproduced.

#include "asmparse/asmparse.hpp"
#include "bench_common.hpp"
#include "kernels/matmul.hpp"
#include "support/csv.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig machine = sim::nehalemX5650DualSocket();
  bench::header(
      "Figure 5 - matmul cycles/iteration vs unroll factor (200^2)",
      machine.name,
      "unrolling improves the kernel and saturates by ~unroll 8; the "
      "MicroCreator-generated equivalent tracks the actual code closely "
      "(paper: 8.2% predicted vs 9% measured gain)");

  // MicroCreator-generated equivalents for every unroll factor.
  creator::MicroCreator mc;
  auto generated = mc.generateFromText(
      kernels::matmulInnerKernelXml(1, 7, 200 * 8));
  std::map<int, asmparse::Program> generatedPrograms;
  for (const auto& p : generated) {
    generatedPrograms.emplace(p.kernel.unrollFactor,
                              asmparse::parseAssembly(p.asmText));
  }

  csv::Table table({"unroll", "actual_cycles_per_iter",
                    "microtools_cycles_per_iter", "relative_difference"});
  double actualU1 = 0, actualBest = 1e18, mtU1 = 0, mtBest = 1e18;
  double worstDisagreement = 0;
  for (int unroll = 1; unroll <= 7; ++unroll) {
    kernels::MatmulStudyOptions actual;
    actual.n = 200;
    actual.unroll = unroll;
    double actualCycles =
        kernels::runMatmulStudy(machine, actual).cyclesPerKIteration;

    kernels::MatmulStudyOptions viaCreator;
    viaCreator.n = 200;
    viaCreator.unroll = unroll;
    viaCreator.programOverride = &generatedPrograms.at(unroll);
    double mtCycles =
        kernels::runMatmulStudy(machine, viaCreator).cyclesPerKIteration;

    if (unroll == 1) {
      actualU1 = actualCycles;
      mtU1 = mtCycles;
    }
    actualBest = std::min(actualBest, actualCycles);
    mtBest = std::min(mtBest, mtCycles);
    double diff = std::abs(actualCycles - mtCycles) / actualCycles;
    worstDisagreement = std::max(worstDisagreement, diff);
    table.beginRow()
        .add(unroll)
        .add(actualCycles)
        .add(mtCycles)
        .add(diff, 4)
        .commit();
  }
  table.write(std::cout);

  double actualGain = (actualU1 - actualBest) / actualU1 * 100.0;
  double mtGain = (mtU1 - mtBest) / mtU1 * 100.0;
  std::printf("actual unroll gain: %.1f%%  microtools prediction: %.1f%%\n",
              actualGain, mtGain);
  bench::expectShape(actualBest < actualU1,
                     "unrolling improves the actual kernel");
  bench::expectShape(mtBest < mtU1,
                     "unrolling improves the MicroCreator equivalent");
  bench::expectShape(std::abs(actualGain - mtGain) < 10.0,
                     "predicted and measured unroll gains agree within a "
                     "few percent (paper: 8.2% vs 9%)");
  bench::expectShape(worstDisagreement < 0.15,
                     "the two series track each other at every unroll");
  return bench::finish();
}
