// Figure 14: fork mode (§4.6/§5.2.1) — the same 8-load RAM kernel forked
// onto 1..12 cores of the dual-socket Nehalem, one process per core with
// scatter pinning and first-touch local memory. The paper shows latencies
// roughly flat up to six cores (the machine's memory channels keep up) and
// degrading beyond that breaking point.

#include "bench_common.hpp"
#include "support/csv.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig machine = sim::nehalemX5650DualSocket();
  bench::header(
      "Figure 14 - cycles/iteration vs forked core count (RAM kernel)",
      machine.name,
      "latency is not greatly affected under six cores; over six cores the "
      "memory system saturates and per-core latency climbs");

  auto program = bench::generateOne(
      bench::loadStoreKernelXml("movaps", 8, 8));

  // RAM-resident private array per process (past the shared L3 once all
  // processes on a socket are counted).
  const std::uint64_t arrayBytes = 2ull * 1024 * 1024;
  launcher::SimBackend backend(machine);
  auto kernel = backend.load(program.asmText, program.functionName);

  csv::Table table({"cores", "worst_cycles_per_iteration",
                    "mean_cycles_per_iteration"});
  std::vector<double> worstSeries;
  for (int cores = 1; cores <= machine.totalCores(); ++cores) {
    launcher::KernelRequest request;
    request.arrays.push_back(launcher::ArraySpec{arrayBytes, 4096, 0});
    request.n = static_cast<int>(arrayBytes / 16);
    auto results = backend.invokeFork(*kernel, request, cores, 1,
                                      launcher::PinPolicy::Scatter);
    double worst = 0, sum = 0;
    for (const auto& r : results) {
      double per = r.tscCycles / static_cast<double>(r.iterations);
      worst = std::max(worst, per);
      sum += per;
    }
    worstSeries.push_back(worst);
    table.beginRow()
        .add(cores)
        .add(worst)
        .add(sum / cores)
        .commit();
  }
  table.write(std::cout);

  double at1 = worstSeries[0];
  double at6 = worstSeries[5];
  double at12 = worstSeries[11];
  std::printf("per-iter: 1 core %.1f, 6 cores %.1f, 12 cores %.1f\n", at1,
              at6, at12);
  bench::expectShape(at6 < at1 * 1.6,
                     "under six cores the latency is not greatly affected");
  bench::expectShape(at12 > at6 * 1.3,
                     "beyond the six-core breaking point latency climbs");
  bench::expectShape(at12 > at1 * 1.7,
                     "the full machine clearly saturates the memory system");
  return bench::finish();
}
