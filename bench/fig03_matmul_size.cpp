// Figure 3: cycles per iteration of the naive matrix multiply as the matrix
// size varies — performance steps upward as the working set climbs the
// memory hierarchy, with a knee in the mid-hundreds on the dual-socket
// Nehalem (the paper calls 500 "one of the cutting points").

#include "bench_common.hpp"
#include "kernels/matmul.hpp"
#include "support/csv.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig machine = sim::nehalemX5650DualSocket();
  bench::header(
      "Figure 3 - matmul cycles/iteration vs matrix size",
      machine.name,
      "cycles/iteration increase with matrix size as data falls out of the "
      "caches; 200^2 runs near the cache floor and ~500 sits on a knee");

  csv::Table table({"size", "cycles_per_iteration", "l1_accesses",
                    "l2_accesses", "l3_accesses", "ram_accesses"});
  std::vector<std::pair<int, double>> series;
  for (int size : {100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600,
                   650, 700}) {
    kernels::MatmulStudyOptions options;
    options.n = size;
    kernels::MatmulStudyResult r = kernels::runMatmulStudy(machine, options);
    series.emplace_back(size, r.cyclesPerKIteration);
    table.beginRow()
        .add(size)
        .add(r.cyclesPerKIteration)
        .add(r.l1)
        .add(r.l2)
        .add(r.l3)
        .add(r.ram)
        .commit();
  }
  table.write(std::cout);

  double at100 = series.front().second;
  double at200 = series[2].second;
  double at500 = series[8].second;
  double at700 = series.back().second;
  bench::expectShape(at700 > at100 * 2,
                     "large matrices cost well over 2x the in-cache value");
  bench::expectShape(at200 < at500,
                     "200^2 (the tuning size) runs faster than 500^2");
  bench::expectShape(at500 <= at700, "cycles keep rising past the 500 knee");
  // Individual sizes may spike above the trend (powers-of-two-ish row
  // strides cause genuine cache-set conflicts, e.g. 400*8 = 3200 bytes);
  // the claim is about the trend, so compare level plateaus.
  double smallAvg = (series[0].second + series[1].second +
                     series[2].second) / 3.0;
  double largeAvg = (series[series.size() - 3].second +
                     series[series.size() - 2].second +
                     series.back().second) / 3.0;
  bench::expectShape(largeAvg > smallAvg * 2,
                     "the large-size plateau sits well above the in-cache "
                     "plateau (staircase trend)");
  return bench::finish();
}
