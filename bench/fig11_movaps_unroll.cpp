// Figure 11: average cycles per load and store using the vectorized movaps
// instruction, sweeping the unroll factor 1..8 against the L1/L2/L3/RAM
// residency of the array (§5.1; one plot line per hierarchy level).

#include "bench_unroll_levels.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig machine = sim::nehalemX5650DualSocket();
  bench::header(
      "Figure 11 - cycles per movaps load/store vs unroll and hierarchy",
      machine.name,
      "unrolling amortizes loop overhead at every level; deeper levels "
      "cost more per access; vectorized RAM accesses show the largest "
      "latency impact (16 bytes moved per instruction)");

  bench::UnrollLevelResult result =
      bench::runUnrollLevelStudy("movaps", machine);
  bench::printUnrollLevelCsv(result);
  bench::checkUnrollLevelShape(result, "movaps");

  // Paper §5.1: movapd behaves identically to movaps on this architecture.
  bench::UnrollLevelResult movapd =
      bench::runUnrollLevelStudy("movapd", machine, 4);
  bool same = true;
  for (const auto& [level, series] : movapd.loads) {
    for (const auto& [unroll, value] : series) {
      double ref = result.loads.at(level).at(unroll);
      if (std::abs(value - ref) / ref > 0.02) same = false;
    }
  }
  bench::expectShape(same, "movapd matches movaps (paper: \"the same\")");
  return bench::finish();
}
