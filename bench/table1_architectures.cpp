// Table 1: the association between the paper's figures and the target
// architectures, reproduced from the launcher's architecture registry
// together with the simulated machine parameters each entry carries.

#include "bench_common.hpp"
#include "launcher/arch_registry.hpp"
#include "support/csv.hpp"

using namespace microtools;

int main() {
  bench::header("Table 1 - architectures and associated figures", "registry",
                "three machines: Sandy Bridge E31240 (figs 17, 18), "
                "dual-socket Nehalem X5650 (figs 2-5, 11-14), quad-socket "
                "Nehalem X7550 (figs 15, 16)");

  csv::Table table({"architecture", "description", "sockets", "cores",
                    "ghz", "l3_mb", "figures"});
  for (const launcher::ArchEntry& entry : launcher::table1()) {
    std::string figures;
    for (int f : entry.figures) {
      figures += (figures.empty() ? "" : " ") + std::to_string(f);
    }
    table.beginRow()
        .add(entry.config.name)
        .add(entry.description)
        .add(entry.config.sockets)
        .add(entry.config.totalCores())
        .add(entry.config.nominalGHz, 2)
        .add(static_cast<std::uint64_t>(entry.config.l3.sizeBytes >> 20))
        .add(figures)
        .commit();
  }
  table.write(std::cout);

  const auto& entries = launcher::table1();
  bench::expectShape(entries.size() == 3, "three architectures registered");
  bench::expectShape(entries[1].config.totalCores() == 12 &&
                         entries[2].config.totalCores() == 32,
                     "core counts match the paper (12 and 32)");
  bench::expectShape(entries[0].figures == std::vector<int>({17, 18}),
                     "Sandy Bridge carries the OpenMP figures");
  return bench::finish();
}
