#pragma once

// Shared helpers for the figure/table regeneration benches. Every bench
// prints (a) the experiment's CSV series, (b) the paper's qualitative
// expectation, and (c) a PASS/CHECK verdict on that expectation — absolute
// numbers come from the simulator substitute, so only the *shape* is
// asserted (see DESIGN.md and EXPERIMENTS.md).

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "creator/creator.hpp"
#include "launcher/launcher.hpp"
#include "launcher/sim_backend.hpp"
#include "sim/arch.hpp"
#include "support/envinfo.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace microtools::bench {

/// Memory-hierarchy working-set sizes per the paper's §5.1 convention:
/// "L1" = half the first-level cache; each deeper level = twice the size of
/// the cache above it.
struct HierarchyLevel {
  const char* name;
  std::uint64_t bytes;
};

inline std::vector<HierarchyLevel> hierarchyLevels(
    const sim::MachineConfig& m) {
  return {
      {"L1", m.l1.sizeBytes / 2},   // half the first cache level
      {"L2", m.l1.sizeBytes * 2},   // twice the level above -> spills to L2
      {"L3", m.l2.sizeBytes * 2},   // twice L2 -> spills to L3
      {"RAM", m.l3.sizeBytes * 2},  // twice L3 -> spills to memory
  };
}

/// XML for a (load)+ or (store)+ kernel of `mnemonic` (movaps/movss/...),
/// fixed unroll range, over `arrays` arrays.
inline std::string loadStoreKernelXml(const std::string& mnemonic,
                                      int unrollMin, int unrollMax,
                                      int arrays = 1, bool stores = false,
                                      bool swapAfter = false,
                                      bool alternate = false) {
  int bytes = mnemonic == "movss" ? 4 : mnemonic == "movsd" ? 8 : 16;
  std::string instrs;
  for (int a = 0; a < arrays; ++a) {
    std::string mem = "<memory><register><name>p" + std::to_string(a) +
                      "</name></register><offset>0</offset></memory>";
    std::string reg =
        "<register><phyName>%xmm</phyName><min>0</min><max>8</max>"
        "</register>";
    bool isStore = alternate ? (a % 2 == 1) : stores;
    instrs += "<instruction><operation>" + mnemonic + "</operation>";
    instrs += isStore ? reg + mem : mem + reg;
    if (swapAfter) instrs += "<swap_after_unroll/>";
    instrs += "</instruction>";
  }
  std::string inductions;
  for (int a = 0; a < arrays; ++a) {
    inductions += "<induction><register><name>p" + std::to_string(a) +
                  "</name></register><increment>" + std::to_string(bytes) +
                  "</increment><offset>" + std::to_string(bytes) +
                  "</offset></induction>";
  }
  return "<description><benchmark_name>" + mnemonic +
         "</benchmark_name><kernel>" + instrs +
         "<unrolling><min>" + std::to_string(unrollMin) + "</min><max>" +
         std::to_string(unrollMax) + "</max></unrolling>" + inductions +
         "<induction><register><name>r0</name></register>"
         "<increment>-1</increment>"
         "<linked><register><name>p0</name></register></linked>"
         "<element_size>" + std::to_string(bytes) + "</element_size>"
         "<last_induction/></induction>"
         "<branch_information><label>L6</label><test>jge</test>"
         "</branch_information></kernel></description>";
}

/// Generates the single program of an exact-unroll description.
inline creator::GeneratedProgram generateOne(const std::string& xml) {
  creator::MicroCreator mc;
  auto programs = mc.generateFromText(xml);
  if (programs.size() != 1) {
    throw McError("expected exactly one generated program, got " +
                  std::to_string(programs.size()));
  }
  return programs.front();
}

/// Verdict reporting: every bench states the paper's claim and whether the
/// regenerated series honors it.
inline int g_failures = 0;

inline void expectShape(bool condition, const std::string& claim) {
  std::printf("%s %s\n", condition ? "[PASS]" : "[CHECK]", claim.c_str());
  if (!condition) ++g_failures;
}

inline void header(const std::string& title, const std::string& machine,
                   const std::string& paperExpectation) {
  std::printf("==== %s ====\n", title.c_str());
  std::printf("machine: %s\n", machine.c_str());
  std::printf("paper expectation: %s\n", paperExpectation.c_str());
}

/// JSON object fragment recording the machine the bench ran on, so a
/// BENCH_*.json baseline carries its own measurement conditions (same
/// fields as the campaign CSVs' "# env.*" preamble).
inline std::string envJsonObject(const std::string& indent = "  ") {
  env::EnvSnapshot snapshot = env::captureEnv();
  std::string out = "{";
  for (std::size_t i = 0; i < snapshot.fields.size(); ++i) {
    std::string value = snapshot.fields[i].value;
    // The env values are single-line by construction; escape the two
    // characters that could still break a JSON string.
    std::string escaped;
    for (char c : value) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    out += (i ? ",\n" : "\n") + indent + "  \"" + snapshot.fields[i].key +
           "\": \"" + escaped + "\"";
  }
  out += "\n" + indent + "}";
  return out;
}

inline int finish() {
  if (g_failures) {
    std::printf("RESULT: %d shape check(s) flagged for review\n", g_failures);
  } else {
    std::printf("RESULT: all shape checks PASS\n");
  }
  // Benches report CHECK verdicts in their output but exit 0: they are
  // reports, not tests (absolute thresholds live in ctest).
  return 0;
}

}  // namespace microtools::bench
