// Figure 18: the Figure-17 experiment with a six-million-element array
// (§5.2.3). With the large array the parallel region's overhead amortizes
// away, but the paper notes the 128k version enjoys a *better* relative
// OpenMP gain — the six-million array is memory-bandwidth-bound, so four
// cores cannot deliver 4x.
//
// Substitution note: the array is scaled to 1.5M floats (6 MB, still past
// the Sandy Bridge L3 when split four ways stays bandwidth-relevant) to
// keep the simulated sweep tractable; see EXPERIMENTS.md.

#include "bench_common.hpp"
#include "launcher/protocol.hpp"
#include "support/csv.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig machine = sim::sandyBridgeE31240();
  bench::header(
      "Figure 18 - seq vs OpenMP cycles/iteration, large (RAM) array",
      machine.name,
      "with a RAM-sized array OpenMP beats sequential per iteration, but "
      "the speedup is bandwidth-limited (less than the core count) and "
      "unrolling no longer helps the OpenMP version");

  const std::uint64_t arrayBytes = 6ull * 1024 * 1024;  // scaled from 24 MB
  const int runs = 3;

  csv::Table table({"unroll", "seq_min", "omp_min", "omp_speedup"});
  double seqU1 = 0, seqU8 = 0, ompU1 = 0, ompU8 = 0;
  for (int unroll : {1, 2, 4, 8}) {
    auto program = bench::generateOne(
        bench::loadStoreKernelXml("movss", unroll, unroll));

    launcher::SimBackend backend(machine);
    auto kernel = backend.load(program.asmText, program.functionName);
    launcher::KernelRequest request;
    request.arrays.push_back(launcher::ArraySpec{arrayBytes, 4096, 0});
    request.n = static_cast<int>(arrayBytes / 4);

    launcher::ProtocolOptions protocol;
    protocol.innerRepetitions = 1;
    protocol.outerRepetitions = runs;
    protocol.warmup = false;  // RAM-resident: keep the traversals cold-ish
    launcher::Measurement seq =
        launcher::measureKernel(backend, *kernel, request, protocol);
    // Normalize loop trips to per-element cycles (divide by unroll).
    double seqMin = seq.cyclesPerIteration.min / unroll;

    double ompMin = 1e300;
    for (int run = 0; run < runs; ++run) {
      launcher::InvokeResult r =
          backend.invokeOpenMp(*kernel, request, machine.totalCores(), 1);
      ompMin = std::min(
          ompMin, r.tscCycles / static_cast<double>(r.iterations) / unroll);
    }

    if (unroll == 1) {
      seqU1 = seqMin;
      ompU1 = ompMin;
    }
    if (unroll == 8) {
      seqU8 = seqMin;
      ompU8 = ompMin;
    }
    table.beginRow()
        .add(unroll)
        .add(seqMin)
        .add(ompMin)
        .add(seqMin / ompMin)
        .commit();
  }
  table.write(std::cout);

  double speedup = seqU1 / ompU1;
  std::printf("OpenMP speedup at unroll 1: %.2fx (cores: %d)\n", speedup,
              machine.totalCores());
  bench::expectShape(ompU1 < seqU1,
                     "OpenMP wins on the large array (overhead amortized)");
  bench::expectShape(speedup < machine.totalCores(),
                     "the speedup is bandwidth-limited below the core count");
  double ompGain = (ompU1 - ompU8) / ompU1;
  bench::expectShape(ompGain < 0.15,
                     "unrolling gains little under OpenMP on the large "
                     "array (bandwidth-bound)");
  return bench::finish();
}
