// Figure 16: the same four-array movss traversal executed on all 32 cores
// of the quad-socket Nehalem (§5.2.2). Memory saturation raises the whole
// curve (paper: 60-90 cycles/iteration vs 20-33 with eight cores) while
// the alignment spread persists.
//
// Substitution note: subsampled alignment configurations and scaled-down
// arrays, as in the Figure-15 bench; see EXPERIMENTS.md.

#include "bench_common.hpp"
#include "support/csv.hpp"
#include "support/stats.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig machine = sim::nehalemX7550QuadSocket();
  bench::header(
      "Figure 16 - alignment sweep, 4-array movss traversal on 32 cores",
      machine.name,
      "with the full machine the memory system saturates: the whole curve "
      "sits far above the 8-core one (paper: 60-90 vs 20-33 cycles/iter) "
      "and alignment still matters");

  auto program = bench::generateOne(bench::loadStoreKernelXml(
      "movss", 2, 2, /*arrays=*/4, /*stores=*/false, /*swapAfter=*/false,
      /*alternate=*/true));

  launcher::AlignmentSweepSpec spec;
  spec.minOffset = 0;
  spec.maxOffset = 4096;
  spec.step = 256;
  spec.maxConfigs = 10;  // 32-core lockstep points are expensive
  auto configs = launcher::alignmentConfigurations(4, spec);

  const std::uint64_t arrayBytes = 128 * 1024;
  launcher::SimBackend backend(machine);
  auto kernel = backend.load(program.asmText, program.functionName);

  csv::Table table({"config", "worst_cycles_per_iteration"});
  std::vector<double> series32;
  int index = 0;
  for (const auto& offsets : configs) {
    launcher::KernelRequest request;
    for (std::uint64_t off : offsets) {
      request.arrays.push_back(launcher::ArraySpec{arrayBytes, 4096, off});
    }
    request.n = static_cast<int>(arrayBytes / 4);
    auto results = backend.invokeFork(*kernel, request, 32, 1,
                                      launcher::PinPolicy::Scatter);
    double worst = 0;
    for (const auto& r : results) {
      worst = std::max(worst, r.tscCycles / static_cast<double>(r.iterations));
    }
    series32.push_back(worst);
    table.beginRow().add(index++).add(worst).commit();
  }
  table.write(std::cout);

  // Reference: the same workload on 8 cores (the Figure-15 setting).
  launcher::KernelRequest reference;
  for (int a = 0; a < 4; ++a) {
    reference.arrays.push_back(launcher::ArraySpec{arrayBytes, 4096, 0});
  }
  reference.n = static_cast<int>(arrayBytes / 4);
  auto eight = backend.invokeFork(*kernel, reference, 8, 1,
                                  launcher::PinPolicy::Scatter);
  double eightWorst = 0;
  for (const auto& r : eight) {
    eightWorst = std::max(eightWorst,
                          r.tscCycles / static_cast<double>(r.iterations));
  }

  stats::Summary s = stats::summarize(series32);
  std::printf("32-core: min=%.2f max=%.2f; 8-core reference=%.2f\n", s.min,
              s.max, eightWorst);
  bench::expectShape(s.min > eightWorst * 1.5,
                     "32-core execution sits far above the 8-core curve "
                     "(memory saturation; paper: ~60-90 vs 20-33)");
  // Known model limitation (recorded in EXPERIMENTS.md): under full
  // bandwidth saturation the deterministic channel model flattens the
  // residual alignment spread that the paper's hardware retains (60-90);
  // the spread is asserted in the unsaturated Figure-15 bench instead.
  std::printf("note: alignment spread under saturation: %.1f%% "
              "(paper retains ~50%%; see EXPERIMENTS.md)\n",
              (s.max - s.min) / s.min * 100.0);
  return bench::finish();
}
