// Throughput bench of the campaign service: the same exhaustive sweep is
// run against an in-process `microtools serve` daemon by 1, 2 and 4
// --connect workers, each with a fresh cache, and the bench reports
// variants/second per fleet size plus the 4-vs-1 speedup.
//
// The backend under test is the sim backend behind a fixed per-invoke wall
// delay. Real measurement time is dominated by waiting (protocol
// repetitions, pinned-core wall-clock), not by the coordinator's CPU, so a
// wall-delay backend isolates exactly what the daemon adds or saves: lease
// scheduling, cache probes, and row merging. Because the delay is waiting
// rather than computation, the speedup is meaningful on any core count —
// a single-core CI runner still overlaps the waits.
//
// Emits BENCH_serve.json for CI's regression gate and asserts the ranked
// reports are byte-identical across fleet sizes (the tentpole contract).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "launcher/explore.hpp"
#include "launcher/serve.hpp"

using namespace microtools;

namespace {

namespace fs = std::filesystem;

constexpr int kInvokeDelayMs = 40;

/// Sim backend behind a fixed wall delay per invoke — the stand-in for a
/// native measurement whose duration is wall-clock, not CPU.
class DelayBackend final : public launcher::Backend {
 public:
  DelayBackend() : inner_(sim::nehalemX5650DualSocket()) {}

  std::string name() const override { return "delay-sim"; }
  std::unique_ptr<launcher::KernelHandle> load(
      const std::string& asmText, const std::string& fn) override {
    return inner_.load(asmText, fn);
  }
  launcher::InvokeResult invoke(launcher::KernelHandle& kernel,
                                const launcher::KernelRequest& req) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(kInvokeDelayMs));
    return inner_.invoke(kernel, req);
  }
  double timerOverheadCycles() const override {
    return inner_.timerOverheadCycles();
  }
  std::vector<launcher::InvokeResult> invokeFork(
      launcher::KernelHandle& kernel, const launcher::KernelRequest& req,
      int processes, int calls, launcher::PinPolicy policy) override {
    return inner_.invokeFork(kernel, req, processes, calls, policy);
  }
  launcher::InvokeResult invokeOpenMp(launcher::KernelHandle& kernel,
                                      const launcher::KernelRequest& req,
                                      int threads, int repetitions) override {
    return inner_.invokeOpenMp(kernel, req, threads, repetitions);
  }
  void reset() override { inner_.reset(); }

 private:
  launcher::SimBackend inner_;
};

struct FleetRun {
  double seconds = 0.0;
  std::size_t variants = 0;
  std::string report;
};

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

FleetRun runFleet(int workers, const std::string& xml,
                  const std::string& scratch) {
  std::string dir = scratch + "/w" + std::to_string(workers);
  fs::remove_all(dir);
  fs::create_directories(dir);

  launcher::ServeOptions serveOptions;
  serveOptions.cacheDir = dir + "/cache";
  serveOptions.csvPath = dir + "/campaign.csv";
  serveOptions.reportPath = dir + "/report.csv";
  launcher::ServeServer server(serveOptions);
  server.start();

  FleetRun run;
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::vector<std::size_t> measured(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      launcher::ExploreOptions options;
      options.descriptionText = xml;
      options.arrayBytes = 16 * 1024;
      options.campaign.protocol.innerRepetitions = 1;
      options.campaign.protocol.outerRepetitions = 3;
      options.campaign.maxCv = 0;  // one attempt per variant
      options.backendFactory = [](int) {
        return std::make_unique<DelayBackend>();
      };
      options.backendId = "delay-sim";
      options.connectAddr = server.boundAddress();
      options.workerName = "w" + std::to_string(w);
      launcher::ExploreResult result = launcher::runExplore(options);
      measured[static_cast<std::size_t>(w)] = result.measured;
    });
  }
  for (std::thread& t : threads) t.join();
  auto t1 = std::chrono::steady_clock::now();
  server.requestStop();
  server.wait();

  run.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (std::size_t m : measured) run.variants += m;
  run.report = readFile(serveOptions.reportPath);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = argc > 1 ? argv[1] : "BENCH_serve.json";
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;

  // 8 unroll variants, each a fresh miss (per-fleet cache) behind a 40 ms
  // wall delay: 1 worker pays ~8 delays sequentially, 4 workers ~2 each.
  std::string xml = bench::loadStoreKernelXml("movaps", 1, 8);

  bench::header(
      "campaign service (1 vs 2 vs 4 --connect workers, one daemon)",
      "host (" + std::to_string(cores) + " core(s))",
      "lease sharding over a wall-delay backend gives >= 2x throughput at "
      "4 workers with a byte-identical ranked report");

  std::string scratch = fs::temp_directory_path().string() + "/bench_serve";
  FleetRun one = runFleet(1, xml, scratch);
  FleetRun two = runFleet(2, xml, scratch);
  FleetRun four = runFleet(4, xml, scratch);
  fs::remove_all(scratch);

  auto rate = [](const FleetRun& r) {
    return r.seconds > 0 ? static_cast<double>(r.variants) / r.seconds : 0.0;
  };
  double speedup2 = two.seconds > 0 ? one.seconds / two.seconds : 0.0;
  double speedup4 = four.seconds > 0 ? one.seconds / four.seconds : 0.0;
  bool identical = !one.report.empty() && one.report == two.report &&
                   one.report == four.report;

  std::printf("variants: %zu (x %d ms wall delay per invoke)\n", one.variants,
              kInvokeDelayMs);
  std::printf("workers=1  %.3f s  (%.1f variants/s)\n", one.seconds,
              rate(one));
  std::printf("workers=2  %.3f s  (%.1f variants/s, %.2fx)\n", two.seconds,
              rate(two), speedup2);
  std::printf("workers=4  %.3f s  (%.1f variants/s, %.2fx)\n", four.seconds,
              rate(four), speedup4);
  bench::expectShape(identical,
                     "ranked report byte-identical across fleet sizes");
  bench::expectShape(one.variants == two.variants &&
                         one.variants == four.variants,
                     "every fleet measured each variant exactly once");
  bench::expectShape(speedup4 >= 2.0,
                     "4 workers >= 2x the single-worker throughput");

  std::ofstream json(jsonPath, std::ios::binary);
  json.setf(std::ios::fixed);
  json.precision(6);
  json << "{\n"
       << "  \"variants\": " << one.variants << ",\n"
       << "  \"invoke_delay_ms\": " << kInvokeDelayMs << ",\n"
       << "  \"cores\": " << cores << ",\n"
       << "  \"workers_1_seconds\": " << one.seconds << ",\n"
       << "  \"workers_2_seconds\": " << two.seconds << ",\n"
       << "  \"workers_4_seconds\": " << four.seconds << ",\n"
       << "  \"workers_1_variants_per_sec\": " << rate(one) << ",\n"
       << "  \"workers_2_variants_per_sec\": " << rate(two) << ",\n"
       << "  \"workers_4_variants_per_sec\": " << rate(four) << ",\n"
       << "  \"speedup_2v1\": " << speedup2 << ",\n"
       << "  \"speedup_4v1\": " << speedup4 << ",\n"
       << "  \"reports_identical\": " << (identical ? "true" : "false")
       << ",\n"
       << "  \"env\": " << bench::envJsonObject() << "\n"
       << "}\n";
  std::printf("wrote %s\n", jsonPath.c_str());

  bench::finish();
  // Report identity is a hard contract, not a shape expectation.
  return identical ? 0 : 1;
}
